"""Tests for the DIP family (LIP, BIP, DIP) and the set-dueling monitor."""

import pytest

from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.policies.dueling import SetDuelingMonitor
from repro.policies.lip_bip_dip import BIPPolicy, DIPPolicy, LIPPolicy
from repro.policies.lru import LRUPolicy
from repro.types import Access
from repro.workloads.streams import cyclic_loop


def hits(policy, trace, num_sets=4, ways=4):
    cache = SetAssociativeCache(CacheGeometry(num_sets, ways), policy)
    for access in trace:
        cache.access(access)
    return cache.stats.hits


class TestSetDuelingMonitor:
    def test_leader_sets_disjoint(self):
        sdm = SetDuelingMonitor(num_sets=64, num_leader_sets=4)
        leaders_a = [s for s in range(64) if sdm.role(s) == sdm.LEADER_A]
        leaders_b = [s for s in range(64) if sdm.role(s) == sdm.LEADER_B]
        assert len(leaders_a) == 4
        assert len(leaders_b) == 4
        assert not set(leaders_a) & set(leaders_b)

    def test_psel_starts_at_midpoint(self):
        sdm = SetDuelingMonitor(num_sets=64, psel_bits=10)
        assert sdm.psel == 511

    def test_miss_in_leader_a_votes_against_a(self):
        sdm = SetDuelingMonitor(num_sets=64, num_leader_sets=4)
        leader_a = next(s for s in range(64) if sdm.role(s) == sdm.LEADER_A)
        start = sdm.psel
        sdm.record_miss(leader_a)
        assert sdm.psel == start + 1

    def test_follower_adopts_winner(self):
        sdm = SetDuelingMonitor(num_sets=64, num_leader_sets=4)
        follower = next(s for s in range(64) if sdm.role(s) == sdm.FOLLOWER)
        leader_a = next(s for s in range(64) if sdm.role(s) == sdm.LEADER_A)
        for _ in range(100):
            sdm.record_miss(leader_a)  # A keeps missing
        assert not sdm.prefer_a(follower)

    def test_psel_saturates(self):
        sdm = SetDuelingMonitor(num_sets=64, num_leader_sets=4, psel_bits=4)
        leader_a = next(s for s in range(64) if sdm.role(s) == sdm.LEADER_A)
        for _ in range(100):
            sdm.record_miss(leader_a)
        assert sdm.psel == 15

    def test_phase_rotates_leaders(self):
        base = SetDuelingMonitor(num_sets=64, num_leader_sets=4, phase=0)
        shifted = SetDuelingMonitor(num_sets=64, num_leader_sets=4, phase=3)
        leaders_base = {s for s in range(64) if base.role(s) != base.FOLLOWER}
        leaders_shift = {s for s in range(64) if shifted.role(s) != base.FOLLOWER}
        assert leaders_base != leaders_shift

    def test_small_cache_clamps_leaders(self):
        sdm = SetDuelingMonitor(num_sets=4, num_leader_sets=32)
        assert sdm.num_leader_sets <= 2


class TestLIP:
    def test_lip_retains_old_working_set_on_scan(self):
        # Warm a small working set, then scan; LIP keeps the working set.
        warm = [Access(a) for a in [0, 4, 8, 12] * 5]
        scan = [Access(a) for a in range(100, 400, 4)]
        probe = [Access(a) for a in [0, 4, 8, 12]]
        lip_cache = SetAssociativeCache(CacheGeometry(4, 4), LIPPolicy())
        lru_cache = SetAssociativeCache(CacheGeometry(4, 4), LRUPolicy())
        for cache in (lip_cache, lru_cache):
            for access in warm + scan:
                cache.access(access)
        lip_hits = sum(lip_cache.access(a).hit for a in probe)
        lru_hits = sum(lru_cache.access(a).hit for a in probe)
        assert lip_hits > lru_hits


class TestBIP:
    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            BIPPolicy(epsilon=1.5)

    def test_bip_beats_lru_on_thrash(self):
        trace = list(cyclic_loop(2000, working_set=6))
        assert hits(BIPPolicy(seed=2), trace, num_sets=1) > hits(
            LRUPolicy(), trace, num_sets=1
        )

    def test_epsilon_one_is_lru(self):
        import random

        rng = random.Random(1)
        trace = [Access(rng.randrange(12)) for _ in range(600)]
        assert hits(BIPPolicy(epsilon=1.0), trace, num_sets=1) == hits(
            LRUPolicy(), trace, num_sets=1
        )


class TestDIP:
    def test_dip_close_to_lru_on_lru_friendly(self):
        trace = list(cyclic_loop(3000, working_set=4))
        dip_hits = hits(DIPPolicy(num_leader_sets=1), trace, num_sets=4)
        lru_hits = hits(LRUPolicy(), trace, num_sets=4)
        assert dip_hits >= 0.8 * lru_hits

    def test_dip_beats_lru_on_thrash(self):
        # Working set slightly larger than the cache: DIP should switch
        # to BIP and retain part of the set.
        trace = list(cyclic_loop(6000, working_set=24))
        dip_hits = hits(DIPPolicy(num_leader_sets=1, seed=3), trace, num_sets=4)
        lru_hits = hits(LRUPolicy(), trace, num_sets=4)
        assert lru_hits == 0
        assert dip_hits > 200
