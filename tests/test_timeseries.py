"""Windowed time-series recorder: boundaries, budget, zero overhead.

Complements ``tests/test_conformance.py`` (which pins cross-engine
bit-identity of the windows for every registered policy): this file pins
the recorder's own contract — exact window boundaries, sum-of-windows ==
end-of-run aggregates, the fixed ring-buffer budget, the zero-overhead
disabled mode, serialization round-trips, PDP-specific fields, shared-LLC
thread shares, and manifest persistence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pdp_policy import PDPPolicy
from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.obs.manifest import load_manifests
from repro.obs.timeseries import (
    DEFAULT_MAX_WINDOWS,
    DEFAULT_WINDOW_SIZE,
    TIMESERIES_SCHEMA_VERSION,
    Window,
    WindowedRecorder,
    active_recorder,
    windows_from_payload,
)
from repro.policies.lru import LRUPolicy
from repro.sim.multi_core import run_shared_llc
from repro.sim.single_core import run_hierarchy, run_llc
from repro.traces.stream import TraceStream
from repro.traces.trace import Trace

GEOMETRY = CacheGeometry(num_sets=16, ways=4)


def _trace(seed: int = 3, n: int = 5000, universe: int = 700) -> Trace:
    rng = np.random.default_rng(seed)
    return Trace(rng.integers(0, universe, size=n), name=f"ts-{seed}")


class TestWindowBoundaries:
    def test_exact_boundaries_and_partial_tail(self):
        trace = _trace(n=2500)
        recorder = WindowedRecorder(window_size=1000)
        run_llc(trace, LRUPolicy(), GEOMETRY, timeseries=recorder)
        windows = recorder.windows
        assert [(w.start, w.end) for w in windows] == [
            (0, 1000), (1000, 2000), (2000, 2500)
        ]
        assert [w.index for w in windows] == [0, 1, 2]
        assert all(w.accesses == w.end - w.start for w in windows)

    def test_totals_equal_aggregates(self):
        trace = _trace(n=4321)
        recorder = WindowedRecorder(window_size=997)  # deliberately odd
        result = run_llc(trace, LRUPolicy(), GEOMETRY, timeseries=recorder)
        totals = recorder.totals()
        assert totals["accesses"] == result.accesses
        assert totals["hits"] == result.hits
        assert totals["misses"] == result.misses
        assert totals["bypasses"] == result.bypasses
        assert totals["evictions"] == result.evictions
        assert (
            totals["evictions_reused"] + totals["evictions_dead"]
            == result.evictions
        )

    @pytest.mark.parametrize("chunk_size", [64, 333, 1000, 4096])
    def test_windows_identical_across_chunk_sizes(self, chunk_size):
        trace = _trace(n=3000)
        baseline = WindowedRecorder(window_size=512)
        run_llc(trace, LRUPolicy(), GEOMETRY, timeseries=baseline)
        chunked = WindowedRecorder(window_size=512)
        run_llc(
            TraceStream.from_trace(trace, chunk_size=chunk_size),
            LRUPolicy(),
            GEOMETRY,
            timeseries=chunked,
        )
        assert chunked.to_dict() == baseline.to_dict()

    def test_windows_identical_across_engines(self):
        trace = _trace(n=3000)
        payloads = []
        for engine in ("fast", "reference"):
            recorder = WindowedRecorder(window_size=777)
            run_llc(trace, LRUPolicy(), GEOMETRY, engine=engine,
                    timeseries=recorder)
            payloads.append(recorder.to_dict())
        assert payloads[0] == payloads[1]

    def test_window_size_shorthand(self):
        trace = _trace(n=2000)
        result = run_llc(trace, LRUPolicy(), GEOMETRY, window_size=500)
        payload = result.extra["timeseries"]
        assert payload["windows_closed"] == 4
        assert payload["window_size"] == 500

    def test_window_size_and_timeseries_conflict(self):
        with pytest.raises(ValueError, match="both"):
            run_llc(
                _trace(n=100), LRUPolicy(), GEOMETRY,
                timeseries=WindowedRecorder(window_size=50), window_size=50,
            )


class TestRingBudget:
    def test_ring_eviction_keeps_last_n(self):
        trace = _trace(n=5000)
        recorder = WindowedRecorder(window_size=500, max_windows=4)
        run_llc(trace, LRUPolicy(), GEOMETRY, timeseries=recorder)
        assert recorder.windows_closed == 10
        assert recorder.windows_dropped == 6
        assert [w.index for w in recorder.windows] == [6, 7, 8, 9]
        payload = recorder.to_dict()
        assert payload["windows_dropped"] == 6
        assert len(payload["windows"]) == 4

    def test_defaults(self):
        recorder = WindowedRecorder()
        assert recorder.window_size == DEFAULT_WINDOW_SIZE
        assert recorder.max_windows == DEFAULT_MAX_WINDOWS

    @pytest.mark.parametrize("kwargs", [
        {"window_size": 0}, {"window_size": -5}, {"max_windows": 0},
    ])
    def test_invalid_budgets_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WindowedRecorder(**kwargs)


class TestDisabledMode:
    def test_disabled_recorder_is_inert(self):
        trace = _trace(n=1500)
        cache = SetAssociativeCache(GEOMETRY, LRUPolicy())
        recorder = WindowedRecorder(window_size=100, enabled=False)
        result = run_llc(trace, LRUPolicy(), GEOMETRY, timeseries=recorder)
        assert recorder.windows == []
        assert recorder.accesses_recorded == 0
        assert "timeseries" not in result.extra
        # attach() must not register the observer when disabled
        recorder.attach(cache)
        assert recorder not in cache.observers

    def test_active_recorder_normalizes(self):
        assert active_recorder(None) is None
        disabled = WindowedRecorder(enabled=False)
        assert active_recorder(disabled) is None
        enabled = WindowedRecorder()
        assert active_recorder(enabled) is enabled

    def test_results_identical_with_and_without_recorder(self):
        trace = _trace(n=2000)
        plain = run_llc(trace, LRUPolicy(), GEOMETRY)
        recorded = run_llc(
            trace, LRUPolicy(), GEOMETRY,
            timeseries=WindowedRecorder(window_size=300),
        )
        for field in ("accesses", "hits", "misses", "bypasses",
                      "evictions", "instructions"):
            assert getattr(recorded, field) == getattr(plain, field)


class TestFeedingProtocol:
    def test_advance_past_boundary_rejected(self):
        recorder = WindowedRecorder(window_size=10)
        cache = SetAssociativeCache(GEOMETRY, LRUPolicy())
        recorder.attach(cache)
        recorder.advance(7)
        assert recorder.pending() == 3
        with pytest.raises(ValueError, match="crosses the window boundary"):
            recorder.advance(4)

    def test_finalize_closes_partial_window_once(self):
        recorder = WindowedRecorder(window_size=10)
        cache = SetAssociativeCache(GEOMETRY, LRUPolicy())
        recorder.attach(cache)
        recorder.advance(4)
        recorder.finalize()
        recorder.finalize()  # idempotent: nothing further open
        assert [(w.start, w.end) for w in recorder.windows] == [(0, 4)]


class TestSerialization:
    def test_window_round_trip(self):
        window = Window(
            index=2, start=200, end=300, accesses=100, hits=60, misses=40,
            bypasses=5, evictions=30, fills=35, evictions_reused=12,
            evictions_dead=18, pd=48, protected_lines=37,
            thread_accesses=[60, 40],
        )
        assert Window.from_dict(window.to_dict()) == window

    def test_from_dict_ignores_unknown_keys(self):
        data = Window(index=0, start=0, end=10, accesses=10).to_dict()
        data["future_field"] = "whatever"
        window = Window.from_dict(data)
        assert window.end == 10

    def test_to_dict_elides_none_fields(self):
        data = Window(index=0, start=0, end=10).to_dict()
        assert "pd" not in data
        assert "thread_accesses" not in data

    def test_payload_round_trip(self):
        trace = _trace(n=1200)
        recorder = WindowedRecorder(window_size=400)
        run_llc(trace, LRUPolicy(), GEOMETRY, timeseries=recorder)
        payload = recorder.to_dict()
        assert payload["schema_version"] == TIMESERIES_SCHEMA_VERSION
        rebuilt = windows_from_payload(payload)
        assert rebuilt == recorder.windows

    def test_windows_from_payload_degrades(self):
        assert windows_from_payload({}) == []
        assert windows_from_payload(None) == []
        assert windows_from_payload({"schema_version": 99}) == []


class TestPDPFields:
    def test_pd_and_protected_lines_recorded(self):
        trace = _trace(n=4000, universe=400)
        recorder = WindowedRecorder(window_size=1000)
        run_llc(
            trace, PDPPolicy(recompute_interval=1000), GEOMETRY,
            timeseries=recorder,
        )
        assert all(w.pd is not None and w.pd > 0 for w in recorder.windows)
        assert all(w.protected_lines is not None for w in recorder.windows)
        assert recorder.pd_trajectory() == [
            (w.end, w.pd) for w in recorder.windows
        ]

    def test_non_pdp_policy_leaves_fields_none(self):
        recorder = WindowedRecorder(window_size=500)
        run_llc(_trace(n=1000), LRUPolicy(), GEOMETRY, timeseries=recorder)
        assert all(w.pd is None for w in recorder.windows)
        assert all(w.protected_lines is None for w in recorder.windows)
        assert recorder.pd_trajectory() == []


class TestSharedLLC:
    def _traces(self):
        return [_trace(seed=11, n=2000), _trace(seed=12, n=1200)]

    def test_thread_shares_sum_to_frozen_aggregates(self):
        traces = self._traces()
        recorder = WindowedRecorder(window_size=700)
        result = run_shared_llc(
            traces, LRUPolicy(), GEOMETRY, singles=[1.0, 1.0],
            timeseries=recorder,
        )
        for thread, stats in enumerate(result.threads):
            assert sum(
                w.thread_accesses[thread] for w in recorder.windows
            ) == stats.accesses
            assert sum(
                w.thread_hits[thread] for w in recorder.windows
            ) == stats.hits

    def test_shared_windows_identical_across_paths(self):
        traces = self._traces()
        payloads = []
        for kwargs in (
            {"engine": "fast"},
            {"engine": "fast", "chunk_size": 513},
            {"engine": "reference"},
        ):
            recorder = WindowedRecorder(window_size=617)
            run_shared_llc(
                traces, LRUPolicy(), GEOMETRY, singles=[1.0, 1.0],
                timeseries=recorder, **kwargs,
            )
            payloads.append(recorder.to_dict())
        assert payloads[0] == payloads[1] == payloads[2]


class TestHierarchyAndManifest:
    def test_hierarchy_windows_count_trace_positions(self):
        trace = _trace(n=2400)
        recorder = WindowedRecorder(window_size=800)
        run_hierarchy(trace, LRUPolicy(), timeseries=recorder)
        assert [(w.start, w.end) for w in recorder.windows] == [
            (0, 800), (800, 1600), (1600, 2400)
        ]

    def test_manifest_persists_windows(self, tmp_path):
        trace = _trace(n=1600)
        run_llc(
            trace, LRUPolicy(), GEOMETRY, window_size=400,
            manifest_dir=tmp_path,
        )
        manifests = load_manifests(tmp_path)
        assert len(manifests) == 1
        payload = manifests[0].timeseries
        assert payload["windows_closed"] == 4
        windows = windows_from_payload(payload)
        assert sum(w.accesses for w in windows) == 1600
