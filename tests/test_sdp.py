"""Tests for sampling dead block prediction (SDP)."""

from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.policies.sdp import DeadBlockPredictor, SDPPolicy
from repro.types import Access


class TestDeadBlockPredictor:
    def test_initially_predicts_live(self):
        predictor = DeadBlockPredictor()
        assert not predictor.predict_dead(0x1234)

    def test_training_toward_dead(self):
        predictor = DeadBlockPredictor(threshold=6)
        for _ in range(5):
            predictor.train(0x42, dead=True)
        assert predictor.predict_dead(0x42)

    def test_training_back_toward_live(self):
        predictor = DeadBlockPredictor(threshold=6)
        for _ in range(5):
            predictor.train(0x42, dead=True)
        for _ in range(5):
            predictor.train(0x42, dead=False)
        assert not predictor.predict_dead(0x42)

    def test_counters_saturate(self):
        predictor = DeadBlockPredictor(counter_max=3)
        for _ in range(100):
            predictor.train(0x7, dead=True)
        assert all(table[i] <= 3 for table in predictor.tables for i in range(len(table)))

    def test_signatures_do_not_interfere_much(self):
        predictor = DeadBlockPredictor(threshold=6)
        for _ in range(10):
            predictor.train(0x100, dead=True)
        # A very different signature should stay live.
        assert not predictor.predict_dead(0x9ABC)


class TestSDPPolicy:
    def _stream_with_pcs(self, length, dead_pc, live_pc, num_sets=8):
        """Dead-PC accesses touch fresh blocks; live-PC loops a small set."""
        accesses = []
        fresh = 1000
        for index in range(length):
            if index % 2 == 0:
                accesses.append(Access(fresh * num_sets, pc=dead_pc))
                fresh += 1
            else:
                accesses.append(Access((index // 2 % 4) * num_sets, pc=live_pc))
        return accesses

    def test_learns_to_bypass_streaming_pc(self):
        policy = SDPPolicy(num_sampler_sets=8, threshold=6)
        cache = SetAssociativeCache(CacheGeometry(8, 4), policy)
        for access in self._stream_with_pcs(4000, dead_pc=0xAAAA, live_pc=0xBBBB):
            cache.access(access)
        assert policy.predictor.predict_dead(0xAAAA & 0xFFFF)
        assert not policy.predictor.predict_dead(0xBBBB & 0xFFFF)
        assert cache.stats.bypasses > 0

    def test_bypass_disabled(self):
        policy = SDPPolicy(bypass=False)
        cache = SetAssociativeCache(CacheGeometry(8, 4), policy)
        for access in self._stream_with_pcs(2000, dead_pc=0xAAAA, live_pc=0xBBBB):
            cache.access(access)
        assert cache.stats.bypasses == 0

    def test_protects_live_working_set(self):
        """Bypassing dead fills preserves the looping working set."""
        from repro.policies.lru import LRUPolicy

        accesses = self._stream_with_pcs(6000, dead_pc=0xAAAA, live_pc=0xBBBB)
        sdp_cache = SetAssociativeCache(
            CacheGeometry(8, 4), SDPPolicy(num_sampler_sets=8, threshold=6)
        )
        lru_cache = SetAssociativeCache(CacheGeometry(8, 4), LRUPolicy())
        for access in accesses:
            sdp_cache.access(access)
            lru_cache.access(access)
        assert sdp_cache.stats.hits >= lru_cache.stats.hits

    def test_sampler_entry_invalidated_and_replaced(self):
        policy = SDPPolicy(num_sampler_sets=1, sampler_assoc=2)
        SetAssociativeCache(CacheGeometry(4, 4), policy)
        # Set 0 is sampled; drive three distinct tags through it.
        for tag in (1, 2, 3):
            policy.on_access(0, Access(tag * 4, pc=0x10))
        entries = policy._sampler[0]
        assert all(entry.valid for entry in entries)
