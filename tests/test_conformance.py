"""Cross-engine conformance: reference vs fast vs vector vs chunked.

A seeded randomized sweep over (policy x geometry x workload generator)
asserting that every way to drive a simulation — the reference
per-``Access`` loop, each engine under test (``fast`` and the columnar
``vector`` tier by default), and each engine fed through a chunked
:class:`TraceStream` — produces identical statistics (hits, misses,
evictions, bypasses, instructions). The shared-LLC variant additionally
pins the thread-freeze rule across the one-shot and chunked paths.

The engines compared against reference come from the
``REPRO_CONFORMANCE_ENGINES`` environment variable (comma-separated,
default ``"fast,vector"``) so CI can run each engine as its own matrix
column. Policies the columnar module does not vectorize fall back to the
fast path inside the vector engine — the vector column therefore sweeps
*every* registered policy, proving the fallback seam too.

Every run also carries a :class:`repro.obs.timeseries.WindowedRecorder`:
the per-window payloads must be bit-identical across all three paths
(window boundaries sit at absolute positions, so chunking cannot shift
them) and the sum of the windows must equal the end-of-run aggregates.

The full sweep (every registered policy, several seeds) is marked
``conformance`` + ``slow`` and runs in CI's conformance job; a small
unmarked smoke subset keeps the default tier-1 gate exercising the
machinery.
"""

from __future__ import annotations

import os
import random
import zlib

import numpy as np
import pytest

from repro.memory.cache import CacheGeometry
from repro.obs.timeseries import WindowedRecorder
from repro.policies.base import make_policy, registered_policies
from repro.policies.belady import BeladyPolicy
from repro.sim.multi_core import run_shared_llc
from repro.sim.single_core import run_llc
from repro.traces.stream import TraceStream
from repro.traces.trace import Trace
from repro.workloads.mixes import interleave_traces
from repro.workloads.streams import (
    cyclic_loop,
    random_working_set,
    sequential_stream,
    thrash_loop,
)

#: Policies whose constructors need a thread count (shared-cache only).
MULTITHREAD = {"pd-partition", "pipp", "ta-drrip", "ucp"}

#: Fields of SingleCoreResult that must agree bit-for-bit across engines.
RESULT_FIELDS = ("accesses", "hits", "misses", "bypasses", "evictions", "instructions")

#: Engines compared against the reference loop (CI matrix columns set
#: $REPRO_CONFORMANCE_ENGINES to isolate one engine per job).
CONFORMANCE_ENGINES = tuple(
    engine.strip()
    for engine in os.environ.get(
        "REPRO_CONFORMANCE_ENGINES", "fast,vector"
    ).split(",")
    if engine.strip()
)


def _fresh_policy(name: str, trace: Trace):
    """A fresh policy instance for one run (policies are stateful)."""
    if name == "belady":
        return BeladyPolicy(trace.addresses, bypass=True)
    if name in MULTITHREAD:
        return make_policy(name, num_threads=2)
    return make_policy(name)


def _rng(*key) -> random.Random:
    """A process-stable seeded RNG (``hash()`` is salted; crc32 is not)."""
    return random.Random(zlib.crc32(":".join(map(str, key)).encode()))


def _random_workload(rng: random.Random, geometry: CacheGeometry) -> Trace:
    """Draw one generator and one parameterization from the pool."""
    length = rng.randrange(2_000, 4_000)
    kind = rng.choice(["cyclic", "random", "sequential", "thrash", "mixed"])
    if kind == "cyclic":
        trace = cyclic_loop(length, working_set=rng.randrange(16, 400))
    elif kind == "random":
        trace = random_working_set(
            length, working_set=rng.randrange(32, 600), seed=rng.randrange(1 << 16)
        )
    elif kind == "sequential":
        trace = sequential_stream(length, stride=rng.choice([1, 2, 7]))
    elif kind == "thrash":
        trace = thrash_loop(
            length,
            ways=geometry.ways,
            num_sets=geometry.num_sets,
            overshoot=rng.randrange(1, 4),
        )
    else:
        nprng = np.random.default_rng(rng.randrange(1 << 16))
        hot = nprng.integers(0, 64, size=length)
        cold = nprng.integers(64, 4_000, size=length)
        addresses = np.where(nprng.random(length) < 0.6, hot, cold)
        trace = Trace(
            addresses,
            pcs=nprng.integers(0, 16, size=length),
            thread_ids=nprng.integers(0, 2, size=length),
            name="mixed",
        )
    return trace


def _random_geometry(rng: random.Random) -> CacheGeometry:
    num_sets = rng.choice([8, 16, 32])
    ways = rng.choice([4, 8, 16])
    return CacheGeometry(num_sets=num_sets, ways=ways)


def _assert_conformant(policy_name: str, trace: Trace, geometry: CacheGeometry,
                       chunk_size: int) -> None:
    """Reference and every engine under test (one-shot and chunked) must
    agree exactly — including every per-window payload of an attached
    recorder."""
    window_size = max(64, len(trace) // 5)
    labels = ["reference"]
    for engine in CONFORMANCE_ENGINES:
        labels += [engine, f"{engine}-chunked"]
    recorders = {
        label: WindowedRecorder(window_size=window_size) for label in labels
    }
    reference = run_llc(
        trace, _fresh_policy(policy_name, trace), geometry, engine="reference",
        timeseries=recorders["reference"],
    )
    results = {}
    for engine in CONFORMANCE_ENGINES:
        results[engine] = run_llc(
            trace, _fresh_policy(policy_name, trace), geometry, engine=engine,
            timeseries=recorders[engine],
        )
        results[f"{engine}-chunked"] = run_llc(
            TraceStream.from_trace(trace, chunk_size=chunk_size),
            _fresh_policy(policy_name, trace),
            geometry,
            engine=engine,
            timeseries=recorders[f"{engine}-chunked"],
        )
    for field in RESULT_FIELDS:
        ref_value = getattr(reference, field)
        for label, result in results.items():
            assert getattr(result, field) == ref_value, (
                f"{policy_name}: {label}.{field} diverges from reference on "
                f"{trace.name} ({len(trace)} accesses, "
                f"chunk_size={chunk_size})"
            )
    ref_windows = recorders["reference"].to_dict()
    for label in labels[1:]:
        assert recorders[label].to_dict() == ref_windows, (
            f"{policy_name}: {label} windowed stats diverge from reference "
            f"(window_size={window_size}, chunk_size={chunk_size})"
        )
    totals = recorders["reference"].totals()
    for window_field, result_field in (
        ("accesses", "accesses"),
        ("hits", "hits"),
        ("misses", "misses"),
        ("bypasses", "bypasses"),
        ("evictions", "evictions"),
    ):
        assert totals[window_field] == getattr(reference, result_field), (
            f"{policy_name}: sum of per-window {window_field} != aggregate"
        )


@pytest.mark.conformance
@pytest.mark.slow
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("policy_name", sorted(registered_policies()))
def test_single_core_engines_agree(policy_name: str, seed: int):
    rng = _rng("single", policy_name, seed)
    geometry = _random_geometry(rng)
    trace = _random_workload(rng, geometry)
    chunk_size = rng.randrange(64, max(65, len(trace) // 2))
    _assert_conformant(policy_name, trace, geometry, chunk_size)


@pytest.mark.parametrize("policy_name", ["lru", "srrip", "dip", "pdp", "ship"])
def test_single_core_engines_agree_smoke(policy_name: str):
    """Unmarked subset so the default (fast) gate runs the harness."""
    rng = _rng("smoke", policy_name)
    geometry = _random_geometry(rng)
    trace = _random_workload(rng, geometry)
    _assert_conformant(policy_name, trace, geometry, chunk_size=333)


def _shared_policy(name: str, traces: list[Trace]):
    """A fresh shared-LLC policy; belady sees the interleaved stream."""
    if name == "belady":
        mixed, _ = interleave_traces(traces)
        return BeladyPolicy(mixed.addresses, bypass=True)
    if name in MULTITHREAD:
        return make_policy(name, num_threads=len(traces))
    return make_policy(name)


def _assert_shared_conformant(policy_name: str, traces: list[Trace],
                              geometry: CacheGeometry, chunk_size: int) -> None:
    """Per-thread frozen statistics must agree across every path —
    including per-window shares from an attached recorder. The vector
    engine is an alias for the fast kernel on shared runs; the column
    still proves the alias wiring end to end."""
    total = sum(len(t) for t in traces)
    window_size = max(64, total // 5)
    labels = ["reference"]
    for engine in CONFORMANCE_ENGINES:
        labels += [engine, f"{engine}-chunked"]
    recorders = {
        label: WindowedRecorder(window_size=window_size) for label in labels
    }
    singles = [1.0] * len(traces)  # skip baselines: not under test
    runs = {
        "reference": run_shared_llc(
            traces, _shared_policy(policy_name, traces), geometry,
            singles=singles, engine="reference",
            timeseries=recorders["reference"],
        ),
    }
    for engine in CONFORMANCE_ENGINES:
        runs[engine] = run_shared_llc(
            traces, _shared_policy(policy_name, traces), geometry,
            singles=singles, engine=engine,
            timeseries=recorders[engine],
        )
        runs[f"{engine}-chunked"] = run_shared_llc(
            traces, _shared_policy(policy_name, traces), geometry,
            singles=singles, engine=engine, chunk_size=chunk_size,
            timeseries=recorders[f"{engine}-chunked"],
        )
    reference = runs["reference"]
    for label in labels[1:]:
        result = runs[label]
        for thread, (got, want) in enumerate(zip(result.threads, reference.threads)):
            for field in ("accesses", "hits", "misses", "bypasses", "instructions"):
                assert getattr(got, field) == getattr(want, field), (
                    f"{policy_name}: {label} thread {thread} {field} diverges "
                    f"from reference (chunk_size={chunk_size})"
                )
    ref_windows = recorders["reference"].to_dict()
    for label in labels[1:]:
        assert recorders[label].to_dict() == ref_windows, (
            f"{policy_name}: {label} shared windowed stats diverge from "
            f"reference (window_size={window_size}, chunk_size={chunk_size})"
        )
    # Per-window thread shares must sum to the frozen per-thread aggregates.
    windows = recorders["reference"].windows
    for thread, want in enumerate(reference.threads):
        for field, slot in (("accesses", "thread_accesses"),
                            ("hits", "thread_hits"),
                            ("misses", "thread_misses"),
                            ("bypasses", "thread_bypasses")):
            summed = sum(
                (getattr(w, slot) or [0] * len(traces))[thread] for w in windows
            )
            assert summed == getattr(want, field), (
                f"{policy_name}: thread {thread} per-window {field} sum "
                f"!= frozen aggregate"
            )


@pytest.mark.conformance
@pytest.mark.slow
@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("policy_name", sorted(registered_policies()))
def test_shared_llc_engines_agree(policy_name: str, seed: int):
    rng = _rng("shared", policy_name, seed)
    geometry = _random_geometry(rng)
    # Unequal lengths so the two threads freeze at different positions —
    # the chunked path must freeze against absolute stream positions.
    traces = [
        _random_workload(rng, geometry).slice(0, rng.randrange(1_000, 2_000)),
        _random_workload(rng, geometry).slice(0, rng.randrange(500, 1_500)),
    ]
    chunk_size = rng.randrange(97, 1_111)
    _assert_shared_conformant(policy_name, traces, geometry, chunk_size)


@pytest.mark.parametrize("policy_name", ["lru", "ucp", "ta-drrip"])
def test_shared_llc_engines_agree_smoke(policy_name: str):
    rng = _rng("shared-smoke", policy_name)
    geometry = CacheGeometry(num_sets=16, ways=8)
    traces = [
        _random_workload(rng, geometry).slice(0, 1_200),
        _random_workload(rng, geometry).slice(0, 700),
    ]
    _assert_shared_conformant(policy_name, traces, geometry, chunk_size=251)
