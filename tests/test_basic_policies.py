"""Tests for LRU, MRU, FIFO, Random and tree-PLRU policies."""

import pytest

from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.policies.base import make_policy, registered_policies
from repro.policies.fifo import FIFOPolicy
from repro.policies.lru import LRUPolicy, MRUPolicy
from repro.policies.plru import TreePLRUPolicy
from repro.policies.random_ import RandomPolicy
from repro.types import Access


def drive(policy, addresses, num_sets=1, ways=4):
    cache = SetAssociativeCache(CacheGeometry(num_sets, ways), policy)
    results = [cache.access(Access(a)) for a in addresses]
    return cache, results


class TestLRU:
    def test_evicts_least_recent(self):
        cache, results = drive(LRUPolicy(), [0, 1, 2, 3, 0, 4])
        # 0 was promoted; victim for 4 must be 1.
        assert results[-1].evicted == 1

    def test_hit_promotes(self):
        cache, results = drive(LRUPolicy(), [0, 1, 2, 3, 0, 1, 4, 5])
        assert results[6].evicted == 2
        assert results[7].evicted == 3

    def test_stack_property_small_within_large(self):
        """Classic inclusion: every LRU(2) hit is also an LRU(4) hit."""
        import random

        rng = random.Random(3)
        addresses = [rng.randrange(8) for _ in range(400)]
        small, _ = drive(LRUPolicy(), addresses, ways=2)
        large, _ = drive(LRUPolicy(), addresses, ways=4)
        assert small.stats.hits <= large.stats.hits

    def test_recency_order(self):
        cache, _ = drive(LRUPolicy(), [0, 1, 2])
        order = cache.policy.recency_order(0)
        tags = [cache.tags[0][w] for w in order if cache.valid[0][w]]
        assert tags[0] == 2  # MRU first

    def test_loop_exactly_fits(self):
        cache, _ = drive(LRUPolicy(), [0, 1, 2, 3] * 10)
        assert cache.stats.hits == 36  # all but the 4 cold misses

    def test_loop_one_too_big_thrashes(self):
        cache, _ = drive(LRUPolicy(), [0, 1, 2, 3, 4] * 10)
        assert cache.stats.hits == 0  # the LRU pathology


class TestMRU:
    def test_evicts_most_recent(self):
        cache, results = drive(MRUPolicy(), [0, 1, 2, 3, 4])
        assert results[-1].evicted == 3

    def test_mru_beats_lru_on_thrash_loop(self):
        addresses = [0, 1, 2, 3, 4] * 20
        lru, _ = drive(LRUPolicy(), addresses)
        mru, _ = drive(MRUPolicy(), addresses)
        assert mru.stats.hits > lru.stats.hits


class TestFIFO:
    def test_evicts_insertion_order(self):
        cache, results = drive(FIFOPolicy(), [0, 1, 2, 3, 0, 4])
        # 0 was hit but FIFO does not promote: victim is still 0.
        assert results[-1].evicted == 0

    def test_second_eviction(self):
        cache, results = drive(FIFOPolicy(), [0, 1, 2, 3, 4, 5])
        assert results[-1].evicted == 1


class TestRandom:
    def test_deterministic_with_seed(self):
        addresses = list(range(20)) * 3
        a, _ = drive(RandomPolicy(seed=9), addresses)
        b, _ = drive(RandomPolicy(seed=9), addresses)
        assert a.stats.hits == b.stats.hits

    def test_victims_are_valid_ways(self):
        cache, results = drive(RandomPolicy(seed=1), list(range(50)))
        for result in results:
            if result.evicted is None:
                continue
            assert 0 <= result.way < 4


class TestTreePLRU:
    def test_requires_power_of_two_ways(self):
        with pytest.raises(ValueError):
            drive(TreePLRUPolicy(), [0], ways=3)

    def test_never_evicts_most_recent(self):
        import random

        rng = random.Random(5)
        cache = SetAssociativeCache(CacheGeometry(1, 8), TreePLRUPolicy())
        last = None
        for _ in range(500):
            address = rng.randrange(24)
            result = cache.access(Access(address))
            if result.evicted is not None and last is not None:
                assert result.evicted != last
            last = address

    def test_tracks_lru_roughly(self):
        """PLRU hit counts are close to true LRU on a reuse-heavy stream."""
        import random

        rng = random.Random(11)
        addresses = [rng.randrange(10) for _ in range(1000)]
        plru, _ = drive(TreePLRUPolicy(), addresses, ways=8)
        lru, _ = drive(LRUPolicy(), addresses, ways=8)
        assert plru.stats.hits >= 0.9 * lru.stats.hits


class TestRegistry:
    def test_make_policy_by_name(self):
        policy = make_policy("lru")
        assert isinstance(policy, LRUPolicy)

    def test_make_policy_with_kwargs(self):
        policy = make_policy("random", seed=5)
        assert isinstance(policy, RandomPolicy)

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(KeyError, match="lru"):
            make_policy("definitely-not-a-policy")

    def test_expected_policies_registered(self):
        names = registered_policies()
        for expected in ("lru", "fifo", "dip", "drrip", "pdp", "ucp", "pipp"):
            assert expected in names
