"""Tests for the timing model and the three-level hierarchy."""

import pytest

from repro.memory.cache import CacheGeometry
from repro.memory.hierarchy import CacheHierarchy
from repro.memory.timing import TimingModel
from repro.policies.lru import LRUPolicy
from repro.types import Access


class TestTimingModel:
    def test_perfect_cache_hits_issue_width(self):
        timing = TimingModel(issue_width=4)
        assert timing.ipc(1000, 0, 0, 0) == pytest.approx(4.0)

    def test_misses_lower_ipc(self):
        timing = TimingModel()
        perfect = timing.ipc(1000, 0, 0, 0)
        with_misses = timing.ipc(1000, 0, 0, 50)
        assert with_misses < perfect

    def test_monotone_in_miss_count(self):
        timing = TimingModel()
        ipcs = [timing.ipc(1000, 0, 0, misses) for misses in (0, 10, 50, 200)]
        assert all(ipcs[i] > ipcs[i + 1] for i in range(3))

    def test_llc_hit_cheaper_than_memory(self):
        timing = TimingModel()
        assert timing.ipc(1000, 0, 50, 0) > timing.ipc(1000, 0, 0, 50)

    def test_mlp_reduces_stalls(self):
        low = TimingModel(mlp=1.0).ipc(1000, 0, 0, 50)
        high = TimingModel(mlp=4.0).ipc(1000, 0, 0, 50)
        assert high > low

    def test_cycles_additive(self):
        timing = TimingModel(issue_width=1, mlp=1.0)
        cycles = timing.cycles(100, 1, 1, 1)
        expected = 100 + (10 - 2) + (30 - 2) + (200 - 2)
        assert cycles == pytest.approx(expected)


class TestHierarchy:
    def test_l1_filters_l2(self):
        hierarchy = CacheHierarchy(
            LRUPolicy(),
            l1_geometry=CacheGeometry(2, 2),
            l2_geometry=CacheGeometry(4, 2),
            llc_geometry=CacheGeometry(8, 4),
        )
        hierarchy.access(Access(0))
        hierarchy.access(Access(0))  # L1 hit, never reaches L2
        assert hierarchy.result.l1_hits == 1
        assert hierarchy.l2.stats.accesses == 1

    def test_miss_propagates_to_memory(self):
        hierarchy = CacheHierarchy(
            LRUPolicy(),
            l1_geometry=CacheGeometry(2, 2),
            l2_geometry=CacheGeometry(4, 2),
            llc_geometry=CacheGeometry(8, 4),
        )
        hierarchy.access(Access(123))
        assert hierarchy.result.memory_accesses == 1

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = CacheHierarchy(
            LRUPolicy(),
            l1_geometry=CacheGeometry(1, 1),
            l2_geometry=CacheGeometry(1, 4),
            llc_geometry=CacheGeometry(8, 4),
        )
        hierarchy.access(Access(0))
        hierarchy.access(Access(1))  # evicts 0 from the 1-line L1
        hierarchy.access(Access(0))  # L1 miss, L2 hit
        assert hierarchy.result.l2_hits == 1

    def test_llc_bypass_counted(self):
        from repro.core.pdp_policy import PDPPolicy

        hierarchy = CacheHierarchy(
            PDPPolicy(static_pd=250, bypass=True),
            l1_geometry=CacheGeometry(1, 1),
            l2_geometry=CacheGeometry(1, 2),
            llc_geometry=CacheGeometry(1, 2),
        )
        for address in range(10):
            hierarchy.access(Access(address))
        assert hierarchy.result.llc_bypasses > 0

    def test_default_geometries_match_table1(self):
        hierarchy = CacheHierarchy(LRUPolicy())
        assert hierarchy.l1.geometry.capacity_bytes == 32 * 1024
        assert hierarchy.l2.geometry.capacity_bytes == 256 * 1024
        assert hierarchy.llc.geometry.capacity_bytes == 2 * 1024 * 1024
        assert hierarchy.llc.geometry.ways == 16

    def test_run_counts_all_accesses(self):
        hierarchy = CacheHierarchy(
            LRUPolicy(),
            l1_geometry=CacheGeometry(2, 2),
            l2_geometry=CacheGeometry(4, 2),
            llc_geometry=CacheGeometry(8, 4),
        )
        result = hierarchy.run(Access(a) for a in range(25))
        assert result.accesses == 25
        assert result.mpki(1000) == pytest.approx(25.0)
