"""Sweep service: specs, protocol, job store, resume scheduler, daemon.

The resume tests pin the PR's acceptance contract: an interrupted sweep,
resumed against its per-cell manifests, skips completed cells (visibly —
``skipped`` progress events) and merges to results bit-identical to an
uninterrupted run, including windowed time-series payloads.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from functools import partial
from pathlib import Path

import numpy as np
import pytest

from repro.memory.cache import CacheGeometry
from repro.obs.manifest import scan_manifests
from repro.policies.base import make_policy
from repro.service.jobs import JobRecord, JobStore, SpecError, SweepSpec
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    ServiceClient,
    decode_message,
    encode_message,
    service_socket,
)
from repro.service.scheduler import (
    CorruptManifestError,
    run_resumable_matrix,
    run_resumable_mix_matrix,
)
from repro.service.server import SweepService
from repro.sim.parallel import run_matrix
from repro.traces.trace import Trace

REPO_ROOT = Path(__file__).parent.parent
GEOMETRY = CacheGeometry(num_sets=16, ways=4)


def _trace(seed: int = 11, n: int = 3000, name: str | None = None) -> Trace:
    rng = np.random.default_rng(seed)
    hot = rng.integers(0, 300, size=n)
    cold = rng.integers(300, 12_000, size=n)
    addresses = np.where(rng.random(n) < 0.6, hot, cold)
    return Trace(addresses, name=name or f"svc-test-{seed}")


def _factories(*names: str) -> dict:
    return {name: partial(make_policy, name) for name in names}


def _cell_fields(result):
    """Every manifest-persisted field of a SingleCoreResult, bitwise."""
    return (
        result.name,
        result.accesses,
        result.hits,
        result.misses,
        result.bypasses,
        result.instructions,
        result.ipc,
        result.evictions,
        result.extra.get("timeseries"),
    )


def _mix_fields(result):
    """Every manifest-persisted field of a MultiCoreResult, bitwise."""
    return (
        result.name,
        [
            (t.accesses, t.hits, t.misses, t.bypasses, t.instructions, t.ipc)
            for t in result.threads
        ],
        result.weighted,
        result.throughput,
        result.hmean,
    )


class TestSweepSpec:
    def test_round_trip(self):
        spec = SweepSpec(
            benchmark="429.mcf",
            policies=["lru", {"key": "pdp8", "name": "pdp", "kwargs": {}}],
            window_size=500,
        )
        spec.validate()
        rebuilt = SweepSpec.from_dict(spec.to_dict())
        assert rebuilt == spec

    def test_policy_items_normalization(self):
        spec = SweepSpec(
            benchmark="429.mcf",
            policies=["lru", {"name": "pdp"}, {"key": "x", "name": "srrip"}],
        )
        assert spec.policy_items() == [
            ("lru", "lru", {}),
            ("pdp", "pdp", {}),
            ("x", "srrip", {}),
        ]

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"kind": "nope"}, "kind"),
            ({"namespace": "a/b", "benchmark": "x", "policies": ["lru"]}, "namespace"),
            ({"namespace": "..", "benchmark": "x", "policies": ["lru"]}, "namespace"),
            ({"policies": ["lru"]}, "exactly one"),
            ({"benchmark": "x", "trace_file": "y", "policies": ["lru"]}, "exactly one"),
            ({"benchmark": "x"}, "at least one policy"),
            ({"kind": "mix_matrix", "policies": ["lru"]}, "mixes"),
            ({"benchmark": "x", "policies": ["lru", "lru"]}, "duplicate"),
            ({"benchmark": "x", "policies": ["lru"], "workers": -1}, "workers"),
            ({"benchmark": "x", "policies": ["lru"], "window_size": 0}, "window_size"),
        ],
    )
    def test_validate_rejects(self, kwargs, match):
        with pytest.raises(SpecError, match=match):
            SweepSpec(**kwargs).validate()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(SpecError, match="unknown spec fields"):
            SweepSpec.from_dict({"benchmark": "x", "surprise": 1})

    def test_unknown_policy_name_fails_fast(self):
        from repro.service.jobs import policy_factories

        spec = SweepSpec(benchmark="x", policies=["not-a-policy"])
        with pytest.raises(SpecError, match="unknown policy"):
            policy_factories(spec)


class TestProtocol:
    def test_encode_decode_round_trip(self):
        payload = {"op": "submit", "spec": {"policies": ["lru"], "length": 1}}
        line = encode_message(payload)
        assert line.endswith(b"\n") and b"\n" not in line[:-1]
        assert decode_message(line) == payload

    def test_decode_rejects_non_objects(self):
        with pytest.raises(ProtocolError, match="JSON objects"):
            decode_message(b'["a", "list"]\n')
        with pytest.raises(ProtocolError, match="invalid JSON"):
            decode_message(b"{nope\n")

    def test_encode_rejects_oversized(self):
        with pytest.raises(ProtocolError, match="MAX_LINE_BYTES"):
            encode_message({"blob": "x" * (MAX_LINE_BYTES + 1)})


class TestJobStore:
    def test_save_get_round_trip(self, tmp_path):
        store = JobStore(tmp_path)
        record = JobRecord.new(SweepSpec(benchmark="x", policies=["lru"]))
        store.save(record)
        assert store.get(record.job_id) == record
        assert store.get("missing") is None
        # atomic write leaves no temp litter
        assert list((tmp_path / "jobs").glob("*.tmp")) == []

    def test_recover_requeues_running_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        done = JobRecord.new(SweepSpec(benchmark="a", policies=["lru"]))
        done.state = "done"
        running = JobRecord.new(SweepSpec(benchmark="b", policies=["lru"]))
        running.state = "running"
        queued = JobRecord.new(SweepSpec(benchmark="c", policies=["lru"]))
        for record in (done, running, queued):
            store.save(record)
        pending = store.recover()
        assert sorted(r.spec.benchmark for r in pending) == ["b", "c"]
        revived = store.get(running.job_id)
        assert revived.state == "queued" and revived.interrupted


class TestMatrixResume:
    def test_second_run_skips_all_cells_bit_identical(self, tmp_path):
        trace = _trace()
        factories = _factories("lru", "fifo", "srrip")
        events = []
        first, plan1 = run_resumable_matrix(
            trace, factories, GEOMETRY, tmp_path, window_size=800
        )
        second, plan2 = run_resumable_matrix(
            trace, factories, GEOMETRY, tmp_path, window_size=800,
            on_event=events.append,
        )
        assert not plan1.skipped and len(plan1.to_run) == 3
        assert len(plan2.skipped) == 3 and not plan2.to_run
        assert [e.kind for e in events] == ["skipped"] * 3
        assert list(second) == list(first)  # original grid order
        for key in factories:
            assert _cell_fields(second[key]) == _cell_fields(first[key])

    def test_interrupted_sweep_resumes_and_merges_bit_identical(self, tmp_path):
        """The acceptance scenario: cell 2 of 3 dies mid-sweep; the
        retry skips the completed cells and the merged results match an
        uninterrupted reference run bitwise, windows included."""
        trace = _trace()
        reference_dir = tmp_path / "ref"
        resumed_dir = tmp_path / "resumed"
        factories = _factories("lru", "fifo", "srrip")
        reference, _ = run_resumable_matrix(
            trace, factories, GEOMETRY, reference_dir, window_size=800
        )

        class Boom(Exception):
            pass

        def exploding_factory():
            raise Boom("injected cell failure")

        broken = dict(factories)
        broken["fifo"] = exploding_factory
        with pytest.raises(Exception, match="injected cell failure"):
            run_resumable_matrix(
                trace, broken, GEOMETRY, resumed_dir, window_size=800
            )
        survivors = [
            m for m in scan_manifests(resumed_dir).manifests if m.kind == "llc"
        ]
        assert sorted(m.label for m in survivors) == ["lru", "srrip"]

        events = []
        merged, plan = run_resumable_matrix(
            trace, factories, GEOMETRY, resumed_dir, window_size=800,
            on_event=events.append,
        )
        assert sorted(str(k) for k in plan.skipped) == ["lru", "srrip"]
        assert plan.to_run == ["fifo"]
        skipped_keys = sorted(e.key for e in events if e.kind == "skipped")
        assert skipped_keys == ["lru", "srrip"]
        assert list(merged) == list(reference)
        for key in factories:
            assert _cell_fields(merged[key]) == _cell_fields(reference[key])

    def test_fingerprint_mismatch_forces_rerun(self, tmp_path):
        factories = _factories("lru")
        run_resumable_matrix(
            _trace(seed=1, name="same-name"), factories, GEOMETRY, tmp_path
        )
        # same workload name, different content: must not be skipped
        _, plan = run_resumable_matrix(
            _trace(seed=2, name="same-name"), factories, GEOMETRY, tmp_path
        )
        assert not plan.skipped and plan.to_run == ["lru"]

    def test_window_size_mismatch_forces_rerun(self, tmp_path):
        trace = _trace()
        factories = _factories("lru")
        run_resumable_matrix(trace, factories, GEOMETRY, tmp_path, window_size=800)
        _, hit = run_resumable_matrix(
            trace, factories, GEOMETRY, tmp_path, window_size=800
        )
        assert hit.skipped and not hit.to_run
        _, miss = run_resumable_matrix(
            trace, factories, GEOMETRY, tmp_path, window_size=400
        )
        assert not miss.skipped and miss.to_run == ["lru"]

    def test_match_git_sha_gates_resume(self, tmp_path):
        trace = _trace()
        factories = _factories("lru")
        run_resumable_matrix(trace, factories, GEOMETRY, tmp_path)
        # forge the recorded SHA: the cell must re-run under matching
        for path in tmp_path.glob("*.json"):
            data = json.loads(path.read_text())
            if data.get("kind") == "llc":
                data["git_sha"] = "0" * 40
                path.write_text(json.dumps(data))
        _, relaxed = run_resumable_matrix(trace, factories, GEOMETRY, tmp_path)
        assert relaxed.skipped  # default: SHA not part of the identity
        _, strict = run_resumable_matrix(
            trace, factories, GEOMETRY, tmp_path, match_git_sha=True
        )
        assert not strict.skipped and strict.to_run == ["lru"]

    def test_corrupt_manifest_refused_without_force(self, tmp_path):
        trace = _trace()
        factories = _factories("lru")
        run_resumable_matrix(trace, factories, GEOMETRY, tmp_path)
        (tmp_path / "corrupt.json").write_text("{not json")
        with pytest.raises(CorruptManifestError, match="corrupt.json"):
            run_resumable_matrix(trace, factories, GEOMETRY, tmp_path)
        _, plan = run_resumable_matrix(
            trace, factories, GEOMETRY, tmp_path, force=True
        )
        assert plan.skipped and not plan.to_run

    def test_skip_events_reach_events_jsonl(self, tmp_path):
        from repro.obs.trace_log import EVENTS_FILENAME, read_events

        trace = _trace()
        factories = _factories("lru", "fifo")
        run_resumable_matrix(trace, factories, GEOMETRY, tmp_path)
        run_resumable_matrix(trace, factories, GEOMETRY, tmp_path)
        events = read_events(tmp_path / EVENTS_FILENAME)
        skipped = [e["key"] for e in events if e["kind"] == "skipped"]
        assert sorted(skipped) == ["fifo", "lru"]

    def test_resume_ignores_foreign_and_sweep_manifests(self, tmp_path):
        """Sweep-level manifests and other-geometry cells never satisfy
        a cell: only a full identity match skips work."""
        trace = _trace()
        factories = _factories("lru")
        run_matrix(trace, factories, GEOMETRY, manifest_dir=tmp_path)
        other = CacheGeometry(num_sets=32, ways=4)
        _, plan = run_resumable_matrix(trace, factories, other, tmp_path)
        assert not plan.skipped and plan.to_run == ["lru"]


class TestMixResume:
    def _mixes(self):
        return {
            "mix0": [_trace(1, 900, "t1"), _trace(2, 700, "t2")],
            "mix1": [_trace(3, 800, "t3"), _trace(4, 800, "t4")],
        }

    def test_second_run_skips_all_cells_bit_identical(self, tmp_path):
        factories = _factories("lru", "fifo")
        first, plan1 = run_resumable_mix_matrix(
            self._mixes(), factories, GEOMETRY, tmp_path
        )
        second, plan2 = run_resumable_mix_matrix(
            self._mixes(), factories, GEOMETRY, tmp_path
        )
        assert len(plan1.to_run) == 4 and not plan2.to_run
        assert list(second) == list(first)
        for key in first:
            assert _mix_fields(second[key]) == _mix_fields(first[key])

    def test_ragged_remainder_runs_per_cell(self, tmp_path):
        """Deleting one cell's manifest leaves a remainder that is not a
        full sub-grid; resume must re-run exactly that cell."""
        factories = _factories("lru", "fifo")
        first, _ = run_resumable_mix_matrix(
            self._mixes(), factories, GEOMETRY, tmp_path
        )
        victim = str(("mix1", "fifo"))
        for path in tmp_path.glob("*.json"):
            if json.loads(path.read_text()).get("label") == victim:
                path.unlink()
        merged, plan = run_resumable_mix_matrix(
            self._mixes(), factories, GEOMETRY, tmp_path
        )
        assert plan.to_run == [("mix1", "fifo")]
        for key in first:
            assert _mix_fields(merged[key]) == _mix_fields(first[key])


def _submit_and_wait(client: ServiceClient, spec: SweepSpec) -> tuple[dict, list]:
    job = client.submit(spec.to_dict())
    responses = list(client.watch(job["job_id"]))
    events = [r["event"] for r in responses if "event" in r]
    return responses[-1]["done"], events


class TestServiceDaemon:
    """In-process daemon end-to-end: submit → watch → resume."""

    def _spec(self, **overrides) -> SweepSpec:
        base = dict(
            benchmark="429.mcf",
            length=2000,
            num_sets=16,
            ways=4,
            policies=["lru", "fifo"],
            namespace="t",
            window_size=500,
        )
        base.update(overrides)
        return SweepSpec(**base)

    def test_submit_watch_resume_cycle(self, tmp_path):
        async def scenario():
            service = SweepService(tmp_path, install_signal_handlers=False)
            await service.start()
            try:
                def client_side():
                    with ServiceClient(service_socket(tmp_path)) as client:
                        assert client.ping()["ok"]
                        done1, events1 = _submit_and_wait(client, self._spec())
                        done2, events2 = _submit_and_wait(client, self._spec())
                        jobs = client.jobs()
                        return done1, events1, done2, events2, jobs

                return await asyncio.to_thread(client_side)
            finally:
                await service.stop()

        done1, events1, done2, events2, jobs = asyncio.run(scenario())
        assert done1["state"] == "done"
        assert done1["ran_cells"] == 2 and done1["skipped_cells"] == 0
        # the resubmitted identical sweep is satisfied purely from manifests
        assert done2["state"] == "done"
        assert done2["ran_cells"] == 0 and done2["skipped_cells"] == 2
        assert [e["kind"] for e in events2 if e["kind"] == "skipped"] == [
            "skipped",
            "skipped",
        ]
        assert len(jobs) == 2 and all(j["state"] == "done" for j in jobs)

    def test_rejects_bad_specs_and_unknown_ops(self, tmp_path):
        async def scenario():
            service = SweepService(tmp_path, install_signal_handlers=False)
            await service.start()
            try:
                def client_side():
                    with ServiceClient(service_socket(tmp_path)) as client:
                        with pytest.raises(ProtocolError, match="unknown policy"):
                            client.submit(
                                {"benchmark": "429.mcf", "policies": ["nope"]}
                            )
                        with pytest.raises(ProtocolError, match="exactly one"):
                            client.submit({"policies": ["lru"]})
                        with pytest.raises(ProtocolError, match="unknown op"):
                            client.request({"op": "frobnicate"})
                        with pytest.raises(ProtocolError, match="unknown job"):
                            list(client.watch("no-such-job"))

                return await asyncio.to_thread(client_side)
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_corrupt_namespace_fails_job_without_force(self, tmp_path):
        async def scenario():
            service = SweepService(tmp_path, install_signal_handlers=False)
            await service.start()
            ns = service.store.namespace_dir("t")
            (ns / "corrupt.json").write_text("{not json")
            try:
                def client_side():
                    with ServiceClient(service_socket(tmp_path)) as client:
                        refused, _ = _submit_and_wait(client, self._spec())
                        forced, _ = _submit_and_wait(
                            client, self._spec(force=True)
                        )
                        return refused, forced

                return await asyncio.to_thread(client_side)
            finally:
                await service.stop()

        refused, forced = asyncio.run(scenario())
        assert refused["state"] == "failed"
        assert "corrupt" in refused["error"]
        assert forced["state"] == "done" and forced["ran_cells"] == 2

    def test_cell_failure_is_isolated_and_job_fails(self, tmp_path):
        async def scenario():
            service = SweepService(tmp_path, install_signal_handlers=False)
            await service.start()
            try:
                def client_side():
                    # an unknown kwarg blows up exactly one cell's
                    # factory inside the sweep; "lru" runs first and its
                    # manifest survives for the retry to skip
                    spec = self._spec(
                        policies=[
                            "lru",
                            {"key": "bad", "name": "fifo",
                             "kwargs": {"bogus": 1}},
                        ]
                    )
                    with ServiceClient(service_socket(tmp_path)) as client:
                        done, events = _submit_and_wait(client, spec)
                        fixed, _ = _submit_and_wait(
                            client,
                            self._spec(
                                policies=[
                                    "lru",
                                    {"key": "bad", "name": "fifo"},
                                ]
                            ),
                        )
                        return done, events, fixed

                return await asyncio.to_thread(client_side)
            finally:
                await service.stop()

        done, events, fixed = asyncio.run(scenario())
        assert done["state"] == "failed"
        assert done["error"]
        # the retry with the fixed spec skips lru's completed cell and
        # only re-runs the repaired one
        assert fixed["state"] == "done"
        assert fixed["skipped_cells"] == 1 and fixed["ran_cells"] == 1

    def test_stats_verb_reports_queue_jobs_and_latencies(self, tmp_path):
        from repro.obs.metrics import METRICS

        METRICS.reset()  # the registry is process-global; drop counts
        # accumulated by earlier in-process daemon tests

        async def scenario():
            service = SweepService(tmp_path, install_signal_handlers=False)
            await service.start()
            try:
                def client_side():
                    with ServiceClient(service_socket(tmp_path)) as client:
                        idle = client.stats()
                        _submit_and_wait(client, self._spec())
                        _submit_and_wait(client, self._spec())  # all-skip
                        busy = client.stats()
                        return idle, busy

                return await asyncio.to_thread(client_side)
            finally:
                await service.stop()

        idle, busy = asyncio.run(scenario())
        assert idle["ok"] and idle["queue_depth"] == 0
        assert idle["jobs_by_state"] == {}
        assert idle["running"] is None and idle["running_cell"] is None
        # after one real run + one fully resumed run
        assert busy["queue_depth"] == 0
        assert busy["jobs_by_state"] == {"done": 2}
        assert busy["running"] is None
        assert busy["skipped_cells_total"] == 2
        runtime = busy["percentiles"]["service.job_runtime_s"]
        assert runtime["count"] == 2
        assert runtime["p50"] is not None and runtime["p99"] is not None
        cell = busy["percentiles"]["grid.cell_runtime_s"]
        assert cell["count"] == 2  # two policies ran in the first job
        assert busy["metrics"]["counters"]["service.jobs_done"] == 2
        # the gauges reflect the state at scrape time
        assert busy["metrics"]["gauges"]["service.queue_depth"] == 0

    def test_jobs_listing_carries_queue_wait_and_runtime(self, tmp_path):
        async def scenario():
            service = SweepService(tmp_path, install_signal_handlers=False)
            await service.start()
            try:
                def client_side():
                    with ServiceClient(service_socket(tmp_path)) as client:
                        _submit_and_wait(client, self._spec())
                        return client.jobs()

                return await asyncio.to_thread(client_side)
            finally:
                await service.stop()

        jobs = asyncio.run(scenario())
        (job,) = jobs
        assert job["queue_wait_s"] is not None and job["queue_wait_s"] >= 0.0
        assert job["runtime_s"] is not None and job["runtime_s"] > 0.0


@pytest.mark.slow
class TestServiceProcess:
    """Black-box daemon lifecycle over a real subprocess: SIGTERM
    mid-sweep, restart, resume — the CI smoke scenario."""

    def _serve(self, root: Path) -> subprocess.Popen:
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--root", str(root)],
            env=env,
            stderr=subprocess.PIPE,
            cwd=REPO_ROOT,
        )
        deadline = time.monotonic() + 15
        sock = service_socket(root)
        while time.monotonic() < deadline and not sock.exists():
            time.sleep(0.1)
        assert sock.exists(), "daemon did not bind its socket"
        return proc

    def test_sigterm_restart_resume(self, tmp_path):
        spec = SweepSpec(
            benchmark="429.mcf",
            length=250_000,
            engine="reference",  # slow on purpose: survivable mid-kill
            policies=["lru", "fifo", "random", "srrip", "drrip", "pdp"],
            namespace="smoke",
        )
        proc = self._serve(tmp_path)
        try:
            with ServiceClient(service_socket(tmp_path)) as client:
                job = client.submit(spec.to_dict())
            # let some — but not all — cells complete, then kill
            ns = tmp_path / "namespaces" / "smoke"
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if len(list(ns.glob("*.json"))) >= 2:
                    break
                time.sleep(0.2)
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=15)
        finally:
            if proc.poll() is None:
                proc.kill()
        record = json.loads(
            (tmp_path / "jobs" / f"{job['job_id']}.json").read_text()
        )
        partial_cells = len(
            [m for m in scan_manifests(ns).manifests if m.kind == "llc"]
        )
        if record["state"] == "done":
            pytest.skip("machine too fast: sweep finished before SIGTERM")
        assert record["state"] == "queued" and record["interrupted"]
        assert 0 < partial_cells < len(spec.policies)

        proc = self._serve(tmp_path)
        try:
            with ServiceClient(service_socket(tmp_path), timeout=300) as client:
                responses = list(client.watch(job["job_id"]))
            done = responses[-1]["done"]
            assert done["state"] == "done"
            assert done["skipped_cells"] == partial_cells
            assert done["skipped_cells"] + done["ran_cells"] == len(spec.policies)
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()


class TestPredictTier:
    """The analytical fast-forward tier: predict specs, resume-skip,
    and auto-submitted follow-up simulation jobs."""

    def _spec(self, **overrides) -> SweepSpec:
        base = dict(
            kind="predict",
            benchmark="403.gcc",
            length=4000,
            namespace="t",
            explore_sets=[16, 32, 64],
            explore_ways=[2, 4],
            pd_max=64,
            pd_step=8,
        )
        base.update(overrides)
        return SweepSpec(**base)

    def test_spec_validation(self):
        self._spec().validate()
        with pytest.raises(SpecError, match="exactly one"):
            self._spec(benchmark=None).validate()
        with pytest.raises(SpecError, match="no policies"):
            self._spec(policies=["lru"]).validate()
        with pytest.raises(SpecError, match="powers of two"):
            self._spec(explore_sets=[48]).validate()
        with pytest.raises(SpecError, match="positive ints"):
            self._spec(explore_ways=[0]).validate()
        with pytest.raises(SpecError, match="top_k"):
            self._spec(top_k=-1).validate()
        # round-trips through the wire format
        SweepSpec.from_dict(self._spec().to_dict()).validate()

    def test_execute_predict_with_resume_and_followups(self, tmp_path):
        from repro.service.scheduler import execute_spec

        events: list = []
        spec = self._spec(top_k=2)
        first = execute_spec(spec, tmp_path, on_event=events.append)
        assert first["kind"] == "predict"
        assert first["ran_cells"] == 1 and first["skipped_cells"] == 0
        assert first["frontier"] and len(first["followups"]) == 2
        manifests = scan_manifests(tmp_path).manifests
        assert [m.kind for m in manifests] == ["explore"]

        # identical spec resumes from the manifest (no second profiling)
        second = execute_spec(
            SweepSpec.from_dict(spec.to_dict()), tmp_path, on_event=events.append
        )
        assert second["ran_cells"] == 0 and second["skipped_cells"] == 1
        assert second["frontier"] == first["frontier"]
        assert [e.kind for e in events] == ["started", "finished", "skipped"]

        # a different design space is a different cell: it re-runs
        third = execute_spec(self._spec(pd_step=16), tmp_path)
        assert third["ran_cells"] == 1

        # follow-ups are valid single-cell matrix specs pinned to the
        # predict pass's exact trace (same fingerprint after num_sets
        # changes geometry)
        followup = SweepSpec.from_dict(first["followups"][0])
        followup.validate()
        assert followup.kind == "matrix"
        assert followup.trace_num_sets == spec.num_sets
        assert followup.policies[0]["name"] == "pdp"
        assert followup.policies[0]["kwargs"]["bypass"] is True

    def test_daemon_runs_predict_and_auto_submits_followups(self, tmp_path):
        async def scenario():
            service = SweepService(tmp_path, install_signal_handlers=False)
            await service.start()
            try:
                def client_side():
                    with ServiceClient(service_socket(tmp_path)) as client:
                        done, events = _submit_and_wait(
                            client, self._spec(top_k=1)
                        )
                        deadline = time.monotonic() + 60
                        while time.monotonic() < deadline:
                            jobs = client.jobs()
                            if len(jobs) == 2 and all(
                                j["state"] == "done" for j in jobs
                            ):
                                break
                            time.sleep(0.05)
                        return done, events, client.jobs()

                return await asyncio.to_thread(client_side)
            finally:
                await service.stop()

        done, events, jobs = asyncio.run(scenario())
        assert done["state"] == "done"
        followup_events = [e for e in events if e["kind"] == "followup"]
        assert len(followup_events) == 1
        assert len(jobs) == 2 and all(j["state"] == "done" for j in jobs)
        child = next(
            j for j in jobs if j["job_id"] == followup_events[0]["job_id"]
        )
        assert child["spec"]["kind"] == "matrix"
        manifests = scan_manifests(tmp_path / "namespaces" / "t").manifests
        kinds = sorted(m.kind for m in manifests)
        assert "explore" in kinds and "llc" in kinds
        explore_manifest = next(m for m in manifests if m.kind == "explore")
        llc = next(m for m in manifests if m.kind == "llc")
        # the join key of the prediction-error report holds end to end
        assert llc.trace_fingerprint == explore_manifest.trace_fingerprint
