"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hit_rate_model import evaluate_e_curve, find_best_pd
from repro.core.pdp_policy import PDPPolicy
from repro.core.rdd import RDCounterArray
from repro.core.sampler import RDSampler
from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.policies.belady import BeladyPolicy
from repro.policies.lip_bip_dip import DIPPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.rrip import DRRIPPolicy
from repro.traces.analysis import reuse_distances, stack_distances
from repro.types import Access

address_lists = st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=300)


@given(address_lists)
@settings(max_examples=50, deadline=None)
def test_no_duplicate_tags_any_policy(addresses):
    """No policy sequence can create duplicate tags within a set."""
    cache = SetAssociativeCache(CacheGeometry(4, 4), LRUPolicy())
    for address in addresses:
        cache.access(Access(address))
        for set_index in range(4):
            resident = cache.resident_addresses(set_index)
            assert len(resident) == len(set(resident))


@given(address_lists)
@settings(max_examples=50, deadline=None)
def test_hits_plus_misses_equals_accesses(addresses):
    for policy in (LRUPolicy(), DIPPolicy(), DRRIPPolicy()):
        cache = SetAssociativeCache(CacheGeometry(2, 4), policy)
        for address in addresses:
            cache.access(Access(address))
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses
        assert stats.fills + stats.bypasses == stats.misses


@given(address_lists)
@settings(max_examples=40, deadline=None)
def test_belady_dominates_lru(addresses):
    """OPT's hit count is an upper bound for LRU's on any trace."""
    lru = SetAssociativeCache(CacheGeometry(2, 2), LRUPolicy())
    opt = SetAssociativeCache(CacheGeometry(2, 2), BeladyPolicy(addresses))
    for address in addresses:
        lru.access(Access(address))
        opt.access(Access(address))
    assert opt.stats.hits >= lru.stats.hits


@given(address_lists)
@settings(max_examples=40, deadline=None)
def test_lru_inclusion_property(addresses):
    """LRU hit counts are monotone in associativity (stack property)."""
    hit_counts = []
    for ways in (1, 2, 4, 8):
        cache = SetAssociativeCache(CacheGeometry(1, ways), LRUPolicy())
        for address in addresses:
            cache.access(Access(address))
        hit_counts.append(cache.stats.hits)
    assert all(hit_counts[i] <= hit_counts[i + 1] for i in range(3))


@given(address_lists)
@settings(max_examples=40, deadline=None)
def test_stack_distance_never_exceeds_reuse_distance(addresses):
    """Unique-line distance is bounded by access-based distance - 1."""
    reuse = reuse_distances(addresses)
    stack = stack_distances(addresses)
    assert len(reuse) == len(stack)
    for access_based, unique_based in zip(reuse, stack):
        assert unique_based <= access_based - 1


@given(address_lists)
@settings(max_examples=40, deadline=None)
def test_full_sampler_matches_offline_analysis(addresses):
    """The Full RD sampler reproduces offline reuse distances exactly."""
    measured = []
    sampler = RDSampler.full(1, d_max=512, on_distance=measured.append)
    for address in addresses:
        sampler.observe(0, address)
    exact = [d for d in reuse_distances(addresses) if d <= 512]
    assert measured == exact


@given(
    st.lists(st.integers(min_value=0, max_value=1000), min_size=4, max_size=64),
    st.integers(min_value=0, max_value=100_000),
)
@settings(max_examples=60, deadline=None)
def test_best_pd_is_argmax_of_curve(counts, extra):
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum()) + extra
    points = evaluate_e_curve(counts, total, step=4, d_e=16.0)
    best = find_best_pd(counts, total, step=4, d_e=16.0, default_pd=4)
    best_value = max(point.e_value for point in points)
    chosen = next(point for point in points if point.pd == best)
    assert chosen.e_value == best_value


@given(
    st.lists(st.integers(min_value=1, max_value=256), min_size=1, max_size=500),
    st.sampled_from([1, 2, 4, 8]),
)
@settings(max_examples=40, deadline=None)
def test_counter_array_conserves_mass(distances, step):
    array = RDCounterArray(d_max=256, step=step)
    for distance in distances:
        array.record_access()
        array.record_distance(distance)
    if not array.frozen:
        assert array.reuse_count == len(distances)
        assert array.long_count == 0


@given(address_lists, st.integers(min_value=1, max_value=64))
@settings(max_examples=40, deadline=None)
def test_pdp_bypass_never_loses_protected_lines(addresses, pd):
    """Under bypass, a line is only ever evicted once unprotected."""
    policy = PDPPolicy(static_pd=pd, bypass=True)
    cache = SetAssociativeCache(CacheGeometry(2, 4), policy)
    for address in addresses:
        rpds = {
            (s, w): policy.rpd_of(s, w) for s in range(2) for w in range(4)
        }
        result = cache.access(Access(address))
        if result.evicted is not None:
            set_index = cache.geometry.set_index(address)
            # The victim's RPD (after the access's own decrement) was 0.
            assert max(0, rpds[(set_index, result.way)] - 1) == 0


@given(address_lists)
@settings(max_examples=30, deadline=None)
def test_deterministic_replay(addresses):
    """Two identical runs of any seeded policy give identical stats."""
    outcomes = []
    for _ in range(2):
        cache = SetAssociativeCache(CacheGeometry(2, 4), DRRIPPolicy(seed=5))
        for address in addresses:
            cache.access(Access(address))
        outcomes.append((cache.stats.hits, cache.stats.misses))
    assert outcomes[0] == outcomes[1]


@given(
    st.lists(st.integers(min_value=0, max_value=500), min_size=8, max_size=64),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_hardware_search_matches_replica(counts, extra):
    from repro.hardware.pd_processor import pd_search_integer, run_pd_search

    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum()) + extra
    hw, _ = run_pd_search(counts, total, step=4, d_e=16)
    assert hw == pd_search_integer(counts, total, step=4, d_e=16)
