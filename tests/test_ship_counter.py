"""Tests for SHiP and the counter-based expiration policy (Sec. 7 baselines)."""

import random

from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.policies.counter_based import CounterBasedPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.rrip import SRRIPPolicy
from repro.policies.ship import SHiPPolicy
from repro.types import Access


def run(policy, accesses, num_sets=1, ways=4):
    cache = SetAssociativeCache(CacheGeometry(num_sets, ways), policy)
    for access in accesses:
        cache.access(access if isinstance(access, Access) else Access(int(access)))
    return cache


def mixed_stream(length, num_sets=1, hot_pc=0x100, stream_pc=0x200, hot_blocks=2):
    """Hot blocks re-referenced by one PC; a one-use stream by another."""
    accesses = []
    fresh = 1000
    for index in range(length):
        if index % 2 == 0:
            accesses.append(
                Access((index // 2 % hot_blocks) * num_sets, pc=hot_pc)
            )
        else:
            accesses.append(Access(fresh * num_sets, pc=stream_pc))
            fresh += 1
    return accesses


class TestSHiP:
    def test_signature_folding_bounded(self):
        policy = SHiPPolicy(signature_bits=8)
        for pc in (0, 0xDEADBEEF, 1 << 40):
            assert 0 <= policy.signature_of(pc) < 256

    def test_streaming_signature_trains_to_zero(self):
        policy = SHiPPolicy()
        run(policy, mixed_stream(3000))
        assert policy.shct[policy.signature_of(0x200)] == 0
        assert policy.shct[policy.signature_of(0x100)] > 0

    def test_streaming_fills_insert_distant(self):
        policy = SHiPPolicy()
        cache = run(policy, mixed_stream(3000))
        # After training, a new stream fill must carry RRPV max.
        result = cache.access(Access(999_999, pc=0x200))
        assert policy._rrpv[0][result.way] == policy.rrpv_max

    def test_outcome_bit_counted_once(self):
        policy = SHiPPolicy()
        cache = run(policy, [Access(0, pc=0x300)])
        signature = policy.signature_of(0x300)
        before = policy.shct[signature]
        cache.access(Access(0, pc=0x300))
        cache.access(Access(0, pc=0x300))  # second hit must not re-train
        assert policy.shct[signature] == before + 1

    def test_beats_srrip_on_pc_separable_mix(self):
        """SHiP's whole point: stream lines stop displacing the hot set."""
        accesses = mixed_stream(6000, hot_blocks=3)
        ship = run(SHiPPolicy(), accesses)
        srrip = run(SRRIPPolicy(), accesses)
        assert ship.stats.hits >= srrip.stats.hits

    def test_registered(self):
        from repro.policies.base import make_policy

        assert isinstance(make_policy("ship"), SHiPPolicy)


class TestCounterBased:
    def test_intervals_reset_on_touch(self):
        policy = CounterBasedPolicy()
        cache = run(policy, [Access(0), Access(1), Access(0)])
        assert policy._interval[0][cache.lookup(0)] == 0

    def test_threshold_learns_reuse_interval(self):
        policy = CounterBasedPolicy()
        cache = SetAssociativeCache(CacheGeometry(1, 4), policy)
        pc = 0x40
        cls = policy.classify(pc)
        # Re-reference at interval 3, repeatedly.
        for _ in range(20):
            cache.access(Access(0, pc=pc))
            cache.access(Access(1, pc=pc))
            cache.access(Access(2, pc=pc))
        assert policy.thresholds[cls] <= 16

    def test_expired_line_preferred_victim(self):
        policy = CounterBasedPolicy(slack=1.0)
        cache = SetAssociativeCache(CacheGeometry(1, 2), policy)
        pc = 0x44
        policy.thresholds[policy.classify(pc)] = 2
        cache.access(Access(0, pc=pc))
        cache.access(Access(1, pc=pc))
        cache.access(Access(1, pc=pc))
        cache.access(Access(1, pc=pc))  # block 0's interval now > 2
        result = cache.access(Access(2, pc=pc))
        assert result.evicted == 0

    def test_falls_back_to_lru_without_expiry(self):
        policy = CounterBasedPolicy()
        cache = run(policy, [Access(a) for a in (0, 1, 2, 3, 0, 4)])
        # No class has a learned short threshold yet: LRU victim is 1.
        assert cache.lookup(1) is None

    def test_eviction_shrinks_overgrown_threshold(self):
        policy = CounterBasedPolicy()
        cls = policy.classify(0x80)
        before = policy.thresholds[cls]
        cache = SetAssociativeCache(CacheGeometry(1, 1), policy)
        cache.access(Access(0, pc=0x80))
        cache.access(Access(1, pc=0x80))  # evicts 0 at interval 1
        assert policy.thresholds[cls] < before

    def test_competitive_with_lru_on_random_traffic(self):
        rng = random.Random(4)
        accesses = [Access(rng.randrange(10), pc=0x10) for _ in range(2000)]
        counter = run(CounterBasedPolicy(), accesses)
        lru = run(LRUPolicy(), accesses)
        assert counter.stats.hits >= 0.9 * lru.stats.hits

    def test_registered(self):
        from repro.policies.base import make_policy

        assert isinstance(make_policy("counter-based"), CounterBasedPolicy)
