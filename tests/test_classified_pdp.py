"""Tests for the Sec. 6.3 extensions: insertion-PD and classified PDP."""

import pytest

from repro.core.classified_pdp import ClassifiedPDPPolicy
from repro.core.pdp_policy import PDPPolicy
from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.sim.single_core import run_llc
from repro.types import Access
from repro.workloads.spec_like import make_benchmark_trace

GEOMETRY = CacheGeometry(64, 16)


class TestInsertionPD:
    def test_inserted_lines_barely_protected(self):
        policy = PDPPolicy(static_pd=100, bypass=True, insertion_pd=1)
        cache = SetAssociativeCache(CacheGeometry(1, 4), policy)
        cache.access(Access(0))
        assert policy.rpd_of(0, 0) == 1

    def test_promotion_restores_full_pd(self):
        policy = PDPPolicy(static_pd=100, bypass=True, insertion_pd=1)
        cache = SetAssociativeCache(CacheGeometry(1, 4), policy)
        cache.access(Access(0))
        cache.access(Access(0))
        assert policy.rpd_of(0, cache.lookup(0)) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            PDPPolicy(static_pd=10, insertion_pd=0)

    def test_helps_on_chained_reuse_with_dead_streams(self):
        """Sec. 6.3: a small insertion PD beats the full PD when hits come
        via promotion chains and most insertions are dead on arrival."""
        from repro.workloads.base import RDDProfile, band, fresh
        from repro.workloads.synthetic import RDDProfileGenerator

        profile = RDDProfile(
            name="chain",
            components=(
                band(1, 2, 0.25, pc_group=1),  # immediate first reuse
                band(30, 50, 0.20, pc_group=1),  # later reuse via promotion
                fresh(0.55, pc_pool=2),  # dead-on-arrival stream
            ),
        )
        trace = RDDProfileGenerator(profile, num_sets=64, seed=5).generate(30_000)
        plain = run_llc(trace, PDPPolicy(recompute_interval=4096), GEOMETRY)
        variant = run_llc(
            trace,
            PDPPolicy(recompute_interval=4096, insertion_pd=4),
            GEOMETRY,
        )
        assert variant.misses < plain.misses


class TestClassifiedPDP:
    def test_num_classes_validation(self):
        with pytest.raises(ValueError):
            ClassifiedPDPPolicy(num_classes=3)

    def test_classify_stable_and_bounded(self):
        policy = ClassifiedPDPPolicy(num_classes=4)
        for pc in (0, 0x400123, 0xFFFF_FFFF):
            cls = policy.classify(pc)
            assert 0 <= cls < 4
            assert cls == policy.classify(pc)

    def test_per_class_pds_diverge(self):
        """Two PC classes with different reuse distances get different PDs."""
        policy = ClassifiedPDPPolicy(
            num_classes=2, recompute_interval=3000, sampler_mode="full", step=4
        )
        cache = SetAssociativeCache(CacheGeometry(1, 16), policy)
        # Find PCs landing in class 0 and class 1.
        pc_a = next(pc for pc in range(64, 4096, 4) if policy.classify(pc) == 0)
        pc_b = next(pc for pc in range(64, 4096, 4) if policy.classify(pc) == 1)
        # Class A: loop of 12 blocks (RD 24); class B: loop of 60 (RD 120).
        for index in range(6000):
            if index % 2 == 0:
                cache.access(Access((index // 2) % 12, pc=pc_a))
            else:
                cache.access(Access(1000 + (index // 2) % 60, pc=pc_b))
        pd_a = policy.class_pds[0]
        pd_b = policy.class_pds[1]
        assert pd_a < pd_b
        assert 20 <= pd_a <= 40
        assert 100 <= pd_b <= 140

    def test_runs_on_benchmark_and_is_competitive(self):
        trace = make_benchmark_trace("437.leslie3d", length=25_000, num_sets=64)
        plain = run_llc(trace, PDPPolicy(recompute_interval=4096), GEOMETRY)
        classified = run_llc(
            trace,
            ClassifiedPDPPolicy(recompute_interval=4096, sampler_mode="full"),
            GEOMETRY,
        )
        # The class-based variant must at least be in the same league.
        assert classified.misses <= plain.misses * 1.10

    def test_bypass_behaviour(self):
        policy = ClassifiedPDPPolicy(num_classes=2, recompute_interval=10**9)
        cache = SetAssociativeCache(CacheGeometry(1, 2), policy)
        policy.class_pds = [200, 200]
        cache.access(Access(0))
        cache.access(Access(1))
        assert cache.access(Access(2)).bypassed

    def test_history_records_vectors(self):
        policy = ClassifiedPDPPolicy(
            num_classes=2, recompute_interval=500, sampler_mode="full"
        )
        cache = SetAssociativeCache(CacheGeometry(4, 4), policy)
        for index in range(1200):
            cache.access(Access(index % 30, pc=index % 8 * 4))
        assert len(policy.pd_history) >= 3
