"""End-to-end integration tests asserting the paper's qualitative shapes.

These use small traces (fast) — the full-size reproductions live in
``benchmarks/``; here we pin the load-bearing behaviours so refactors
cannot silently break them.
"""

import pytest

from repro.core.pdp_policy import PDPPolicy
from repro.memory.cache import CacheGeometry
from repro.policies import (
    BeladyPolicy,
    DIPPolicy,
    DRRIPPolicy,
    LRUPolicy,
    SDPPolicy,
)
from repro.sim.runner import best_static_pd, sweep_static_pd
from repro.sim.single_core import run_llc
from repro.workloads.spec_like import make_benchmark_trace

GEOMETRY = CacheGeometry(64, 16)
LENGTH = 25_000


def trace_for(name, seed=None):
    return make_benchmark_trace(name, length=LENGTH, num_sets=64, seed=seed)


class TestSingleCoreShapes:
    def test_pdp_beats_dip_on_protection_friendly_profile(self):
        """cactusADM's beyond-W peak is PDP's home turf (Sec. 2.3)."""
        trace = trace_for("436.cactusADM")
        dip = run_llc(trace, DIPPolicy(), GEOMETRY)
        pdp = run_llc(trace, PDPPolicy(recompute_interval=4096), GEOMETRY)
        assert pdp.misses < dip.misses

    def test_dynamic_pd_covers_cactus_peak(self):
        trace = trace_for("436.cactusADM")
        pdp = PDPPolicy(recompute_interval=4096)
        run_llc(trace, pdp, GEOMETRY)
        assert 64 <= pdp.current_pd <= 96  # profile peak is 64-80

    def test_dynamic_close_to_static_best(self):
        """The dynamic PDP approaches the static sweep's optimum."""
        trace = trace_for("450.soplex")
        _, static_best = best_static_pd(
            trace, GEOMETRY, range(16, 257, 16), bypass=True
        )
        dynamic = run_llc(trace, PDPPolicy(recompute_interval=4096), GEOMETRY)
        assert dynamic.misses <= static_best.misses * 1.05

    def test_bypass_helps_on_h264ref_profile(self):
        """SPDP-B >= SPDP-NB on the bypass-heavy profile (Fig. 4)."""
        trace = trace_for("464.h264ref")
        grid = range(16, 257, 32)
        _, nb = best_static_pd(trace, GEOMETRY, grid, bypass=False)
        _, b = best_static_pd(trace, GEOMETRY, grid, bypass=True)
        assert b.misses <= nb.misses
        assert b.bypass_fraction > 0.3

    def test_streaming_profile_pd_hits_dmax(self):
        """libquantum's reuse sits at d_max; the PD must go there."""
        trace = trace_for("462.libquantum")
        pdp = PDPPolicy(recompute_interval=4096)
        run_llc(trace, pdp, GEOMETRY)
        assert pdp.current_pd >= 240

    def test_lru_friendly_profile_pd_stays_small(self):
        trace = trace_for("473.astar")
        pdp = PDPPolicy(recompute_interval=4096)
        run_llc(trace, pdp, GEOMETRY)
        assert pdp.current_pd <= 32

    def test_belady_upper_bounds_pdp(self):
        trace = trace_for("403.gcc")
        opt = run_llc(trace, BeladyPolicy(trace.addresses, bypass=True), GEOMETRY)
        pdp = run_llc(trace, PDPPolicy(recompute_interval=4096), GEOMETRY)
        assert opt.hits >= pdp.hits

    def test_sdp_beats_dip_where_pcs_informative(self):
        """leslie3d's PC-block correlation is SDP's favourable case."""
        trace = trace_for("437.leslie3d")
        dip = run_llc(trace, DIPPolicy(), GEOMETRY)
        sdp = run_llc(trace, SDPPolicy(), GEOMETRY)
        assert sdp.misses <= dip.misses * 1.01

    def test_sdp_loses_where_pcs_mislead(self):
        """h264ref shares PCs across live and dead blocks (Sec. 6.2)."""
        trace = trace_for("464.h264ref")
        dip = run_llc(trace, DIPPolicy(), GEOMETRY)
        sdp = run_llc(trace, SDPPolicy(), GEOMETRY)
        pdp = run_llc(trace, PDPPolicy(recompute_interval=4096), GEOMETRY)
        assert sdp.misses >= dip.misses
        assert pdp.misses < sdp.misses

    def test_static_pd_optimum_is_interior_for_peaked_profiles(self):
        """Misses vs PD is not monotone: protecting too long pollutes."""
        trace = trace_for("436.cactusADM")
        runs = sweep_static_pd(trace, GEOMETRY, [16, 80, 256], bypass=True)
        assert runs[80].misses < runs[16].misses
        assert runs[80].misses < runs[256].misses


class TestMultiCoreShapes:
    def test_pd_partition_beats_ta_drrip_on_mixed_load(self):
        from repro.partitioning.pd_partition import PDPartitionPolicy
        from repro.policies.ta_drrip import TADRRIPPolicy
        from repro.sim.multi_core import run_shared_llc, single_thread_baselines

        mix = ("450.soplex", "433.milc", "464.h264ref", "470.lbm")
        geometry = CacheGeometry(64, 16)
        traces = [
            make_benchmark_trace(name, length=15_000, num_sets=64, seed=50 + i)
            for i, name in enumerate(mix)
        ]
        singles = single_thread_baselines(traces, geometry)
        base = run_shared_llc(
            traces, TADRRIPPolicy(num_threads=4), geometry, singles=singles
        )
        pdp = run_shared_llc(
            traces,
            PDPartitionPolicy(
                num_threads=4, recompute_interval=8192, sampler_mode="full"
            ),
            geometry,
            singles=singles,
        )
        assert pdp.weighted >= base.weighted * 0.995

    def test_streaming_thread_gets_short_pd(self):
        from repro.partitioning.pd_partition import PDPartitionPolicy
        from repro.sim.multi_core import run_shared_llc

        mix = ("436.cactusADM", "433.milc")
        geometry = CacheGeometry(32, 16)
        traces = [
            make_benchmark_trace(name, length=15_000, num_sets=32, seed=9 + i)
            for i, name in enumerate(mix)
        ]
        policy = PDPartitionPolicy(
            num_threads=2, recompute_interval=8192, sampler_mode="full"
        )
        run_shared_llc(traces, policy, geometry)
        cactus_pd, milc_pd = policy.pd_vector
        assert milc_pd <= cactus_pd


class TestPhaseShapes:
    def test_pd_moves_across_phases(self):
        from repro.workloads.phased import phase_changing_profiles

        workload = phase_changing_profiles(phase_length=8000)["483.xalancbmk"]
        trace = workload.generate(num_sets=64)
        policy = PDPPolicy(recompute_interval=2048)
        run_llc(trace, policy, GEOMETRY)
        pds = {pd for _, pd in policy.engine.pd_history}
        assert len(pds) > 1
