"""Tests for Belady's offline OPT policy."""

import random

import pytest

from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.policies.belady import BeladyPolicy
from repro.policies.fifo import FIFOPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.random_ import RandomPolicy
from repro.types import Access


def run(policy, addresses, num_sets=1, ways=4):
    cache = SetAssociativeCache(CacheGeometry(num_sets, ways), policy)
    for address in addresses:
        cache.access(Access(int(address)))
    return cache


class TestBelady:
    def test_textbook_example(self):
        # Classic OPT example: evict the block used farthest in future.
        addresses = [0, 1, 2, 0, 1, 3, 0, 1, 2, 3]
        cache = run(BeladyPolicy(addresses), addresses, ways=3)
        # OPT on this sequence: misses at 0,1,2 (cold), 3, 2 -> 5 misses.
        assert cache.stats.misses == 5

    def test_never_worse_than_online_policies(self):
        rng = random.Random(42)
        addresses = [rng.randrange(20) for _ in range(800)]
        opt_hits = run(BeladyPolicy(addresses), addresses).stats.hits
        for online in (LRUPolicy(), FIFOPolicy(), RandomPolicy(seed=1)):
            assert opt_hits >= run(online, addresses).stats.hits

    def test_bypass_variant_at_least_as_good(self):
        rng = random.Random(7)
        addresses = [rng.randrange(25) for _ in range(800)]
        plain = run(BeladyPolicy(addresses), addresses).stats.hits
        bypass = run(BeladyPolicy(addresses, bypass=True), addresses).stats.hits
        assert bypass >= plain

    def test_bypass_skips_never_reused_blocks(self):
        # Stream of unique blocks after a warm working set: OPT-bypass
        # never evicts the working set for them.
        working = [0, 1, 2, 3] * 5
        stream = list(range(100, 150))
        addresses = working + stream + [0, 1, 2, 3]
        cache = run(BeladyPolicy(addresses, bypass=True), addresses)
        assert cache.stats.bypasses == len(stream)
        # Final working-set probe all hit.
        assert cache.stats.hits == 16 + 4

    def test_raises_past_end_of_trace(self):
        policy = BeladyPolicy([1, 2])
        cache = SetAssociativeCache(CacheGeometry(1, 2), policy)
        cache.access(Access(1))
        cache.access(Access(2))
        with pytest.raises(RuntimeError):
            cache.access(Access(3))

    def test_multi_set(self):
        rng = random.Random(3)
        addresses = [rng.randrange(64) for _ in range(600)]
        opt = run(BeladyPolicy(addresses), addresses, num_sets=4)
        lru = run(LRUPolicy(), addresses, num_sets=4)
        assert opt.stats.hits >= lru.stats.hits
