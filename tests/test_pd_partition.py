"""Tests for the PD-based shared-cache partitioning policy (Sec. 4)."""

import random

from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.partitioning.pd_partition import PDPartitionPolicy
from repro.types import Access


def drive_two_threads(policy, rounds, geometry=None, reuse_gap=20):
    """Thread 0 loops a small set; thread 1 streams fresh blocks."""
    geometry = geometry or CacheGeometry(16, 16)
    cache = SetAssociativeCache(geometry, policy)
    fresh = 1 << 20
    for index in range(rounds):
        if index % 2 == 0:
            address = (index // 2 % reuse_gap) * geometry.num_sets
            cache.access(Access(address, thread_id=0))
        else:
            cache.access(Access(fresh * geometry.num_sets, thread_id=1))
            fresh += 1
    return cache


class TestPDPartition:
    def test_initial_vector_is_associativity(self):
        policy = PDPartitionPolicy(num_threads=2)
        SetAssociativeCache(CacheGeometry(16, 16), policy)
        assert policy.pd_vector == [16, 16]

    def test_recompute_updates_vector_and_history(self):
        policy = PDPartitionPolicy(
            num_threads=2, recompute_interval=2000, sampler_mode="full", step=4
        )
        drive_two_threads(policy, 6000)
        assert len(policy.vector_history) >= 2

    def test_reusing_thread_gets_protecting_distance(self):
        """Thread 0's reuse peak is covered; streaming thread 1 is not."""
        policy = PDPartitionPolicy(
            num_threads=2, recompute_interval=4000, sampler_mode="full", step=4
        )
        drive_two_threads(policy, 12_000, reuse_gap=10)
        # Thread 0 reuses every 10 of its own accesses = 20 set accesses
        # interleaved; its PD should cover roughly that distance.
        pd0, pd1 = policy.pd_vector
        assert pd0 >= 16
        assert pd1 <= pd0

    def test_per_thread_insertion_rpd(self):
        policy = PDPartitionPolicy(num_threads=2, recompute_interval=10**9)
        cache = SetAssociativeCache(CacheGeometry(4, 4), policy)
        policy.pd_vector = [64, 4]
        way0 = cache.access(Access(0, thread_id=0)).way
        way1 = cache.access(Access(4, thread_id=1)).way
        assert policy._rpd[0][way0] > policy._rpd[0][way1]

    def test_bypass_when_all_protected(self):
        policy = PDPartitionPolicy(num_threads=1, recompute_interval=10**9)
        cache = SetAssociativeCache(CacheGeometry(1, 2), policy)
        policy.pd_vector = [200]
        cache.access(Access(0))
        cache.access(Access(1))
        assert cache.access(Access(2)).bypassed

    def test_no_bypass_variant_evicts(self):
        policy = PDPartitionPolicy(
            num_threads=1, recompute_interval=10**9, bypass=False
        )
        cache = SetAssociativeCache(CacheGeometry(1, 2), policy)
        policy.pd_vector = [200]
        cache.access(Access(0))
        cache.access(Access(1))
        result = cache.access(Access(2))
        assert not result.bypassed
        assert result.evicted is not None

    def test_counter_arrays_reset_after_recompute(self):
        policy = PDPartitionPolicy(
            num_threads=2, recompute_interval=500, sampler_mode="full"
        )
        drive_two_threads(policy, 600)
        assert all(array.total < 500 for array in policy.counter_arrays)

    def test_protects_reuser_against_streamer(self):
        """End-to-end: thread 0's hit rate stays high under streaming."""
        policy = PDPartitionPolicy(
            num_threads=2, recompute_interval=2000, sampler_mode="full", step=4
        )
        cache = drive_two_threads(policy, 16_000, reuse_gap=8)
        # Thread-0 accesses: 8 distinct blocks cycled -> per-set reuse
        # distance 16 (interleaved with the streamer); should mostly hit.
        # Identify hits indirectly: total hits must be well above zero and
        # owned by thread 0 lines.
        assert cache.stats.hits > 4000
