"""Tests for the E(d_p) hit-rate model (Eq. 1)."""

import numpy as np
import pytest

from repro.core.hit_rate_model import (
    HitRateModel,
    evaluate_e_curve,
    find_best_pd,
    find_peaks,
)
from repro.core.rdd import RDCounterArray


def brute_force_e(counts, total, pd, step, d_e):
    """Direct evaluation of Eq. 1 at one candidate d_p."""
    hits = 0.0
    occupancy = 0.0
    for index, count in enumerate(counts):
        upper = (index + 1) * step
        if upper > pd:
            break
        hits += count
        occupancy += count * (index * step + (step + 1) / 2)
    long_lines = total - hits
    denominator = occupancy + long_lines * (pd + d_e)
    return hits / denominator if denominator else 0.0


class TestECurve:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(1)
        counts = rng.integers(0, 100, size=32)
        total = int(counts.sum()) + 500
        points = evaluate_e_curve(counts, total, step=4, d_e=16.0)
        for point in points:
            expected = brute_force_e(counts, total, point.pd, 4, 16.0)
            assert point.e_value == pytest.approx(expected)

    def test_one_point_per_bin(self):
        counts = np.zeros(10, dtype=np.int64)
        points = evaluate_e_curve(counts, 0, step=2)
        assert [p.pd for p in points] == [2, 4, 6, 8, 10, 12, 14, 16, 18, 20]

    def test_min_pd_filters(self):
        counts = np.zeros(10, dtype=np.int64)
        points = evaluate_e_curve(counts, 0, step=2, min_pd=9)
        assert points[0].pd == 10

    def test_empty_rdd_gives_zero(self):
        points = evaluate_e_curve(np.zeros(4, dtype=np.int64), 0, step=1)
        assert all(p.e_value == 0.0 for p in points)


class TestBestPD:
    def test_single_peak_rdd(self):
        """The best PD covers a dominant peak, not more."""
        counts = np.zeros(64, dtype=np.int64)
        counts[17] = 1000  # distances 69-72 with step 4
        total = 2000
        pd = find_best_pd(counts, total, step=4, d_e=16.0)
        assert pd == 72

    def test_two_peaks_picks_higher_value(self):
        """A near peak with enough mass wins over protecting both."""
        counts = np.zeros(64, dtype=np.int64)
        counts[1] = 900  # near reuse (distances 5-8)
        counts[60] = 50  # tiny far peak
        pd = find_best_pd(counts, 1000, step=4, d_e=16.0)
        assert pd == 8

    def test_far_mass_extends_pd(self):
        """When far reuse dominates, protecting to it wins."""
        counts = np.zeros(64, dtype=np.int64)
        counts[1] = 100
        counts[60] = 2000
        pd = find_best_pd(counts, 2500, step=4, d_e=16.0)
        assert pd == 244

    def test_default_on_empty(self):
        counts = np.zeros(8, dtype=np.int64)
        assert find_best_pd(counts, 0, step=4, default_pd=16) == 16

    def test_raises_on_no_candidates(self):
        with pytest.raises(ValueError):
            find_best_pd(np.array([], dtype=np.int64), 0, step=4)

    def test_min_pd_respected(self):
        counts = np.zeros(64, dtype=np.int64)
        counts[0] = 1000
        pd = find_best_pd(counts, 1100, step=4, min_pd=16)
        assert pd >= 16


class TestPeaks:
    def test_finds_local_maxima(self):
        counts = np.zeros(64, dtype=np.int64)
        counts[5] = 500
        counts[40] = 400
        peaks = find_peaks(counts, 1500, step=4, d_e=16.0, max_peaks=3)
        pds = {p.pd for p in peaks}
        assert 24 in pds  # bin 5 boundary
        assert len(peaks) <= 3

    def test_strongest_first(self):
        counts = np.zeros(64, dtype=np.int64)
        counts[5] = 500
        counts[40] = 100
        peaks = find_peaks(counts, 1000, step=4, d_e=16.0)
        assert peaks[0].e_value >= peaks[-1].e_value

    def test_monotone_curve_returns_global_max(self):
        counts = np.ones(16, dtype=np.int64) * 10
        peaks = find_peaks(counts, 160, step=4, d_e=16.0)
        assert peaks


class TestHitRateModelWrapper:
    def test_bound_to_counter_array(self):
        array = RDCounterArray(d_max=64, step=4)
        for _ in range(500):
            array.record_distance(30)
            array.record_access()
        model = HitRateModel(array, associativity=16)
        assert model.best_pd() == 32
        curve = model.curve()
        assert len(curve) == 16

    def test_d_e_defaults_to_associativity(self):
        array = RDCounterArray(d_max=16, step=4)
        model = HitRateModel(array, associativity=8)
        assert model.d_e == 8.0


class TestModelTracksSimulatedHitRate:
    def test_e_correlates_with_spdp_hit_rate(self):
        """Fig. 6: E(d_p) approximates the actual SPDP-B hit-rate curve.

        Correlation over a static-PD sweep must be strongly positive.
        """
        from repro.memory.cache import CacheGeometry
        from repro.sim.runner import sweep_static_pd
        from repro.traces.analysis import reuse_distance_distribution
        from repro.workloads.spec_like import make_benchmark_trace

        trace = make_benchmark_trace("436.cactusADM", length=12_000, num_sets=16)
        counts, _, total = reuse_distance_distribution(trace, num_sets=16, d_max=256)
        pds = list(range(16, 257, 16))
        results = sweep_static_pd(trace, CacheGeometry(16, 16), pds)
        binned = np.array([counts[1:].copy()]).ravel()  # step=1 counts
        e_values = []
        hit_rates = []
        for pd in pds:
            e_values.append(
                brute_force_e(binned, total, pd, 1, 16.0)
            )
            hit_rates.append(results[pd].hit_rate)
        correlation = np.corrcoef(e_values, hit_rates)[0, 1]
        assert correlation > 0.7


class TestModelProperties:
    """Property-based invariants of the E(d_p) model family (hypothesis)."""

    @staticmethod
    def _rdds():
        from hypothesis import strategies as st

        return st.lists(st.integers(min_value=0, max_value=5_000), min_size=1, max_size=48)

    def test_e_values_bounded(self):
        """E in [0, 1]: it is hits per slot-time unit, never negative
        and never more than one hit per set access."""
        from hypothesis import given, settings

        @settings(max_examples=200, deadline=None)
        @given(counts=self._rdds(), extra=st_integers_small())
        def check(counts, extra):
            from repro.core.hit_rate_model import evaluate_e_curve

            array = np.asarray(counts, dtype=np.int64)
            total = int(array.sum()) + extra
            for point in evaluate_e_curve(array, total, step=2, d_e=8.0):
                assert 0.0 <= point.e_value <= 1.0

        check()

    def test_predicted_hit_rate_monotone_in_ways(self):
        """At fixed (RDD, d_p), more ways never predicts fewer hits:
        h(W) = W*A / (B + C*(pd + W)) has nonnegative derivative."""
        from hypothesis import given, settings

        @settings(max_examples=200, deadline=None)
        @given(counts=self._rdds(), extra=st_integers_small(), pd=st_pds())
        def check(counts, extra, pd):
            from repro.core.hit_rate_model import predicted_hit_rate

            array = np.asarray(counts, dtype=np.int64)
            total = int(array.sum()) + extra
            rates = [
                predicted_hit_rate(array, total, ways, pd, step=2)
                for ways in (1, 2, 4, 8, 16, 32)
            ]
            for lower, higher in zip(rates, rates[1:]):
                assert higher >= lower - 1e-12
            assert all(0.0 <= rate <= 1.0 for rate in rates)

        check()

    def test_find_best_pd_returns_grid_point(self):
        """The argmax is always one of the candidate bin boundaries."""
        from hypothesis import given, settings

        @settings(max_examples=200, deadline=None)
        @given(counts=self._rdds(), extra=st_integers_small())
        def check(counts, extra):
            from repro.core.hit_rate_model import find_best_pd

            array = np.asarray(counts, dtype=np.int64)
            total = int(array.sum()) + extra
            step = 3
            pd = find_best_pd(array, total, step=step, default_pd=step)
            candidates = {(index + 1) * step for index in range(len(array))}
            candidates.add(step)
            assert pd in candidates

        check()

    @pytest.mark.parametrize(
        "counts,total",
        [
            (np.array([], dtype=np.int64), 0),
            (np.zeros(1, dtype=np.int64), 0),
            (np.array([7], dtype=np.int64), 7),
            (np.zeros(16, dtype=np.int64), 10_000),  # all reuse beyond d_max
        ],
    )
    def test_degenerate_rdds_do_not_raise(self, counts, total):
        """Empty, single-bin and all-infinite RDDs stay well-defined."""
        from repro.core.hit_rate_model import (
            evaluate_e_curve,
            find_best_pd,
            predicted_hit_rate,
        )

        points = evaluate_e_curve(counts, total, step=4)
        assert all(0.0 <= p.e_value <= 1.0 for p in points)
        pd = find_best_pd(counts, total, step=4, default_pd=16)
        assert pd >= 1
        rate = predicted_hit_rate(counts, total, ways=8, pd=16, step=4)
        assert 0.0 <= rate <= 1.0


def st_integers_small():
    """Extra non-reuse accesses: keeps N_t >= sum(N_i) by construction."""
    from hypothesis import strategies as st

    return st.integers(min_value=0, max_value=10_000)


def st_pds():
    """Candidate protecting distances for the property tests."""
    from hypothesis import strategies as st

    return st.integers(min_value=1, max_value=128)
