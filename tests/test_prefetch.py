"""Tests for the stream prefetcher and prefetch-aware PDP (Sec. 6.5)."""

import pytest

from repro.core.prefetch import (
    PrefetchAwarePDPPolicy,
    StreamPrefetcher,
    interleave_prefetches,
)
from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.types import Access, AccessType


class TestStreamPrefetcher:
    def test_detects_ascending_stream(self):
        prefetcher = StreamPrefetcher(degree=2, train_threshold=2)
        issued = []
        for address in range(10):
            issued += prefetcher.observe(Access(address))
        assert issued, "an ascending stream must trigger prefetches"
        assert all(p.kind is AccessType.PREFETCH for p in issued)

    def test_prefetches_run_ahead(self):
        prefetcher = StreamPrefetcher(degree=2, train_threshold=2)
        last = None
        for address in range(10):
            for prefetch in prefetcher.observe(Access(address)):
                assert prefetch.address > address

    def test_detects_descending_stream(self):
        prefetcher = StreamPrefetcher(degree=1, train_threshold=2)
        issued = []
        for address in range(100, 80, -1):
            issued += prefetcher.observe(Access(address))
        assert issued
        assert all(p.address < 100 for p in issued)

    def test_random_traffic_triggers_nothing(self):
        import random

        rng = random.Random(0)
        prefetcher = StreamPrefetcher(train_threshold=2)
        issued = []
        for _ in range(200):
            issued += prefetcher.observe(Access(rng.randrange(1 << 30)))
        assert issued == []

    def test_stream_table_evicts_lru(self):
        prefetcher = StreamPrefetcher(num_streams=2)
        prefetcher.observe(Access(0))
        prefetcher.observe(Access(1 << 20))
        prefetcher.observe(Access(2 << 20))
        assert len(prefetcher._streams) == 2

    def test_interleave_injects_after_demand(self):
        prefetcher = StreamPrefetcher(degree=1, train_threshold=1)
        stream = [Access(a) for a in range(6)]
        merged = list(interleave_prefetches(stream, prefetcher))
        kinds = [a.kind for a in merged]
        assert AccessType.PREFETCH in kinds
        assert len(merged) > len(stream)


class TestPrefetchAwarePDP:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            PrefetchAwarePDPPolicy(prefetch_mode="nope")

    def test_pd1_inserts_prefetches_barely_protected(self):
        policy = PrefetchAwarePDPPolicy(
            prefetch_mode="pd1", static_pd=100, bypass=True
        )
        cache = SetAssociativeCache(CacheGeometry(1, 4), policy)
        cache.access(Access(0, kind=AccessType.PREFETCH))
        assert policy.rpd_of(0, 0) == 1
        cache.access(Access(1))
        assert policy.rpd_of(0, 1) == 100

    def test_bypass_mode_drops_prefetches(self):
        policy = PrefetchAwarePDPPolicy(
            prefetch_mode="bypass", static_pd=100, bypass=True
        )
        cache = SetAssociativeCache(CacheGeometry(1, 2), policy)
        cache.access(Access(0))
        cache.access(Access(1))
        result = cache.access(Access(2, kind=AccessType.PREFETCH))
        assert result.bypassed

    def test_bypass_mode_fills_prefetch_into_invalid_way(self):
        """Bypass only applies at victim selection; empty ways still fill."""
        policy = PrefetchAwarePDPPolicy(
            prefetch_mode="bypass", static_pd=100, bypass=True
        )
        cache = SetAssociativeCache(CacheGeometry(1, 2), policy)
        result = cache.access(Access(0, kind=AccessType.PREFETCH))
        assert not result.bypassed

    def test_none_mode_treats_prefetches_as_demand(self):
        policy = PrefetchAwarePDPPolicy(
            prefetch_mode="none", static_pd=100, bypass=True
        )
        cache = SetAssociativeCache(CacheGeometry(1, 4), policy)
        cache.access(Access(0, kind=AccessType.PREFETCH))
        assert policy.rpd_of(0, 0) == 100

    def test_prefetch_aware_reduces_pollution(self):
        """pd1 mode keeps a reused working set against a prefetch flood."""
        demand = []
        for round_index in range(200):
            demand += [Access(0), Access(4), Access(8)]
            demand += [
                Access(1000 + 4 * (3 * round_index + k), kind=AccessType.PREFETCH)
                for k in range(3)
            ]
        unaware = PrefetchAwarePDPPolicy(prefetch_mode="none", static_pd=24, bypass=True)
        aware = PrefetchAwarePDPPolicy(prefetch_mode="pd1", static_pd=24, bypass=True)
        hits = {}
        for name, policy in (("unaware", unaware), ("aware", aware)):
            cache = SetAssociativeCache(CacheGeometry(4, 4), policy)
            for access in demand:
                cache.access(access)
            hits[name] = cache.stats.hits
        assert hits["aware"] >= hits["unaware"]
