"""Fast-path kernel equivalence: every shipped policy, both engines.

The batched kernel (`repro.memory.fastpath.run_trace`) must be
observationally identical to the reference per-``Access`` loop — same
statistics, same final cache contents, same policy decisions. These
tests pin that for every policy in the registry, on traces that exercise
both kernel loops (uniform pc/thread-id columns and mixed ones).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pdp_policy import PDPPolicy
from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.memory.fastpath import run_trace
from repro.memory.stats import OccupancyTracker
from repro.policies.base import make_policy, registered_policies
from repro.policies.belady import BeladyPolicy
from repro.sim.single_core import run_llc
from repro.traces.trace import Trace

GEOMETRY = CacheGeometry(num_sets=16, ways=4)

#: Policies whose constructors need a thread count (shared-cache only).
MULTITHREAD = {"pd-partition", "pipp", "ta-drrip", "ucp"}


def _make_policy(name: str, trace: Trace):
    if name == "belady":
        return BeladyPolicy(trace.addresses, bypass=True)
    if name in MULTITHREAD:
        return make_policy(name, num_threads=2)
    return make_policy(name)


def _mixed_trace(n: int = 4000, seed: int = 11) -> Trace:
    """Two threads, a small pc pool, reuse plus streaming — exercises the
    mixed-column kernel loop and every hook (hits, evictions, bypasses)."""
    rng = np.random.default_rng(seed)
    hot = rng.integers(0, 64, size=n)
    cold = rng.integers(64, 5000, size=n)
    take_hot = rng.random(n) < 0.55
    addresses = np.where(take_hot, hot, cold)
    pcs = rng.integers(0, 12, size=n)
    thread_ids = rng.integers(0, 2, size=n)
    return Trace(addresses, pcs=pcs, thread_ids=thread_ids, name="mixed")


def _uniform_trace(n: int = 4000, seed: int = 12) -> Trace:
    """Default pc/thread-id columns — exercises the lean kernel loop."""
    rng = np.random.default_rng(seed)
    hot = rng.integers(0, 64, size=n)
    cold = rng.integers(64, 5000, size=n)
    addresses = np.where(rng.random(n) < 0.55, hot, cold)
    return Trace(addresses, name="uniform")


def _run(trace: Trace, policy, engine: str) -> SetAssociativeCache:
    cache = SetAssociativeCache(GEOMETRY, policy)
    if engine == "fast":
        run_trace(cache, trace)
    else:
        for access in trace:
            cache.access(access)
    return cache


def _assert_equivalent(ref: SetAssociativeCache, fast: SetAssociativeCache):
    for field in ("accesses", "hits", "misses", "fills", "bypasses", "evictions"):
        assert getattr(fast.stats, field) == getattr(ref.stats, field), field
    assert np.array_equal(fast.valid, ref.valid)
    assert np.array_equal(np.where(ref.valid, ref.tags, -1),
                          np.where(fast.valid, fast.tags, -1))
    assert np.array_equal(fast.reused, ref.reused)


@pytest.mark.parametrize("trace_kind", ["mixed", "uniform"])
@pytest.mark.parametrize("name", sorted(registered_policies()))
def test_every_policy_identical_between_engines(name, trace_kind):
    trace = _mixed_trace() if trace_kind == "mixed" else _uniform_trace()
    ref = _run(trace, _make_policy(name, trace), "reference")
    fast = _run(trace, _make_policy(name, trace), "fast")
    _assert_equivalent(ref, fast)


def test_tag_index_coherent_after_run():
    """The per-set {tag: way} index must exactly mirror tags/valid."""
    trace = _mixed_trace()
    cache = _run(trace, make_policy("lru"), "fast")
    for set_index in range(GEOMETRY.num_sets):
        index = cache._tag_index[set_index]
        resident = {
            int(cache.tags[set_index][way]): way
            for way in range(GEOMETRY.ways)
            if cache.valid[set_index][way]
        }
        assert index == resident


def test_pdp_pd_history_identical_between_engines():
    trace = _mixed_trace(n=12_000)
    results = {
        engine: run_llc(
            trace,
            PDPPolicy(recompute_interval=2048),
            GEOMETRY,
            engine=engine,
        )
        for engine in ("reference", "fast")
    }
    ref, fast = results["reference"], results["fast"]
    assert fast.extra["pd_history"] == ref.extra["pd_history"]
    assert fast.extra["final_pd"] == ref.extra["final_pd"]
    assert (fast.hits, fast.misses, fast.bypasses) == (
        ref.hits,
        ref.misses,
        ref.bypasses,
    )


def test_observers_fire_identically():
    trace = _mixed_trace()
    occupancies = {}
    for engine in ("reference", "fast"):
        cache = SetAssociativeCache(GEOMETRY, make_policy("lru"))
        tracker = OccupancyTracker(short_threshold=16)
        cache.observers.append(tracker)
        if engine == "fast":
            run_trace(cache, trace)
        else:
            for access in trace:
                cache.access(access)
        occupancies[engine] = tracker.breakdown
    assert occupancies["fast"] == occupancies["reference"]


def test_run_llc_defaults_to_fast_engine():
    trace = _uniform_trace(n=2000)
    default = run_llc(trace, make_policy("lru"), GEOMETRY)
    reference = run_llc(trace, make_policy("lru"), GEOMETRY, engine="reference")
    assert (default.hits, default.misses) == (reference.hits, reference.misses)
    with pytest.raises(ValueError):
        run_llc(trace, make_policy("lru"), GEOMETRY, engine="warp")


def test_engine_mode_not_shadowed_by_policy_attribute():
    """Regression: run_llc's body once rebound the name ``engine`` to the
    policy's PD engine object, clobbering the engine-mode string. The
    mode parameter must stay intact through the whole body (so future
    code after the extras block can still rely on it), and the PD extras
    must still be collected."""
    import inspect

    from repro.sim import single_core

    trace = _mixed_trace(n=3000)
    result = run_llc(
        trace, PDPPolicy(recompute_interval=1024), GEOMETRY, engine="reference"
    )
    assert "pd_history" in result.extra and "final_pd" in result.extra
    # Cheap lint rule: the parameter name must never be reassigned.
    source = inspect.getsource(single_core.run_llc)
    assert not any(
        line.strip().startswith("engine =") for line in source.splitlines()
    )
    # And ENGINES validation still fires for bad modes.
    with pytest.raises(ValueError, match="engine"):
        run_llc(trace, PDPPolicy(), GEOMETRY, engine="bogus")


def test_run_hierarchy_engines_agree():
    from repro.sim.single_core import run_hierarchy

    trace = _mixed_trace(n=3000)
    ref = run_hierarchy(trace, make_policy("lru"), engine="reference")
    fast = run_hierarchy(trace, make_policy("lru"), engine="fast")
    assert (fast.hits, fast.misses, fast.bypasses) == (
        ref.hits,
        ref.misses,
        ref.bypasses,
    )
