"""Tests for repro.types."""

import pytest

from repro.types import Access, AccessResult, AccessType, block_address


class TestAccess:
    def test_defaults(self):
        access = Access(address=42)
        assert access.address == 42
        assert access.pc == 0
        assert access.kind is AccessType.READ
        assert access.thread_id == 0

    def test_is_frozen(self):
        access = Access(address=1)
        with pytest.raises(AttributeError):
            access.address = 2

    def test_equality(self):
        assert Access(1, 2) == Access(1, 2)
        assert Access(1) != Access(2)

    def test_prefetch_kind(self):
        access = Access(1, kind=AccessType.PREFETCH)
        assert access.kind is AccessType.PREFETCH


class TestAccessResult:
    def test_hit_defaults(self):
        result = AccessResult(hit=True)
        assert result.hit
        assert not result.bypassed
        assert result.evicted is None

    def test_bypass_result(self):
        result = AccessResult(hit=False, bypassed=True)
        assert result.bypassed
        assert result.way == -1


class TestBlockAddress:
    def test_divides_by_line_size(self):
        assert block_address(0, 64) == 0
        assert block_address(63, 64) == 0
        assert block_address(64, 64) == 1
        assert block_address(12800, 64) == 200

    def test_custom_line_size(self):
        assert block_address(256, 128) == 2

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            block_address(100, 48)

    def test_rejects_zero_line_size(self):
        with pytest.raises(ValueError):
            block_address(100, 0)
