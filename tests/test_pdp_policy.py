"""Tests for the PDP replacement/bypass policy (Sec. 2.2)."""

import pytest

from repro.core.pdp_policy import PDPPolicy, make_spdp_b, make_spdp_nb
from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.types import Access


def make_cache(policy, num_sets=1, ways=4):
    return SetAssociativeCache(CacheGeometry(num_sets, ways), policy)


class TestProtection:
    def test_insertion_sets_rpd(self):
        policy = PDPPolicy(static_pd=7, bypass=False)
        cache = make_cache(policy)
        cache.access(Access(0))
        assert policy.rpd_of(0, 0) == 7

    def test_rpd_decrements_per_set_access(self):
        policy = PDPPolicy(static_pd=7, bypass=False)
        cache = make_cache(policy)
        way = cache.access(Access(0)).way
        cache.access(Access(1))
        cache.access(Access(2))
        assert policy.rpd_of(0, way) == 5

    def test_rpd_saturates_at_zero(self):
        policy = PDPPolicy(static_pd=2, bypass=False)
        cache = make_cache(policy)
        way = cache.access(Access(0)).way
        for address in range(1, 4):
            cache.access(Access(address))
        assert policy.rpd_of(0, way) == 0

    def test_hit_renews_protection(self):
        policy = PDPPolicy(static_pd=5, bypass=False)
        cache = make_cache(policy)
        cache.access(Access(0))
        cache.access(Access(1))
        cache.access(Access(0))  # promotion resets RPD to PD
        assert policy.rpd_of(0, cache.lookup(0)) == 5

    def test_protected_line_never_evicted_while_unprotected_exists(self):
        """The core PDP invariant."""
        import random

        policy = PDPPolicy(static_pd=6, bypass=False)
        cache = make_cache(policy, ways=4)
        rng = random.Random(0)
        for _ in range(2000):
            address = rng.randrange(30)
            # RPDs are decremented once by the access itself before the
            # victim is chosen; compare against the post-decrement values.
            rpds_at_selection = [max(0, policy.rpd_of(0, w) - 1) for w in range(4)]
            valid_before = list(cache.valid[0])
            result = cache.access(Access(address))
            if result.evicted is not None and all(valid_before):
                victim_rpd = rpds_at_selection[result.way]
                if any(r == 0 for r in rpds_at_selection):
                    assert victim_rpd == 0


class TestVictimSelection:
    def test_unprotected_line_chosen(self):
        policy = PDPPolicy(static_pd=2, bypass=False)
        cache = make_cache(policy, ways=2)
        cache.access(Access(0))
        cache.access(Access(1))
        cache.access(Access(1))  # 0's RPD has expired by now
        result = cache.access(Access(2))
        assert result.evicted == 0

    def test_inclusive_prefers_inserted_over_reused(self):
        """With all lines protected, evict the youngest *inserted* line."""
        policy = PDPPolicy(static_pd=200, bypass=False)
        cache = make_cache(policy, ways=3)
        cache.access(Access(0))
        cache.access(Access(0))  # 0 is reused
        cache.access(Access(1))
        cache.access(Access(2))  # 1, 2 inserted, not reused
        result = cache.access(Access(3))
        assert result.evicted == 2  # youngest inserted (highest RPD)

    def test_inclusive_falls_back_to_reused(self):
        policy = PDPPolicy(static_pd=200, bypass=False)
        cache = make_cache(policy, ways=2)
        cache.access(Access(0))
        cache.access(Access(0))
        cache.access(Access(1))
        cache.access(Access(1))  # both reused, both protected
        result = cache.access(Access(2))
        assert result.evicted == 1  # youngest reused


class TestBypass:
    def test_bypasses_when_all_protected(self):
        policy = PDPPolicy(static_pd=200, bypass=True)
        cache = make_cache(policy, ways=2)
        cache.access(Access(0))
        cache.access(Access(1))
        result = cache.access(Access(2))
        assert result.bypassed
        assert cache.lookup(0) is not None and cache.lookup(1) is not None

    def test_bypass_counts_as_set_access(self):
        """Bypassed accesses still age the RPDs (Sec. 3)."""
        policy = PDPPolicy(static_pd=3, bypass=True)
        cache = make_cache(policy, ways=2)
        way = cache.access(Access(0)).way
        cache.access(Access(1))
        cache.access(Access(2))  # bypass
        assert policy.rpd_of(0, way) == 1

    def test_inserts_once_protection_expires(self):
        policy = PDPPolicy(static_pd=3, bypass=True)
        cache = make_cache(policy, ways=2)
        cache.access(Access(0))  # rpd(0) = 3
        cache.access(Access(1))  # rpd(0) = 2, rpd(1) = 3
        cache.access(Access(2))  # decrement -> 1, 2: bypass
        result = cache.access(Access(3))  # decrement -> 0, 1: 0 expires
        assert not result.bypassed
        assert result.evicted == 0


class TestDistanceStep:
    def test_step_adapts_to_pd(self):
        """S_d gives the PD full n_c-bit resolution: ceil(72/7) = 11."""
        policy = PDPPolicy(static_pd=72, bypass=False, n_c=3, d_max=256)
        assert policy.distance_step == 11
        cache = make_cache(policy)
        cache.access(Access(0))
        # ceil(72 / 11) = 7 RPD units -> ~77 accesses of protection.
        assert policy.rpd_of(0, 0) == 7

    def test_step_capped_at_paper_bound(self):
        """S_d never exceeds d_max / 2^n_c (paper Sec. 3)."""
        policy = PDPPolicy(static_pd=256, bypass=False, n_c=3, d_max=256)
        assert policy.distance_step == 32
        assert policy.max_distance_step == 32

    def test_small_pd_not_overprotected(self):
        """PD = 16 with n_c = 2 protects ~18 accesses, not 64."""
        policy = PDPPolicy(static_pd=16, bypass=False, n_c=2, d_max=256)
        assert policy.distance_step == 6
        assert policy.distance_step * policy.rpd_max < 2 * 16

    def test_rpds_tick_every_sd_accesses(self):
        policy = PDPPolicy(static_pd=64, bypass=False, n_c=3, d_max=256)
        step = policy.distance_step
        assert step == 10  # ceil(64 / 7)
        cache = make_cache(policy)
        way = cache.access(Access(0)).way
        start = policy.rpd_of(0, way)
        for address in range(1, step):
            cache.access(Access(address & 3))
        # step-1 further accesses: at most one tick has elapsed.
        assert policy.rpd_of(0, way) in (start, start - 1)
        for address in range(3 * step):
            cache.access(Access(address & 3))
        assert policy.rpd_of(0, way) < start

    def test_rpd_capped_at_nc_bits(self):
        policy = PDPPolicy(static_pd=256, bypass=False, n_c=2, d_max=256)
        cache = make_cache(policy)
        cache.access(Access(0))
        assert policy.rpd_of(0, 0) <= 3

    def test_nc_validation(self):
        with pytest.raises(ValueError):
            PDPPolicy(static_pd=10, n_c=0)


class TestDynamicPDP:
    def test_engine_created_when_dynamic(self):
        policy = PDPPolicy()
        make_cache(policy, num_sets=16, ways=16)
        assert policy.engine is not None

    def test_static_has_no_engine(self):
        policy = PDPPolicy(static_pd=50)
        make_cache(policy)
        assert policy.engine is None
        assert policy.current_pd == 50

    def test_dynamic_pd_updates(self):
        policy = PDPPolicy(recompute_interval=500, sampler_mode="full", step=4)
        cache = make_cache(policy, num_sets=1, ways=16)
        for index in range(2000):
            cache.access(Access(index % 40))
        assert policy.engine.recompute_count >= 1
        assert 40 <= policy.current_pd <= 48


class TestFactories:
    def test_spdp_nb(self):
        policy = make_spdp_nb(72)
        assert policy.static_pd == 72 and not policy.bypass

    def test_spdp_b(self):
        policy = make_spdp_b(72)
        assert policy.static_pd == 72 and policy.bypass
        assert policy.supports_bypass
