"""Tests for the RD counter array."""

import pytest

from repro.core.rdd import RDCounterArray


class TestBinning:
    def test_step_one_direct_indexing(self):
        array = RDCounterArray(d_max=8, step=1)
        array.record_distance(1)
        array.record_distance(8)
        assert array.counts[0] == 1
        assert array.counts[7] == 1

    def test_step_four_ranges(self):
        """S_c = 4: first counter covers RDs 1-4, next 5-8 (paper Sec. 3)."""
        array = RDCounterArray(d_max=16, step=4)
        for distance in (1, 2, 3, 4):
            array.record_distance(distance)
        for distance in (5, 8):
            array.record_distance(distance)
        assert array.counts[0] == 4
        assert array.counts[1] == 2

    def test_out_of_range_distances_dropped(self):
        array = RDCounterArray(d_max=16, step=4)
        array.record_distance(0)
        array.record_distance(17)
        array.record_distance(-3)
        assert array.counts.sum() == 0

    def test_d_max_must_divide(self):
        with pytest.raises(ValueError):
            RDCounterArray(d_max=10, step=4)

    def test_bin_edges(self):
        array = RDCounterArray(d_max=16, step=4)
        assert array.bin_upper_edge(0) == 4
        assert array.bin_upper_edge(3) == 16
        assert array.bin_midpoint(0) == pytest.approx(2.5)


class TestTotals:
    def test_long_count(self):
        array = RDCounterArray(d_max=8, step=1)
        for _ in range(10):
            array.record_access()
        array.record_distance(3)
        array.record_distance(5)
        assert array.total == 10
        assert array.reuse_count == 2
        assert array.long_count == 8

    def test_snapshot_is_a_copy(self):
        array = RDCounterArray(d_max=8, step=1)
        array.record_distance(1)
        counts, total = array.snapshot()
        counts[0] = 99
        assert array.counts[0] == 1


class TestSaturation:
    def test_counter_saturation_freezes_array(self):
        array = RDCounterArray(d_max=4, step=1, counter_bits=2)
        for _ in range(3):
            array.record_distance(1)
        assert array.frozen  # 2-bit counter saturates at 3
        array.record_distance(2)
        assert array.counts[1] == 0  # frozen: shape preserved

    def test_total_saturation_freezes(self):
        array = RDCounterArray(d_max=4, step=1, total_bits=2)
        for _ in range(5):
            array.record_access()
        assert array.frozen
        assert array.total == 3

    def test_reset_unfreezes(self):
        array = RDCounterArray(d_max=4, step=1, counter_bits=2)
        for _ in range(4):
            array.record_distance(1)
        array.reset()
        assert not array.frozen
        assert array.total == 0
        array.record_distance(1)
        assert array.counts[0] == 1

    def test_decay_halves(self):
        array = RDCounterArray(d_max=4, step=1)
        for _ in range(8):
            array.record_distance(1)
            array.record_access()
        array.decay()
        assert array.counts[0] == 4
        assert array.total == 4


class TestStorage:
    def test_storage_bits(self):
        array = RDCounterArray(d_max=256, step=4)
        # 64 counters x 16 bits + 32-bit N_t.
        assert array.storage_bits() == 64 * 16 + 32
