"""Objectstore experiment driver, workload generator, and streaming
acceptance.

The slow-marked acceptance test drives a 10M-request generated object
stream through :func:`run_object_cache` with a chunk-spy stream and
asserts O(chunk) memory — the software-cache counterpart of
``tests/test_streaming.py``'s LLC acceptance check. It runs in CI's
conformance job (``-m "slow or not slow"``).
"""

from __future__ import annotations

import weakref

import numpy as np
import pytest

from repro.experiments.objectstore import (
    DEFAULT_POLICIES,
    format_report,
    run_objectstore,
)
from repro.obs.manifest import load_manifests
from repro.swcache.driver import run_object_cache
from repro.swcache.policies import SizeAwareLRUPolicy
from repro.traces.objects import ObjectTrace
from repro.traces.stream import TraceStream
from repro.workloads.objectstore import make_object_stream


# -- workload generator ----------------------------------------------------


def test_generated_stream_is_deterministic_and_reiterable():
    stream = make_object_stream(5_000, num_objects=400, seed=11, chunk_size=1024)
    assert stream.length == 5_000
    first = list(stream.chunks())
    second = list(stream.chunks())
    assert [len(c) for c in first] == [1024] * 4 + [904]
    for a, b in zip(first, second):
        assert isinstance(a, ObjectTrace)
        assert a.keys.tolist() == b.keys.tolist()
        assert a.sizes.tolist() == b.sizes.tolist()
        assert a.ops.tolist() == b.ops.tolist()
        assert a.timestamps.tolist() == b.timestamps.tolist()
    # Timestamps increase monotonically across chunk boundaries.
    all_ts = np.concatenate([c.timestamps for c in first])
    assert (np.diff(all_ts) >= 0).all()


def test_generated_sizes_are_stable_per_object():
    stream = make_object_stream(3_000, num_objects=100, seed=2, chunk_size=500)
    seen: dict[int, int] = {}
    for chunk in stream.chunks():
        for key, size in zip(chunk.keys.tolist(), chunk.sizes.tolist()):
            assert seen.setdefault(key, size) == size, (
                f"object {key} changed size mid-stream"
            )


def test_generator_rejects_bad_parameters():
    with pytest.raises(ValueError):
        make_object_stream(0)
    with pytest.raises(ValueError):
        make_object_stream(10, num_objects=0)
    with pytest.raises(ValueError):
        make_object_stream(10, put_fraction=0.9, delete_fraction=0.5)


# -- experiment driver -----------------------------------------------------


def test_run_objectstore_compares_policies_with_timeseries(tmp_path):
    manifest_dir = tmp_path / "manifests"
    rows = run_objectstore(
        accesses=8_000,
        capacity_bytes=2 * 1024 * 1024,
        ttl=30_000.0,
        fast=True,
        seed=4,
        manifest_dir=str(manifest_dir),
    )
    assert [row.policy for row in rows] == list(DEFAULT_POLICIES)
    for row in rows:
        stats = row.result.stats
        assert stats.accesses == 10_000  # fast floor of the generator
        assert stats.accesses == stats.hits + stats.misses
        assert row.window_hit_rates  # every run recorded windows
        assert len(row.window_hit_rates) == len(row.window_byte_hit_rates)
    # One manifest per policy, kind=objectstore, byte metrics present.
    manifests = load_manifests(manifest_dir)
    assert len(manifests) == len(DEFAULT_POLICIES)
    assert {m.policy for m in manifests} == set(DEFAULT_POLICIES)
    for manifest in manifests:
        assert manifest.kind == "objectstore"
        assert 0.0 <= manifest.metrics["byte_hit_rate"] <= 1.0
        assert manifest.config["capacity_bytes"] == 2 * 1024 * 1024
        windows = manifest.timeseries["windows"]
        assert windows and all("bytes_requested" in w for w in windows)
    report = format_report(rows)
    assert "byte-hit" in report
    for policy in DEFAULT_POLICIES:
        assert policy in report


def test_objectstore_report_renders_in_obs_report(tmp_path):
    from repro.obs.bench import render_report

    manifest_dir = tmp_path / "manifests"
    run_objectstore(
        accesses=8_000,
        policies=("pdp",),
        capacity_bytes=1024 * 1024,
        fast=True,
        manifest_dir=str(manifest_dir),
    )
    rendered = render_report(manifest_dir)
    assert "byte hit" in rendered
    assert "PD" in rendered


def test_cli_unknown_experiment_lists_sorted_names(capsys):
    from repro.cli import main

    code = main(["experiment", "definitely-not-real"])
    assert code == 2
    err = capsys.readouterr().err
    listed = err.split("known: ", 1)[1].strip().split(", ")
    assert listed == sorted(listed)
    assert "objectstore" in listed


# -- streaming acceptance --------------------------------------------------


class _ObjectChunkSpy:
    """Lazily generated object-trace stream counting live chunks."""

    def __init__(self, total: int, chunk_size: int):
        self.total = total
        self.chunk_size = chunk_size
        self.live = 0
        self.peak = 0
        self.produced = 0

    def _release(self):
        self.live -= 1

    def _chunk(self, begin: int, end: int) -> ObjectTrace:
        indexes = np.arange(begin, end, dtype=np.int64)
        keys = (indexes * 16807) % 9973
        return ObjectTrace(
            keys,
            (keys % 512) + 1,
            timestamps=indexes,
            name="spy",
        )

    def _factory(self):
        for begin in range(0, self.total, self.chunk_size):
            chunk = self._chunk(begin, min(begin + self.chunk_size, self.total))
            self.live += 1
            self.peak = max(self.peak, self.live)
            self.produced += 1
            weakref.finalize(chunk, self._release)
            yield chunk

    def stream(self) -> TraceStream:
        return TraceStream(self._factory, name="spy", length=self.total)


def _assert_object_stream_bounded(total: int, chunk_size: int) -> None:
    spy = _ObjectChunkSpy(total, chunk_size)
    result = run_object_cache(
        spy.stream(), SizeAwareLRUPolicy(), capacity_bytes=256 * 1024
    )
    assert spy.produced == -(-total // chunk_size)
    assert spy.peak <= 3, (
        f"object-cache run held {spy.peak} chunks alive at once — "
        "the driver is accumulating chunks instead of streaming them"
    )
    assert result.accesses == total
    stats = result.stats
    assert stats.accesses == stats.hits + stats.misses
    assert stats.misses == stats.fills + stats.bypasses


def test_object_stream_run_is_chunk_bounded():
    _assert_object_stream_bounded(total=200_000, chunk_size=25_000)


@pytest.mark.slow
def test_ten_million_object_requests_stream_in_chunk_memory():
    """Acceptance: a 10M-request object trace flows through
    ``run_object_cache`` holding only O(chunk) trace data."""
    _assert_object_stream_bounded(total=10_000_000, chunk_size=1_000_000)
