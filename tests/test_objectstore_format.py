"""Object-trace container and the ``objectstore`` on-disk format.

Covers the :class:`ObjectTrace` column contract (slice/concat preserve
the extra columns; fingerprints incorporate them chunk-size-invariantly
while plain-trace digests stay untouched), the text format's round trip
(plain and gzip), its content-magic detection without a suffix, located
parse errors, and the sorted-names contract of unknown-format errors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.manifest import FingerprintAccumulator, trace_fingerprint
from repro.traces.formats import (
    TraceFormatError,
    convert_trace,
    detect_format,
    format_names,
    open_trace,
    trace_info,
    write_stream,
)
from repro.traces.formats.objectstore import parse_key
from repro.traces.objects import (
    DEFAULT_OBJECT_SIZE,
    OP_DELETE,
    OP_GET,
    OP_PUT,
    ObjectTrace,
)
from repro.traces.stream import TraceStream
from repro.traces.trace import Trace


def _object_trace(n: int = 100, seed: int = 5) -> ObjectTrace:
    rng = np.random.default_rng(seed)
    return ObjectTrace(
        rng.integers(0, 50, n),
        rng.integers(1, 1000, n),
        ops=rng.integers(0, 3, n),
        timestamps=np.cumsum(rng.integers(1, 5, n)),
        name="fixture",
    )


# -- container -------------------------------------------------------------


def test_object_trace_validates_columns():
    with pytest.raises(ValueError):
        ObjectTrace([1, 2], [10])  # length mismatch
    with pytest.raises(ValueError):
        ObjectTrace([1], [-5])  # negative size


def test_slice_and_concat_preserve_object_columns():
    trace = _object_trace(50)
    part = trace.slice(10, 30)
    assert isinstance(part, ObjectTrace)
    assert part.sizes.tolist() == trace.sizes[10:30].tolist()
    assert part.ops.tolist() == trace.ops[10:30].tolist()
    assert part.timestamps.tolist() == trace.timestamps[10:30].tolist()
    joined = trace.slice(0, 10).concat(trace.slice(10, 50))
    assert isinstance(joined, ObjectTrace)
    assert joined.sizes.tolist() == trace.sizes.tolist()
    assert joined.timestamps.tolist() == trace.timestamps.tolist()


def test_from_trace_coerces_plain_traces():
    plain = Trace([1, 2, 3], name="cpu")
    obj = ObjectTrace.from_trace(plain, position_offset=7)
    assert obj.sizes.tolist() == [DEFAULT_OBJECT_SIZE] * 3
    assert obj.ops.tolist() == [OP_GET] * 3
    assert obj.timestamps.tolist() == [7, 8, 9]
    # ObjectTrace passes through unchanged.
    fixture = _object_trace(4)
    assert ObjectTrace.from_trace(fixture) is fixture


def test_fingerprint_covers_extra_columns_chunk_invariantly():
    trace = _object_trace(60)
    whole = FingerprintAccumulator()
    whole.update(trace)
    split = FingerprintAccumulator()
    split.update(trace.slice(0, 17))
    split.update(trace.slice(17, 60))
    digest = whole.digest("fixture", 1.0)
    assert digest == split.digest("fixture", 1.0)
    # Same keys, different sizes -> different fingerprint.
    resized = ObjectTrace(
        trace.keys, trace.sizes + 1, ops=trace.ops, timestamps=trace.timestamps
    )
    other = FingerprintAccumulator()
    other.update(resized)
    assert other.digest("fixture", 1.0) != digest
    # Plain traces keep their historical digest (no extra columns).
    plain = Trace(trace.keys, name="fixture")
    assert trace_fingerprint(plain) != digest


# -- on-disk format --------------------------------------------------------


def _stream(trace: ObjectTrace, chunk_size: int = 32) -> TraceStream:
    return TraceStream.from_trace(trace, chunk_size=chunk_size)


@pytest.mark.parametrize("suffix", [".objtrace", ".objtrace.gz"])
def test_round_trip_preserves_every_column(tmp_path, suffix):
    trace = _object_trace(80)
    path = tmp_path / f"t{suffix}"
    written = write_stream(_stream(trace), path)
    assert written == 80
    back = open_trace(path)
    assert back.format == "objectstore"
    assert back.name == "fixture"
    loaded = back.materialize()
    assert loaded.addresses.tolist() == trace.keys.tolist()
    chunks = list(back.chunks())
    assert all(isinstance(c, ObjectTrace) for c in chunks)
    sizes = np.concatenate([c.sizes for c in chunks])
    ops = np.concatenate([c.ops for c in chunks])
    timestamps = np.concatenate([c.timestamps for c in chunks])
    assert sizes.tolist() == trace.sizes.tolist()
    assert ops.tolist() == trace.ops.tolist()
    assert timestamps.tolist() == trace.timestamps.tolist()


def test_magic_detection_without_suffix(tmp_path):
    trace = _object_trace(10)
    path = tmp_path / "t.objtrace"
    write_stream(_stream(trace), path)
    bare = tmp_path / "no_extension"
    bare.write_bytes(path.read_bytes())
    assert detect_format(bare) == "objectstore"
    info = trace_info(bare)
    assert info["format"] == "objectstore" and info["accesses"] == 10


def test_gzip_magic_detection_without_suffix(tmp_path):
    trace = _object_trace(10)
    path = tmp_path / "t.objtrace.gz"
    write_stream(_stream(trace), path)
    bare = tmp_path / "mystery"
    bare.write_bytes(path.read_bytes())
    assert detect_format(bare) == "objectstore"


def test_missing_header_is_rejected(tmp_path):
    path = tmp_path / "bad.objtrace"
    path.write_text("1,GET,42,100\n")
    with pytest.raises(TraceFormatError, match="missing"):
        list(open_trace(path).chunks())


@pytest.mark.parametrize(
    "row, match",
    [
        ("1,GET,42", "expected 4 columns"),
        ("1,FROB,42,100", "unknown op"),
        ("x,GET,42,100", "timestamp is not an integer"),
        ("1,GET,42,-5", "negative object size"),
    ],
)
def test_malformed_rows_fail_with_line_numbers(tmp_path, row, match):
    path = tmp_path / "bad.objtrace"
    path.write_text(f"#objectstore v1\n1,GET,7,10\n{row}\n")
    with pytest.raises(TraceFormatError, match=match) as excinfo:
        list(open_trace(path).chunks())
    assert ":3:" in str(excinfo.value)  # the offending line is named


def test_op_names_case_insensitive_and_numeric(tmp_path):
    path = tmp_path / "ops.objtrace"
    path.write_text(
        "#objectstore v1\n"
        "1,get,7,10\n"
        "2,Put,8,20\n"
        "3,2,9,0\n"  # numeric DELETE code
    )
    chunk = next(open_trace(path).chunks())
    assert chunk.ops.tolist() == [OP_GET, OP_PUT, OP_DELETE]


def test_opaque_keys_hash_stably():
    a = parse_key("8d4fcda3d675bac9aa1b51a9d78c2883")
    b = parse_key("8d4fcda3d675bac9aa1b51a9d78c2883")
    assert a == b and 0 <= a < (1 << 63)
    assert parse_key("42") == 42
    assert parse_key("0x1a") == 26
    assert parse_key("other") != a


def test_convert_plain_trace_to_objectstore(tmp_path):
    plain = Trace(np.arange(40) % 7, name="cpu")
    src = tmp_path / "cpu.trz"
    write_stream(TraceStream.from_trace(plain, chunk_size=16), src)
    dst = tmp_path / "cpu.objtrace"
    assert convert_trace(src, dst) == 40
    chunk = next(open_trace(dst).chunks())
    assert chunk.sizes.tolist() == [DEFAULT_OBJECT_SIZE] * 40
    # Position timestamps keep increasing across the 16-access chunks.
    full = np.concatenate([c.timestamps for c in open_trace(dst).chunks()])
    assert full.tolist() == list(range(40))


def test_format_registry_errors_list_sorted_names(tmp_path):
    assert format_names() == sorted(format_names())
    trace = _object_trace(4)
    with pytest.raises(TraceFormatError) as excinfo:
        write_stream(_stream(trace), tmp_path / "x.objtrace", format="bogus")
    message = str(excinfo.value)
    assert "champsim, csv, native, npz, objectstore" in message


def test_metadata_comment_round_trips_name_and_dilution(tmp_path):
    trace = _object_trace(12)
    path = tmp_path / "meta.objtrace"
    stream = _stream(trace)
    stream.instructions_per_access = 2.5
    write_stream(stream, path)
    back = open_trace(path)
    assert back.name == "fixture"
    assert back.instructions_per_access == 2.5
