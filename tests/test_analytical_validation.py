"""Closed-form validation: crafted micro-traces with known exact outcomes."""

import pytest

from repro.core.pdp_policy import PDPPolicy
from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.policies.lru import LRUPolicy
from repro.types import Access


def run(policy, addresses, num_sets=1, ways=4):
    cache = SetAssociativeCache(CacheGeometry(num_sets, ways), policy)
    for address in addresses:
        cache.access(Access(int(address)))
    return cache


class TestLRUClosedForm:
    def test_loop_fitting_exactly(self):
        """Loop of W blocks over W ways: hits = length - W cold misses."""
        for ways in (2, 4, 8):
            length = 50 * ways
            addresses = [i % ways for i in range(length)]
            cache = run(LRUPolicy(), addresses, ways=ways)
            assert cache.stats.hits == length - ways

    def test_loop_oversize_zero_hits(self):
        """Loop of W+1 blocks over W LRU ways: exactly zero hits."""
        for ways in (2, 4, 8):
            addresses = [i % (ways + 1) for i in range(40 * ways)]
            cache = run(LRUPolicy(), addresses, ways=ways)
            assert cache.stats.hits == 0

    def test_two_block_alternation(self):
        cache = run(LRUPolicy(), [0, 1] * 25, ways=2)
        assert cache.stats.misses == 2


class TestPDPClosedForm:
    def test_bypass_loop_steady_state(self):
        """Loop of L blocks, one set, W ways, PD >= L with bypass.

        Steady state: the W resident blocks hit every lap (they are
        re-protected on each hit); the other L - W blocks always bypass.
        Expected hit rate over full laps: W / L.
        """
        ways, loop = 4, 10
        policy = PDPPolicy(static_pd=loop, bypass=True)
        cache = SetAssociativeCache(CacheGeometry(1, ways), policy)
        laps = 60
        for lap in range(laps):
            for address in range(loop):
                cache.access(Access(address))
        stats = cache.stats
        expected_hits = (laps - 1) * ways  # all laps after the first
        assert stats.hits == expected_hits
        # Every lap (including the first, once the 4 ways fill) bypasses
        # the other loop - ways blocks.
        assert stats.bypasses == laps * (loop - ways)
        assert stats.fills == ways  # only the 4 cold fills ever insert

    def test_protection_exact_duration(self):
        """A line inserted with PD = k survives exactly k accesses of
        pure-miss pressure and is evicted on the (k+1)-th."""
        k = 5
        policy = PDPPolicy(static_pd=k, bypass=True)
        cache = SetAssociativeCache(CacheGeometry(1, 1), policy)
        cache.access(Access(0))
        outcomes = []
        for address in range(1, k + 2):
            outcomes.append(cache.access(Access(address)))
        # The first k-1 conflicting fetches bypass (line still protected;
        # its RPD loses 1 on its own fill access, then one per miss);
        # the k-th finally evicts block 0.
        evictions = [o for o in outcomes if o.evicted is not None]
        assert len(evictions) >= 1
        first_eviction = next(
            i for i, o in enumerate(outcomes) if o.evicted is not None
        )
        assert outcomes[first_eviction].evicted == 0
        assert all(o.bypassed for o in outcomes[:first_eviction])
        assert first_eviction == k - 1  # own access consumed one tick

    def test_nb_matches_b_when_protection_never_binds(self):
        """With PD = 1 no line is ever protected at victim time, so the
        bypass and no-bypass variants behave identically."""
        import random

        rng = random.Random(0)
        addresses = [rng.randrange(30) for _ in range(1500)]
        b = run(PDPPolicy(static_pd=1, bypass=True), addresses)
        nb = run(PDPPolicy(static_pd=1, bypass=False), addresses)
        assert b.stats.hits == nb.stats.hits
        assert b.stats.bypasses == 0


class TestModelClosedForm:
    def test_single_distance_rdd_analytic(self):
        """All reuse at one distance d: E(d_p) = N/(N*d + L*(d_p+d_e))
        for d_p >= d, strictly maximized at d_p = d."""
        import numpy as np

        from repro.core.hit_rate_model import evaluate_e_curve

        d = 20
        n = 1000
        total = 1500
        counts = np.zeros(64, dtype=np.int64)
        counts[d - 1] = n  # step=1: bin d-1 covers distance d
        points = evaluate_e_curve(counts, total, step=1, d_e=16.0)
        by_pd = {p.pd: p.e_value for p in points}
        long_lines = total - n
        expected = n / (n * d + long_lines * (d + 16.0))
        assert by_pd[d] == pytest.approx(expected)
        assert max(by_pd, key=by_pd.get) == d
        # Below d, no hits at all: E = 0.
        assert by_pd[d - 1] == 0.0
        # Beyond d, E strictly decreases (pure pollution).
        assert by_pd[d] > by_pd[d + 10] > by_pd[d + 40]

    def test_em_single_thread_equals_single_core_ratio(self):
        """E_m with one thread equals H/A from the same bins."""
        import numpy as np

        from repro.core.multicore_model import MulticoreHitRateModel, ThreadRDD

        counts = np.zeros(8, dtype=np.int64)
        counts[2] = 100  # distances 33..48 with step 16
        rdd = ThreadRDD(counts=counts, total=300)
        model = MulticoreHitRateModel(step=16, d_e=16.0)
        pd = 48
        hits, occupancy = model._hits_and_occupancy(rdd, pd)
        assert hits == 100
        midpoint = 2 * 16 + (16 + 1) / 2
        assert occupancy == pytest.approx(100 * midpoint + 200 * (pd + 16.0))
        assert model.e_m([rdd], [pd]) == pytest.approx(hits / occupancy)
