"""Parallel sweep runner: worker resolution, equivalence, fallbacks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.memory.cache import CacheGeometry
from repro.policies.lru import LRUPolicy
from repro.policies.rrip import DRRIPPolicy
from repro.sim.parallel import (
    ENV_MAX_WORKERS,
    parallel_compare_policies,
    parallel_sweep_static_pd,
    resolve_max_workers,
    run_matrix,
)
from repro.sim.runner import compare_policies, sweep_static_pd
from repro.traces.trace import Trace

GEOMETRY = CacheGeometry(num_sets=16, ways=16)
PD_GRID = list(range(16, 144, 16))  # 8 points


@pytest.fixture(scope="module")
def trace() -> Trace:
    rng = np.random.default_rng(5)
    hot = rng.integers(0, 400, size=6000)
    cold = rng.integers(400, 20_000, size=6000)
    addresses = np.where(rng.random(6000) < 0.6, hot, cold)
    return Trace(addresses, name="parallel-test")


def _summaries(results):
    return {key: (r.hits, r.misses, r.bypasses) for key, r in results.items()}


def test_resolve_max_workers(monkeypatch):
    monkeypatch.delenv(ENV_MAX_WORKERS, raising=False)
    assert resolve_max_workers(4) == 4
    assert resolve_max_workers(0) == 1
    assert resolve_max_workers() >= 1
    monkeypatch.setenv(ENV_MAX_WORKERS, "3")
    assert resolve_max_workers() == 3
    assert resolve_max_workers(2) == 2  # explicit argument beats the env
    monkeypatch.setenv(ENV_MAX_WORKERS, "lots")
    with pytest.raises(ValueError, match="REPRO_MAX_WORKERS"):
        resolve_max_workers()


def test_parallel_sweep_matches_serial(trace):
    assert len(PD_GRID) >= 8
    serial = sweep_static_pd(trace, GEOMETRY, PD_GRID, bypass=True)
    parallel = parallel_sweep_static_pd(
        trace, GEOMETRY, PD_GRID, bypass=True, max_workers=3
    )
    assert list(parallel) == PD_GRID  # insertion order preserved
    assert _summaries(parallel) == _summaries(serial)


def test_parallel_compare_matches_serial(trace):
    factories = {"lru": LRUPolicy, "drrip": DRRIPPolicy}
    serial = compare_policies(trace, factories, GEOMETRY)
    parallel = parallel_compare_policies(trace, factories, GEOMETRY, max_workers=2)
    assert _summaries(parallel) == _summaries(serial)


def test_unpicklable_factory_falls_back_to_serial(trace):
    factories = {"lru": lambda: LRUPolicy()}  # lambdas cannot cross processes
    results = run_matrix(trace, factories, GEOMETRY, max_workers=2)
    reference = compare_policies(trace, {"lru": LRUPolicy}, GEOMETRY)
    assert _summaries(results) == _summaries(reference)


def test_runner_delegates_to_parallel(trace):
    serial = sweep_static_pd(trace, GEOMETRY, PD_GRID[:3])
    delegated = sweep_static_pd(trace, GEOMETRY, PD_GRID[:3], max_workers=2)
    assert _summaries(delegated) == _summaries(serial)


def test_engines_agree_through_matrix(trace):
    factories = {"lru": LRUPolicy}
    fast = run_matrix(trace, factories, GEOMETRY, max_workers=1, engine="fast")
    ref = run_matrix(trace, factories, GEOMETRY, max_workers=1, engine="reference")
    assert _summaries(fast) == _summaries(ref)
