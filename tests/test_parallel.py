"""Parallel sweep runner: worker resolution, equivalence, fallbacks."""

from __future__ import annotations

from functools import partial

import numpy as np
import pytest

from repro.memory.cache import CacheGeometry
from repro.policies.lru import LRUPolicy
from repro.policies.rrip import DRRIPPolicy
from repro.policies.ta_drrip import TADRRIPPolicy
from repro.sim.parallel import (
    ENV_MAX_WORKERS,
    parallel_compare_policies,
    parallel_sweep_static_pd,
    resolve_max_workers,
    run_matrix,
    run_mix_matrix,
)
from repro.sim.runner import compare_policies, sweep_static_pd
from repro.traces.trace import Trace

GEOMETRY = CacheGeometry(num_sets=16, ways=16)
PD_GRID = list(range(16, 144, 16))  # 8 points


class ExplodingPolicy(LRUPolicy):
    """Raises from inside the simulation — a stand-in for a policy bug."""

    def on_fill(self, set_index, way, access):
        raise RuntimeError("policy exploded")


@pytest.fixture(scope="module")
def trace() -> Trace:
    rng = np.random.default_rng(5)
    hot = rng.integers(0, 400, size=6000)
    cold = rng.integers(400, 20_000, size=6000)
    addresses = np.where(rng.random(6000) < 0.6, hot, cold)
    return Trace(addresses, name="parallel-test")


def _summaries(results):
    return {key: (r.hits, r.misses, r.bypasses) for key, r in results.items()}


def test_resolve_max_workers(monkeypatch):
    monkeypatch.delenv(ENV_MAX_WORKERS, raising=False)
    assert resolve_max_workers(4) == 4
    assert resolve_max_workers(0) == 1
    assert resolve_max_workers() >= 1
    monkeypatch.setenv(ENV_MAX_WORKERS, "3")
    assert resolve_max_workers() == 3
    assert resolve_max_workers(2) == 2  # explicit argument beats the env
    monkeypatch.setenv(ENV_MAX_WORKERS, "lots")
    with pytest.raises(ValueError, match="REPRO_MAX_WORKERS"):
        resolve_max_workers()


def test_parallel_sweep_matches_serial(trace):
    assert len(PD_GRID) >= 8
    serial = sweep_static_pd(trace, GEOMETRY, PD_GRID, bypass=True)
    parallel = parallel_sweep_static_pd(
        trace, GEOMETRY, PD_GRID, bypass=True, max_workers=3
    )
    assert list(parallel) == PD_GRID  # insertion order preserved
    assert _summaries(parallel) == _summaries(serial)


def test_parallel_sweep_accepts_trace_stream(trace, tmp_path):
    """A chunked TraceStream source sweeps identically to the in-memory
    trace: the parent stream-copies it to a native payload once and the
    workers re-open it chunked (O(chunk) per process)."""
    from repro.traces.formats import open_trace, write_stream
    from repro.traces.stream import as_stream

    path = tmp_path / "payload.trz"
    write_stream(as_stream(trace), path)
    stream = open_trace(path, chunk_size=1_024)
    serial = sweep_static_pd(trace, GEOMETRY, PD_GRID[:4], bypass=True)
    streamed = parallel_sweep_static_pd(
        stream, GEOMETRY, PD_GRID[:4], bypass=True, max_workers=2
    )
    assert _summaries(streamed) == {
        pd: _summaries(serial)[pd] for pd in PD_GRID[:4]
    }


def test_parallel_compare_matches_serial(trace):
    factories = {"lru": LRUPolicy, "drrip": DRRIPPolicy}
    serial = compare_policies(trace, factories, GEOMETRY)
    parallel = parallel_compare_policies(trace, factories, GEOMETRY, max_workers=2)
    assert _summaries(parallel) == _summaries(serial)


def test_unpicklable_factory_falls_back_to_serial(trace):
    # lambdas cannot cross processes; two cells so the pool is attempted
    factories = {"lru": lambda: LRUPolicy(), "drrip": lambda: DRRIPPolicy()}
    with pytest.warns(RuntimeWarning, match="running serially"):
        results = run_matrix(trace, factories, GEOMETRY, max_workers=2)
    reference = compare_policies(
        trace, {"lru": LRUPolicy, "drrip": DRRIPPolicy}, GEOMETRY
    )
    assert _summaries(results) == _summaries(reference)


def test_serial_fallback_emits_warning_event_and_manifest_workers(trace, tmp_path):
    """The silent-fallback bug: degrading to serial must be loud — a
    RuntimeWarning, a ``warning`` progress event, and the requested vs
    effective worker counts recorded in the sweep manifest."""
    from repro.obs.manifest import load_manifests

    events = []
    factories = {"lru": lambda: LRUPolicy(), "drrip": lambda: DRRIPPolicy()}
    with pytest.warns(RuntimeWarning, match="not picklable"):
        run_matrix(
            trace, factories, GEOMETRY, max_workers=4,
            manifest_dir=tmp_path, on_event=events.append,
        )
    warnings_seen = [e for e in events if e.kind == "warning"]
    assert len(warnings_seen) == 1
    assert "4 workers" in warnings_seen[0].error
    sweep = [m for m in load_manifests(tmp_path) if m.kind == "matrix"][0]
    assert sweep.config["workers_requested"] == 4
    assert sweep.config["workers_effective"] == 1


def test_pooled_matrix_records_effective_workers(trace, tmp_path):
    """The healthy pooled path records effective == min(requested, cells)
    and emits no warning events."""
    from repro.obs.manifest import load_manifests

    events = []
    factories = {"lru": LRUPolicy, "drrip": DRRIPPolicy}
    run_matrix(
        trace, factories, GEOMETRY, max_workers=3,
        manifest_dir=tmp_path, on_event=events.append,
    )
    assert [e for e in events if e.kind == "warning"] == []
    sweep = [m for m in load_manifests(tmp_path) if m.kind == "matrix"][0]
    assert sweep.config["workers_requested"] == 3
    assert sweep.config["workers_effective"] == 2  # capped by 2 cells


def test_stream_sweep_manifest_records_fingerprint(trace, tmp_path):
    """The fingerprint-hole bug: a stream-sourced sweep manifest must
    carry the chunk-size-invariant trace fingerprint, equal to the
    in-memory trace's digest, not None."""
    from repro.obs.manifest import load_manifests, trace_fingerprint
    from repro.traces.formats import open_trace, write_stream
    from repro.traces.stream import as_stream

    path = tmp_path / "payload.trz"
    write_stream(as_stream(trace), path)
    out = tmp_path / "manifests"
    run_matrix(
        open_trace(path), {"lru": LRUPolicy}, GEOMETRY,
        max_workers=1, manifest_dir=out,
    )
    sweep = [m for m in load_manifests(out) if m.kind == "matrix"][0]
    assert sweep.trace_fingerprint == trace_fingerprint(trace)


def test_runner_delegates_to_parallel(trace):
    serial = sweep_static_pd(trace, GEOMETRY, PD_GRID[:3])
    delegated = sweep_static_pd(trace, GEOMETRY, PD_GRID[:3], max_workers=2)
    assert _summaries(delegated) == _summaries(serial)


def test_engines_agree_through_matrix(trace):
    factories = {"lru": LRUPolicy}
    fast = run_matrix(trace, factories, GEOMETRY, max_workers=1, engine="fast")
    ref = run_matrix(trace, factories, GEOMETRY, max_workers=1, engine="reference")
    assert _summaries(fast) == _summaries(ref)


@pytest.mark.parametrize("max_workers", [1, 2])
def test_worker_simulation_error_propagates(trace, max_workers):
    """Regression: a genuine simulation error raised inside a worker must
    surface to the caller — not be swallowed by a silent serial re-run
    (which would both mask the bug and double the runtime)."""
    factories = {"boom": ExplodingPolicy, "lru": LRUPolicy}
    with pytest.raises(RuntimeError, match="policy exploded"):
        run_matrix(trace, factories, GEOMETRY, max_workers=max_workers)


@pytest.mark.parametrize("max_workers", [1, 2])
def test_progress_events_ordered(trace, max_workers):
    """Every task's started event precedes its finished event, and the
    done counter is monotonic — also under the process pool, where
    completions arrive via as_completed."""
    events = []
    factories = {"lru": LRUPolicy, "drrip": DRRIPPolicy}
    run_matrix(
        trace, factories, GEOMETRY, max_workers=max_workers, on_event=events.append
    )
    kinds = [(e.kind, e.key) for e in events]
    for key in factories:
        assert kinds.count(("started", key)) == 1
        assert kinds.count(("finished", key)) == 1
        assert kinds.index(("started", key)) < kinds.index(("finished", key))
    dones = [e.done for e in events]
    assert dones == sorted(dones)
    assert events[-1].done == events[-1].total == len(factories)


def test_run_matrix_manifest_dir_writes_cells_and_events(trace, tmp_path):
    from repro.obs.manifest import load_manifests
    from repro.obs.trace_log import EVENTS_FILENAME, read_events

    factories = {"lru": LRUPolicy, "drrip": DRRIPPolicy}
    run_matrix(trace, factories, GEOMETRY, max_workers=2, manifest_dir=tmp_path)
    manifests = load_manifests(tmp_path)
    cells = [m for m in manifests if m.kind == "llc"]
    sweeps = [m for m in manifests if m.kind == "matrix"]
    assert sorted(m.label for m in cells) == ["drrip", "lru"]
    assert len(sweeps) == 1
    assert {t["status"] for t in sweeps[0].tasks} == {"finished"}
    events = read_events(tmp_path / EVENTS_FILENAME)
    assert sum(1 for e in events if e["kind"] == "finished") == len(factories)


def _mixes() -> dict[str, list[Trace]]:
    def thread_trace(seed: int, n: int) -> Trace:
        rng = np.random.default_rng(seed)
        hot = rng.integers(0, 100, size=n)
        cold = rng.integers(100, 4000, size=n)
        addresses = np.where(rng.random(n) < 0.5, hot, cold)
        return Trace(addresses, name=f"t{seed}")

    return {
        "mix0": [thread_trace(1, 900), thread_trace(2, 700)],
        "mix1": [thread_trace(3, 800), thread_trace(4, 800)],
    }


def _mix_summaries(results):
    return {
        key: (
            [(t.accesses, t.hits, t.misses, t.bypasses) for t in r.threads],
            r.weighted,
            r.throughput,
            r.hmean,
        )
        for key, r in results.items()
    }


def test_run_mix_matrix_parallel_matches_serial():
    mixes = _mixes()
    factories = {
        "lru": LRUPolicy,
        "ta-drrip": partial(TADRRIPPolicy, num_threads=2),
    }
    serial = run_mix_matrix(mixes, factories, GEOMETRY, max_workers=1)
    parallel = run_mix_matrix(mixes, factories, GEOMETRY, max_workers=2)
    assert list(parallel) == [
        (mix, policy) for mix in mixes for policy in factories
    ]
    assert _mix_summaries(parallel) == _mix_summaries(serial)


def test_run_mix_matrix_precomputed_singles():
    mixes = _mixes()
    singles = {"mix0": [1.0, 1.0], "mix1": [1.0, 1.0]}
    results = run_mix_matrix(
        mixes, {"lru": LRUPolicy}, GEOMETRY, singles=singles, max_workers=2
    )
    assert all(r.extra["singles"] == [1.0, 1.0] for r in results.values())
    with pytest.raises(ValueError, match="singles"):
        run_mix_matrix(
            mixes, {"lru": LRUPolicy}, GEOMETRY, singles={"mix0": [1.0, 1.0]}
        )


def test_run_mix_matrix_unpicklable_falls_back_to_serial():
    mixes = _mixes()
    lambdas = {"lru": lambda: LRUPolicy()}  # lambdas cannot cross processes
    with pytest.warns(RuntimeWarning, match="running serially"):
        results = run_mix_matrix(mixes, lambdas, GEOMETRY, max_workers=2)
    reference = run_mix_matrix(mixes, {"lru": LRUPolicy}, GEOMETRY, max_workers=1)
    assert _mix_summaries(results) == _mix_summaries(reference)


@pytest.mark.parametrize("max_workers", [1, 2])
def test_run_mix_matrix_worker_error_propagates(max_workers):
    factories = {"boom": ExplodingPolicy}
    with pytest.raises(RuntimeError, match="policy exploded"):
        run_mix_matrix(_mixes(), factories, GEOMETRY, max_workers=max_workers)


class TestWorkerTelemetry:
    """Counters recorded inside pool workers must reach the parent sink.

    Before the per-task snapshot plumbing, pooled sweeps silently lost
    every counter incremented in a worker process: the kernels recorded
    into the *worker's* ``TELEMETRY`` global and the parent's stayed
    empty. Each task now ships its snapshot back with the result and the
    parent merges it (and embeds the merged totals in the sweep
    manifest).
    """

    @pytest.fixture(autouse=True)
    def _clean_telemetry(self):
        from repro.obs.telemetry import TELEMETRY

        TELEMETRY.reset()
        TELEMETRY.enable()
        yield
        TELEMETRY.disable()
        TELEMETRY.reset()

    def test_pooled_matrix_counters_reach_parent(self, trace):
        from repro.obs.telemetry import TELEMETRY

        factories = {"lru": LRUPolicy, "drrip": DRRIPPolicy}
        run_matrix(trace, factories, GEOMETRY, max_workers=2)
        # Under the default vector engine, LRU runs the columnar kernel
        # and DRRIP falls back to the fast path; both tiers count.
        accesses = TELEMETRY.counters.get(
            "fastpath.accesses", 0
        ) + TELEMETRY.counters.get("columnar.accesses", 0)
        assert accesses == len(trace) * len(factories)

    def test_serial_and_pooled_totals_agree(self, trace):
        from repro.obs.telemetry import TELEMETRY

        factories = {"lru": LRUPolicy, "drrip": DRRIPPolicy}
        run_matrix(trace, factories, GEOMETRY, max_workers=1)
        serial = dict(TELEMETRY.counters)
        TELEMETRY.reset()
        run_matrix(trace, factories, GEOMETRY, max_workers=2)
        assert dict(TELEMETRY.counters) == serial

    def test_sweep_manifest_embeds_merged_telemetry(self, trace, tmp_path):
        from repro.obs.manifest import load_manifests

        run_matrix(
            trace, {"lru": LRUPolicy}, GEOMETRY, max_workers=2,
            manifest_dir=tmp_path,
        )
        sweep = [m for m in load_manifests(tmp_path) if m.kind == "matrix"]
        assert len(sweep) == 1
        counters = sweep[0].telemetry.get("counters", {})
        assert counters.get("columnar.accesses", 0) >= len(trace)

    def test_merge_snapshot_sums_counters_and_timers(self):
        from repro.obs.telemetry import Telemetry

        sink = Telemetry(enabled=True)
        sink.count("a", 2)
        sink.record("t", 0.5)
        sink.merge_snapshot(
            {"counters": {"a": 3, "b": 1},
             "timers": {"t": {"calls": 2, "total_s": 1.0,
                              "min_s": 0.4, "max_s": 0.6},
                        "u": {"calls": 1, "total_s": 0.25,
                              "min_s": 0.25, "max_s": 0.25}}}
        )
        assert sink.counters == {"a": 5, "b": 1}
        assert sink.timers == {"t": [3, 1.5, 0.4, 0.6],
                               "u": [1, 0.25, 0.25, 0.25]}

    def test_merge_snapshot_tolerates_pre_min_max_payloads(self):
        from repro.obs.telemetry import Telemetry

        sink = Telemetry(enabled=True)
        # PR-9-era snapshots carry only calls/total: the mean stands in
        # for the missing bounds so merged min/max stay conservative.
        sink.merge_snapshot(
            {"counters": {}, "timers": {"t": {"calls": 2, "total_s": 1.0}}}
        )
        assert sink.timers == {"t": [2, 1.0, 0.5, 0.5]}

    def test_merge_snapshot_works_while_disabled(self):
        from repro.obs.telemetry import Telemetry

        sink = Telemetry(enabled=False)
        sink.merge_snapshot({"counters": {"a": 7}, "timers": {}})
        assert sink.counters == {"a": 7}
