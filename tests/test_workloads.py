"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.traces.analysis import (
    fraction_below,
    reuse_distance_distribution,
    reuse_distances,
)
from repro.workloads.base import MixtureComponent, RDDProfile, band, fresh, peak
from repro.workloads.mixes import generate_mixes, interleave_traces, make_mix_traces
from repro.workloads.phased import phase_changing_profiles
from repro.workloads.spec_like import (
    SINGLE_CORE_SUITE,
    SPEC_LIKE_PROFILES,
    benchmark_names,
    make_benchmark_trace,
)
from repro.workloads.streams import (
    cyclic_loop,
    random_working_set,
    sequential_stream,
    thrash_loop,
)
from repro.workloads.synthetic import RDDProfileGenerator


class TestComponents:
    def test_peak_bounds(self):
        component = peak(72, 8, 0.5)
        assert component.low == 64 and component.high == 80

    def test_fresh_is_infinite(self):
        assert fresh(0.3).is_infinite

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            MixtureComponent(weight=1.0, low=10, high=5)

    def test_half_specified_band(self):
        with pytest.raises(ValueError):
            MixtureComponent(weight=1.0, low=10, high=None)

    def test_nonpositive_weight(self):
        with pytest.raises(ValueError):
            MixtureComponent(weight=0.0)

    def test_profile_needs_components(self):
        with pytest.raises(ValueError):
            RDDProfile(name="empty", components=())

    def test_choose_component_weighted(self):
        import random

        profile = RDDProfile(
            name="p", components=(peak(8, 2, 0.9), fresh(0.1))
        )
        rng = random.Random(0)
        draws = [profile.choose_component(rng) for _ in range(2000)]
        assert 0.85 < draws.count(0) / len(draws) < 0.95


class TestGenerator:
    def test_deterministic(self):
        profile = SPEC_LIKE_PROFILES["403.gcc"]
        a = RDDProfileGenerator(profile, num_sets=16, seed=5).generate(2000)
        b = RDDProfileGenerator(profile, num_sets=16, seed=5).generate(2000)
        assert np.array_equal(a.addresses, b.addresses)

    def test_seed_changes_trace(self):
        profile = SPEC_LIKE_PROFILES["403.gcc"]
        a = RDDProfileGenerator(profile, num_sets=16, seed=5).generate(2000)
        b = RDDProfileGenerator(profile, num_sets=16, seed=6).generate(2000)
        assert not np.array_equal(a.addresses, b.addresses)

    def test_target_peak_reproduced(self):
        """A single-peak profile yields an RDD concentrated on the peak."""
        profile = RDDProfile(
            name="single-peak", components=(peak(40, 4, 0.6), fresh(0.4))
        )
        trace = RDDProfileGenerator(profile, num_sets=8, seed=1).generate(20_000)
        distances = reuse_distances(trace, num_sets=8)
        in_peak = sum(1 for d in distances if 36 <= d <= 44)
        assert in_peak / max(1, len(distances)) > 0.8

    def test_pure_fresh_has_no_reuse(self):
        profile = RDDProfile(name="stream", components=(fresh(1.0),))
        trace = RDDProfileGenerator(profile, num_sets=8, seed=1).generate(5000)
        assert reuse_distances(trace, num_sets=8) == []

    def test_pc_informative_assigns_distinct_pools(self):
        profile = RDDProfile(
            name="pc", components=(peak(8, 2, 0.5), fresh(0.5)), pc_informative=True
        )
        trace = RDDProfileGenerator(profile, num_sets=8, seed=1).generate(5000)
        assert len(set(int(p) for p in trace.pcs)) > 2

    def test_pc_misleading_shares_pool(self):
        profile = RDDProfile(
            name="pc", components=(peak(8, 2, 0.5), fresh(0.5)), pc_informative=False
        )
        trace = RDDProfileGenerator(profile, num_sets=8, seed=1).generate(5000)
        base = {int(p) & ~0xFFF for p in trace.pcs}
        assert len(base) == 1  # all PCs from one pool


class TestSpecLikeProfiles:
    def test_all_sixteen_plus_windows(self):
        assert len(SPEC_LIKE_PROFILES) == 18  # 15 + 3 xalancbmk windows
        assert len(SINGLE_CORE_SUITE) == 16

    def test_names_listed(self):
        names = benchmark_names()
        assert "436.cactusADM" in names
        assert "483.xalancbmk.3" in names

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError, match="436.cactusADM"):
            make_benchmark_trace("not-a-benchmark")

    def test_trace_generation_stable(self):
        a = make_benchmark_trace("429.mcf", length=1000, num_sets=16)
        b = make_benchmark_trace("429.mcf", length=1000, num_sets=16)
        assert np.array_equal(a.addresses, b.addresses)

    def test_streaming_profiles_have_low_reuse(self):
        trace = make_benchmark_trace("433.milc", length=8000, num_sets=16)
        assert fraction_below(trace, 16, 256) >= 0.0
        distances = reuse_distances(trace, num_sets=16)
        assert len(distances) / len(trace) < 0.25

    def test_lru_friendly_profile_reuses_close(self):
        trace = make_benchmark_trace("473.astar", length=8000, num_sets=16)
        distances = reuse_distances(trace, num_sets=16)
        near = sum(1 for d in distances if d <= 16)
        assert near / len(distances) > 0.6

    def test_xalancbmk_windows_have_different_peaks(self):
        """Fig. 5b: the three windows peak at different distances."""
        peaks = []
        for window in ("483.xalancbmk.1", "483.xalancbmk.2", "483.xalancbmk.3"):
            trace = make_benchmark_trace(window, length=10_000, num_sets=16)
            counts, _, _ = reuse_distance_distribution(trace, num_sets=16, d_max=256)
            peaks.append(int(np.argmax(counts[17:])) + 17)  # beyond W
        assert len(set(peaks)) == 3


class TestStreams:
    def test_sequential_all_unique(self):
        trace = sequential_stream(100)
        assert len(set(int(a) for a in trace.addresses)) == 100

    def test_cyclic_loop_period(self):
        trace = cyclic_loop(10, working_set=3)
        assert list(trace.addresses[:6]) == [0, 1, 2, 0, 1, 2]

    def test_cyclic_loop_validation(self):
        with pytest.raises(ValueError):
            cyclic_loop(10, working_set=0)

    def test_thrash_loop_size(self):
        trace = thrash_loop(100, ways=4, num_sets=2, overshoot=1)
        assert len(set(int(a) for a in trace.addresses)) == 10

    def test_random_working_set_bounded(self):
        trace = random_working_set(500, working_set=20, seed=1)
        assert all(0 <= a < 20 for a in trace.addresses)


class TestPhased:
    def test_five_workloads(self):
        workloads = phase_changing_profiles(phase_length=100)
        assert len(workloads) == 5

    def test_phases_use_distinct_address_spaces(self):
        workload = phase_changing_profiles(phase_length=200)["403.gcc"]
        trace = workload.generate(num_sets=16)
        first = set(int(a) for a in trace.addresses[:200])
        second = set(int(a) for a in trace.addresses[200:400])
        assert not first & second

    def test_total_length(self):
        workload = phase_changing_profiles(phase_length=150)["429.mcf"]
        assert workload.total_length == 450
        assert len(workload.generate(num_sets=16)) == 450


class TestMixes:
    def test_mix_generation_deterministic(self):
        a = generate_mixes(5, cores=4, seed=9)
        b = generate_mixes(5, cores=4, seed=9)
        assert [m.benchmarks for m in a] == [m.benchmarks for m in b]

    def test_mix_core_count(self):
        mixes = generate_mixes(3, cores=16, seed=0)
        assert all(m.num_cores == 16 for m in mixes)

    def test_duplication_allowed(self):
        mixes = generate_mixes(50, cores=4, seed=1)
        assert any(len(set(m.benchmarks)) < 4 for m in mixes)

    def test_interleave_round_robin(self):
        from repro.traces.trace import Trace

        t0 = Trace([1, 2, 3])
        t1 = Trace([10, 20, 30])
        mixed, completion = interleave_traces([t0, t1])
        assert list(mixed.thread_ids[:4]) == [0, 1, 0, 1]
        assert completion == [5, 6]

    def test_interleave_rewinds_short_trace(self):
        from repro.traces.trace import Trace

        t0 = Trace([1])
        t1 = Trace([10, 20, 30])
        mixed, completion = interleave_traces([t0, t1])
        # Thread 0's address repeats (rewind), offset preserved.
        thread0 = mixed.addresses[mixed.thread_ids == 0]
        assert len(set(int(a) for a in thread0)) == 1

    def test_private_address_spaces(self):
        from repro.traces.trace import Trace

        t0 = Trace([1, 2])
        t1 = Trace([1, 2])
        mixed, _ = interleave_traces([t0, t1])
        thread0 = set(int(a) for a in mixed.addresses[mixed.thread_ids == 0])
        thread1 = set(int(a) for a in mixed.addresses[mixed.thread_ids == 1])
        assert not thread0 & thread1

    def test_make_mix_traces(self):
        mix = generate_mixes(1, cores=4, seed=2)[0]
        traces = make_mix_traces(mix, length_per_thread=500, num_sets=16)
        assert len(traces) == 4
        assert all(len(t) == 500 for t in traces)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            interleave_traces([])
