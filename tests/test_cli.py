"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--benchmark", "403.gcc"])
        args.policy == "pdp"


class TestCommands:
    def test_list_benchmarks(self, capsys):
        assert main(["list-benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "436.cactusADM" in out
        assert "pc-misleading" in out  # h264ref/xalancbmk flagged

    def test_list_policies(self, capsys):
        assert main(["list-policies"]) == 0
        out = capsys.readouterr().out
        for name in ("lru", "dip", "drrip", "pdp"):
            assert name in out

    def test_run_pdp(self, capsys):
        code = main(
            ["run", "--benchmark", "473.astar", "--policy", "pdp", "--length", "4000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hit rate" in out
        assert "final PD" in out

    def test_run_registered_policy(self, capsys):
        code = main(
            ["run", "--benchmark", "473.astar", "--policy", "lru", "--length", "4000"]
        )
        assert code == 0
        assert "MPKI" in capsys.readouterr().out

    def test_run_belady(self, capsys):
        code = main(
            ["run", "--benchmark", "473.astar", "--policy", "belady", "--length", "3000"]
        )
        assert code == 0

    def test_rdd(self, capsys):
        assert main(["rdd", "--benchmark", "450.soplex", "--length", "5000"]) == 0
        out = capsys.readouterr().out
        assert "RDD of 450.soplex" in out

    def test_sweep(self, capsys):
        code = main(
            [
                "sweep",
                "--benchmark",
                "473.astar",
                "--length",
                "4000",
                "--step",
                "120",
            ]
        )
        assert code == 0
        assert "best" in capsys.readouterr().out

    def test_overhead(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "PDP-3" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestObservability:
    def test_sweep_progress_and_manifests(self, capsys, tmp_path):
        code = main(
            [
                "sweep",
                "--benchmark",
                "473.astar",
                "--length",
                "4000",
                "--step",
                "120",
                "--progress",
                "--manifest-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "best" in captured.out
        assert "[sweep]" in captured.err  # progress lines on stderr
        assert "finished" in captured.err
        assert list(tmp_path.glob("*.json"))
        assert (tmp_path / "events.jsonl").exists()

    def test_obs_summarize_round_trip(self, capsys, tmp_path):
        assert (
            main(
                [
                    "run",
                    "--benchmark",
                    "473.astar",
                    "--policy",
                    "lru",
                    "--length",
                    "4000",
                    "--manifest-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["obs", "summarize", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "473.astar" in out
        assert "lru" in out

    def test_obs_summarize_empty_dir(self, capsys, tmp_path):
        assert main(["obs", "summarize", str(tmp_path)]) == 1
        assert "no manifests" in capsys.readouterr().err

    def test_manifest_dir_env_default(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path))
        code = main(
            ["run", "--benchmark", "473.astar", "--policy", "lru", "--length", "4000"]
        )
        assert code == 0
        assert list(tmp_path.glob("*.json"))

    def test_obs_trace_renders_span_tree(self, capsys, tmp_path):
        from repro.obs.spans import SpanTracer

        with SpanTracer.for_dir(tmp_path) as tracer:
            with tracer.span("job"):
                with tracer.span("run-grid"):
                    pass
        assert main(["obs", "trace", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "job" in out and "run-grid" in out
        assert "critical path" in out

    def test_obs_trace_missing_log(self, capsys, tmp_path):
        assert main(["obs", "trace", str(tmp_path)]) == 1
        assert "no span log" in capsys.readouterr().err

    def test_top_and_scrape_need_a_daemon(self, capsys, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_ROOT", raising=False)
        # no --root and no env → usage error before any socket I/O
        with pytest.raises(SystemExit, match="--root"):
            main(["top", "--once"])
        # a root without a live daemon → clean failure, not a traceback
        assert main(["top", "--root", str(tmp_path), "--once"]) == 1
        assert "top failed" in capsys.readouterr().err
        assert main(["obs", "scrape", "--root", str(tmp_path), "--prom"]) == 1
        assert "scrape failed" in capsys.readouterr().err
