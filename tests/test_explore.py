"""Tests for the analytical fast-forward explorer (``repro.explore``).

Four layers, cheapest first:

- profiler ground truth: the one-pass profile must agree exactly with
  the reference analysis module (global RDD, per-set access counts,
  fingerprint) and with a brute-force frozen-cache simulation (arrival
  ranks);
- explorer contract: thousands of points from one profiling pass,
  within the wall-clock bound, persisted as a renderable
  ``kind="explore"`` manifest;
- golden drift tripwire over ``tests/golden/explore.json`` (regenerate
  with ``PYTHONPATH=src python tools/regen_golden.py`` after intended
  model changes);
- cross-validation: a reduced grid of ``tools/xval_explorer.py`` must
  pass the declared error budget, and the deliberately broken
  ``broken-set-rescale`` model variant must *fail* it with a located
  per-geometry report (the harness catches silent model drift).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path
from time import perf_counter

import numpy as np
import pytest

from repro.core.pd_grid import grid_step, pd_grid, within_one_step
from repro.explore import (
    build_view,
    explore,
    predict_hit_rate,
    profile_trace,
    render_frontier,
)
from repro.obs.manifest import fingerprint_source, load_manifests
from repro.workloads import make_benchmark_trace

REPO_ROOT = Path(__file__).resolve().parents[1]
EXPLORE_GOLDEN_PATH = REPO_ROOT / "tests" / "golden" / "explore.json"


def _load_tool(name: str):
    """Import a tools/ script as a module (single source of truth)."""
    path = REPO_ROOT / "tools" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def trace():
    return make_benchmark_trace("403.gcc", length=8_000)


@pytest.fixture(scope="module")
def profile(trace):
    return profile_trace(trace, max_sets=64)


class TestProfiler:
    def test_global_rdd_matches_analysis_module(self, trace, profile):
        """The streaming histogram equals the reference reuse distances
        (num_sets=1: distance = accesses between uses of a block)."""
        from repro.traces.analysis import reuse_distances

        reference = np.asarray(reuse_distances(trace, num_sets=1))
        histogram = np.zeros(profile.d_max + 2, dtype=np.int64)
        np.add.at(histogram, np.minimum(reference, profile.d_max + 1), 1)
        assert np.array_equal(profile.global_counts, histogram)
        assert profile.total_reuses == len(reference)

    def test_per_set_counts_fold_exactly(self, trace, profile):
        for num_sets in (1, 4, 16, 64):
            expected = np.bincount(
                trace.addresses % num_sets, minlength=num_sets
            )
            assert np.array_equal(profile.accesses_per_set(num_sets), expected)
        assert profile.accesses_per_set(64).sum() == profile.total_accesses

    def test_fingerprint_matches_manifest_digest(self, trace, profile):
        assert profile.fingerprint == fingerprint_source(trace)

    def test_rescaled_rdd_preserves_mass(self, profile):
        for num_sets in (1, 8, 64):
            counts = profile.rdd_for_sets(num_sets, d_max_set=512)
            assert counts.sum() == pytest.approx(profile.total_reuses)

    def test_rejects_bad_set_counts(self, profile):
        with pytest.raises(ValueError):
            profile.rdd_for_sets(48)  # not a power of two
        with pytest.raises(ValueError):
            profile.rdd_for_sets(128)  # beyond profiled max_sets

    def test_rank_reuse_cum_matches_brute_force(self, trace, profile):
        """result[w] == hits of a cache keeping each set's first w
        distinct blocks forever, computed by direct simulation."""
        num_sets, max_ways = 16, 8
        resident: dict[int, list] = {s: [] for s in range(num_sets)}
        hits = np.zeros(max_ways + 1)
        for addr in trace.addresses.tolist():
            blocks = resident[addr % num_sets]
            if addr in blocks:
                rank = blocks.index(addr)
                for ways in range(rank + 1, max_ways + 1):
                    hits[ways] += 1
            else:
                blocks.append(addr)
        result = profile.rank_reuse_cum(num_sets, max_ways=max_ways)
        assert np.array_equal(result[: max_ways + 1], hits)


class TestModelView:
    def test_views_cache_per_set_count(self, profile):
        first = profile.rdd_for_sets(16)
        again = profile.rdd_for_sets(16)
        assert first is again

    def test_prediction_bounded_and_monotone_in_ways(self, profile):
        view = build_view(profile, 16, d_max=512, max_ways=32)
        rates = [predict_hit_rate(view, ways, 32) for ways in (1, 2, 4, 8, 16)]
        assert all(0.0 <= rate <= 1.0 for rate in rates)
        for lower, higher in zip(rates, rates[1:]):
            assert higher >= lower - 1e-9

    def test_unknown_variant_rejected(self, profile):
        with pytest.raises(ValueError):
            build_view(profile, 16, variant="nope")


class TestExplorer:
    def test_thousand_points_one_pass_under_bound(self, trace, tmp_path):
        """The acceptance criterion: >= 1000 (sets, ways, d_p) points
        from one profiling pass in well under 10 seconds, recorded in a
        kind="explore" manifest that obs report renders."""
        started = perf_counter()
        result = explore(
            trace,
            sets=(16, 32, 64, 128, 256, 512),
            ways=(1, 2, 4, 8, 16),
            pd_max=256,
            pd_step=4,
            manifest_dir=tmp_path,
        )
        elapsed = perf_counter() - started
        assert result.n_points >= 1_000
        assert elapsed < 10.0
        assert result.manifest_path is not None

        manifests = load_manifests(tmp_path)
        assert len(manifests) == 1
        manifest = manifests[0]
        assert manifest.kind == "explore"
        assert manifest.trace_fingerprint == fingerprint_source(trace)
        assert manifest.stats["points"] == result.n_points
        assert len(manifest.extra["predictions"]) == len(result.predictions)

        from repro.obs.bench import render_report

        report = render_report(tmp_path)
        assert "## Exploration" in report
        assert "best PD" in report

    def test_frontier_is_pareto(self, trace):
        result = explore(trace, sets=(16, 64), ways=(2, 8), pd_step=16)
        frontier = result.frontier
        assert frontier, "some geometry must be Pareto-optimal"
        # No frontier point is dominated by a cheaper-or-equal one.
        for point in frontier:
            for other in result.predictions:
                if (
                    other.capacity_bytes < point.capacity_bytes
                    and other.best_hit_rate > point.best_hit_rate
                ):
                    pytest.fail(
                        f"{point.num_sets}x{point.ways} dominated by "
                        f"{other.num_sets}x{other.ways}"
                    )
        text = render_frontier(result)
        assert "pred_hit" in text

    def test_reuses_prebuilt_profile(self, trace, profile):
        result = explore(trace, sets=(16, 64), ways=(4,), profile=profile)
        assert result.profile_summary["fingerprint"] == profile.fingerprint

    def test_best_pd_is_grid_point(self, trace):
        result = explore(trace, sets=(16,), ways=(4,), pd_max=128, pd_step=8)
        prediction = result.predictions[0]
        assert prediction.best_pd in pd_grid(4, d_max=128, step=8)


class TestPDGrid:
    """Satellite: the canonical PD grid shared by sweep and explorer."""

    def test_pinned_default_grid(self):
        grid = pd_grid()
        assert grid[0] == 16 and grid[-1] == 256 and grid_step(grid) == 4
        assert grid == list(range(16, 257, 4))

    def test_runner_delegates_to_canonical_grid(self):
        from repro.sim.runner import default_pd_candidates

        assert default_pd_candidates(8, d_max=64, step=16) == pd_grid(
            8, d_max=64, step=16
        )

    def test_never_empty(self):
        assert pd_grid(32, d_max=16) == [32]

    def test_within_one_step(self):
        grid = pd_grid(16, d_max=64, step=16)
        assert within_one_step(32, 16, grid)
        assert not within_one_step(48, 16, grid)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            pd_grid(0)
        with pytest.raises(ValueError):
            pd_grid(16, step=0)


class TestGoldenDrift:
    """Satellite: seeded golden fixture with a readable diff on drift."""

    @pytest.fixture(scope="class")
    def golden(self):
        assert EXPLORE_GOLDEN_PATH.exists(), (
            f"missing {EXPLORE_GOLDEN_PATH}; run "
            "`PYTHONPATH=src python tools/regen_golden.py`"
        )
        return json.loads(EXPLORE_GOLDEN_PATH.read_text())

    @pytest.fixture(scope="class")
    def recomputed(self):
        return _load_tool("regen_golden").compute_explore_golden()

    def test_explore_golden_has_not_drifted(self, golden, recomputed):
        drift: list[str] = []
        if golden["trace_fingerprint"] != recomputed["trace_fingerprint"]:
            drift.append(
                f"  fingerprint {golden['trace_fingerprint']} -> "
                f"{recomputed['trace_fingerprint']}"
            )
        for field in sorted(set(golden["profile"]) | set(recomputed["profile"])):
            want = golden["profile"].get(field)
            have = recomputed["profile"].get(field)
            if want != have:
                drift.append(f"  profile {field}: {want} -> {have}")
        for cell in sorted(set(golden["cells"]) | set(recomputed["cells"])):
            want = golden["cells"].get(cell)
            have = recomputed["cells"].get(cell)
            if want is None:
                drift.append(f"  cell {cell}: new (not in fixture)")
                continue
            if have is None:
                drift.append(f"  cell {cell}: gone (in fixture, not recomputed)")
                continue
            for field in sorted(set(want) | set(have)):
                if want.get(field) != have.get(field):
                    drift.append(
                        f"  cell {cell}: {field} {want.get(field)} -> "
                        f"{have.get(field)}"
                    )
        assert not drift, (
            "explorer golden drifted (fixture -> recomputed); if intended, "
            "regenerate with `PYTHONPATH=src python tools/regen_golden.py`:\n"
            + "\n".join(drift)
        )


#: Reduced cross-validation grid for the test tier (CI runs the full
#: declared grid through tools/xval_explorer.py directly).
XVAL_BENCHMARKS = ("403.gcc", "483.xalancbmk.2")
XVAL_GEOMETRIES = ((16, 4), (64, 8), (256, 16))


class TestCrossValidation:
    """The load-bearing deliverable: predictions vs the simulator."""

    @pytest.fixture(scope="class")
    def xval(self):
        return _load_tool("xval_explorer")

    def test_reduced_grid_within_budget(self, xval):
        rows = xval.run_xval(
            benchmarks=XVAL_BENCHMARKS, geometries=XVAL_GEOMETRIES
        )
        violations = xval.check_budget(rows)
        assert not violations, "\n".join(violations)
        report = xval.render_markdown(rows, violations)
        assert "All cells within budget." in report

    def test_broken_model_variant_fails_the_gate(self, xval):
        """Satellite: an off-by-one set-index rescale must be caught,
        and the report must locate the drifted cells."""
        rows = xval.run_xval(
            benchmarks=("403.gcc",),
            geometries=((16, 2), (16, 4), (64, 8)),
            variant="broken-set-rescale",
        )
        violations = xval.check_budget(rows)
        assert violations, "harness failed to catch the broken variant"
        report = xval.render_markdown(rows, violations)
        assert "budget violation" in report
        # Violations are located: each names benchmark and geometry.
        assert any("403.gcc" in line for line in violations)
        assert any("x" in line.split(":")[0] for line in violations)

    def test_best_pd_agreement_on_reduced_grid(self, xval):
        rows = xval.run_xval(
            benchmarks=("403.gcc",), geometries=((64, 8), (256, 16))
        )
        for row in rows:
            step = grid_step(row["pds"])
            close = abs(row["best_pd_pred"] - row["best_pd_sim"]) <= step
            assert close or row["tie_gap_pts"] <= xval.BUDGET_TIE_PTS
