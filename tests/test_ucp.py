"""Tests for UCP and the lookahead partitioning algorithm."""

import numpy as np
import pytest

from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.partitioning.ucp import UCPPolicy, lookahead_partition
from repro.types import Access


class TestLookahead:
    def test_total_ways_distributed(self):
        curves = [np.array([0, 10, 15, 18, 20]), np.array([0, 5, 8, 10, 11])]
        allocation = lookahead_partition(curves, total_ways=4)
        assert sum(allocation) == 4
        assert all(ways >= 1 for ways in allocation)

    def test_greedy_favors_high_utility(self):
        high = np.array([0, 100, 200, 300, 400])
        low = np.array([0, 1, 2, 3, 4])
        allocation = lookahead_partition([high, low], total_ways=4)
        assert allocation[0] == 3
        assert allocation[1] == 1

    def test_lookahead_sees_past_plateau(self):
        """The hallmark of lookahead: a convex jump after a flat region."""
        # Thread A gains nothing for 1-2 ways but 100 hits at 3 ways.
        plateau_then_jump = np.array([0, 0, 0, 100, 100])
        linear = np.array([0, 10, 20, 30, 40])
        allocation = lookahead_partition([plateau_then_jump, linear], total_ways=4)
        # Marginal utility of 3 ways for A is 100/3 > 10/way for B.
        assert allocation[0] == 3

    def test_equal_curves_split_evenly(self):
        curve = np.array([0, 10, 20, 30, 40, 50, 60, 70, 80])
        allocation = lookahead_partition([curve, curve], total_ways=8)
        assert allocation == [4, 4]

    def test_min_ways_respected(self):
        zero = np.zeros(9, dtype=np.int64)
        useful = np.arange(9) * 10
        allocation = lookahead_partition([zero, useful], total_ways=8)
        assert allocation[0] >= 1

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            lookahead_partition([np.zeros(3)] * 5, total_ways=4)

    def test_no_utility_spreads_remainder(self):
        zero = np.zeros(5, dtype=np.int64)
        allocation = lookahead_partition([zero, zero], total_ways=4)
        assert sum(allocation) == 4


class TestUCPPolicy:
    def _run_two_threads(self, policy, rounds=1500, hot_blocks=12):
        """Thread 0 reuses a working set; thread 1 streams."""
        cache = SetAssociativeCache(CacheGeometry(8, 8), policy)
        import random

        rng = random.Random(0)
        fresh = 10_000
        for index in range(rounds):
            if index % 2 == 0:
                address = rng.randrange(hot_blocks) * 8  # set 0..., thread 0
                cache.access(Access(address, thread_id=0))
            else:
                cache.access(Access(fresh * 8, thread_id=1))
                fresh += 1
        return cache, policy

    def test_reuser_gets_more_ways(self):
        cache, policy = self._run_two_threads(
            UCPPolicy(num_threads=2, repartition_interval=256, num_sampled_sets=8)
        )
        assert policy.allocation[0] > policy.allocation[1]

    def test_allocation_sums_to_ways(self):
        cache, policy = self._run_two_threads(
            UCPPolicy(num_threads=2, repartition_interval=256, num_sampled_sets=8)
        )
        assert sum(policy.allocation) == 8

    def test_over_quota_thread_loses_own_lines(self):
        policy = UCPPolicy(num_threads=2, repartition_interval=10**9)
        cache = SetAssociativeCache(CacheGeometry(2, 4), policy)
        policy.allocation = [2, 2]
        # Thread 0 fills the whole set 0.
        for i in range(4):
            cache.access(Access(i * 2, thread_id=0))
        # Thread 0 is over quota (4 > 2): its next miss evicts its own LRU.
        result = cache.access(Access(8 * 2, thread_id=0))
        assert result.evicted == 0

    def test_under_quota_thread_steals(self):
        policy = UCPPolicy(num_threads=2, repartition_interval=10**9)
        cache = SetAssociativeCache(CacheGeometry(2, 4), policy)
        policy.allocation = [2, 2]
        for i in range(4):
            cache.access(Access(i * 2, thread_id=0))
        # Thread 1 (0 lines < quota 2) steals thread 0's LRU line.
        result = cache.access(Access(100, thread_id=1))
        assert result.evicted == 0
        owners = cache.owner[0]
        assert 1 in owners
