"""Software object cache: model invariants, TTL, admission, policies.

Pins the accounting contract of :mod:`repro.swcache.model` (accesses =
hits + misses, misses = fills + bypasses, byte-budget bound, read-byte
decomposition), TTL expiry semantics — including an expiry landing
exactly on a recorder window boundary — admission-rejection accounting
reconciled against :class:`repro.obs.timeseries.WindowedRecorder` sums,
and the behavioral signatures of the four policy families.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.timeseries import WindowedRecorder
from repro.swcache.driver import run_object_cache
from repro.swcache.model import ObjectCache
from repro.swcache.policies import (
    GDSFPolicy,
    PDPProtectionPolicy,
    SOFTWARE_POLICIES,
    SizeAwareLRUPolicy,
    TinyLFUAdmissionPolicy,
    make_software_policy,
)
from repro.traces.objects import (
    OP_DELETE,
    OP_GET,
    OP_PUT,
    ObjectTrace,
)


def _drive(cache: ObjectCache, requests) -> None:
    """Feed (key, size[, op[, now]]) tuples into the cache."""
    for request in requests:
        cache.access(*request)


# -- model invariants ------------------------------------------------------


@pytest.mark.parametrize("policy_name", sorted(SOFTWARE_POLICIES))
def test_accounting_invariants_hold_for_every_policy(policy_name):
    kwargs = (
        {"max_pd": 256, "bins": 32, "recompute_interval": 128}
        if policy_name == "pdp"
        else {}
    )
    cache = ObjectCache(
        4096, make_software_policy(policy_name, **kwargs), ttl=500.0
    )
    rng = np.random.default_rng(7)
    for i in range(4000):
        op = (OP_GET, OP_PUT, OP_DELETE)[int(rng.integers(0, 10)) % 3 if rng.random() < 0.2 else 0]
        cache.access(
            int(rng.integers(0, 120)),
            int(rng.integers(1, 400)),
            op,
            float(i),
        )
    stats = cache.stats
    assert stats.accesses == 4000
    assert stats.accesses == stats.hits + stats.misses
    assert stats.misses == stats.fills + stats.bypasses
    assert stats.bytes_requested == stats.bytes_hit + stats.bytes_missed
    assert cache.bytes_used <= cache.capacity_bytes
    assert cache.bytes_used == sum(entry.size for entry in cache.entries())
    assert len(cache) == cache.object_count


def test_byte_budget_never_exceeded_and_lru_order():
    cache = ObjectCache(100, SizeAwareLRUPolicy())
    cache.access(1, 40)
    cache.access(2, 40)
    cache.access(1, 40)  # 1 becomes MRU
    cache.access(3, 40)  # must evict LRU victim 2
    assert 1 in cache and 3 in cache and 2 not in cache
    assert cache.stats.evictions == 1
    assert cache.bytes_used == 80


def test_oversized_object_bypasses_without_evicting():
    cache = ObjectCache(100, SizeAwareLRUPolicy())
    cache.access(1, 60)
    hit = cache.access(2, 500)
    assert not hit
    assert cache.stats.bypasses == 1
    assert cache.stats.evictions == 0
    assert 1 in cache and 2 not in cache


def test_put_updates_size_and_delete_invalidates():
    cache = ObjectCache(1000, SizeAwareLRUPolicy())
    cache.access(1, 100, OP_PUT)
    assert cache.stats.writes == 1 and cache.stats.fills == 1
    cache.access(1, 300, OP_PUT)  # resident overwrite: hit + resize
    assert cache.stats.hits == 1
    assert cache.bytes_used == 300
    cache.access(1, 0, OP_DELETE)
    assert cache.stats.invalidations == 1
    assert 1 not in cache and cache.bytes_used == 0
    # DELETE counts as a miss and a bypass, never a fill.
    assert cache.stats.accesses == cache.stats.hits + cache.stats.misses
    assert cache.stats.misses == cache.stats.fills + cache.stats.bypasses
    assert cache.stats.bypasses == 1


def test_put_growth_beyond_budget_invalidates_instead_of_overflowing():
    cache = ObjectCache(100, SizeAwareLRUPolicy())
    cache.access(1, 80, OP_PUT)
    cache.access(1, 150, OP_PUT)  # grows past the whole budget
    assert 1 not in cache
    assert cache.bytes_used == 0
    assert cache.stats.invalidations == 1


# -- TTL expiry ------------------------------------------------------------


def test_ttl_expiry_is_lazy_and_counts_as_expiration():
    cache = ObjectCache(1000, SizeAwareLRUPolicy(), ttl=10.0)
    cache.access(1, 100, OP_GET, now=0.0)
    assert cache.access(1, 100, OP_GET, now=9.0)  # still fresh
    assert not cache.access(1, 100, OP_GET, now=10.0)  # expires AT deadline
    assert cache.stats.expirations == 1
    assert cache.stats.evictions == 0
    # The expired request re-fills: the object is resident again.
    assert 1 in cache and cache.stats.fills == 2


def test_put_refreshes_ttl_but_get_does_not():
    cache = ObjectCache(1000, SizeAwareLRUPolicy(), ttl=10.0)
    cache.access(1, 100, OP_PUT, now=0.0)
    cache.access(1, 100, OP_GET, now=8.0)  # read hit: no refresh
    assert not cache.access(1, 100, OP_GET, now=12.0)
    assert cache.stats.expirations == 1
    cache.access(2, 100, OP_PUT, now=20.0)
    cache.access(2, 100, OP_PUT, now=28.0)  # write hit: deadline -> 38
    assert cache.access(2, 100, OP_GET, now=32.0)
    assert cache.stats.expirations == 1


def test_ttl_expiry_on_exact_window_boundary():
    """An object expiring on the access that closes a recorder window
    must be attributed to the window being closed — windowed sums still
    reconcile with the aggregate counters, and the expiration is never
    double-counted or shifted into the next window."""
    window = 4
    keys = [1, 2, 3, 1, 9, 9, 9, 1]  # access index 3 re-reads key 1
    sizes = [10] * len(keys)
    # Timestamps: key 1 inserted at t=0, re-read at t=100 (expired, TTL
    # 50) — and that access is the 4th, exactly closing window 0.
    timestamps = [0, 1, 2, 100, 101, 102, 103, 104]
    trace = ObjectTrace(keys, sizes, timestamps=timestamps)
    recorder = WindowedRecorder(window_size=window)
    result = run_object_cache(
        trace,
        SizeAwareLRUPolicy(),
        capacity_bytes=10_000,
        ttl=50.0,
        timeseries=recorder,
    )
    stats = result.stats
    assert stats.expirations == 1
    windows = recorder.windows
    assert [w.accesses for w in windows] == [4, 4]
    # The boundary access (index 3) was a miss in window 0: the expired
    # entry was dropped and re-filled there, not in window 1.
    assert windows[0].misses == 4 and windows[0].fills == 4
    assert windows[1].hits == 3  # 9,9 re-reads + final key-1 re-read
    totals = recorder.totals()
    assert totals["accesses"] == stats.accesses
    assert totals["hits"] == stats.hits
    assert totals["misses"] == stats.misses
    assert totals["fills"] == stats.fills


# -- admission + recorder reconciliation -----------------------------------


def test_admission_rejections_reconcile_with_windowed_sums():
    """Bypasses (admission rejections) recorded per window must sum to
    the aggregate bypass counter, and remain a subset of misses in every
    single window."""
    rng = np.random.default_rng(21)
    n = 6000
    keys = rng.integers(0, 300, n)
    sizes = rng.integers(50, 500, n)
    trace = ObjectTrace(keys, sizes)
    recorder = WindowedRecorder(window_size=512)
    result = run_object_cache(
        trace,
        TinyLFUAdmissionPolicy(sketch_width=1 << 10),
        capacity_bytes=20_000,
        timeseries=recorder,
    )
    stats = result.stats
    assert stats.bypasses > 0  # the filter must actually reject here
    totals = recorder.totals()
    for field in ("accesses", "hits", "misses", "bypasses", "evictions", "fills"):
        assert totals[field] == getattr(stats, field), field
    assert totals["bytes_requested"] == stats.bytes_requested
    assert totals["bytes_hit"] == stats.bytes_hit
    for window in recorder.windows:
        assert window.bypasses <= window.misses
        assert window.misses == window.fills + window.bypasses
        assert window.accesses == window.hits + window.misses


def test_windows_carry_byte_axis_only_for_byte_capable_caches():
    trace = ObjectTrace([1, 2, 1, 2], [10, 10, 10, 10])
    recorder = WindowedRecorder(window_size=2)
    run_object_cache(trace, SizeAwareLRUPolicy(), 1000, timeseries=recorder)
    for window in recorder.windows:
        assert window.bytes_requested is not None
        assert window.bytes_hit is not None
    payload = recorder.to_dict()
    assert all("bytes_requested" in w for w in payload["windows"])


# -- policy families -------------------------------------------------------


def test_gdsf_prefers_evicting_large_cold_objects():
    cache = ObjectCache(1000, GDSFPolicy())
    cache.access(1, 500)  # large, cold
    for _ in range(5):
        cache.access(2, 100)  # small, hot
    cache.access(3, 600)  # forces eviction
    assert 2 in cache  # the hot small object survives
    assert 1 not in cache


def test_gdsf_refused_plan_restores_heap():
    """A fill too large for the budget must leave the GDSF heap intact:
    popped-but-unremoved candidates are re-pushed on iterator close and
    remain evictable later."""
    cache = ObjectCache(100, GDSFPolicy())
    cache.access(1, 40)
    cache.access(2, 40)
    cache.access(3, 500)  # impossible fill: plan refused, no evictions
    assert cache.stats.bypasses == 1 and cache.stats.evictions == 0
    cache.access(4, 90)  # now both 1 and 2 must be evictable
    assert 4 in cache
    assert cache.stats.evictions == 2
    assert cache.bytes_used == 90


def test_tinylfu_rejects_one_hit_wonders():
    policy = TinyLFUAdmissionPolicy(sketch_width=1 << 10)
    cache = ObjectCache(300, policy)
    for _ in range(8):
        cache.access(1, 100)
        cache.access(2, 100)
        cache.access(3, 100)
    fills_before = cache.stats.fills
    cache.access(999, 100)  # cold key vs. a hot victim: rejected
    assert cache.stats.fills == fills_before
    assert cache.stats.bypasses >= 1
    assert 999 not in cache and 1 in cache


def test_pdp_protects_objects_and_bypasses_when_all_protected():
    policy = PDPProtectionPolicy(
        max_pd=64, bins=8, recompute_interval=1 << 30, initial_pd=64
    )
    cache = ObjectCache(100, policy, ttl=None)
    cache.access(1, 50)
    cache.access(2, 50)
    assert policy.protected_count() == 2
    cache.access(3, 50)  # everything protected -> PDP bypasses
    assert cache.stats.bypasses == 1 and cache.stats.evictions == 0
    assert 3 not in cache and 1 in cache and 2 in cache


def test_pdp_non_bypass_variant_evicts_protected_when_forced():
    policy = PDPProtectionPolicy(
        max_pd=64, bins=8, recompute_interval=1 << 30, initial_pd=64,
        bypass=False,
    )
    cache = ObjectCache(100, policy)
    cache.access(1, 50)
    cache.access(2, 50)
    cache.access(3, 50)  # forced: evicts the protected object expiring first
    assert 3 in cache
    assert cache.stats.evictions == 1 and cache.stats.bypasses == 0


def test_pdp_recomputes_pd_from_sampled_reuse_distances():
    policy = PDPProtectionPolicy(
        max_pd=64, bins=16, recompute_interval=200, initial_pd=32
    )
    cache = ObjectCache(10_000, policy)
    # Strict loop over 8 keys: every reuse distance is exactly 8.
    for i in range(1000):
        cache.access(i % 8, 10, OP_GET, float(i))
    assert policy.pd_history  # recomputed at least once
    # Bin width is 4 (64/16); an all-8 RDD must pick a small PD bin.
    assert policy.current_pd <= 16
    # Recorder integration: PD and protected counts land in windows.
    recorder = WindowedRecorder(window_size=256)
    trace = ObjectTrace(
        np.arange(1000, dtype=np.int64) % 8, np.full(1000, 10, dtype=np.int64)
    )
    result = run_object_cache(
        trace,
        PDPProtectionPolicy(max_pd=64, bins=16, recompute_interval=200),
        10_000,
        timeseries=recorder,
    )
    assert all(w.pd is not None for w in recorder.windows)
    assert all(w.protected_lines is not None for w in recorder.windows)
    assert result.extra["final_pd"] == recorder.windows[-1].pd


def test_policy_registry_rejects_unknown_names_sorted():
    with pytest.raises(ValueError) as excinfo:
        make_software_policy("nope")
    message = str(excinfo.value)
    assert "gdsf, pdp, size-lru, tinylfu" in message


def test_policies_are_single_use():
    policy = SizeAwareLRUPolicy()
    ObjectCache(100, policy)
    with pytest.raises(RuntimeError):
        ObjectCache(100, policy)
