"""Tests for the utility monitors (UMON)."""

import numpy as np

from repro.partitioning.umon import UtilityMonitor


class TestUtilityMonitor:
    def test_curve_monotone_nondecreasing(self):
        import random

        rng = random.Random(0)
        monitor = UtilityMonitor(num_sets=8, ways=4, num_sampled_sets=8)
        for _ in range(1000):
            address = rng.randrange(40)
            monitor.observe(address % 8, address)
        curve = monitor.utility_curve()
        assert all(curve[i] <= curve[i + 1] for i in range(4))

    def test_zero_ways_zero_hits(self):
        monitor = UtilityMonitor(num_sets=4, ways=4, num_sampled_sets=4)
        monitor.observe(0, 1)
        monitor.observe(0, 1)
        assert monitor.utility_curve()[0] == 0

    def test_stack_position_hits(self):
        monitor = UtilityMonitor(num_sets=1, ways=4, num_sampled_sets=1)
        monitor.observe(0, 1)
        monitor.observe(0, 1)  # hit at position 0
        monitor.observe(0, 2)
        monitor.observe(0, 1)  # hit at position 1
        assert monitor.position_hits[0] == 1
        assert monitor.position_hits[1] == 1

    def test_curve_matches_lru_simulation(self):
        """UMON curve equals direct per-associativity LRU simulation."""
        import random

        from repro.memory.cache import CacheGeometry, SetAssociativeCache
        from repro.policies.lru import LRUPolicy
        from repro.types import Access

        rng = random.Random(5)
        addresses = [rng.randrange(30) for _ in range(800)]
        monitor = UtilityMonitor(num_sets=2, ways=4, num_sampled_sets=2)
        for address in addresses:
            monitor.observe(address % 2, address)
        curve = monitor.utility_curve()
        for ways in (1, 2, 4):
            cache = SetAssociativeCache(CacheGeometry(2, ways), LRUPolicy())
            for address in addresses:
                cache.access(Access(address))
            assert cache.stats.hits == curve[ways]

    def test_unsampled_sets_ignored(self):
        monitor = UtilityMonitor(num_sets=64, ways=4, num_sampled_sets=2)
        before = monitor.accesses
        unsampled = next(s for s in range(64) if not monitor.is_sampled(s))
        monitor.observe(unsampled, 1)
        assert monitor.accesses == before

    def test_decay_halves(self):
        monitor = UtilityMonitor(num_sets=1, ways=2, num_sampled_sets=1)
        for _ in range(4):
            monitor.observe(0, 7)
        monitor.decay()
        assert monitor.position_hits[0] == 1  # 3 hits halved
