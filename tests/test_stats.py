"""Tests for CacheStats and the Fig. 5 occupancy tracker."""

import pytest

from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.memory.stats import CacheStats, OccupancyTracker
from repro.policies.lru import LRUPolicy
from repro.types import Access


class TestCacheStats:
    def test_rates(self):
        stats = CacheStats(accesses=10, hits=4, misses=6, bypasses=2)
        assert stats.hit_rate == pytest.approx(0.4)
        assert stats.miss_rate == pytest.approx(0.6)
        assert stats.bypass_fraction == pytest.approx(0.2)

    def test_empty_rates_are_zero(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        assert stats.mpki(0) == 0.0

    def test_mpki(self):
        stats = CacheStats(misses=50)
        assert stats.mpki(10_000) == pytest.approx(5.0)

    def test_reset(self):
        stats = CacheStats(accesses=5, hits=5)
        stats.reset()
        assert stats.accesses == 0 and stats.hits == 0


class TestOccupancyTracker:
    def _make(self, threshold=2):
        geometry = CacheGeometry(num_sets=1, ways=2)
        cache = SetAssociativeCache(geometry, LRUPolicy())
        tracker = OccupancyTracker(short_threshold=threshold)
        cache.observers.append(tracker)
        return cache, tracker

    def test_hit_closes_interval(self):
        cache, tracker = self._make()
        cache.access(Access(0))
        cache.access(Access(1))
        cache.access(Access(0))  # hit: occupancy interval of length 2
        assert tracker.breakdown.hits == 1
        assert tracker.breakdown.occupancy_promoted == 2

    def test_eviction_classified_by_threshold(self):
        cache, tracker = self._make(threshold=2)
        cache.access(Access(0))
        cache.access(Access(1))
        cache.access(Access(2))  # evicts block 0 with occupancy 2 (short)
        assert tracker.breakdown.evictions_short == 1
        # Let block 1 sit while 2 is re-hit, then evict it: occupancy > 2.
        cache.access(Access(2))
        cache.access(Access(2))
        cache.access(Access(3))  # evicts block 1 with occupancy 5 (long)
        assert tracker.breakdown.evictions_long == 1

    def test_fractions_sum_to_one(self):
        cache, tracker = self._make()
        for address in [0, 1, 0, 2, 3, 0, 4, 1, 2]:
            cache.access(Access(address))
        access_fractions = tracker.breakdown.access_fractions()
        assert sum(access_fractions.values()) == pytest.approx(1.0)
        occupancy_fractions = tracker.breakdown.occupancy_fractions()
        assert sum(occupancy_fractions.values()) == pytest.approx(1.0)

    def test_max_eviction_occupancy(self):
        cache, tracker = self._make()
        cache.access(Access(0))
        for i in range(1, 6):
            cache.access(Access(i))
        assert tracker.breakdown.max_eviction_occupancy >= 2
