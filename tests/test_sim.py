"""Tests for the simulation drivers (single-core, multi-core, sweeps)."""

import pytest

from repro.core.pdp_policy import PDPPolicy
from repro.memory.cache import CacheGeometry
from repro.policies.lru import LRUPolicy
from repro.sim.config import ExperimentConfig, MachineConfig
from repro.sim.multi_core import run_shared_llc, single_thread_baselines
from repro.sim.runner import (
    best_static_pd,
    compare_policies,
    default_pd_candidates,
    sweep_static_pd,
)
from repro.sim.single_core import run_hierarchy, run_llc
from repro.traces.trace import Trace
from repro.workloads.spec_like import make_benchmark_trace
from repro.workloads.streams import cyclic_loop


class TestConfig:
    def test_default_llc_16_way(self):
        config = ExperimentConfig()
        assert config.associativity == 16

    def test_paper_scale(self):
        config = ExperimentConfig.paper_scale()
        assert config.llc.capacity_bytes == 2 * 1024 * 1024
        assert config.recompute_interval == 512 * 1024

    def test_shared_llc_scales_sets(self):
        config = ExperimentConfig()
        shared = config.shared_llc(4)
        assert shared.num_sets == config.num_sets * 4
        assert shared.ways == config.llc.ways

    def test_machine_config_table1(self):
        machine = MachineConfig()
        assert machine.processor_width == 4
        assert machine.llc.ways == 16
        timing = machine.timing()
        assert timing.memory_latency == 200


class TestRunLLC:
    def test_counts_consistent(self):
        trace = cyclic_loop(500, working_set=8)
        result = run_llc(trace, LRUPolicy(), CacheGeometry(4, 4))
        assert result.accesses == 500
        assert result.hits + result.misses == 500

    def test_ipc_positive(self):
        trace = cyclic_loop(500, working_set=8)
        result = run_llc(trace, LRUPolicy(), CacheGeometry(4, 4))
        assert result.ipc > 0

    def test_occupancy_tracking_optional(self):
        trace = cyclic_loop(500, working_set=8)
        with_tracking = run_llc(
            trace, LRUPolicy(), CacheGeometry(4, 4), track_occupancy=True
        )
        assert "occupancy" in with_tracking.extra
        without = run_llc(trace, LRUPolicy(), CacheGeometry(4, 4))
        assert "occupancy" not in without.extra

    def test_pd_history_exported_for_dynamic_pdp(self):
        trace = make_benchmark_trace("403.gcc", length=5000, num_sets=16)
        result = run_llc(
            trace,
            PDPPolicy(recompute_interval=1000),
            CacheGeometry(16, 16),
        )
        assert "pd_history" in result.extra
        assert "final_pd" in result.extra

    def test_mpki_uses_instruction_dilution(self):
        trace = Trace(range(100), instructions_per_access=10.0)
        result = run_llc(trace, LRUPolicy(), CacheGeometry(4, 4))
        assert result.instructions == 1000
        assert result.mpki == pytest.approx(100.0)  # all 100 miss

    def test_fresh_policy_required(self):
        policy = LRUPolicy()
        trace = cyclic_loop(10, working_set=2)
        run_llc(trace, policy, CacheGeometry(4, 4))
        with pytest.raises(RuntimeError):
            run_llc(trace, policy, CacheGeometry(4, 4))


class TestRunHierarchy:
    def test_full_path(self):
        trace = make_benchmark_trace("473.astar", length=3000, num_sets=16)
        result = run_hierarchy(trace, LRUPolicy())
        assert result.accesses == 3000
        assert result.ipc > 0
        assert "hierarchy" in result.extra


class TestSweeps:
    def test_sweep_returns_all_pds(self):
        trace = make_benchmark_trace("436.cactusADM", length=4000, num_sets=16)
        results = sweep_static_pd(trace, CacheGeometry(16, 16), [16, 64, 128])
        assert set(results) == {16, 64, 128}

    def test_best_static_pd_minimizes_misses(self):
        trace = make_benchmark_trace("436.cactusADM", length=8000, num_sets=16)
        pd, best = best_static_pd(trace, CacheGeometry(16, 16), [16, 80, 240])
        results = sweep_static_pd(trace, CacheGeometry(16, 16), [16, 80, 240])
        assert best.misses == min(r.misses for r in results.values())
        # The cactusADM peak sits at 64-80: PD 80 must win the 3-way race.
        assert pd == 80

    def test_default_candidates_grid(self):
        candidates = default_pd_candidates(16, 256, 16)
        assert candidates[0] == 16
        assert candidates[-1] == 256

    def test_compare_policies(self):
        trace = make_benchmark_trace("403.gcc", length=3000, num_sets=16)
        results = compare_policies(
            trace,
            {"lru": LRUPolicy, "pdp": lambda: PDPPolicy(static_pd=40)},
            CacheGeometry(16, 16),
        )
        assert set(results) == {"lru", "pdp"}


class TestMultiCore:
    def _traces(self, num=2):
        return [
            make_benchmark_trace("473.astar", length=3000, num_sets=32, seed=i)
            for i in range(num)
        ]

    def test_baselines_positive(self):
        traces = self._traces()
        singles = single_thread_baselines(traces, CacheGeometry(32, 16))
        assert all(s > 0 for s in singles)

    def test_shared_run_produces_metrics(self):
        from repro.policies.ta_drrip import TADRRIPPolicy

        traces = self._traces()
        result = run_shared_llc(
            traces, TADRRIPPolicy(num_threads=2), CacheGeometry(32, 16)
        )
        assert len(result.threads) == 2
        assert result.weighted > 0
        assert result.throughput > 0
        assert 0 < result.hmean <= 1.5

    def test_per_thread_stats_frozen_at_completion(self):
        from repro.policies.lru import LRUPolicy as LRU

        traces = self._traces()
        result = run_shared_llc(traces, LRU(), CacheGeometry(32, 16))
        for thread, outcome in enumerate(result.threads):
            assert outcome.accesses == len(traces[thread])

    def test_weighted_le_thread_count(self):
        """Sharing a cache never speeds a thread past its solo LRU run by
        much; W should be near or below the thread count."""
        from repro.policies.lru import LRUPolicy as LRU

        traces = self._traces()
        result = run_shared_llc(traces, LRU(), CacheGeometry(32, 16))
        assert result.weighted <= len(traces) * 1.2
