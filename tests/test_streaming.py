"""Streaming memory-boundedness: chunked runs hold O(chunk), not O(trace).

The chunk-spy stream generates its chunks lazily and counts how many are
alive at once (via weakref finalizers — CPython's refcounting frees a
chunk as soon as the drivers drop it). A streaming ``run_llc`` must
never hold more than a couple of chunks (the loop variable plus the one
being produced), and its statistics must be bit-identical to the
one-shot run of the same accesses.

The 10M-access variant is the acceptance check for the streaming
subsystem; it is marked ``slow`` and runs in CI's conformance job.
"""

from __future__ import annotations

import weakref

import numpy as np
import pytest

from repro.memory.cache import CacheGeometry
from repro.policies.lru import LRUPolicy
from repro.sim.single_core import run_llc
from repro.traces.stream import TraceStream, as_stream
from repro.traces.trace import Trace

GEOMETRY = CacheGeometry(num_sets=64, ways=8)

#: Distinct line addresses the synthetic stream cycles through — large
#: enough to force steady misses and evictions, small enough to hit too.
WORKING_SET = 10_007


def _chunk(begin: int, end: int) -> Trace:
    indexes = np.arange(begin, end, dtype=np.int64)
    return Trace((indexes * 16807) % WORKING_SET, name="big")


class ChunkSpy:
    """A lazily-generating TraceStream that counts live chunks."""

    def __init__(self, total: int, chunk_size: int):
        self.total = total
        self.chunk_size = chunk_size
        self.live = 0
        self.peak = 0
        self.produced = 0

    def _release(self):
        self.live -= 1

    def _factory(self):
        for begin in range(0, self.total, self.chunk_size):
            chunk = _chunk(begin, min(begin + self.chunk_size, self.total))
            self.live += 1
            self.peak = max(self.peak, self.live)
            self.produced += 1
            weakref.finalize(chunk, self._release)
            yield chunk

    def stream(self) -> TraceStream:
        return TraceStream(self._factory, name="big", length=self.total)


def _assert_streams_bounded(total: int, chunk_size: int) -> None:
    spy = ChunkSpy(total, chunk_size)
    streamed = run_llc(spy.stream(), LRUPolicy(), GEOMETRY)
    assert spy.produced == -(-total // chunk_size)  # every chunk consumed
    # O(chunk): at most the driver's loop variable plus the chunk the
    # factory is producing (and one in-flight garbage candidate).
    assert spy.peak <= 3, (
        f"streaming run held {spy.peak} chunks alive at once — "
        "the driver is accumulating chunks instead of streaming them"
    )
    one_shot = run_llc(_chunk(0, total), LRUPolicy(), GEOMETRY)
    for field in ("accesses", "hits", "misses", "bypasses", "evictions",
                  "instructions"):
        assert getattr(streamed, field) == getattr(one_shot, field), field


def test_streamed_run_is_chunk_bounded_and_identical():
    _assert_streams_bounded(total=400_000, chunk_size=50_000)


@pytest.mark.slow
def test_ten_million_access_trace_streams_in_chunk_memory():
    """Acceptance: a 10M-access trace flows through ``run_llc`` holding
    only O(chunk) trace data, with stats bit-identical to one-shot."""
    _assert_streams_bounded(total=10_000_000, chunk_size=1_000_000)


def test_from_trace_without_chunking_yields_the_trace_itself():
    trace = _chunk(0, 1_000)
    stream = TraceStream.from_trace(trace)
    chunks = list(stream.chunks())
    assert len(chunks) == 1 and chunks[0] is trace


def test_from_trace_chunks_are_zero_copy_views():
    trace = _chunk(0, 1_000)
    stream = TraceStream.from_trace(trace, chunk_size=300)
    chunks = list(stream.chunks())
    assert [len(c) for c in chunks] == [300, 300, 300, 100]
    assert chunks[1].addresses.base is not None  # a view, not a copy
    assert np.shares_memory(chunks[1].addresses, trace.addresses)


def test_as_stream_passthrough_and_coercion():
    trace = _chunk(0, 10)
    stream = as_stream(trace)
    assert stream.materialize().addresses.tolist() == trace.addresses.tolist()
    assert as_stream(stream) is stream
    with pytest.raises(TypeError):
        as_stream([1, 2, 3])
