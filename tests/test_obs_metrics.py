"""Live metrics registry and span tracer: the PR's observability core.

Pins the two load-bearing registry properties — the zero-cost disabled
path and lossless sharded merging (the hypothesis property test drives
random operation streams through sharded and unsharded registries and
requires identical state) — plus the Prometheus renderer, quantile
estimation, span-tree round-trip with critical-path marking, and the
torn-final-line tolerance of every JSONL log reader.
"""

from __future__ import annotations

import json
import math
from time import perf_counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.memory.fastpath import run_trace
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    METRICS,
    NUM_BUCKETS,
    MetricsRegistry,
    bucket_index,
    histogram_percentiles,
    histogram_quantile,
    render_prometheus,
)
from repro.obs.spans import (
    NULL_ACTIVE_SPAN,
    SPANS_FILENAME,
    SpanTracer,
    current_span_ids,
    read_spans,
    render_span_tree,
)
from repro.obs.telemetry import TELEMETRY
from repro.obs.trace_log import read_events, read_jsonl
from repro.policies.base import make_policy
from repro.traces.trace import Trace


class TestBuckets:
    def test_edges_land_in_expected_buckets(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(-1.0) == 0  # clock warts clamp low
        assert bucket_index(BUCKET_BOUNDS[0]) == 0
        # an exact power of two sits at the top of its own bucket
        assert bucket_index(1.0) == BUCKET_BOUNDS.index(1.0)
        assert bucket_index(1.0000001) == BUCKET_BOUNDS.index(1.0) + 1
        assert bucket_index(float(BUCKET_BOUNDS[-1])) == NUM_BUCKETS - 2
        assert bucket_index(1e9) == NUM_BUCKETS - 1  # +Inf overflow

    def test_every_bound_is_its_buckets_top(self):
        for i, bound in enumerate(BUCKET_BOUNDS):
            assert bucket_index(bound) == i
            assert bucket_index(bound * 1.01) == min(i + 1, NUM_BUCKETS - 1)


class TestRegistryBasics:
    def test_disabled_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("c")
        reg.gauge("g", 1.0)
        reg.observe("h", 0.5)
        assert reg.counters == {} and reg.gauges == {} and reg.histograms == {}
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_enabled_accumulates_and_snapshots(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("cells", 3)
        reg.inc("cells")
        reg.gauge("depth", 2.0)
        reg.gauge("depth", 5.0)
        reg.observe("lat", 0.25)
        reg.observe("lat", 0.75)
        snap = reg.snapshot()
        assert snap["counters"] == {"cells": 4}
        assert snap["gauges"] == {"depth": 5.0}
        hist = snap["histograms"]["lat"]
        assert hist["count"] == 2
        assert hist["total"] == pytest.approx(1.0)
        assert hist["min"] == 0.25 and hist["max"] == 0.75
        assert sum(hist["buckets"].values()) == 2

    def test_reset_drops_state_but_keeps_enabled(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("c")
        reg.observe("h", 0.1)
        reg.reset()
        assert reg.enabled
        assert reg.counters == {} and reg.histograms == {}

    def test_merge_into_disabled_registry_still_works(self):
        # merging is aggregation, not recording: the parent may have its
        # registry disabled while pool workers had theirs enabled
        source = MetricsRegistry(enabled=True)
        source.inc("c", 2)
        source.observe("h", 0.5)
        parent = MetricsRegistry(enabled=False)
        parent.merge_snapshot(source.snapshot())
        assert parent.counters == {"c": 2}
        assert parent.histograms["h"][0] == 1


_OPS = st.lists(
    st.tuples(
        st.sampled_from(["inc", "gauge", "observe"]),
        st.sampled_from(["a", "b", "c"]),
        st.floats(
            min_value=1e-7, max_value=500.0,
            allow_nan=False, allow_infinity=False,
        ),
    ),
    min_size=0,
    max_size=60,
)


def _apply(registry: MetricsRegistry, ops) -> None:
    for kind, name, value in ops:
        if kind == "inc":
            registry.inc(name, int(value) + 1)
        elif kind == "gauge":
            registry.gauge(name, value)
        else:
            registry.observe(name, value)


class TestShardedMergeProperty:
    @settings(max_examples=60, deadline=None)
    @given(ops=_OPS, num_shards=st.integers(min_value=1, max_value=5))
    def test_sharded_merge_equals_unsharded(self, ops, num_shards):
        """Splitting an op stream into contiguous shards and merging the
        shard snapshots in order must reproduce the unsharded registry:
        counters and histogram buckets sum exactly, gauges keep the
        globally-last write, min/max survive the merge."""
        whole = MetricsRegistry(enabled=True)
        _apply(whole, ops)

        merged = MetricsRegistry(enabled=True)
        per_shard = max(1, math.ceil(len(ops) / num_shards)) if ops else 1
        for start in range(0, len(ops), per_shard):
            shard = MetricsRegistry(enabled=True)
            _apply(shard, ops[start:start + per_shard])
            merged.merge_snapshot(shard.snapshot())

        want, got = whole.snapshot(), merged.snapshot()
        assert got["counters"] == want["counters"]
        assert got["gauges"] == want["gauges"]
        assert got["histograms"].keys() == want["histograms"].keys()
        for name, hist in want["histograms"].items():
            other = got["histograms"][name]
            assert other["count"] == hist["count"]
            assert other["buckets"] == hist["buckets"]
            assert other["min"] == hist["min"]
            assert other["max"] == hist["max"]
            # totals are float sums: association differs across shards
            assert other["total"] == pytest.approx(hist["total"])


class TestQuantiles:
    def test_empty_histogram_has_no_quantiles(self):
        empty = {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                 "buckets": {}}
        assert histogram_quantile(empty, 0.5) is None
        summary = histogram_percentiles(empty)
        assert summary == {"count": 0, "mean": None, "p50": None,
                           "p90": None, "p99": None}

    def test_single_observation_reports_itself(self):
        reg = MetricsRegistry(enabled=True)
        reg.observe("h", 0.125)
        hist = reg.snapshot()["histograms"]["h"]
        for q in (0.01, 0.5, 0.99):
            assert histogram_quantile(hist, q) == pytest.approx(0.125)

    def test_quantiles_are_ordered_and_clamped(self):
        reg = MetricsRegistry(enabled=True)
        rng = np.random.default_rng(7)
        values = rng.uniform(0.001, 0.2, size=500)
        for value in values.tolist():
            reg.observe("h", value)
        hist = reg.snapshot()["histograms"]["h"]
        summary = histogram_percentiles(hist)
        assert summary["count"] == 500
        assert summary["p50"] <= summary["p90"] <= summary["p99"]
        assert hist["min"] <= summary["p50"] <= hist["max"]
        assert summary["p99"] <= hist["max"]
        # the log2-bucket estimate of the median lands within the
        # containing bucket of the true median (factor-of-two bound)
        true_median = float(np.median(values))
        assert summary["p50"] <= true_median * 2.0
        assert summary["p50"] >= true_median / 2.0


class TestPrometheusRender:
    def test_renders_valid_text_exposition(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("grid.cells_done", 5)
        reg.gauge("service.queue_depth", 2.0)
        reg.observe("grid.cell_runtime_s", 0.03)
        reg.observe("grid.cell_runtime_s", 0.07)
        text = render_prometheus(reg.snapshot())
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "# TYPE repro_grid_cells_done counter" in lines
        assert "repro_grid_cells_done 5" in lines
        assert "# TYPE repro_service_queue_depth gauge" in lines
        assert "# TYPE repro_grid_cell_runtime_s histogram" in lines
        assert 'repro_grid_cell_runtime_s_bucket{le="+Inf"} 2' in lines
        assert "repro_grid_cell_runtime_s_count 2" in lines
        # cumulative bucket counts are monotonically non-decreasing
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in lines
            if line.startswith("repro_grid_cell_runtime_s_bucket")
        ]
        assert counts == sorted(counts) and counts[-1] == 2

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(
            {"counters": {}, "gauges": {}, "histograms": {}}
        ) == ""


class TestDisabledOverhead:
    def test_disabled_calls_touch_no_state_and_stay_cheap(self):
        reg = MetricsRegistry(enabled=False)
        start = perf_counter()
        for _ in range(10_000):
            reg.observe("h", 0.001)
            reg.inc("c")
        elapsed = perf_counter() - start
        assert reg.histograms == {} and reg.counters == {}
        # one attribute test + return; 5 us/call is an absurdly generous
        # ceiling that still catches an accidentally-enabled hot path
        assert elapsed < 0.1

    def test_engine_ab_disabled_not_slower_than_enabled(self):
        """Back-to-back A/B on the fastpath engine: with both observability
        sinks disabled the run must not be materially slower than with
        them enabled (the gating check is the only extra work)."""
        rng = np.random.default_rng(3)
        trace = Trace(rng.integers(0, 4096, size=20_000), name="ab")
        geometry = CacheGeometry(num_sets=32, ways=4)

        def once() -> float:
            cache = SetAssociativeCache(geometry, make_policy("lru"))
            start = perf_counter()
            run_trace(cache, trace)
            return perf_counter() - start

        was_tel, was_met = TELEMETRY.enabled, METRICS.enabled
        try:
            TELEMETRY.disable(), METRICS.disable()
            once()  # warm caches
            disabled = min(once() for _ in range(3))
            TELEMETRY.enable(), METRICS.enable()
            enabled = min(once() for _ in range(3))
        finally:
            TELEMETRY.enabled, METRICS.enabled = was_tel, was_met
        # loose 25% margin: the point is catching gross gating mistakes,
        # not micro-benchmarking in a shared CI runner
        assert disabled <= enabled * 1.25


class TestSpans:
    def test_disabled_tracer_is_inert_singleton(self, tmp_path):
        tracer = SpanTracer.for_dir(None)
        assert not tracer.enabled
        span = tracer.span("nothing", key="value")
        assert span is NULL_ACTIVE_SPAN
        with span as active:
            active.set("still", "no-op")
            assert current_span_ids() is None
        tracer.close()

    def test_round_trip_emit_parse_render(self, tmp_path):
        with SpanTracer.for_dir(tmp_path) as tracer:
            with tracer.span("job", kind="matrix") as job:
                assert current_span_ids() is not None
                with tracer.span("resume-scan") as scan:
                    scan.set("skipped", 3)
                with tracer.span("run-grid"):
                    tracer.emit("cell:lru", 0.0, 0.5,
                                {"status": "ok", "runtime_s": 0.5})
                    tracer.emit("cell:pdp", 0.0, 0.1,
                                {"status": "ok", "runtime_s": 0.1})
                job.set("state", "done")
            assert current_span_ids() is None

        spans = read_spans(tmp_path / SPANS_FILENAME)
        assert [s["name"] for s in spans] == [
            "resume-scan", "cell:lru", "cell:pdp", "run-grid", "job",
        ]
        by_name = {s["name"]: s for s in spans}
        assert len({s["trace_id"] for s in spans}) == 1
        assert by_name["job"]["parent_id"] is None
        assert by_name["resume-scan"]["parent_id"] == by_name["job"]["span_id"]
        assert by_name["cell:lru"]["parent_id"] == by_name["run-grid"]["span_id"]
        assert by_name["job"]["attributes"]["state"] == "done"
        assert by_name["resume-scan"]["attributes"]["skipped"] == 3

        text = render_span_tree(spans)
        lines = text.splitlines()
        assert lines[0].startswith("job")
        # the critical path runs job -> run-grid -> cell:lru (the
        # longest-duration child at each level)
        assert any("job" in ln and ln.endswith("*") for ln in lines)
        assert any("run-grid" in ln and ln.endswith("*") for ln in lines)
        assert any("cell:lru" in ln and ln.endswith("*") for ln in lines)
        assert not any("cell:pdp" in ln and ln.endswith("*") for ln in lines)
        assert any("[ok]" in ln for ln in lines)
        assert "5 spans, 1 root(s); * = critical path" in text

    def test_exception_in_span_records_error_attribute(self, tmp_path):
        tracer = SpanTracer.for_dir(tmp_path)
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        tracer.close()
        (span,) = read_spans(tmp_path / SPANS_FILENAME)
        assert span["attributes"]["error"] == "ValueError"

    def test_render_empty(self):
        assert render_span_tree([]) == "(no spans recorded)\n"


class TestTornLineTolerance:
    def _lines(self, n: int) -> list[str]:
        return [json.dumps({"kind": "finished", "key": f"k{i}"})
                for i in range(n)]

    def test_torn_final_line_warns_and_skips(self, tmp_path):
        log = tmp_path / "events.jsonl"
        log.write_text("\n".join(self._lines(2)) + '\n{"kind": "fini')
        with pytest.warns(RuntimeWarning, match="torn final line"):
            events = read_events(log)
        assert [e["key"] for e in events] == ["k0", "k1"]

    def test_mid_file_corruption_still_raises(self, tmp_path):
        log = tmp_path / "events.jsonl"
        lines = self._lines(2)
        log.write_text(lines[0] + "\n{broken\n" + lines[1] + "\n")
        with pytest.raises(json.JSONDecodeError):
            read_events(log)

    def test_clean_file_reads_without_warning(self, tmp_path):
        import warnings

        log = tmp_path / "spans.jsonl"
        log.write_text("\n".join(self._lines(3)) + "\n")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert len(read_jsonl(log, what="span log")) == 3
