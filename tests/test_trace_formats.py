"""Round-trip, property, and corruption tests for the trace formats.

Covers the three chunked on-disk formats (native ``.trz``, ChampSim-style
binary, CSV): save -> load -> save identity, empty traces, multi-thread
id preservation, chunk-boundary invariance, and loud failures on
truncated or corrupt files — never a silent partial read.
"""

from __future__ import annotations

import gzip

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.formats import (
    TraceFormatError,
    convert_trace,
    detect_format,
    format_names,
    open_trace,
    trace_info,
    write_stream,
)
from repro.traces.formats import champsim, csvfmt, native
from repro.traces.stream import DEFAULT_CHUNK_SIZE, TraceStream, as_stream
from repro.traces.trace import Trace


def _trace(n=100, seed=0, threads=2, name="t", ipa=2.5) -> Trace:
    rng = np.random.default_rng(seed)
    return Trace(
        rng.integers(-(1 << 40), 1 << 40, size=n),
        pcs=rng.integers(0, 1 << 30, size=n),
        thread_ids=rng.integers(0, threads, size=n),
        name=name,
        instructions_per_access=ipa,
    )


def _columns(trace: Trace):
    return (
        trace.addresses.tolist(),
        trace.pcs.tolist(),
        trace.thread_ids.tolist(),
    )


FORMAT_CASES = [
    ("native", "t.trz"),
    ("champsim", "t.champsim"),
    ("champsim", "t.champsim.gz"),
    ("csv", "t.csv"),
    ("csv", "t.csv.gz"),
]


@pytest.mark.parametrize("format_name,filename", FORMAT_CASES)
def test_round_trip_preserves_columns(tmp_path, format_name, filename):
    trace = _trace(threads=3)
    path = tmp_path / filename
    written = write_stream(as_stream(trace), path, format=format_name)
    assert written == len(trace)
    assert detect_format(path) == format_name
    loaded = open_trace(path).materialize()
    assert _columns(loaded) == _columns(trace)


@pytest.mark.parametrize("format_name,filename", FORMAT_CASES)
def test_save_load_save_is_byte_identical(tmp_path, format_name, filename):
    """Second save of a loaded trace reproduces the first file exactly."""
    trace = _trace()
    first = tmp_path / filename
    second = tmp_path / ("again-" + filename)
    write_stream(as_stream(trace), first, format=format_name)
    write_stream(open_trace(first), second, format=format_name)
    if filename.endswith(".gz") or format_name == "native":
        # gzip streams embed no timestamp here (mtime of a fresh write
        # differs); compare decompressed payloads instead.
        assert gzip.decompress(first.read_bytes()) == gzip.decompress(
            second.read_bytes()
        )
    else:
        assert first.read_bytes() == second.read_bytes()


@pytest.mark.parametrize("format_name,filename", FORMAT_CASES)
def test_read_is_chunk_size_invariant(tmp_path, format_name, filename):
    trace = _trace(n=257)
    path = tmp_path / filename
    write_stream(TraceStream.from_trace(trace, chunk_size=41), path,
                 format=format_name)
    for chunk_size in (1, 7, 100, 10_000):
        loaded = open_trace(path, chunk_size=chunk_size).materialize()
        assert _columns(loaded) == _columns(trace)


@pytest.mark.parametrize("format_name,filename", FORMAT_CASES)
def test_empty_trace_round_trips(tmp_path, format_name, filename):
    path = tmp_path / filename
    write_stream(as_stream(Trace([], name="empty")), path, format=format_name)
    loaded = open_trace(path, format=format_name).materialize()
    assert len(loaded) == 0


def test_native_preserves_metadata(tmp_path):
    trace = _trace(name="astar-lake", ipa=12.25)
    path = tmp_path / "t.trz"
    write_stream(as_stream(trace), path)
    stream = open_trace(path)
    assert stream.name == "astar-lake"
    assert stream.instructions_per_access == 12.25
    header = native.read_header(path)
    assert header["version"] == native.VERSION


def test_champsim_thread_ids_survive(tmp_path):
    trace = Trace([1, 2, 3, 4], thread_ids=[0, 3, 1, 2], name="mt")
    path = tmp_path / "t.champsim"
    champsim.write_chunks(path, [trace])
    loaded = open_trace(path).materialize()
    assert loaded.thread_ids.tolist() == [0, 3, 1, 2]


def test_csv_accepts_hex_comments_and_sparse_columns(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text(
        "# a comment\n"
        "\n"
        "0x10\n"
        "17,0x20\n"
        "18,33,1\n"
    )
    loaded = open_trace(path).materialize()
    assert loaded.addresses.tolist() == [16, 17, 18]
    assert loaded.pcs.tolist() == [0, 32, 33]
    assert loaded.thread_ids.tolist() == [0, 0, 1]


def test_csv_malformed_line_names_the_line(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("1\n2\nnot-a-number\n")
    with pytest.raises(TraceFormatError, match=r"t\.csv:3"):
        open_trace(path).materialize()


def test_csv_too_many_columns_rejected(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("1,2,3,4\n")
    with pytest.raises(TraceFormatError, match="at most 3 columns"):
        open_trace(path).materialize()


def test_champsim_truncated_file_rejected(tmp_path):
    trace = _trace(n=10, threads=1)
    path = tmp_path / "t.champsim"
    champsim.write_chunks(path, [trace])
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) - 5])  # tear off part of a record
    with pytest.raises(TraceFormatError, match="truncated champsim"):
        open_trace(path).materialize()


def test_native_truncation_mid_block_rejected(tmp_path):
    path = tmp_path / "t.trz"
    write_stream(as_stream(_trace(n=50)), path)
    payload = gzip.decompress(path.read_bytes())
    path.write_bytes(gzip.compress(payload[: len(payload) - 30]))
    with pytest.raises(TraceFormatError, match="truncated native trace"):
        open_trace(path, format="native").materialize()


def test_native_truncation_at_block_boundary_rejected(tmp_path):
    """Cutting exactly before the terminator still fails (no silent
    partial read even when every block is intact)."""
    path = tmp_path / "t.trz"
    write_stream(as_stream(_trace(n=50)), path)
    payload = gzip.decompress(path.read_bytes())
    path.write_bytes(gzip.compress(payload[: len(payload) - 16]))
    with pytest.raises(TraceFormatError, match="truncated native trace"):
        open_trace(path, format="native").materialize()


def test_native_trailer_total_mismatch_rejected(tmp_path):
    path = tmp_path / "t.trz"
    write_stream(as_stream(_trace(n=50)), path)
    payload = bytearray(gzip.decompress(path.read_bytes()))
    payload[-8:] = (51).to_bytes(8, "little")  # lie about the total
    path.write_bytes(gzip.compress(bytes(payload)))
    with pytest.raises(TraceFormatError, match="trailer declares"):
        open_trace(path, format="native").materialize()


def test_native_bad_magic_rejected(tmp_path):
    path = tmp_path / "t.trz"
    path.write_bytes(gzip.compress(b"NOTATRACE" + b"\x00" * 32))
    with pytest.raises(TraceFormatError, match="bad magic"):
        open_trace(path, format="native").materialize()


def test_native_unsupported_version_rejected(tmp_path):
    path = tmp_path / "t.trz"
    write_stream(as_stream(_trace(n=3)), path)
    payload = bytearray(gzip.decompress(path.read_bytes()))
    payload[len(native.MAGIC)] = 99
    path.write_bytes(gzip.compress(bytes(payload)))
    with pytest.raises(TraceFormatError, match="version 99"):
        open_trace(path, format="native").materialize()


def test_detect_format_unknown_suffix_sniffs_content(tmp_path):
    path = tmp_path / "mystery.bin"
    write_stream(as_stream(_trace(n=5)), path, format="native")
    assert detect_format(path) == "native"


def test_detect_format_unidentifiable_raises(tmp_path):
    path = tmp_path / "mystery.bin"
    path.write_bytes(b"\x00" * 64)
    with pytest.raises(TraceFormatError, match="cannot infer trace format"):
        detect_format(path)


def test_open_trace_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        open_trace(tmp_path / "nope.trz")


def test_npz_write_rejected(tmp_path):
    with pytest.raises(TraceFormatError, match="read-only"):
        write_stream(as_stream(_trace(n=3)), tmp_path / "t.npz", format="npz")


def test_convert_between_all_writable_formats(tmp_path):
    trace = Trace([5, 6, 7], pcs=[1, 2, 3], thread_ids=[0, 1, 0], name="c")
    src = tmp_path / "src.csv"
    csvfmt.write_chunks(src, [trace])
    for filename in ("a.trz", "b.champsim", "c.csv.gz"):
        dst = tmp_path / filename
        copied = convert_trace(src, dst)
        assert copied == 3
        assert _columns(open_trace(dst).materialize()) == _columns(trace)


def test_trace_info_reports_the_stream(tmp_path):
    trace = Trace([10, -4, 99], thread_ids=[0, 2, 2], name="info")
    path = tmp_path / "t.trz"
    write_stream(as_stream(trace), path)
    info = trace_info(path)
    assert info["format"] == "native"
    assert info["accesses"] == 3
    assert info["threads"] == [0, 2]
    assert info["min_address"] == -4
    assert info["max_address"] == 99
    # The CLI fingerprint matches what a manifest records for this file.
    from repro.obs.manifest import trace_fingerprint

    assert info["fingerprint"] == trace_fingerprint(
        open_trace(path).materialize()
    )


def test_format_names_is_stable():
    assert format_names() == ["champsim", "csv", "native", "npz", "objectstore"]


def test_stream_is_reiterable(tmp_path):
    path = tmp_path / "t.trz"
    write_stream(TraceStream.from_trace(_trace(n=64), chunk_size=10), path)
    stream = open_trace(path)
    first = [len(c) for c in stream.chunks()]
    second = [len(c) for c in stream.chunks()]
    assert first == second and sum(first) == 64


# --- property tests (hypothesis) -------------------------------------------

_traces = st.builds(
    lambda addrs, pcs, tids, name, ipa: Trace(
        np.asarray(addrs, dtype=np.int64),
        pcs=np.asarray((pcs * len(addrs))[: len(addrs)] or [], dtype=np.int64),
        thread_ids=np.asarray(
            (tids * len(addrs))[: len(addrs)] or [], dtype=np.int64
        ),
        name=name,
        instructions_per_access=ipa,
    ),
    st.lists(st.integers(min_value=-(2**63), max_value=2**63 - 1), max_size=60),
    st.lists(st.integers(min_value=0, max_value=2**62), min_size=1, max_size=8),
    st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=4),
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        max_size=12,
    ),
    st.floats(min_value=0.25, max_value=64.0, allow_nan=False),
)


@settings(max_examples=40, deadline=None)
@given(trace=_traces, chunk_size=st.integers(min_value=1, max_value=70))
def test_native_round_trip_property(tmp_path_factory, trace, chunk_size):
    path = tmp_path_factory.mktemp("prop") / "t.trz"
    write_stream(TraceStream.from_trace(trace, chunk_size=chunk_size), path)
    stream = open_trace(path)
    loaded = stream.materialize()
    assert _columns(loaded) == _columns(trace)
    assert stream.name == trace.name
    assert stream.instructions_per_access == pytest.approx(
        trace.instructions_per_access
    )


@settings(max_examples=30, deadline=None)
@given(trace=_traces)
def test_csv_round_trip_property(tmp_path_factory, trace):
    path = tmp_path_factory.mktemp("prop") / "t.csv"
    csvfmt.write_chunks(path, [trace])
    loaded = open_trace(path).materialize()
    assert _columns(loaded) == _columns(trace)


@settings(max_examples=30, deadline=None)
@given(trace=_traces, cut=st.integers(min_value=1, max_value=24))
def test_native_never_reads_partial_property(tmp_path_factory, trace, cut):
    """Any truncation of the decompressed payload either errors or (never)
    yields a short trace — loud failure is the only acceptable outcome."""
    path = tmp_path_factory.mktemp("prop") / "t.trz"
    write_stream(as_stream(trace), path)
    payload = gzip.decompress(path.read_bytes())
    if cut >= len(payload):
        return
    path.write_bytes(gzip.compress(payload[: len(payload) - cut]))
    with pytest.raises(TraceFormatError):
        open_trace(path, format="native").materialize()


def test_default_chunk_size_is_sane():
    assert DEFAULT_CHUNK_SIZE >= 1_000
