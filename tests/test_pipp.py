"""Tests for PIPP."""

import random

from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.partitioning.pipp import PIPPPolicy
from repro.types import Access


class TestPIPP:
    def test_insertion_at_allocation_position(self):
        policy = PIPPPolicy(num_threads=2, repartition_interval=10**9, seed=0)
        cache = SetAssociativeCache(CacheGeometry(1, 4), policy)
        policy.allocation = [3, 1]
        way = cache.access(Access(0, thread_id=0)).way
        assert policy.priority_of(0, way) == 3
        way = cache.access(Access(1, thread_id=1)).way
        assert policy.priority_of(0, way) == 1

    def test_victim_is_lowest_priority(self):
        policy = PIPPPolicy(num_threads=1, repartition_interval=10**9, seed=0)
        cache = SetAssociativeCache(CacheGeometry(1, 2), policy)
        policy.allocation = [1]
        cache.access(Access(0))
        cache.access(Access(1))
        bottom_way = policy._order[0][0]
        bottom_tag = cache.tags[0][bottom_way]
        result = cache.access(Access(2))
        assert result.evicted == bottom_tag

    def test_promotion_moves_one_slot(self):
        policy = PIPPPolicy(num_threads=1, p_prom=1.0, repartition_interval=10**9)
        cache = SetAssociativeCache(CacheGeometry(1, 4), policy)
        policy.allocation = [2]
        way = cache.access(Access(0)).way
        before = policy.priority_of(0, way)
        cache.access(Access(0))
        assert policy.priority_of(0, way) == min(before + 1, 3)

    def test_no_promotion_with_zero_probability(self):
        policy = PIPPPolicy(num_threads=1, p_prom=0.0, repartition_interval=10**9)
        cache = SetAssociativeCache(CacheGeometry(1, 4), policy)
        policy.allocation = [2]
        way = cache.access(Access(0)).way
        before = policy.priority_of(0, way)
        cache.access(Access(0))
        assert policy.priority_of(0, way) == before

    def test_streaming_thread_inserts_at_bottom(self):
        policy = PIPPPolicy(num_threads=2, repartition_interval=10**9, p_stream=1)
        cache = SetAssociativeCache(CacheGeometry(1, 4), policy)
        policy.allocation = [3, 3]
        policy.streaming[1] = True
        way = cache.access(Access(5, thread_id=1)).way
        assert policy.priority_of(0, way) == 1

    def test_streaming_detection(self):
        policy = PIPPPolicy(
            num_threads=2,
            repartition_interval=512,
            theta_m=100,
            theta_mr=0.9,
            num_sampled_sets=8,
        )
        cache = SetAssociativeCache(CacheGeometry(8, 4), policy)
        fresh = 1000
        rng = random.Random(0)
        for index in range(2048):
            if index % 2 == 0:
                cache.access(Access(fresh * 8, thread_id=1))  # pure stream
                fresh += 1
            else:
                cache.access(Access(rng.randrange(6) * 8, thread_id=0))
        assert policy.streaming[1]
        assert not policy.streaming[0]

    def test_pseudo_partitioning_protects_reuser(self):
        """Reusing thread keeps hitting despite a streaming co-runner.

        6 hot blocks interleaved with a stream give an LRU reuse gap of
        12 distinct lines > 8 ways (LRU thrashes); PIPP's low-priority
        stream insertion must preserve the hot set.
        """
        from repro.policies.lru import LRUPolicy

        def run(policy):
            cache = SetAssociativeCache(CacheGeometry(8, 8), policy)
            fresh = 1000
            hits_t0 = 0
            for index in range(8000):
                if index % 2 == 0:
                    address = (index // 2 % 6) * 8  # 6 hot blocks in set 0
                    hits_t0 += cache.access(Access(address, thread_id=0)).hit
                else:
                    cache.access(Access(fresh * 8, thread_id=1))
                    fresh += 1
            return hits_t0

        pipp_hits = run(
            PIPPPolicy(num_threads=2, repartition_interval=512, num_sampled_sets=8)
        )
        lru_hits = run(LRUPolicy())
        assert pipp_hits > lru_hits
        assert pipp_hits > 2000
