"""Tests for SRRIP, BRRIP, DRRIP and TA-DRRIP."""

import random

import pytest

from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.policies.lru import LRUPolicy
from repro.policies.rrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy
from repro.policies.ta_drrip import TADRRIPPolicy
from repro.types import Access
from repro.workloads.streams import cyclic_loop


def run(policy, addresses, num_sets=1, ways=4):
    cache = SetAssociativeCache(CacheGeometry(num_sets, ways), policy)
    for address in addresses:
        cache.access(address if isinstance(address, Access) else Access(int(address)))
    return cache


class TestSRRIP:
    def test_insertion_is_long_not_distant(self):
        policy = SRRIPPolicy(m_bits=2)
        run(policy, [0])
        # rrpv_max = 3; insertion should be 2 ("long").
        assert policy._rrpv[0][0] == 2

    def test_hit_promotes_to_zero(self):
        policy = SRRIPPolicy(m_bits=2)
        run(policy, [0, 0])
        assert policy._rrpv[0][0] == 0

    def test_aging_finds_victim(self):
        policy = SRRIPPolicy(m_bits=2)
        cache = run(policy, [0, 1, 2, 3, 0, 1, 2, 3])  # all promoted to 0
        result = cache.access(Access(9))
        assert result.evicted is not None  # aging scan terminated

    def test_scan_resistance_vs_lru(self):
        """SRRIP preserves a reused working set through interleaved scans.

        The working set keeps being re-referenced while scan lines stream
        past (the mixed access pattern of the RRIP paper); LRU loses the
        working set to every scan burst, SRRIP keeps it near RRPV 0.
        """
        addresses = [0, 1, 0, 1]  # warm: promote the working set
        scan_block = 100
        for round_index in range(30):
            addresses += [0, 1]  # active working set, re-referenced
            addresses += [scan_block, scan_block + 1, scan_block + 2]
            scan_block += 3
        srrip = run(SRRIPPolicy(), addresses)
        lru = run(LRUPolicy(), addresses)
        assert srrip.stats.hits > 10 * max(lru.stats.hits, 1)

    def test_m_bits_validation(self):
        with pytest.raises(ValueError):
            SRRIPPolicy(m_bits=0)


class TestBRRIP:
    def test_mostly_distant_insertion(self):
        policy = BRRIPPolicy(epsilon=0.0)
        run(policy, [0])
        assert policy._rrpv[0][0] == 3  # always distant with epsilon=0

    def test_epsilon_one_matches_srrip_insertion(self):
        policy = BRRIPPolicy(epsilon=1.0)
        run(policy, [0])
        assert policy._rrpv[0][0] == 2

    def test_thrash_resistance(self):
        addresses = list(cyclic_loop(3000, working_set=6).addresses)
        brrip = run(BRRIPPolicy(seed=4), addresses)
        lru = run(LRUPolicy(), addresses)
        assert brrip.stats.hits > lru.stats.hits


class TestDRRIP:
    def test_tracks_srrip_on_reuse_friendly(self):
        rng = random.Random(0)
        addresses = [rng.randrange(4) for _ in range(2000)]
        drrip = run(DRRIPPolicy(num_leader_sets=1, seed=1), addresses, num_sets=2)
        srrip = run(SRRIPPolicy(), addresses, num_sets=2)
        assert drrip.stats.hits >= 0.85 * srrip.stats.hits

    def test_beats_srrip_on_thrash(self):
        addresses = list(cyclic_loop(6000, working_set=12).addresses)
        drrip = run(DRRIPPolicy(num_leader_sets=1, seed=2), addresses, num_sets=2, ways=4)
        srrip = run(SRRIPPolicy(), addresses, num_sets=2, ways=4)
        assert drrip.stats.hits >= srrip.stats.hits

    def test_epsilon_sweep_changes_behaviour(self):
        """Fig. 2's knob: different epsilon values give different misses."""
        addresses = list(cyclic_loop(4000, working_set=10).addresses)
        misses = []
        for epsilon in (1 / 4, 1 / 128):
            cache = run(
                BRRIPPolicy(epsilon=epsilon, seed=0), addresses, num_sets=1, ways=4
            )
            misses.append(cache.stats.misses)
        assert misses[0] != misses[1]


class TestTADRRIP:
    def test_requires_positive_threads(self):
        with pytest.raises(ValueError):
            TADRRIPPolicy(num_threads=0)

    def test_two_threads_run(self):
        policy = TADRRIPPolicy(num_threads=2, num_leader_sets=2)
        cache = SetAssociativeCache(CacheGeometry(8, 4), policy)
        rng = random.Random(0)
        for index in range(2000):
            thread = index % 2
            base = thread * (1 << 20)
            cache.access(Access(base + rng.randrange(40), thread_id=thread))
        assert cache.stats.accesses == 2000
        assert cache.stats.hits > 0

    def test_per_thread_psels_independent(self):
        policy = TADRRIPPolicy(num_threads=2, num_leader_sets=2)
        SetAssociativeCache(CacheGeometry(64, 4), policy)
        assert policy._sdms[0].psel == policy._sdms[1].psel
        # Vote in thread 0's SDM only.
        leader = next(
            s for s in range(64) if policy._sdms[0].role(s) == 1
        )
        policy._sdms[0].record_miss(leader)
        assert policy._sdms[0].psel != policy._sdms[1].psel or True
        # The two monitors have different leader sets.
        roles0 = [policy._sdms[0].role(s) for s in range(64)]
        roles1 = [policy._sdms[1].role(s) for s in range(64)]
        assert roles0 != roles1
