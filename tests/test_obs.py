"""Observability layer: manifests, telemetry, progress, event log."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.memory.cache import CacheGeometry
from repro.obs.manifest import (
    ENV_MANIFEST_DIR,
    Manifest,
    TaskFailure,
    load_manifests,
    resolve_manifest_dir,
    summarize_manifests,
    trace_fingerprint,
)
from repro.obs.progress import ProgressReporter
from repro.obs.telemetry import NULL_SPAN, Telemetry
from repro.obs.trace_log import TraceLog, read_events
from repro.policies.lru import LRUPolicy
from repro.sim.parallel import run_matrix
from repro.sim.single_core import run_llc
from repro.traces.trace import Trace

REPO_ROOT = Path(__file__).parent.parent
GEOMETRY = CacheGeometry(num_sets=16, ways=4)


class ExplodingPolicy(LRUPolicy):
    """Raises from inside the simulation — a stand-in for a policy bug."""

    def on_fill(self, set_index, way, access):
        raise RuntimeError("policy exploded")


def _trace(seed: int = 9, n: int = 2000) -> Trace:
    rng = np.random.default_rng(seed)
    addresses = rng.integers(0, 500, size=n)
    return Trace(addresses, name=f"obs-test-{seed}")


class TestManifest:
    def _rich_manifest(self) -> Manifest:
        return Manifest(
            kind="llc",
            workload="obs-test",
            policy="LRUPolicy",
            label="lru",
            seed=7,
            config={"num_sets": 16, "ways": 4, "line_size": 64},
            trace_fingerprint="abc123",
            git_sha="deadbeef",
            wall_time_s=0.5,
            accesses=2000,
            accesses_per_sec=4000.0,
            stats={"hits": 1200, "misses": 800},
            metrics={"hit_rate": 0.6},
            telemetry={"counters": {"x": 1}, "timers": {}},
            tasks=[{"key": "lru", "status": "finished"}],
            failures=[
                TaskFailure(
                    key="boom",
                    policy="ExplodingPolicy",
                    workload="obs-test",
                    error_type="RuntimeError",
                    message="policy exploded",
                    traceback_summary="RuntimeError: policy exploded",
                )
            ],
            extra={"note": "round-trip me"},
        )

    def test_save_load_round_trip(self, tmp_path):
        manifest = self._rich_manifest()
        path = manifest.save(tmp_path)
        assert path == tmp_path / f"{manifest.run_id}.json"
        assert Manifest.load(path) == manifest

    def test_saved_file_is_plain_json(self, tmp_path):
        manifest = self._rich_manifest()
        path = manifest.save(tmp_path)
        data = json.loads(path.read_text())
        assert data["schema_version"] == manifest.schema_version
        assert data["failures"][0]["error_type"] == "RuntimeError"
        # no stray temp files left behind by the atomic write
        assert list(tmp_path.glob("*.tmp")) == []

    def test_unknown_fields_survive_in_extra(self, tmp_path):
        manifest = self._rich_manifest()
        data = manifest.to_dict()
        data["from_the_future"] = 42
        rebuilt = Manifest.from_dict(data)
        assert rebuilt.extra["_unknown"] == {"from_the_future": 42}

    def test_load_manifests_sorted_and_tolerant(self, tmp_path):
        first = Manifest(kind="llc", workload="a", policy="p", run_id="00-a")
        second = Manifest(kind="llc", workload="b", policy="p", run_id="00-b")
        second.save(tmp_path)
        first.save(tmp_path)
        (tmp_path / "junk.json").write_text("{not json")
        with pytest.warns(RuntimeWarning, match="junk.json"):
            loaded = load_manifests(tmp_path)
        assert [m.run_id for m in loaded] == ["00-a", "00-b"]

    def test_scan_manifests_reports_skipped_paths(self, tmp_path):
        from repro.obs.manifest import scan_manifests

        good = Manifest(kind="llc", workload="a", policy="p", run_id="00-a")
        good.save(tmp_path)
        (tmp_path / "corrupt.json").write_text("{not json")
        (tmp_path / "wrong-shape.json").write_text('["a", "list"]')
        report = scan_manifests(tmp_path)
        assert [m.run_id for m in report.manifests] == ["00-a"]
        skipped = {Path(s.path).name: s.error for s in report.skipped}
        assert set(skipped) == {"corrupt.json", "wrong-shape.json"}
        assert all(error for error in skipped.values())

    def test_scan_manifests_missing_dir_is_empty(self, tmp_path):
        from repro.obs.manifest import scan_manifests

        report = scan_manifests(tmp_path / "nope")
        assert report.manifests == [] and report.skipped == []

    def test_summarize_surfaces_skipped_files(self, tmp_path):
        from repro.obs.manifest import scan_manifests

        Manifest(kind="llc", workload="a", policy="p", run_id="00-a").save(tmp_path)
        (tmp_path / "corrupt.json").write_text("{not json")
        report = scan_manifests(tmp_path)
        text = summarize_manifests(report.manifests, skipped=report.skipped)
        assert "WARNING" in text
        assert "corrupt.json" in text
        # without skipped files the warning section is absent
        assert "WARNING" not in summarize_manifests(report.manifests)

    def test_trace_fingerprint_tracks_content(self):
        a, b = _trace(seed=1), _trace(seed=2)
        assert trace_fingerprint(a) == trace_fingerprint(a)
        assert trace_fingerprint(a) != trace_fingerprint(b)

    def test_fingerprint_source_stream_matches_trace(self):
        from repro.obs.manifest import fingerprint_source
        from repro.traces.stream import as_stream

        trace = _trace(seed=3)
        # identical digest for the in-memory trace and any chunking of it
        assert fingerprint_source(trace) == trace_fingerprint(trace)
        for chunk_size in (64, 1000, 5000):
            stream = as_stream(trace, chunk_size=chunk_size)
            assert fingerprint_source(stream) == trace_fingerprint(trace)

    def test_resolve_manifest_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv(ENV_MANIFEST_DIR, raising=False)
        assert resolve_manifest_dir(None) is None
        assert resolve_manifest_dir(tmp_path) == tmp_path
        monkeypatch.setenv(ENV_MANIFEST_DIR, str(tmp_path / "env"))
        assert resolve_manifest_dir(None) == tmp_path / "env"
        assert resolve_manifest_dir(tmp_path) == tmp_path  # argument wins

    def test_summarize_renders_runs_and_failures(self):
        run = self._rich_manifest()
        run.tasks = []
        sweep = self._rich_manifest()
        sweep.kind = "matrix"
        text = summarize_manifests([run, sweep])
        assert "obs-test" in text
        assert "lru" in text
        assert "FAILED boom" in text
        assert "policy exploded" in text
        assert summarize_manifests([]) == "no manifests found"

    def test_summarize_reports_evictions_and_window_counts(self):
        run = self._rich_manifest()
        run.tasks = []
        run.stats = dict(run.stats, evictions=4321)
        run.timeseries = {"windows_closed": 7, "windows": []}
        text = summarize_manifests([run])
        assert "evics" in text and "windows" in text
        assert "4321" in text
        row = next(line for line in text.splitlines() if "obs-test" in line)
        assert " 7 " in row or row.rstrip().endswith(" 7")

    def test_summarize_degrades_gracefully_on_old_schema(self):
        """A v1 manifest (no timeseries field) must render with blank
        columns and a version-skew note, not crash."""
        old = self._rich_manifest()
        old.tasks = []
        old.schema_version = 1
        old.timeseries = {}
        old.stats = {}
        text = summarize_manifests([old])
        assert "obs-test" in text
        assert "different schema version" in text

    def test_v1_manifest_file_loads_with_empty_timeseries(self, tmp_path):
        """Round-trip a hand-built v1 document through the loader."""
        manifest = self._rich_manifest()
        manifest.tasks = []
        path = manifest.save(tmp_path)
        data = json.loads(path.read_text())
        data["schema_version"] = 1
        del data["timeseries"]
        path.write_text(json.dumps(data))
        loaded = Manifest.load(path)
        assert loaded.timeseries == {}
        assert loaded.schema_version == 1
        assert "different schema version" in summarize_manifests([loaded])


class TestRunManifests:
    def test_run_llc_emits_manifest(self, tmp_path):
        trace = _trace()
        result = run_llc(
            trace,
            LRUPolicy(),
            GEOMETRY,
            manifest_dir=tmp_path,
            run_label="lru",
            run_meta={"seed": 9, "note": "hello"},
        )
        manifests = load_manifests(tmp_path)
        assert len(manifests) == 1
        manifest = manifests[0]
        assert manifest.kind == "llc"
        assert manifest.workload == trace.name
        assert manifest.policy == "LRUPolicy"
        assert manifest.label == "lru"
        assert manifest.seed == 9
        assert manifest.extra == {"note": "hello"}
        assert manifest.trace_fingerprint == trace_fingerprint(trace)
        assert manifest.accesses == result.accesses
        assert manifest.stats["misses"] == result.misses
        assert manifest.metrics["hit_rate"] == pytest.approx(result.hit_rate)
        assert manifest.wall_time_s > 0
        assert manifest.accesses_per_sec > 0

    def test_run_llc_without_manifest_dir_writes_nothing(self, tmp_path, monkeypatch):
        # The env default applies only at the CLI layer — the library
        # must not pick it up implicitly.
        monkeypatch.setenv(ENV_MANIFEST_DIR, str(tmp_path))
        run_llc(_trace(), LRUPolicy(), GEOMETRY)
        assert list(tmp_path.iterdir()) == []

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_run_matrix_records_failures_in_sweep_manifest(
        self, tmp_path, max_workers
    ):
        trace = _trace()
        factories = {"boom": ExplodingPolicy, "lru": LRUPolicy}
        with pytest.raises(RuntimeError, match="policy exploded"):
            run_matrix(
                trace,
                factories,
                GEOMETRY,
                max_workers=max_workers,
                manifest_dir=tmp_path,
            )
        sweeps = [m for m in load_manifests(tmp_path) if m.kind == "matrix"]
        assert len(sweeps) == 1
        sweep = sweeps[0]
        statuses = {t["key"]: t["status"] for t in sweep.tasks}
        # the healthy task still ran to completion after the failure
        assert statuses == {"boom": "failed", "lru": "finished"}
        assert len(sweep.failures) == 1
        failure = sweep.failures[0]
        assert failure.key == "boom"
        assert failure.policy == "boom"
        assert failure.workload == trace.name
        assert failure.error_type == "RuntimeError"
        assert "policy exploded" in failure.traceback_summary
        # and the healthy cell wrote its per-run manifest
        cells = [m for m in load_manifests(tmp_path) if m.kind == "llc"]
        assert [m.label for m in cells] == ["lru"]


class TestTelemetry:
    def test_disabled_mode_allocates_nothing(self):
        telemetry = Telemetry(enabled=False)
        # the disabled span is the shared singleton — no per-call object
        assert telemetry.span("a") is NULL_SPAN
        assert telemetry.span("b") is NULL_SPAN
        with telemetry.span("a"):
            pass
        telemetry.count("hits", 5)
        telemetry.record("phase", 1.0)
        assert telemetry.counters == {}
        assert telemetry.timers == {}

    def test_enabled_accumulates(self):
        telemetry = Telemetry(enabled=True)
        telemetry.count("hits")
        telemetry.count("hits", 2)
        telemetry.record("phase", 0.25)
        telemetry.record("phase", 0.75)
        with telemetry.span("spanned"):
            pass
        snapshot = telemetry.snapshot()
        assert snapshot["counters"] == {"hits": 3}
        assert snapshot["timers"]["phase"] == {
            "calls": 2, "total_s": 1.0, "min_s": 0.25, "max_s": 0.75
        }
        assert snapshot["timers"]["spanned"]["calls"] == 1
        telemetry.reset()
        assert telemetry.snapshot() == {"counters": {}, "timers": {}}

    def test_fastpath_records_when_enabled(self):
        from repro.obs.telemetry import TELEMETRY

        TELEMETRY.enable()
        TELEMETRY.reset()
        try:
            run_llc(_trace(), LRUPolicy(), GEOMETRY, engine="fast")
            run_llc(_trace(), LRUPolicy(), GEOMETRY)  # default: vector
            snapshot = TELEMETRY.snapshot()
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()
        assert snapshot["counters"]["fastpath.accesses"] == 2000
        assert snapshot["timers"]["fastpath.run_trace"]["calls"] == 1
        assert snapshot["counters"]["columnar.accesses"] == 2000
        assert snapshot["timers"]["columnar.run_trace"]["calls"] == 1

    def test_manifest_embeds_telemetry_snapshot(self, tmp_path):
        from repro.obs.telemetry import TELEMETRY

        TELEMETRY.enable()
        TELEMETRY.reset()
        try:
            run_llc(_trace(), LRUPolicy(), GEOMETRY, manifest_dir=tmp_path)
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()
        manifest = load_manifests(tmp_path)[0]
        assert manifest.telemetry["counters"]["columnar.accesses"] == 2000


class TestProgress:
    def test_event_ordering_and_eta(self):
        events = []
        reporter = ProgressReporter(total=2, on_event=events.append)
        reporter.started("a")
        reporter.finished("a")
        reporter.started("b")
        reporter.failed("b", RuntimeError("nope"))
        assert [(e.kind, e.key) for e in events] == [
            ("started", "a"),
            ("finished", "a"),
            ("started", "b"),
            ("failed", "b"),
        ]
        assert events[0].eta_s is None  # nothing completed yet
        assert events[2].eta_s is not None  # one of two done: extrapolate
        assert events[-1].done == 2
        assert events[-1].error == "RuntimeError: nope"
        assert reporter.finished_count == 1
        assert reporter.failed_count == 1

    def test_reporter_without_callback_keeps_counts(self):
        reporter = ProgressReporter(total=1)
        event = reporter.finished("only")
        assert event.done == 1
        assert reporter.done == 1


class TestTraceLog:
    def test_emit_and_read_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TraceLog(path) as log:
            log.emit("started", key="a")
            log.emit("finished", key="a", wall=0.5)
        events = read_events(path)
        assert [e["kind"] for e in events] == ["started", "finished"]
        assert events[1]["wall"] == 0.5
        assert all("ts" in e for e in events)


class TestDocstringGate:
    def test_gated_packages_meet_threshold(self):
        """The CI docstring gate must hold on the observability and sim
        layers (tools/check_docstrings.py, >= 90%)."""
        result = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "tools" / "check_docstrings.py"),
                "--fail-under",
                "90",
                str(REPO_ROOT / "src" / "repro" / "obs"),
                str(REPO_ROOT / "src" / "repro" / "sim"),
                str(REPO_ROOT / "tools" / "bench_regress.py"),
            ],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "PASSED" in result.stdout

    def test_obs_package_fully_documented(self):
        """``repro.obs`` is held to 100% — it is the documented API
        surface of the observability layer."""
        result = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "tools" / "check_docstrings.py"),
                "--fail-under",
                "100",
                str(REPO_ROOT / "src" / "repro" / "obs"),
            ],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stdout + result.stderr
