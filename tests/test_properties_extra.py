"""Second wave of property-based tests: partitioning, timing, traces."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.memory.timing import TimingModel
from repro.partitioning.pipp import PIPPPolicy
from repro.partitioning.ucp import lookahead_partition
from repro.traces.trace import Trace
from repro.types import Access
from repro.workloads.mixes import interleave_traces

monotone_curves = st.lists(
    st.lists(st.integers(min_value=0, max_value=100), min_size=8, max_size=8).map(
        lambda steps: np.cumsum([0] + steps[:-1])
    ),
    min_size=2,
    max_size=4,
)


@given(monotone_curves, st.integers(min_value=0, max_value=8))
@settings(max_examples=60, deadline=None)
def test_lookahead_distributes_exactly(curves, extra):
    total_ways = len(curves) + extra
    allocation = lookahead_partition(curves, total_ways)
    assert sum(allocation) == total_ways
    assert all(ways >= 1 for ways in allocation)
    assert all(ways <= len(curve) - 1 for ways, curve in zip(allocation, curves))


concave_curves = st.lists(
    st.lists(st.integers(min_value=0, max_value=50), min_size=7, max_size=7).map(
        lambda increments: np.cumsum([0] + sorted(increments, reverse=True))
    ),
    min_size=2,
    max_size=2,
)


@given(concave_curves)
@settings(max_examples=50, deadline=None)
def test_lookahead_optimal_on_concave_curves(curves):
    """For concave utility curves greedy marginal allocation is optimal;
    verify against brute force over the two-thread split space."""
    total_ways = 7
    allocation = lookahead_partition(curves, total_ways)
    achieved = sum(int(curve[a]) for curve, a in zip(curves, allocation))
    best = max(
        int(curves[0][first]) + int(curves[1][total_ways - first])
        for first in range(1, total_ways)
    )
    assert achieved == best


@given(
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=100, max_value=100_000),
)
@settings(max_examples=60, deadline=None)
def test_timing_worse_levels_cost_more(l2_hits, llc_hits, memory, instructions):
    timing = TimingModel()
    base = timing.cycles(instructions, l2_hits, llc_hits, memory)
    assert timing.cycles(instructions, l2_hits + 1, llc_hits, memory) >= base
    assert timing.cycles(instructions, l2_hits, llc_hits + 1, memory) >= base
    assert timing.cycles(instructions, l2_hits, llc_hits, memory + 1) > base
    # Serving from LLC is always cheaper than from memory.
    assert timing.cycles(instructions, l2_hits, llc_hits + 1, memory) <= (
        timing.cycles(instructions, l2_hits, llc_hits, memory + 1)
    )


@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=20),
        min_size=1,
        max_size=4,
    )
)
@settings(max_examples=50, deadline=None)
def test_interleave_preserves_per_thread_order(per_thread):
    traces = [Trace(addresses) for addresses in per_thread]
    mixed, completion = interleave_traces(traces)
    for thread, addresses in enumerate(per_thread):
        observed = [
            int(a) - (thread << 40)
            for a, t in zip(mixed.addresses, mixed.thread_ids)
            if t == thread
        ]
        # The observed stream is the original repeated cyclically.
        for position, value in enumerate(observed):
            assert value == addresses[position % len(addresses)]
        # Completion marks exactly the first full pass.
        first_pass = [
            i for i, t in enumerate(mixed.thread_ids) if t == thread
        ][: len(addresses)]
        assert completion[thread] == first_pass[-1] + 1


@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=200))
@settings(max_examples=40, deadline=None)
def test_pipp_order_is_always_a_permutation(addresses):
    policy = PIPPPolicy(num_threads=1, repartition_interval=10**9, seed=2)
    cache = SetAssociativeCache(CacheGeometry(2, 4), policy)
    for address in addresses:
        cache.access(Access(address))
        for set_index in range(2):
            assert sorted(policy._order[set_index]) == [0, 1, 2, 3]


@given(
    st.lists(st.integers(min_value=0, max_value=1 << 30), min_size=1, max_size=50),
    st.integers(min_value=0, max_value=1 << 20),
)
@settings(max_examples=50, deadline=None)
def test_trace_offset_preserves_set_mapping_structure(addresses, multiple):
    """Offsetting by a multiple of num_sets keeps per-set streams intact."""
    num_sets = 16
    trace = Trace(addresses)
    shifted = trace.offset_addresses(multiple * num_sets)
    original_sets = [int(a) % num_sets for a in trace.addresses]
    shifted_sets = [int(a) % num_sets for a in shifted.addresses]
    assert original_sets == shifted_sets


@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=300))
@settings(max_examples=30, deadline=None)
def test_classified_pdp_never_evicts_protected_over_unprotected(addresses):
    from repro.core.classified_pdp import ClassifiedPDPPolicy

    policy = ClassifiedPDPPolicy(
        num_classes=2, recompute_interval=10**9, sampler_mode="full", bypass=True
    )
    cache = SetAssociativeCache(CacheGeometry(4, 4), policy)
    for address in addresses:
        rpds = {
            (s, w): policy._rpd[s][w] for s in range(4) for w in range(4)
        }
        result = cache.access(Access(address, pc=address * 4))
        if result.evicted is not None:
            set_index = cache.geometry.set_index(address)
            at_selection = [max(0, rpds[(set_index, w)] - 1) for w in range(4)]
            if any(v == 0 for v in at_selection):
                assert at_selection[result.way] == 0
