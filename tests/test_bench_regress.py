"""Benchmark schema, migration tool, trajectory, and the perf gate.

Covers :mod:`repro.obs.bench` and ``tools/bench_regress.py``: legacy
``BENCH_*.json`` migration (and its idempotence), the canonical record
shape, trajectory append/read, sparkline rendering, the regression
comparison — including the required negative test where an injected 2x
slowdown makes the ``check`` gate exit non-zero — and the zero-resim
report renderer.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro.memory.cache import CacheGeometry
from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    append_trajectory,
    canonical_record,
    compare_records,
    is_canonical,
    load_record,
    machine_fingerprint,
    migrate_record,
    peak_rss_bytes,
    read_trajectory,
    render_report,
    sparkline,
    throughput_map,
)
from repro.policies.lru import LRUPolicy
from repro.sim.single_core import run_llc
from repro.traces.trace import Trace

REPO_ROOT = Path(__file__).parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_regress", REPO_ROOT / "tools" / "bench_regress.py"
)
bench_regress = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_regress)


def _legacy_engine_report(scale: float = 1.0) -> dict:
    """A minimal pre-schema BENCH_engine.json payload."""
    return {
        "benchmark": "403.gcc",
        "trace_length": 200_000,
        "kernels": {
            "lru": {
                "fast_accesses_per_sec": 1_600_000 * scale,
                "reference_accesses_per_sec": 370_000 * scale,
                "speedup": 4.3,
            },
            "pdp": {
                "fast_accesses_per_sec": 1_100_000 * scale,
                "reference_accesses_per_sec": 260_000 * scale,
                "speedup": 4.2,
            },
        },
    }


def _legacy_multicore_report() -> dict:
    return {
        "cores": 4,
        "kernels": {
            "lru": {"fast_accesses_per_sec": 900_000.0}
        },
    }


class TestSchema:
    def test_canonical_record_shape(self):
        record = canonical_record("engine", _legacy_engine_report())
        assert record["bench_schema_version"] == BENCH_SCHEMA_VERSION
        assert record["kind"] == "engine"
        assert set(record["machine"]) == {
            "platform", "machine", "python", "cpu_count"
        }
        assert record["throughput"]["fast/lru"] == 1_600_000
        assert record["raw"]["benchmark"] == "403.gcc"
        assert is_canonical(record)

    def test_throughput_map_flattens_both_engines(self):
        throughput = throughput_map(_legacy_engine_report())
        assert set(throughput) == {
            "fast/lru", "reference/lru", "fast/pdp", "reference/pdp"
        }

    def test_migrate_legacy_engine_and_multicore(self):
        engine = migrate_record(_legacy_engine_report())
        multicore = migrate_record(_legacy_multicore_report())
        assert engine["kind"] == "engine"
        assert multicore["kind"] == "multicore"

    def test_migrate_is_idempotent(self):
        once = migrate_record(_legacy_engine_report())
        assert migrate_record(once) is once

    def test_migrate_rejects_foreign_payloads(self):
        with pytest.raises(ValueError, match="not a benchmark record"):
            migrate_record({"hello": "world"})

    def test_peak_rss_positive_and_fingerprint_json(self):
        rss = peak_rss_bytes()
        assert rss is None or rss > 1024 * 1024  # at least a megabyte
        json.dumps(machine_fingerprint())  # JSON-native by contract

    def test_committed_bench_files_are_canonical(self):
        for name in ("BENCH_engine.json", "BENCH_multicore.json"):
            data = json.loads((REPO_ROOT / name).read_text())
            assert is_canonical(data), f"{name} must carry the schema"
            assert data["throughput"], f"{name} must expose throughput keys"


class TestTrajectory:
    def test_append_and_read(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.jsonl"
        first = canonical_record("engine", _legacy_engine_report())
        second = canonical_record("engine", _legacy_engine_report(scale=1.1))
        append_trajectory(first, path)
        append_trajectory(second, path)
        records = read_trajectory(path)
        assert len(records) == 2
        assert records[0]["throughput"] == first["throughput"]
        assert records[1]["throughput"]["fast/lru"] > first["throughput"]["fast/lru"]

    def test_append_rejects_legacy_records(self, tmp_path):
        with pytest.raises(ValueError, match="canonical"):
            append_trajectory(_legacy_engine_report(), tmp_path / "t.jsonl")

    def test_read_missing_file_is_empty(self, tmp_path):
        assert read_trajectory(tmp_path / "nope.jsonl") == []


class TestCompare:
    def test_no_regression_within_tolerance(self):
        base = canonical_record("engine", _legacy_engine_report())
        curr = canonical_record("engine", _legacy_engine_report(scale=0.8))
        assert compare_records(base, curr, tolerance=0.25) == []

    def test_injected_2x_slowdown_detected(self):
        base = canonical_record("engine", _legacy_engine_report())
        slow = canonical_record("engine", _legacy_engine_report(scale=0.5))
        regressions = compare_records(base, slow, tolerance=0.25)
        assert len(regressions) == 4  # every shared key halved
        assert all(abs(row["ratio"] - 0.5) < 1e-9 for row in regressions)
        assert regressions == sorted(regressions, key=lambda r: r["ratio"])

    def test_only_shared_keys_compared(self):
        base = canonical_record("engine", _legacy_engine_report())
        curr = canonical_record(
            "engine", {"benchmark": "x", "kernels": {}},
            throughput={"fast/new-policy": 1.0},
        )
        assert compare_records(base, curr) == []

    def test_invalid_tolerance_rejected(self):
        base = canonical_record("engine", _legacy_engine_report())
        with pytest.raises(ValueError, match="tolerance"):
            compare_records(base, base, tolerance=1.5)


class TestSparkline:
    def test_empty_and_flat(self):
        assert sparkline([]) == ""
        assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"

    def test_monotone_ramp_ends_at_extremes(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == "▁" and line[-1] == "█"

    def test_downsampling_to_width(self):
        assert len(sparkline([float(i) for i in range(1000)], width=20)) == 20


class TestTool:
    """The ``tools/bench_regress.py`` command-line face."""

    def test_migrate_legacy_file_in_place_then_idempotent(self, tmp_path, capsys):
        target = tmp_path / "BENCH_engine.json"
        target.write_text(json.dumps(_legacy_engine_report()))
        assert bench_regress.main(["migrate", str(target)]) == 0
        migrated = json.loads(target.read_text())
        assert is_canonical(migrated)
        assert bench_regress.main(["migrate", str(target)]) == 0
        assert "already canonical" in capsys.readouterr().out
        assert json.loads(target.read_text()) == migrated

    def test_migrate_alias_flag(self, tmp_path):
        target = tmp_path / "BENCH_multicore.json"
        target.write_text(json.dumps(_legacy_multicore_report()))
        assert bench_regress.main(["--migrate", str(target)]) == 0
        assert is_canonical(json.loads(target.read_text()))

    def test_migrate_unparseable_file_fails(self, tmp_path, capsys):
        bad = tmp_path / "garbage.json"
        bad.write_text(json.dumps({"not": "a benchmark"}))
        assert bench_regress.main(["migrate", str(bad)]) == 1
        assert "cannot migrate" in capsys.readouterr().err

    def test_check_gate_passes_then_fails_on_2x_slowdown(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        current = tmp_path / "curr.json"
        slowed = tmp_path / "slow.json"
        baseline.write_text(
            json.dumps(canonical_record("engine", _legacy_engine_report()))
        )
        current.write_text(
            json.dumps(canonical_record("engine", _legacy_engine_report(0.9)))
        )
        slowed.write_text(
            json.dumps(canonical_record("engine", _legacy_engine_report(0.5)))
        )
        assert bench_regress.main(
            ["check", "--baseline", str(baseline), "--current", str(current)]
        ) == 0
        assert "CHECK OK" in capsys.readouterr().out
        # the negative test: an injected 2x slowdown must fail the gate
        assert bench_regress.main(
            ["check", "--baseline", str(baseline), "--current", str(slowed)]
        ) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_append_subcommand(self, tmp_path):
        record_path = tmp_path / "bench.json"
        trajectory = tmp_path / "traj.jsonl"
        record_path.write_text(json.dumps(_legacy_engine_report()))
        assert bench_regress.main(
            ["append", "--record", str(record_path),
             "--trajectory", str(trajectory)]
        ) == 0
        assert len(read_trajectory(trajectory)) == 1

    def test_load_record_migrates_on_the_fly(self, tmp_path):
        target = tmp_path / "legacy.json"
        target.write_text(json.dumps(_legacy_engine_report()))
        assert is_canonical(load_record(target))


class TestReport:
    def _manifest_dir(self, tmp_path) -> Path:
        rng = np.random.default_rng(5)
        trace = Trace(rng.integers(0, 400, size=2000), name="report-trace")
        run_llc(
            trace, LRUPolicy(), CacheGeometry(num_sets=16, ways=4),
            window_size=250, manifest_dir=tmp_path,
        )
        return tmp_path

    def test_report_renders_from_manifests_alone(self, tmp_path):
        directory = self._manifest_dir(tmp_path)
        text = render_report(directory)
        assert "Simulation report" in text
        assert "Window plots (1 recorded runs)" in text
        assert "hit rate" in text
        assert "report-trace" in text

    def test_report_includes_trajectory_when_present(self, tmp_path):
        directory = self._manifest_dir(tmp_path)
        append_trajectory(
            canonical_record("engine", _legacy_engine_report()),
            directory / "BENCH_trajectory.jsonl",
        )
        text = render_report(directory)
        assert "Benchmark trajectory (1 records)" in text
        assert "fast/lru" in text

    def test_html_report_is_self_contained(self, tmp_path):
        directory = self._manifest_dir(tmp_path)
        text = render_report(directory, html=True)
        assert text.startswith("<!DOCTYPE html>")
        assert "</html>" in text

    def test_report_tool_writes_out_file(self, tmp_path, capsys):
        directory = self._manifest_dir(tmp_path)
        out = tmp_path / "report.md"
        assert bench_regress.main(
            ["report", str(directory), "--out", str(out)]
        ) == 0
        assert "Simulation report" in out.read_text()
