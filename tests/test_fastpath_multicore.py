"""Multi-core fast-path equivalence and stat-freezing properties.

The thread-aware batched kernel (`repro.memory.fastpath.run_shared_trace`)
must be observationally identical to the reference per-``Access`` loop in
``run_shared_llc`` — same per-thread frozen statistics (accesses, hits,
misses, bypasses, instructions, IPC) and therefore the same W/T/H
metrics — for every thread-aware policy, on heterogeneous mixes whose
threads differ in length and instructions-per-access (so rewind and
per-thread freezing both trigger at different positions).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.memory.fastpath import run_shared_trace
from repro.policies.base import make_policy
from repro.sim.multi_core import run_shared_llc
from repro.traces.trace import Trace
from repro.workloads.mixes import interleave_traces

GEOMETRY = CacheGeometry(num_sets=32, ways=8)

#: Policies whose constructors need a thread count (shared-cache only).
MULTITHREAD = {"pd-partition", "pipp", "ta-drrip", "ucp"}

#: The acceptance set: LRU, DRRIP, TA-DRRIP, PDP and the partitioned
#: policies (plus DIP for breadth).
POLICIES = ["lru", "drrip", "dip", "pdp", "ta-drrip", "ucp", "pipp", "pd-partition"]


def _thread_trace(seed: int, n: int, ipa: float) -> Trace:
    """Hot/cold blend with a small pc pool — hits, evictions, bypasses."""
    rng = np.random.default_rng(seed)
    hot = rng.integers(0, 96, size=n)
    cold = rng.integers(96, 6000, size=n)
    addresses = np.where(rng.random(n) < 0.5, hot, cold)
    pcs = rng.integers(0, 10, size=n)
    return Trace(addresses, pcs=pcs, name=f"t{seed}", instructions_per_access=ipa)


def _mixes() -> dict[str, list[Trace]]:
    """Three mixes: homogeneous, heterogeneous lengths/IPA, and 4-thread."""
    return {
        "homogeneous": [_thread_trace(1, 1500, 1.0), _thread_trace(2, 1500, 1.0)],
        "heterogeneous": [
            _thread_trace(3, 2000, 1.0),
            _thread_trace(4, 900, 2.5),
            _thread_trace(5, 1400, 1.5),
        ],
        "four-thread": [_thread_trace(6 + i, 700 + 180 * i, 1.0 + 0.5 * i) for i in range(4)],
    }


def _make_policy(name: str, num_threads: int):
    if name in MULTITHREAD:
        return make_policy(name, num_threads=num_threads)
    if name == "pdp":
        return make_policy(name, recompute_interval=1024)
    return make_policy(name)


def _outcome_tuples(result):
    return [
        (t.accesses, t.hits, t.misses, t.bypasses, t.instructions, t.ipc)
        for t in result.threads
    ]


@pytest.mark.parametrize("mix_name", sorted(_mixes()))
@pytest.mark.parametrize("name", POLICIES)
def test_shared_llc_identical_between_engines(name, mix_name):
    traces = _mixes()[mix_name]
    singles = [1.0] * len(traces)  # skip redundant baseline runs
    runs = {
        engine: run_shared_llc(
            traces,
            _make_policy(name, len(traces)),
            GEOMETRY,
            singles=singles,
            engine=engine,
        )
        for engine in ("reference", "fast")
    }
    ref, fast = runs["reference"], runs["fast"]
    assert _outcome_tuples(fast) == _outcome_tuples(ref)
    assert (fast.weighted, fast.throughput, fast.hmean) == (
        ref.weighted,
        ref.throughput,
        ref.hmean,
    )


def test_shared_llc_default_engine_is_fast_and_validated():
    traces = _mixes()["homogeneous"]
    default = run_shared_llc(traces, _make_policy("lru", 2), GEOMETRY, singles=[1.0, 1.0])
    ref = run_shared_llc(
        traces, _make_policy("lru", 2), GEOMETRY, singles=[1.0, 1.0], engine="reference"
    )
    assert _outcome_tuples(default) == _outcome_tuples(ref)
    with pytest.raises(ValueError, match="engine"):
        run_shared_llc(traces, _make_policy("lru", 2), GEOMETRY, engine="warp")


def test_single_thread_baselines_engines_agree():
    from repro.sim.multi_core import single_thread_baselines

    traces = _mixes()["heterogeneous"]
    assert single_thread_baselines(traces, GEOMETRY, engine="fast") == (
        single_thread_baselines(traces, GEOMETRY, engine="reference")
    )


def test_shared_trace_global_stats_cover_whole_run():
    """cache.stats counts the full interleave, frozen tail included."""
    traces = _mixes()["heterogeneous"]
    mixed, completion = interleave_traces(traces)
    cache = SetAssociativeCache(GEOMETRY, _make_policy("lru", len(traces)))
    accesses, hits, misses, bypasses = run_shared_trace(cache, mixed, completion)
    assert cache.stats.accesses == len(mixed)
    assert cache.stats.hits + cache.stats.misses == len(mixed)
    # Frozen per-thread counters cover exactly one full pass per thread.
    assert accesses == [len(trace) for trace in traces]
    for t_hits, t_misses, t_accesses in zip(hits, misses, accesses):
        assert t_hits + t_misses == t_accesses
    assert all(b <= m for b, m in zip(bypasses, misses))


@pytest.mark.parametrize("name", ["lru", "pdp", "ta-drrip"])
def test_frozen_stats_unchanged_by_post_completion_tail(name):
    """Property (paper Sec. 5): per-thread frozen counters are identical
    whether the run stops at max(completion) or runs the full rewound
    interleave — the tail only pressures the cache."""
    traces = _mixes()["heterogeneous"]
    mixed, completion = interleave_traces(traces)
    stop = max(completion)
    assert stop < len(mixed)  # the rewound tail is non-empty

    full_cache = SetAssociativeCache(GEOMETRY, _make_policy(name, len(traces)))
    full = run_shared_trace(full_cache, mixed, completion)
    short_cache = SetAssociativeCache(GEOMETRY, _make_policy(name, len(traces)))
    short = run_shared_trace(short_cache, mixed.slice(0, stop), completion)
    assert full == short


def test_completion_positions_match_cursor_recount():
    """completion[t] is one past the interleave position of thread t's
    len(traces[t])-th access — recounted with a straightforward cursor."""
    traces = _mixes()["four-thread"]
    mixed, completion = interleave_traces(traces)
    counts = [0] * len(traces)
    recount = [-1] * len(traces)
    for position, tid in enumerate(mixed.thread_ids.tolist()):
        counts[tid] += 1
        if counts[tid] == len(traces[tid]) and recount[tid] < 0:
            recount[tid] = position + 1
    assert recount == completion


def test_interleave_uses_public_constructor_and_mean_ipa():
    """Regression: the mixed trace must be built via Trace.__init__ (not
    __new__) and carry the mean per-thread IPA, not thread 0's."""
    traces = [_thread_trace(20, 400, 1.0), _thread_trace(21, 400, 3.0)]
    mixed, _ = interleave_traces(traces)
    assert mixed.instructions_per_access == pytest.approx(2.0)
    # Columns went through _as_int64_column coercion.
    assert mixed.addresses.dtype == np.int64
    assert len(mixed.pcs) == len(mixed.thread_ids) == len(mixed)
