"""Tests for the dynamic PD engine."""

import pytest

from repro.core.pd_engine import PDEngine
from repro.workloads.spec_like import make_benchmark_trace


class TestPDEngine:
    def test_initial_pd_is_associativity(self):
        engine = PDEngine(num_sets=16, associativity=16)
        assert engine.current_pd == 16

    def test_recompute_interval_triggers(self):
        engine = PDEngine(
            num_sets=16, recompute_interval=100, sampler_mode="full"
        )
        for index in range(100):
            engine.observe(index % 16, index)
        assert engine.recompute_count == 1

    def test_counters_reset_after_recompute(self):
        engine = PDEngine(num_sets=16, recompute_interval=50, sampler_mode="full")
        for index in range(50):
            engine.observe(0, index % 5)
        assert engine.counters.total == 0

    def test_pd_history_records(self):
        engine = PDEngine(num_sets=16, recompute_interval=25, sampler_mode="full")
        for index in range(100):
            engine.observe(0, index % 3)
        assert len(engine.pd_history) == 1 + engine.recompute_count
        assert engine.pd_history[0] == (0, 16)

    def test_pd_tracks_dominant_distance(self):
        """Reuse at a fixed per-set distance pulls the PD to cover it."""
        engine = PDEngine(
            num_sets=1,
            associativity=16,
            recompute_interval=2000,
            sampler_mode="full",
            step=4,
        )
        # Loop of 40 blocks through one set: every reuse at distance 40.
        for index in range(2000):
            engine.observe(0, index % 40)
        assert engine.recompute_count >= 1
        assert 40 <= engine.current_pd <= 48

    def test_empty_interval_keeps_previous_pd(self):
        engine = PDEngine(
            num_sets=64, recompute_interval=10, sampler_mode="real", initial_pd=77
        )
        # Accesses to unsampled sets only: RDD stays empty.
        unsampled = next(
            s for s in range(64) if not engine.sampler.is_sampled(s)
        )
        for index in range(20):
            engine.observe(unsampled, index)
        assert engine.current_pd == 77

    def test_invalid_sampler_mode(self):
        with pytest.raises(ValueError):
            PDEngine(num_sets=16, sampler_mode="bogus")

    def test_converges_on_benchmark_profile(self):
        """On the cactusADM-like profile the PD covers the 64-80 peak."""
        trace = make_benchmark_trace("436.cactusADM", length=12_000, num_sets=16)
        engine = PDEngine(
            num_sets=16, associativity=16, recompute_interval=4000,
            sampler_mode="full", step=4,
        )
        for access in trace:
            engine.observe(access.address % 16, access.address)
        assert 64 <= engine.current_pd <= 96
