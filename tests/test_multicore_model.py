"""Tests for the multi-core hit-rate model E_m and the PD-vector search."""

import numpy as np
import pytest

from repro.core.multicore_model import (
    MulticoreHitRateModel,
    ThreadRDD,
    find_pd_vector,
)


def make_rdd(peak_bin, mass, total, num_bins=16):
    counts = np.zeros(num_bins, dtype=np.int64)
    counts[peak_bin] = mass
    return ThreadRDD(counts=counts, total=total)


class TestEm:
    def test_requires_matching_lengths(self):
        model = MulticoreHitRateModel(step=16)
        with pytest.raises(ValueError):
            model.e_m([make_rdd(1, 10, 20)], [16, 32])

    def test_single_thread_matches_single_core_shape(self):
        """With one thread, E_m has the same argmax as single-core E."""
        from repro.core.hit_rate_model import find_best_pd

        rdd = make_rdd(4, 500, 800)
        model = MulticoreHitRateModel(step=16, d_e=16.0)
        candidates = [(k + 1) * 16 for k in range(16)]
        best = max(candidates, key=lambda pd: model.e_m([rdd], [pd]))
        single = find_best_pd(rdd.counts, rdd.total, step=16, d_e=16.0)
        assert best == single

    def test_e_m_additive_over_threads(self):
        rdd_a = make_rdd(2, 100, 200)
        rdd_b = make_rdd(8, 100, 200)
        model = MulticoreHitRateModel(step=16, d_e=16.0)
        both = model.e_m([rdd_a, rdd_b], [48, 144])
        assert both > 0

    def test_zero_total_gives_zero(self):
        model = MulticoreHitRateModel(step=16)
        rdd = ThreadRDD(counts=np.zeros(4, dtype=np.int64), total=0)
        assert model.e_m([rdd], [16]) == 0.0


class TestPDVectorSearch:
    def test_each_thread_near_its_peak(self):
        rdds = [make_rdd(2, 800, 1000), make_rdd(9, 800, 1000)]
        pds = find_pd_vector(rdds, step=16, d_e=16.0)
        assert pds[0] == 48  # bin 2 boundary
        assert pds[1] == 160  # bin 9 boundary

    def test_streaming_thread_gets_small_pd(self):
        """A thread with almost no reuse should not hog protection."""
        reuser = make_rdd(3, 900, 1000)
        streamer = ThreadRDD(counts=np.zeros(16, dtype=np.int64), total=5000)
        pds = find_pd_vector([reuser, streamer], step=16, d_e=16.0, default_pd=16)
        assert pds[0] == 64
        assert pds[1] == 16  # default: nothing to protect

    def test_order_preserved(self):
        rdds = [make_rdd(1, 10, 100), make_rdd(8, 900, 1000), make_rdd(4, 50, 100)]
        pds = find_pd_vector(rdds, step=16, d_e=16.0)
        assert len(pds) == 3
        # Thread 1 (strongest) still mapped back to index 1.
        assert pds[1] == 144

    def test_beats_uniform_assignment(self):
        """The searched vector scores at least as well as any uniform PD."""
        rng = np.random.default_rng(0)
        rdds = []
        for _ in range(4):
            counts = rng.integers(0, 200, size=16)
            rdds.append(ThreadRDD(counts=counts, total=int(counts.sum() * 1.5)))
        model = MulticoreHitRateModel(step=16, d_e=16.0)
        pds = find_pd_vector(rdds, step=16, d_e=16.0)
        searched = model.e_m(rdds, pds)
        for uniform in (16, 64, 128, 256):
            assert searched >= model.e_m(rdds, [uniform] * 4) - 1e-12

    def test_refinement_improves_or_keeps(self):
        rng = np.random.default_rng(3)
        rdds = []
        for _ in range(6):
            counts = rng.integers(0, 300, size=16)
            rdds.append(ThreadRDD(counts=counts, total=int(counts.sum() * 2)))
        model = MulticoreHitRateModel(step=16, d_e=16.0)
        no_refine = find_pd_vector(rdds, step=16, d_e=16.0, refine_passes=0)
        refined = find_pd_vector(rdds, step=16, d_e=16.0, refine_passes=2)
        assert model.e_m(rdds, refined) >= model.e_m(rdds, no_refine) - 1e-12
