"""Vector-engine specifics the conformance sweep does not cover.

Three properties pin the columnar engine's structure (beyond the
bit-identical-stats contract already swept by ``test_conformance.py``):

- **Set-order invariance**: sets are independent, so processing the
  set batches of a chunk in *any* permutation must leave identical
  statistics and identical per-set cache/policy state.
- **Set-partitioned merging**: a ``run_matrix`` cell split into shard
  tasks (``set_index % K == k``) must merge — aggregate statistics and
  the windowed time-series payload — bit-identically to the unsharded
  run.
- **The fallback seam**: policies without a kernel (or whose kernel
  declines via ``supports``) must silently run the fast path under
  ``engine="vector"``, and the gates themselves must classify policies
  correctly (exact-type dispatch, the dynamic-PDP freeze rule, the
  set-shardability rule).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.pdp_policy import PDPPolicy
from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.memory.columnar import (
    merge_shard_parts,
    run_llc_shard,
    run_trace_vector,
    set_shardable,
    shard_trace,
    vectorizable,
)
from repro.memory.timing import TimingModel
from repro.policies.base import make_policy
from repro.policies.lru import LRUPolicy
from repro.policies.rrip import SRRIPPolicy
from repro.sim.parallel import run_matrix
from repro.sim.single_core import run_llc
from repro.traces.stream import TraceStream
from repro.workloads.streams import random_working_set

GEOMETRY = CacheGeometry(num_sets=16, ways=4)

POLICY_FACTORIES = {
    "lru": LRUPolicy,
    "srrip": SRRIPPolicy,
    "pdp-static": lambda: PDPPolicy(static_pd=24),
    "pdp-dynamic": lambda: PDPPolicy(recompute_interval=777),
}


def _trace(length: int = 6_000, seed: int = 7):
    return random_working_set(length, working_set=300, seed=seed)


def _state_snapshot(cache: SetAssociativeCache) -> tuple:
    """Everything set-order could plausibly disturb: statistics plus the
    full per-set hook-visible state."""
    return (
        cache.stats.accesses,
        cache.stats.hits,
        cache.stats.misses,
        cache.stats.bypasses,
        cache.stats.evictions,
        cache.stats.fills,
        [list(row) for row in cache.tags],
        [list(row) for row in cache.valid],
        [list(row) for row in cache.reused],
        list(cache.set_accesses),
    )


class TestSetOrderInvariance:
    @pytest.mark.parametrize("policy_name", sorted(POLICY_FACTORIES))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_any_set_permutation_is_equivalent(self, policy_name, seed):
        trace = _trace(seed=seed)
        baseline = SetAssociativeCache(GEOMETRY, POLICY_FACTORIES[policy_name]())
        run_trace_vector(baseline, trace)
        want = _state_snapshot(baseline)
        rng = random.Random(seed)
        for _ in range(3):
            order = list(range(GEOMETRY.num_sets))
            rng.shuffle(order)
            cache = SetAssociativeCache(GEOMETRY, POLICY_FACTORIES[policy_name]())
            run_trace_vector(cache, trace, set_order=order)
            assert _state_snapshot(cache) == want, (
                f"{policy_name}: set order {order} changed the outcome"
            )

    def test_incomplete_set_order_rejected(self):
        trace = _trace(length=500)
        cache = SetAssociativeCache(GEOMETRY, LRUPolicy())
        present = sorted({int(a) % GEOMETRY.num_sets for a in trace.addresses})
        with pytest.raises(ValueError):
            run_trace_vector(cache, trace, set_order=present[:-1])


class TestFallbackSeam:
    def test_unknown_policy_falls_back_and_matches_fast(self):
        trace = _trace()
        policy = make_policy("dip")
        assert not vectorizable(policy)
        fast = run_llc(trace, make_policy("dip"), GEOMETRY, engine="fast")
        vector = run_llc(trace, make_policy("dip"), GEOMETRY, engine="vector")
        for field in ("accesses", "hits", "misses", "bypasses", "evictions"):
            assert getattr(vector, field) == getattr(fast, field)

    def test_subclass_falls_back(self):
        class TracingLRU(LRUPolicy):
            pass

        # Exact-type dispatch: a subclass may override hooks the kernel
        # never calls, so it must take the fast path.
        assert not vectorizable(TracingLRU())
        trace = _trace(length=2_000)
        fast = run_llc(trace, TracingLRU(), GEOMETRY, engine="fast")
        vector = run_llc(trace, TracingLRU(), GEOMETRY, engine="vector")
        assert (vector.hits, vector.misses) == (fast.hits, fast.misses)

    def test_supported_policies_are_vectorizable(self):
        for name, factory in POLICY_FACTORIES.items():
            assert vectorizable(factory()), name

    def test_dynamic_pdp_freeze_gate(self):
        # An epoch longer than the RD counters can count saturates the
        # sampling counters mid-epoch; the kernel declines such configs.
        assert not vectorizable(PDPPolicy(recompute_interval=1 << 20))

    def test_set_shardability(self):
        assert set_shardable(LRUPolicy())
        assert set_shardable(PDPPolicy(static_pd=24))
        # Dynamic PD couples sets through the global sampler/PD engine.
        assert not set_shardable(PDPPolicy(recompute_interval=777))
        assert not set_shardable(make_policy("dip"))


class TestShardMerging:
    def test_shards_partition_the_trace(self):
        trace = _trace()
        num_shards = 3
        pieces = [
            shard_trace(trace, GEOMETRY.num_sets, shard, num_shards)
            for shard in range(num_shards)
        ]
        all_positions = np.sort(
            np.concatenate([positions for _, positions in pieces])
        )
        assert np.array_equal(all_positions, np.arange(len(trace)))
        with pytest.raises(ValueError):
            shard_trace(trace, GEOMETRY.num_sets, num_shards, num_shards)

    @pytest.mark.parametrize("policy_name", ["lru", "srrip", "pdp-static"])
    @pytest.mark.parametrize("num_shards", [2, 5])
    def test_merged_shards_equal_unsharded_run(self, policy_name, num_shards):
        trace = _trace()
        window_size = 1_024
        timing = TimingModel()
        whole = run_llc(
            trace,
            POLICY_FACTORIES[policy_name](),
            GEOMETRY,
            timing=timing,
            engine="vector",
            window_size=window_size,
        )
        parts = [
            run_llc_shard(
                trace,
                POLICY_FACTORIES[policy_name](),
                GEOMETRY,
                shard,
                num_shards,
                len(trace),
                window_size=window_size,
            )
            for shard in range(num_shards)
        ]
        merged = merge_shard_parts(
            parts,
            trace.name,
            len(trace),
            trace.instructions_per_access,
            timing,
            window_size=window_size,
        )
        for field in (
            "accesses",
            "hits",
            "misses",
            "bypasses",
            "evictions",
            "instructions",
            "ipc",
        ):
            assert getattr(merged, field) == getattr(whole, field), (
                f"{policy_name}/{num_shards} shards: {field} diverges"
            )
        assert merged.extra["timeseries"] == whole.extra["timeseries"], (
            f"{policy_name}/{num_shards} shards: windowed payload diverges"
        )

    def test_run_matrix_set_partitions_equals_unsharded(self):
        trace = _trace()
        factories = {
            "lru": LRUPolicy,
            "pdp-static": lambda: PDPPolicy(static_pd=24),
            # Dynamic PD is not shardable: the cell must silently run
            # whole while the others shard — results identical either way.
            "pdp-dynamic": lambda: PDPPolicy(recompute_interval=777),
        }
        window_size = 1_024
        plain = run_matrix(
            trace, factories, GEOMETRY, max_workers=1, window_size=window_size
        )
        sharded = run_matrix(
            trace,
            factories,
            GEOMETRY,
            max_workers=1,
            set_partitions=4,
            window_size=window_size,
        )
        assert set(plain) == set(sharded)
        for key in factories:
            for field in (
                "accesses",
                "hits",
                "misses",
                "bypasses",
                "evictions",
                "instructions",
                "ipc",
            ):
                assert getattr(sharded[key], field) == getattr(plain[key], field), (
                    f"{key}: sharded run_matrix {field} diverges"
                )
            assert (
                sharded[key].extra["timeseries"] == plain[key].extra["timeseries"]
            ), f"{key}: sharded run_matrix windows diverge"

    def test_set_partitions_validation(self):
        trace = _trace(length=1_000)
        with pytest.raises(ValueError):
            run_matrix(
                trace, {"lru": LRUPolicy}, GEOMETRY,
                max_workers=1, set_partitions=0,
            )
        with pytest.raises(ValueError):
            run_matrix(
                trace, {"lru": LRUPolicy}, GEOMETRY,
                max_workers=1, set_partitions=2, engine="fast",
            )
        with pytest.raises(ValueError):
            run_matrix(
                TraceStream.from_trace(trace, chunk_size=128),
                {"lru": LRUPolicy},
                GEOMETRY,
                max_workers=1,
                set_partitions=2,
            )
