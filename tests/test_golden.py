"""Golden-result drift tripwire.

Recomputes the pinned (policy x workload) grid and compares it against
``tests/golden/single_core.json``. A mismatch fails with a readable
per-cell diff naming every drifted number — if the drift is an
*intended* behavior change, regenerate the fixture:

    PYTHONPATH=src python tools/regen_golden.py

and commit it with the change. The grid definition lives in
``tools/regen_golden.py`` (single source of truth: the test imports the
tool, so the fixture and the check can never disagree about what is
pinned).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
GOLDEN_PATH = REPO_ROOT / "tests" / "golden" / "single_core.json"
OBJECTSTORE_GOLDEN_PATH = REPO_ROOT / "tests" / "golden" / "objectstore.json"
REGEN_PATH = REPO_ROOT / "tools" / "regen_golden.py"


def _load_regen_module():
    spec = importlib.util.spec_from_file_location("regen_golden", REGEN_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.exists(), (
        f"missing golden fixture {GOLDEN_PATH}; run "
        "`PYTHONPATH=src python tools/regen_golden.py`"
    )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def recomputed() -> dict:
    return _load_regen_module().compute_golden()


def _diff(expected: dict, got: dict) -> list[str]:
    """Readable per-cell drift lines (empty when identical)."""
    lines: list[str] = []
    for name in sorted(set(expected["trace_fingerprints"]) | set(got["trace_fingerprints"])):
        want = expected["trace_fingerprints"].get(name)
        have = got["trace_fingerprints"].get(name)
        if want != have:
            lines.append(f"  workload {name}: fingerprint {want} -> {have}")
    for cell in sorted(set(expected["cells"]) | set(got["cells"])):
        want = expected["cells"].get(cell)
        have = got["cells"].get(cell)
        if want is None:
            lines.append(f"  cell {cell}: new (not in fixture)")
            continue
        if have is None:
            lines.append(f"  cell {cell}: gone (in fixture, not recomputed)")
            continue
        for field in sorted(set(want) | set(have)):
            if want.get(field) != have.get(field):
                lines.append(
                    f"  cell {cell}: {field} {want.get(field)} -> {have.get(field)}"
                )
    return lines


def test_golden_grid_has_not_drifted(golden, recomputed):
    drift = _diff(golden, recomputed)
    assert not drift, (
        "golden results drifted (fixture -> recomputed):\n"
        + "\n".join(drift)
        + "\n\nIf this change is intended, regenerate with "
        "`PYTHONPATH=src python tools/regen_golden.py` and commit the fixture."
    )


def test_golden_fixture_covers_every_pinned_cell(golden):
    regen = _load_regen_module()
    workloads = sorted(regen._workloads())
    expected_cells = {
        f"{workload}/{policy}" for workload in workloads for policy in regen.POLICIES
    }
    assert set(golden["cells"]) == expected_cells
    assert set(golden["trace_fingerprints"]) == set(workloads)


@pytest.fixture(scope="module")
def objectstore_golden() -> dict:
    assert OBJECTSTORE_GOLDEN_PATH.exists(), (
        f"missing golden fixture {OBJECTSTORE_GOLDEN_PATH}; run "
        "`PYTHONPATH=src python tools/regen_golden.py`"
    )
    return json.loads(OBJECTSTORE_GOLDEN_PATH.read_text())


def test_objectstore_golden_has_not_drifted(objectstore_golden):
    """The seeded software-cache grid (workload generator, object-cache
    model, all four policy families, TTL expiry, byte counters) must
    reproduce the pinned fixture exactly."""
    regen = _load_regen_module()
    recomputed = regen.compute_objectstore_golden()
    drift: list[str] = []
    if recomputed["trace_fingerprint"] != objectstore_golden["trace_fingerprint"]:
        drift.append(
            "  stream fingerprint "
            f"{objectstore_golden['trace_fingerprint']} -> "
            f"{recomputed['trace_fingerprint']}"
        )
    for cell in sorted(
        set(objectstore_golden["cells"]) | set(recomputed["cells"])
    ):
        want = objectstore_golden["cells"].get(cell)
        have = recomputed["cells"].get(cell)
        if want is None or have is None:
            drift.append(f"  cell {cell}: fixture/recompute mismatch")
            continue
        for field in sorted(set(want) | set(have)):
            if want.get(field) != have.get(field):
                drift.append(
                    f"  cell {cell}: {field} {want.get(field)} -> {have.get(field)}"
                )
    assert not drift, (
        "objectstore golden results drifted (fixture -> recomputed):\n"
        + "\n".join(drift)
        + "\n\nIf this change is intended, regenerate with "
        "`PYTHONPATH=src python tools/regen_golden.py` and commit the fixture."
    )


def test_objectstore_golden_covers_every_pinned_policy(objectstore_golden):
    regen = _load_regen_module()
    assert set(objectstore_golden["cells"]) == set(regen.SWCACHE_POLICIES)
    # The fixture must exercise both removal paths somewhere in the grid.
    cells = objectstore_golden["cells"].values()
    assert any(cell["expirations"] for cell in cells)
    assert any(cell["bypasses"] for cell in cells)


def test_windowed_sums_match_golden_aggregates(golden):
    """Per-window counter sums must equal the pinned golden aggregates —
    the windowed recorder is a decomposition of the same run, not a
    second measurement."""
    from repro.memory.cache import CacheGeometry
    from repro.obs.timeseries import WindowedRecorder
    from repro.policies.base import make_policy
    from repro.sim.single_core import run_llc

    regen = _load_regen_module()
    geometry = CacheGeometry(num_sets=16, ways=8)
    for workload_name, trace in sorted(regen._workloads().items()):
        for policy_name in regen.POLICIES:
            recorder = WindowedRecorder(window_size=700)  # partial tail
            run_llc(
                trace, make_policy(policy_name), geometry,
                timeseries=recorder,
            )
            totals = recorder.totals()
            pinned = golden["cells"][f"{workload_name}/{policy_name}"]
            for field in ("accesses", "hits", "misses", "bypasses", "evictions"):
                assert totals[field] == pinned[field], (
                    f"{workload_name}/{policy_name}: windowed {field} sum "
                    f"{totals[field]} != golden aggregate {pinned[field]}"
                )
