"""Smoke tests for the experiment drivers (tiny scales, full code paths)."""

import pytest

from repro.experiments import (
    fig01_rdd,
    fig02_epsilon,
    fig06_model,
    fig09_params,
    fig11_phases,
    fig12_partitioning,
    overhead_report,
)
from repro.experiments.common import (
    EXPERIMENT_GEOMETRY,
    default_trace,
    experiment_config,
    format_table,
    trace_length,
)


class TestCommon:
    def test_config_matches_constants(self):
        config = experiment_config()
        assert config.llc == EXPERIMENT_GEOMETRY
        assert config.associativity == 16

    def test_trace_length_fast(self):
        assert trace_length(True) < trace_length(False)

    def test_default_trace_deterministic(self):
        import numpy as np

        a = default_trace("473.astar", fast=True)
        b = default_trace("473.astar", fast=True)
        assert np.array_equal(a.addresses, b.addresses)

    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="t")
        lines = table.splitlines()
        assert lines[0] == "t"
        assert all(len(line) >= 6 for line in lines[1:])


class TestDrivers:
    def test_fig1_structure(self):
        results = fig01_rdd.run_fig1(fast=True)
        assert len(results) == len(fig01_rdd.FIG1_BENCHMARKS)
        report = fig01_rdd.format_report(results)
        assert "436.cactusADM" in report

    def test_fig2_sweep_keys(self):
        sweeps = fig02_epsilon.run_fig2(fast=True)
        for sweep in sweeps:
            assert set(sweep.mpki_by_epsilon) == set(fig02_epsilon.EPSILONS)
            assert sweep.best_epsilon in fig02_epsilon.EPSILONS

    def test_fig6_fit_fields(self):
        fits = fig06_model.run_fig6(fast=True, grid_step=48)
        for fit in fits:
            assert len(fit.pds) == len(fit.e_values) == len(fit.hit_rates)
            assert -1.0 <= fit.correlation <= 1.0

    def test_fig9_subset(self):
        results = fig09_params.run_fig9(benchmarks=("473.astar",), fast=True)
        assert len(results) == 1
        buckets = fig09_params.pd_distribution(results)
        assert sum(buckets.values()) == 1

    def test_fig11_structure(self):
        results = fig11_phases.run_fig11(phase_length=3000)
        assert len(results) == 5
        report = fig11_phases.format_report(results)
        assert "PD trajectory" in report

    def test_fig12_two_cores_smoke(self):
        results = fig12_partitioning.run_fig12(2, num_mixes=1, length_per_thread=3000)
        assert len(results) == 1
        averages = fig12_partitioning.averages(results)
        assert set(averages) == {"UCP", "PIPP", "PDP"}
        report = fig12_partitioning.format_report({2: results})
        assert "2-core" in report

    def test_overhead_summary(self):
        summary = overhead_report.run_overhead()
        assert summary.search_cycles > 0
        assert summary.search_fraction_of_interval < 0.05
        assert "PDP-2" in overhead_report.format_report(summary)

    def test_fig4_single_benchmark(self):
        from repro.experiments import fig04_static_pdp

        results = fig04_static_pdp.run_fig4(benchmarks=("473.astar",), fast=True)
        assert len(results) == 1
        assert results[0].best_pd_b in fig04_static_pdp.pd_grid()

    def test_fig10_single_benchmark(self):
        from repro.experiments import fig10_single_core

        rows = fig10_single_core.run_fig10(
            benchmarks=("473.astar",), fast=True, include_spdp_b=False
        )
        assert len(rows) == 1
        assert "PDP-8" in rows[0].miss_reduction
        avg = fig10_single_core.averages(rows)
        assert avg.name == "AVERAGE"

    def test_prefetch_structure(self):
        from repro.experiments import prefetch_study

        results = prefetch_study.run_prefetch_study(fast=True)
        assert len(results) == len(prefetch_study.PREFETCH_BENCHMARKS)
        for result in results:
            assert set(result.hit_rate_by_mode) == set(prefetch_study.MODES)
