"""Tests for offline reuse-distance analysis (the paper's RD definition)."""

import numpy as np
import pytest

from repro.traces.analysis import (
    fraction_below,
    lru_hit_curve,
    reuse_distance_distribution,
    reuse_distances,
    stack_distances,
    working_set_size,
)
from repro.traces.trace import Trace


class TestReuseDistances:
    def test_immediate_reuse_is_distance_one(self):
        # A, A: one access to the set between the two accesses to A.
        assert reuse_distances([1, 1]) == [1]

    def test_one_intervening_access(self):
        assert reuse_distances([1, 2, 1]) == [2]

    def test_first_touch_emits_nothing(self):
        assert reuse_distances([1, 2, 3]) == []

    def test_access_based_not_unique_based(self):
        # A B B A: 3 accesses to the set since A (B counted twice).
        assert reuse_distances([1, 2, 2, 1]) == [1, 3]

    def test_per_set_counting(self):
        # With 2 sets, addresses 0/2 map to set 0, address 1 to set 1.
        # Stream: 0, 1, 2, 0 -> set-0 stream is 0, 2, 0 -> distance 2.
        assert reuse_distances([0, 1, 2, 0], num_sets=2) == [2]

    def test_clamping_beyond_d_max(self):
        trace = [1] + list(range(100, 110)) + [1]
        distances = reuse_distances(trace, d_max=5)
        assert distances == [6]  # clamped to d_max + 1

    def test_accepts_trace_objects(self):
        assert reuse_distances(Trace([1, 1])) == [1]


class TestRDD:
    def test_counts_match_distances(self):
        counts, long_count, total = reuse_distance_distribution([1, 1, 1], d_max=8)
        assert counts[1] == 2
        assert total == 3
        assert long_count == 1  # the first touch

    def test_long_count_includes_far_reuse(self):
        trace = [1] + list(range(100, 120)) + [1]
        counts, long_count, total = reuse_distance_distribution(trace, d_max=4)
        assert counts.sum() == 0
        assert long_count == total

    def test_total_is_trace_length(self):
        trace = list(range(50)) * 2
        _, _, total = reuse_distance_distribution(trace, d_max=256)
        assert total == 100

    def test_matches_paper_model_inputs(self):
        # N_t = sum N_i + N_L must always hold.
        trace = [1, 2, 1, 3, 2, 1, 4, 4]
        counts, long_count, total = reuse_distance_distribution(trace, d_max=16)
        assert counts.sum() + long_count == total


class TestFractionBelow:
    def test_all_below(self):
        assert fraction_below([1, 1, 1], d_max=4) == 1.0

    def test_no_reuse_gives_zero(self):
        assert fraction_below(list(range(10)), d_max=4) == 0.0

    def test_partial(self):
        # One reuse at distance 1, one at distance 3 with d_max=2.
        trace = [1, 1, 2, 3, 1]
        assert fraction_below(trace, d_max=2) == pytest.approx(0.5)


class TestStackDistances:
    def test_repeat_is_depth_zero(self):
        assert stack_distances([1, 1]) == [0]

    def test_unique_intervening(self):
        # A B B A: only one unique line (B) between the As.
        assert stack_distances([1, 2, 2, 1]) == [0, 1]

    def test_lru_hit_curve_monotone(self):
        trace = [1, 2, 3, 1, 2, 3, 1, 2, 3]
        curve = lru_hit_curve(trace, num_sets=1, max_ways=4)
        assert all(curve[i] <= curve[i + 1] for i in range(4))

    def test_lru_hit_curve_matches_simulation(self):
        """Mattson stack evaluation equals direct LRU simulation."""
        from repro.memory.cache import CacheGeometry, SetAssociativeCache
        from repro.policies.lru import LRUPolicy
        from repro.types import Access

        trace = [i % 7 for i in range(100)] + [3, 5, 1] * 10
        for ways in (1, 2, 4, 8):
            cache = SetAssociativeCache(CacheGeometry(1, ways), LRUPolicy())
            for address in trace:
                cache.access(Access(address))
            curve = lru_hit_curve(trace, num_sets=1, max_ways=8)
            assert cache.stats.hits == curve[ways]


class TestWorkingSet:
    def test_counts_distinct_blocks(self):
        assert working_set_size([1, 1, 2, 3, 3, 3]) == 3
