"""Tests for the set-associative cache substrate."""

import pytest

from repro.memory.cache import CacheGeometry, SetAssociativeCache, log2_int
from repro.policies.lru import LRUPolicy
from repro.types import Access


class TestGeometry:
    def test_capacity(self):
        geometry = CacheGeometry(num_sets=64, ways=16, line_size=64)
        assert geometry.capacity_bytes == 64 * 16 * 64
        assert geometry.total_lines == 1024

    def test_from_capacity(self):
        geometry = CacheGeometry.from_capacity(2 * 1024 * 1024, ways=16)
        assert geometry.num_sets == 2048
        assert geometry.capacity_bytes == 2 * 1024 * 1024

    def test_from_capacity_rejects_misaligned(self):
        with pytest.raises(ValueError):
            CacheGeometry.from_capacity(1000, ways=3)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheGeometry(num_sets=3, ways=4)

    def test_set_index_and_tag_invert(self):
        geometry = CacheGeometry(num_sets=8, ways=2)
        for address in (0, 7, 8, 123, 4096):
            set_index = geometry.set_index(address)
            tag = geometry.tag(address)
            assert tag * 8 + set_index == address

    def test_str_mentions_size(self):
        assert "2048KB" in str(CacheGeometry.from_capacity(2 * 1024 * 1024, ways=16))

    def test_log2_int(self):
        assert log2_int(64) == 6
        with pytest.raises(ValueError):
            log2_int(48)


class TestCacheBasics:
    def test_cold_miss_then_hit(self, tiny_geometry):
        cache = SetAssociativeCache(tiny_geometry, LRUPolicy())
        assert not cache.access(Access(1)).hit
        assert cache.access(Access(1)).hit

    def test_stats_accumulate(self, tiny_geometry):
        cache = SetAssociativeCache(tiny_geometry, LRUPolicy())
        for address in [1, 2, 1, 3, 1]:
            cache.access(Access(address))
        assert cache.stats.accesses == 5
        assert cache.stats.hits == 2
        assert cache.stats.misses == 3

    def test_fills_invalid_ways_before_evicting(self, tiny_geometry):
        cache = SetAssociativeCache(tiny_geometry, LRUPolicy())
        # 4 distinct blocks in one set fill all ways without eviction.
        for i in range(4):
            result = cache.access(Access(i * 4))  # all map to set 0
            assert result.evicted is None
        assert cache.stats.evictions == 0
        # A 5th block must evict.
        result = cache.access(Access(16))
        assert result.evicted is not None

    def test_eviction_returns_block_address(self, tiny_geometry):
        cache = SetAssociativeCache(tiny_geometry, LRUPolicy())
        for i in range(5):
            result = cache.access(Access(i * 4))
        assert result.evicted == 0  # LRU victim was the first block

    def test_no_duplicate_tags_in_set(self, tiny_geometry):
        cache = SetAssociativeCache(tiny_geometry, LRUPolicy())
        import random

        rng = random.Random(7)
        for _ in range(500):
            cache.access(Access(rng.randrange(32)))
            for set_index in range(4):
                resident = cache.resident_addresses(set_index)
                assert len(resident) == len(set(resident))

    def test_lookup_does_not_mutate(self, tiny_geometry):
        cache = SetAssociativeCache(tiny_geometry, LRUPolicy())
        cache.access(Access(1))
        hits_before = cache.stats.hits
        assert cache.lookup(1) is not None
        assert cache.lookup(999) is None
        assert cache.stats.hits == hits_before

    def test_reuse_bit_set_on_hit(self, tiny_geometry):
        cache = SetAssociativeCache(tiny_geometry, LRUPolicy())
        way = cache.access(Access(4)).way
        set_index = tiny_geometry.set_index(4)
        assert not cache.reused[set_index][way]
        cache.access(Access(4))
        assert cache.reused[set_index][way]

    def test_owner_records_thread(self, tiny_geometry):
        cache = SetAssociativeCache(tiny_geometry, LRUPolicy())
        way = cache.access(Access(4, thread_id=3)).way
        assert cache.owner[tiny_geometry.set_index(4)][way] == 3

    def test_invalidate_all(self, tiny_geometry):
        cache = SetAssociativeCache(tiny_geometry, LRUPolicy())
        cache.access(Access(1))
        cache.invalidate_all()
        assert not cache.access(Access(1)).hit

    def test_occupancy_counts_set_accesses(self, tiny_geometry):
        cache = SetAssociativeCache(tiny_geometry, LRUPolicy())
        way = cache.access(Access(0)).way  # set 0
        cache.access(Access(4))  # set 0
        cache.access(Access(8))  # set 0
        cache.access(Access(1))  # set 1 -- must not count
        assert cache.occupancy_of(0, way) == 2

    def test_policy_cannot_attach_twice(self, tiny_geometry):
        policy = LRUPolicy()
        SetAssociativeCache(tiny_geometry, policy)
        with pytest.raises(RuntimeError):
            SetAssociativeCache(tiny_geometry, policy)
