"""Tests for trace persistence."""

import numpy as np

from repro.traces.io import load_trace, save_trace
from repro.traces.trace import Trace


def test_round_trip(tmp_path):
    trace = Trace(
        [1, 2, 3],
        pcs=[10, 20, 30],
        thread_ids=[0, 1, 0],
        name="roundtrip",
        instructions_per_access=12.5,
    )
    path = tmp_path / "trace.npz"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert list(loaded.addresses) == [1, 2, 3]
    assert list(loaded.pcs) == [10, 20, 30]
    assert list(loaded.thread_ids) == [0, 1, 0]
    assert loaded.name == "roundtrip"
    assert loaded.instructions_per_access == 12.5


def test_round_trip_large(tmp_path):
    rng = np.random.default_rng(0)
    trace = Trace(rng.integers(0, 1 << 40, size=5000))
    path = tmp_path / "big.npz"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert np.array_equal(loaded.addresses, trace.addresses)
