"""Tests for trace persistence (native format + legacy .npz shim)."""

import gzip

import numpy as np
import pytest

from repro.traces.formats import TraceFormatError
from repro.traces.io import load_trace, save_trace
from repro.traces.trace import Trace


def test_round_trip(tmp_path):
    trace = Trace(
        [1, 2, 3],
        pcs=[10, 20, 30],
        thread_ids=[0, 1, 0],
        name="roundtrip",
        instructions_per_access=12.5,
    )
    path = tmp_path / "trace.npz"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert list(loaded.addresses) == [1, 2, 3]
    assert list(loaded.pcs) == [10, 20, 30]
    assert list(loaded.thread_ids) == [0, 1, 0]
    assert loaded.name == "roundtrip"
    assert loaded.instructions_per_access == 12.5


def test_round_trip_large(tmp_path):
    rng = np.random.default_rng(0)
    trace = Trace(rng.integers(0, 1 << 40, size=5000))
    path = tmp_path / "big.npz"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert np.array_equal(loaded.addresses, trace.addresses)


def test_save_writes_native_gzip_format(tmp_path):
    """Regardless of the suffix, ``save_trace`` writes the native format
    (gzip stream carrying the REPROTRC magic)."""
    path = tmp_path / "trace.npz"  # legacy-looking name, native content
    save_trace(Trace([1, 2, 3], name="t"), path)
    head = path.read_bytes()[:2]
    assert head == b"\x1f\x8b"
    with gzip.open(path, "rb") as fh:
        assert fh.read(8) == b"REPROTRC"


def test_load_accepts_legacy_npz_archive(tmp_path):
    """Archives written by the pre-native ``save_trace`` still load."""
    trace = Trace(
        [5, 6, 7],
        pcs=[50, 60, 70],
        thread_ids=[1, 0, 1],
        name="legacy",
        instructions_per_access=3.5,
    )
    path = tmp_path / "legacy.npz"
    np.savez_compressed(
        path,
        addresses=trace.addresses,
        pcs=trace.pcs,
        thread_ids=trace.thread_ids,
        name=np.array(trace.name),
        instructions_per_access=np.array(trace.instructions_per_access),
    )
    loaded = load_trace(path)
    assert list(loaded.addresses) == [5, 6, 7]
    assert list(loaded.pcs) == [50, 60, 70]
    assert list(loaded.thread_ids) == [1, 0, 1]
    assert loaded.name == "legacy"
    assert loaded.instructions_per_access == 3.5


def test_load_rejects_unknown_content(tmp_path):
    path = tmp_path / "junk.npz"
    path.write_bytes(b"definitely not a trace")
    with pytest.raises(TraceFormatError, match="neither a native trace"):
        load_trace(path)


def test_load_rejects_corrupt_legacy_archive(tmp_path):
    path = tmp_path / "bad.npz"
    path.write_bytes(b"PK\x03\x04 truncated zip")
    with pytest.raises(TraceFormatError, match="corrupt legacy"):
        load_trace(path)


def test_load_missing_file_raises_format_error(tmp_path):
    with pytest.raises(TraceFormatError, match="unreadable"):
        load_trace(tmp_path / "absent.trz")
