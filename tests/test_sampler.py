"""Tests for the RD sampler (Sec. 3)."""

import random

import pytest

from repro.core.sampler import RDSampler
from repro.traces.analysis import reuse_distances


class TestFullSampler:
    def test_exact_distances(self):
        """Full sampler (M=1) measures exactly the analysis-module RDs."""
        rng = random.Random(0)
        addresses = [rng.randrange(30) for _ in range(500)]
        measured = []
        sampler = RDSampler.full(1, d_max=64, on_distance=measured.append)
        for address in addresses:
            sampler.observe(0, address)
        exact = reuse_distances(addresses, num_sets=1, d_max=64)
        # The sampler invalidates on hit, so consecutive reuses of the
        # same line re-measure from the new insertion; with M=1 the entry
        # is re-pushed on the same access, making it exact.
        assert measured == [d for d in exact if d <= 64]

    def test_immediate_reuse_distance_one(self):
        got = []
        sampler = RDSampler.full(1, d_max=8, on_distance=got.append)
        sampler.observe(0, 5)
        sampler.observe(0, 5)
        assert got == [1]

    def test_distance_beyond_fifo_not_measured(self):
        got = []
        sampler = RDSampler(1, 1, fifo_depth=4, insertion_rate=1, on_distance=got.append)
        sampler.observe(0, 99)
        for address in range(4):
            sampler.observe(0, address)
        sampler.observe(0, 99)  # distance 5 > depth 4
        assert got == []


class TestSampledSets:
    def test_only_sampled_sets_observed(self):
        counted = []
        sampler = RDSampler(
            64, num_sampled_sets=2, fifo_depth=8, insertion_rate=1,
            on_distance=counted.append,
        )
        assert len(sampler.sampled_sets) == 2
        unsampled = next(s for s in range(64) if not sampler.is_sampled(s))
        assert sampler.observe(unsampled, 1) is None
        assert sampler.observe(unsampled, 1) is None
        assert counted == []

    def test_on_access_counts_sampled_only(self):
        accesses = []
        sampler = RDSampler(
            64, num_sampled_sets=2, fifo_depth=8, insertion_rate=1,
            on_access=lambda: accesses.append(1),
        )
        sampled = sampler.sampled_sets[0]
        unsampled = next(s for s in range(64) if not sampler.is_sampled(s))
        sampler.observe(sampled, 1)
        sampler.observe(unsampled, 1)
        assert len(accesses) == 1


class TestInsertionRate:
    def test_rd_reconstruction_formula(self):
        """RD = n * M + t for reduced insertion rate (paper Sec. 3)."""
        got = []
        sampler = RDSampler(
            1, 1, fifo_depth=8, insertion_rate=4, on_distance=got.append
        )
        # Access X, then 7 other blocks, then X again: true distance 8.
        sampler.observe(0, 100)  # t=1: no insert yet (t<4)
        for address in range(7):
            sampler.observe(0, address)
        sampler.observe(0, 100)
        # X was inserted on the 4th access if it was X... X was access 1,
        # inserted only when the counter hits M. The measured value must be
        # within one M of the true distance when measured at all.
        for distance in got:
            assert abs(distance - 8) <= 4

    def test_periodic_reuse_measured_exactly_when_aligned(self):
        """With M=4, reuse at gap 16 measures exactly 16 = n*M + t.

        The reused block must land on an insertion slot (every M-th
        access) to be in the FIFO at all; padding aligns it.
        """
        got = []
        sampler = RDSampler(1, 1, fifo_depth=16, insertion_rate=4, on_distance=got.append)
        filler = iter(range(100_000, 200_000))  # unique: no stray matches
        for _ in range(3):
            sampler.observe(0, next(filler))  # align X onto a 4th slot
        for _ in range(20):
            sampler.observe(0, 7777)
            for _ in range(15):
                sampler.observe(0, next(filler))
        assert got, "aligned periodic reuse must be measured"
        assert all(distance == 16 for distance in got)

    def test_d_max_property(self):
        sampler = RDSampler(1, 1, fifo_depth=32, insertion_rate=8)
        assert sampler.d_max == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            RDSampler(1, 1, fifo_depth=0, insertion_rate=1)
        with pytest.raises(ValueError):
            RDSampler(1, 1, fifo_depth=1, insertion_rate=0)


class TestSamplerMaintenance:
    def test_reset_clears_state(self):
        got = []
        sampler = RDSampler.full(1, d_max=8, on_distance=got.append)
        sampler.observe(0, 1)
        sampler.reset()
        sampler.observe(0, 1)
        assert got == []  # no cross-reset match

    def test_match_invalidates_entry(self):
        got = []
        sampler = RDSampler.full(1, d_max=8, on_distance=got.append)
        sampler.observe(0, 1)
        sampler.observe(0, 1)  # match + invalidate + re-push
        sampler.observe(0, 1)  # matches the re-pushed entry
        assert got == [1, 1]

    def test_storage_bits(self):
        sampler = RDSampler(64, num_sampled_sets=32, fifo_depth=32, insertion_rate=8)
        # 32 sets x (32 entries x 16 bits + 3-bit counter)
        assert sampler.storage_bits(tag_bits=16) == 32 * (32 * 16 + 3)

    def test_real_configuration(self):
        sampler = RDSampler.real(2048, d_max=256)
        assert sampler.num_sampled_sets == 32
        assert sampler.fifo_depth == 32
        assert sampler.insertion_rate == 8
