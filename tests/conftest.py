"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.memory.cache import CacheGeometry
from repro.sim.config import ExperimentConfig
from repro.workloads.spec_like import make_benchmark_trace


@pytest.fixture
def tiny_geometry() -> CacheGeometry:
    """4 sets x 4 ways — small enough to reason about by hand."""
    return CacheGeometry(num_sets=4, ways=4)


@pytest.fixture
def small_geometry() -> CacheGeometry:
    """16 sets x 16 ways — paper associativity, fast to simulate."""
    return CacheGeometry(num_sets=16, ways=16)


@pytest.fixture
def config() -> ExperimentConfig:
    return ExperimentConfig.small()


@pytest.fixture(scope="session")
def cactus_trace():
    """A cactusADM-like trace shared by integration tests (16 sets)."""
    return make_benchmark_trace("436.cactusADM", length=15_000, num_sets=16)


@pytest.fixture(scope="session")
def mcf_trace():
    return make_benchmark_trace("429.mcf", length=15_000, num_sets=16)
