"""Edge-case and failure-injection tests across modules."""

import numpy as np
import pytest

from repro.core.pd_engine import PDEngine
from repro.core.pdp_policy import PDPPolicy
from repro.core.rdd import RDCounterArray
from repro.core.sampler import RDSampler
from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.policies.lru import LRUPolicy
from repro.traces.trace import Trace
from repro.types import Access


class TestDegenerateGeometries:
    def test_direct_mapped_cache(self):
        cache = SetAssociativeCache(CacheGeometry(4, 1), LRUPolicy())
        cache.access(Access(0))
        result = cache.access(Access(4))  # conflicts with 0 in set 0
        assert result.evicted == 0

    def test_fully_associative_single_set(self):
        cache = SetAssociativeCache(CacheGeometry(1, 8), LRUPolicy())
        for address in range(8):
            cache.access(Access(address))
        assert all(cache.valid[0])

    def test_single_line_cache(self):
        cache = SetAssociativeCache(CacheGeometry(1, 1), LRUPolicy())
        cache.access(Access(1))
        cache.access(Access(2))
        assert cache.lookup(1) is None
        assert cache.lookup(2) is not None

    def test_pdp_on_direct_mapped(self):
        policy = PDPPolicy(static_pd=4, bypass=True)
        cache = SetAssociativeCache(CacheGeometry(2, 1), policy)
        for address in range(20):
            cache.access(Access(address))
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses


class TestEmptyAndTinyTraces:
    def test_empty_trace(self):
        from repro.sim.single_core import run_llc

        result = run_llc(Trace([]), LRUPolicy(), CacheGeometry(2, 2))
        assert result.accesses == 0
        assert result.hit_rate == 0.0
        assert result.mpki == 0.0

    def test_single_access_trace(self):
        from repro.sim.single_core import run_llc

        result = run_llc(Trace([5]), LRUPolicy(), CacheGeometry(2, 2))
        assert result.misses == 1

    def test_analysis_of_empty_trace(self):
        from repro.traces.analysis import reuse_distance_distribution

        counts, long_count, total = reuse_distance_distribution([], d_max=8)
        assert total == 0
        assert long_count == 0


class TestCounterEdges:
    def test_distance_at_exact_dmax(self):
        array = RDCounterArray(d_max=16, step=4)
        array.record_distance(16)
        assert array.counts[3] == 1

    def test_distance_one(self):
        array = RDCounterArray(d_max=16, step=4)
        array.record_distance(1)
        assert array.counts[0] == 1

    def test_negative_total_never_happens(self):
        array = RDCounterArray(d_max=16, step=4)
        array.record_distance(3)  # distance without access is tolerated
        assert array.long_count == 0  # clamped, not negative


class TestSamplerEdges:
    def test_one_set_cache_samples_it(self):
        sampler = RDSampler(1, num_sampled_sets=32, fifo_depth=4, insertion_rate=1)
        assert sampler.sampled_sets == [0]

    def test_zero_address_valid(self):
        got = []
        sampler = RDSampler.full(1, d_max=8, on_distance=got.append)
        sampler.observe(0, 0)
        sampler.observe(0, 0)
        assert got == [1]


class TestEngineEdges:
    def test_recompute_with_frozen_counters(self):
        engine = PDEngine(
            num_sets=1, associativity=4, d_max=8, step=1,
            recompute_interval=10**9, sampler_mode="full",
        )
        engine.counters.frozen = True
        pd = engine.recompute()
        assert 1 <= pd <= 8

    def test_manual_recompute_resets_interval(self):
        engine = PDEngine(num_sets=1, recompute_interval=100, sampler_mode="full")
        for index in range(50):
            engine.observe(0, index % 3)
        engine.recompute()
        assert engine.accesses_since_recompute == 0

    def test_pd_never_below_one(self):
        engine = PDEngine(
            num_sets=1, associativity=16, recompute_interval=10, sampler_mode="full"
        )
        for index in range(200):
            engine.observe(0, index)  # pure streaming
        assert engine.current_pd >= 1


class TestPDPBypassAccounting:
    def test_bypass_counts_in_stats(self):
        policy = PDPPolicy(static_pd=200, bypass=True)
        cache = SetAssociativeCache(CacheGeometry(1, 2), policy)
        cache.access(Access(0))
        cache.access(Access(1))
        for address in range(2, 10):
            cache.access(Access(address))
        stats = cache.stats
        assert stats.bypasses > 0
        assert stats.fills + stats.bypasses == stats.misses

    def test_protected_lines_survive_bypass_storm(self):
        policy = PDPPolicy(static_pd=200, bypass=True)
        cache = SetAssociativeCache(CacheGeometry(1, 2), policy)
        cache.access(Access(0))
        cache.access(Access(1))
        for address in range(2, 50):
            cache.access(Access(address))
        assert cache.lookup(0) is not None
        assert cache.lookup(1) is not None


class TestAccessResultConsistency:
    def test_eviction_and_bypass_mutually_exclusive(self):
        import random

        policy = PDPPolicy(static_pd=10, bypass=True)
        cache = SetAssociativeCache(CacheGeometry(2, 2), policy)
        rng = random.Random(0)
        for _ in range(500):
            result = cache.access(Access(rng.randrange(40)))
            if result.bypassed:
                assert result.evicted is None
                assert result.way == -1
            if result.hit:
                assert not result.bypassed


class TestMetricsEdges:
    def test_hmean_zero_ipc_guarded(self):
        from repro.sim.metrics import harmonic_mean_normalized_ipc

        with pytest.raises(ValueError):
            harmonic_mean_normalized_ipc([0.0], [1.0])

    def test_weighted_single_thread(self):
        from repro.sim.metrics import weighted_ipc

        assert weighted_ipc([2.0], [1.0]) == pytest.approx(2.0)


class TestWorkloadEdges:
    def test_generator_with_zero_reuse_possible_history(self):
        """A profile whose distances always exceed history falls back to
        fresh blocks rather than crashing."""
        from repro.workloads.base import RDDProfile, band
        from repro.workloads.synthetic import RDDProfileGenerator

        profile = RDDProfile(
            name="impossible", components=(band(200, 256, 1.0),)
        )
        generator = RDDProfileGenerator(
            profile, num_sets=4, seed=1, history_depth=8
        )
        trace = generator.generate(100)
        assert len(trace) == 100

    def test_mix_with_single_core(self):
        from repro.workloads.mixes import generate_mixes

        mixes = generate_mixes(2, cores=1, seed=0)
        assert all(m.num_cores == 1 for m in mixes)
