"""Deterministic trace cache: byte-identity, keying, invalidation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.trace import Trace
from repro.workloads.cache import (
    CACHE_SUFFIX,
    ENV_TRACE_CACHE_DIR,
    LEGACY_CACHE_SUFFIX,
    cached_trace,
    trace_cache_dir,
    trace_cache_key,
)
from repro.workloads.spec_like import make_benchmark_trace

BENCH = "403.gcc"
PARAMS = {"length": 4000, "num_sets": 16}


def _columns(trace: Trace):
    return (trace.addresses, trace.pcs, trace.thread_ids)


def test_cached_trace_is_byte_identical_to_fresh(tmp_path):
    fresh = make_benchmark_trace(BENCH, **PARAMS)
    stored = make_benchmark_trace(BENCH, **PARAMS, cache_dir=tmp_path)
    loaded = make_benchmark_trace(BENCH, **PARAMS, cache_dir=tmp_path)
    assert len(list(tmp_path.glob("*.trz"))) == 1
    for a, b, c in zip(_columns(fresh), _columns(stored), _columns(loaded)):
        assert a.dtype == b.dtype == c.dtype == np.int64
        assert a.tobytes() == b.tobytes() == c.tobytes()


def test_cache_hit_skips_generation(tmp_path):
    calls = []

    def produce() -> Trace:
        calls.append(1)
        return Trace([1, 2, 3], name="t")

    for _ in range(3):
        cached_trace("gen", {"n": 3}, 0, produce, directory=tmp_path)
    assert len(calls) == 1


def test_no_directory_disables_caching(monkeypatch):
    monkeypatch.delenv(ENV_TRACE_CACHE_DIR, raising=False)
    calls = []

    def produce() -> Trace:
        calls.append(1)
        return Trace([1, 2, 3], name="t")

    for _ in range(2):
        cached_trace("gen", {"n": 3}, 0, produce)
    assert len(calls) == 2


def test_env_var_enables_caching(monkeypatch, tmp_path):
    monkeypatch.setenv(ENV_TRACE_CACHE_DIR, str(tmp_path))
    assert trace_cache_dir() == tmp_path
    make_benchmark_trace(BENCH, **PARAMS)
    assert len(list(tmp_path.glob("*.trz"))) == 1


def test_key_includes_generator_version_and_params():
    base = trace_cache_key("gen", 1, {"n": 3}, 0)
    assert base == trace_cache_key("gen", 1, {"n": 3}, 0)  # stable
    assert base != trace_cache_key("gen", 2, {"n": 3}, 0)  # version bump
    assert base != trace_cache_key("gen", 1, {"n": 4}, 0)  # params
    assert base != trace_cache_key("gen", 1, {"n": 3}, 1)  # seed
    assert base != trace_cache_key("other", 1, {"n": 3}, 0)  # generator


def test_version_bump_invalidates_entry(tmp_path):
    make = lambda: Trace([1, 2, 3], name="t")  # noqa: E731
    cached_trace("gen", {"n": 3}, 0, make, version=1, directory=tmp_path)
    cached_trace("gen", {"n": 3}, 0, make, version=2, directory=tmp_path)
    assert len(list(tmp_path.glob("*.trz"))) == 2


def test_corrupt_entry_is_regenerated(tmp_path):
    make = lambda: Trace([4, 5, 6], name="t")  # noqa: E731
    cached_trace("gen", {"n": 3}, 0, make, directory=tmp_path)
    (entry,) = tmp_path.glob("*.trz")
    entry.write_bytes(b"not a trace archive")
    trace = cached_trace("gen", {"n": 3}, 0, make, directory=tmp_path)
    assert trace.addresses.tolist() == [4, 5, 6]


def test_legacy_npz_entry_is_loaded_and_migrated(tmp_path):
    """A cache populated by an older build (.npz entries) still hits, and
    the hit migrates the entry to the native format in place."""
    produced = Trace([10, 20, 30], pcs=[1, 2, 3], name="legacy")
    stem = trace_cache_key("gen", 1, {"n": 3}, 0)
    legacy = tmp_path / (stem + LEGACY_CACHE_SUFFIX)
    _save_legacy_npz(produced, legacy)

    calls = []

    def produce() -> Trace:
        calls.append(1)
        return produced

    loaded = cached_trace("gen", {"n": 3}, 0, produce, directory=tmp_path)
    assert calls == []  # served from the legacy entry, not regenerated
    assert loaded.addresses.tolist() == [10, 20, 30]
    assert loaded.pcs.tolist() == [1, 2, 3]
    # Migrated to native; legacy file kept for still-running old workers.
    assert (tmp_path / (stem + CACHE_SUFFIX)).exists()
    assert legacy.exists()
    # Second lookup hits the native entry directly.
    again = cached_trace("gen", {"n": 3}, 0, produce, directory=tmp_path)
    assert calls == []
    assert again.addresses.tolist() == [10, 20, 30]


def test_corrupt_legacy_entry_is_regenerated(tmp_path):
    make = lambda: Trace([7, 8], name="t")  # noqa: E731
    stem = trace_cache_key("gen", 1, {"n": 2}, 0)
    legacy = tmp_path / (stem + LEGACY_CACHE_SUFFIX)
    legacy.write_bytes(b"PK\x03\x04 truncated junk")
    trace = cached_trace("gen", {"n": 2}, 0, make, directory=tmp_path)
    assert trace.addresses.tolist() == [7, 8]
    assert not legacy.exists()  # corrupt legacy entry evicted


def _save_legacy_npz(trace: Trace, path) -> None:
    """Write the pre-streaming on-disk format (what old builds produced)."""
    np.savez_compressed(
        path,
        addresses=trace.addresses,
        pcs=trace.pcs,
        thread_ids=trace.thread_ids,
        name=np.array(trace.name),
        instructions_per_access=np.array(trace.instructions_per_access),
    )


def test_cache_path_that_is_a_file_raises_cleanly(tmp_path):
    not_a_dir = tmp_path / "occupied"
    not_a_dir.write_text("in the way")
    with pytest.raises(NotADirectoryError, match="not a directory"):
        cached_trace(
            "gen", {"n": 3}, 0, lambda: Trace([1]), directory=not_a_dir
        )


def test_seed_determinism_guard(tmp_path):
    """Same seed through the cache and fresh generation must agree even
    across distinct cache directories (the PR's determinism guard)."""
    first = make_benchmark_trace(BENCH, **PARAMS, seed=99, cache_dir=tmp_path / "a")
    second = make_benchmark_trace(BENCH, **PARAMS, seed=99, cache_dir=tmp_path / "b")
    fresh = make_benchmark_trace(BENCH, **PARAMS, seed=99)
    for a, b, c in zip(_columns(first), _columns(second), _columns(fresh)):
        assert a.tobytes() == b.tobytes() == c.tobytes()
    different = make_benchmark_trace(BENCH, **PARAMS, seed=100)
    assert fresh.addresses.tobytes() != different.addresses.tobytes()


@pytest.mark.parametrize("container", [list, tuple, np.asarray])
def test_trace_accepts_arrays_without_copy_roundtrip(container):
    values = container([1, 2, 3, 4])
    trace = Trace(values)
    assert trace.addresses.dtype == np.int64
    assert trace.addresses.tolist() == [1, 2, 3, 4]


def test_trace_reuses_int64_ndarray():
    arr = np.array([7, 8, 9], dtype=np.int64)
    trace = Trace(arr)
    assert trace.addresses is arr  # no copy for an already-int64 column
