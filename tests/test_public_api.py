"""Public-API surface tests: imports, exports, example importability."""

import importlib
import subprocess
import sys
from pathlib import Path

import pytest

import repro

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_subpackage_all_names_resolve(self):
        for module_name in (
            "repro.core",
            "repro.policies",
            "repro.partitioning",
            "repro.memory",
            "repro.obs",
            "repro.sim",
            "repro.traces",
            "repro.workloads",
            "repro.hardware",
        ):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_policy_classes_exported(self):
        from repro import (
            BeladyPolicy,
            ClassifiedPDPPolicy,
            PDPPolicy,
            PDPartitionPolicy,
        )

        assert PDPPolicy is not None
        assert ClassifiedPDPPolicy is not None
        assert BeladyPolicy is not None
        assert PDPartitionPolicy is not None


class TestDocstrings:
    def test_every_public_module_documented(self):
        import pkgutil

        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if info.name.endswith("__main__"):
                continue
            module = importlib.import_module(info.name)
            assert module.__doc__, f"{info.name} has no module docstring"

    def test_key_classes_documented(self):
        from repro.core.pdp_policy import PDPPolicy
        from repro.core.sampler import RDSampler
        from repro.partitioning.pd_partition import PDPartitionPolicy

        for cls in (PDPPolicy, RDSampler, PDPartitionPolicy):
            assert cls.__doc__ and len(cls.__doc__) > 50


class TestExamples:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "protecting_distance_tour",
            "bypass_study",
            "phase_adaptation",
            "shared_cache_partitioning",
            "policy_zoo",
        ],
    )
    def test_example_compiles(self, name):
        path = EXAMPLES_DIR / f"{name}.py"
        source = path.read_text()
        compile(source, str(path), "exec")

    def test_quickstart_runs(self):
        """The quickstart example must execute end to end."""
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "dynamic PD settled at" in result.stdout


class TestCLIExperimentPath:
    def test_experiment_fig1_fast(self, capsys):
        from repro.cli import main

        assert main(["experiment", "fig1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out
