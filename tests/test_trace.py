"""Tests for repro.traces.trace."""

import numpy as np
import pytest

from repro.traces.trace import Trace
from repro.types import Access


class TestTraceConstruction:
    def test_basic(self):
        trace = Trace([1, 2, 3])
        assert len(trace) == 3
        assert list(trace.addresses) == [1, 2, 3]
        assert list(trace.pcs) == [0, 0, 0]

    def test_with_pcs(self):
        trace = Trace([1, 2], pcs=[10, 20])
        assert list(trace.pcs) == [10, 20]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Trace([1, 2, 3], pcs=[1])

    def test_instruction_count(self):
        trace = Trace([1, 2, 3, 4], instructions_per_access=25.0)
        assert trace.instruction_count == 100

    def test_iteration_yields_accesses(self):
        trace = Trace([5, 6], pcs=[100, 200], thread_ids=[0, 1])
        items = list(trace)
        assert items[0] == Access(5, 100, thread_id=0)
        assert items[1].thread_id == 1

    def test_getitem(self):
        trace = Trace([7, 8])
        assert trace[1].address == 8


class TestTraceTransforms:
    def test_slice(self):
        trace = Trace(range(10))
        sub = trace.slice(2, 5)
        assert list(sub.addresses) == [2, 3, 4]
        assert len(sub) == 3

    def test_concat(self):
        joined = Trace([1, 2]).concat(Trace([3]))
        assert list(joined.addresses) == [1, 2, 3]

    def test_with_thread_id(self):
        tagged = Trace([1, 2]).with_thread_id(3)
        assert list(tagged.thread_ids) == [3, 3]

    def test_offset_addresses(self):
        shifted = Trace([1, 2]).offset_addresses(100)
        assert list(shifted.addresses) == [101, 102]

    def test_offset_preserves_length_and_pcs(self):
        trace = Trace([1, 2], pcs=[9, 9])
        shifted = trace.offset_addresses(10)
        assert len(shifted) == 2
        assert list(shifted.pcs) == [9, 9]

    def test_repr_mentions_name(self):
        assert "mytrace" in repr(Trace([1], name="mytrace"))
