"""Tests for the PD compute processor and the SRAM overhead models."""

import numpy as np
import pytest

from repro.core.hit_rate_model import find_best_pd
from repro.hardware.overhead import (
    dip_overhead_bits,
    drrip_overhead_bits,
    llc_sram_bits,
    overhead_report,
    pdp_overhead_bits,
    ucp_overhead_bits,
)
from repro.hardware.pd_processor import (
    Instruction,
    PDProcessor,
    assemble_pd_search,
    normalize_rdd,
    pd_search_integer,
    run_pd_search,
)
from repro.memory.cache import CacheGeometry


class TestProcessorISA:
    def test_movi_and_add(self):
        cpu = PDProcessor([])
        cpu.run(
            [
                Instruction("MOVI", 8, 5),
                Instruction("MOVI", 9, 7),
                Instruction("ADD", 10, 8, 9),
                Instruction("HALT"),
            ]
        )
        assert cpu.registers[10] == 12

    def test_eight_bit_bank_wraps(self):
        cpu = PDProcessor([])
        cpu.run([Instruction("MOVI", 0, 300), Instruction("HALT")])
        assert cpu.registers[0] == 300 & 0xFF

    def test_thirty_two_bit_bank_wraps(self):
        cpu = PDProcessor([])
        cpu.run([Instruction("MOVI", 8, 1 << 33), Instruction("HALT")])
        assert cpu.registers[8] == 0

    def test_div32_by_zero_yields_zero(self):
        cpu = PDProcessor([])
        cpu.run(
            [
                Instruction("MOVI", 8, 100),
                Instruction("MOVI", 9, 0),
                Instruction("DIV32", 10, 8, 9),
                Instruction("HALT"),
            ]
        )
        assert cpu.registers[10] == 0

    def test_load_reads_counter_memory(self):
        cpu = PDProcessor([11, 22, 33])
        cpu.run(
            [
                Instruction("MOVI", 0, 2),
                Instruction("LOAD", 8, 0),
                Instruction("HALT"),
            ]
        )
        assert cpu.registers[8] == 33

    def test_load_out_of_range_is_zero(self):
        cpu = PDProcessor([11])
        cpu.run(
            [Instruction("MOVI", 0, 9), Instruction("LOAD", 8, 0), Instruction("HALT")]
        )
        assert cpu.registers[8] == 0

    def test_cycle_costs(self):
        cpu = PDProcessor([])
        cpu.run(
            [
                Instruction("MOVI", 8, 6),
                Instruction("MOVI", 0, 7),
                Instruction("MULT8", 9, 8, 0),
                Instruction("DIV32", 10, 9, 8),
                Instruction("HALT"),
            ]
        )
        # 1 + 1 + 8 + 33 + 1 cycles.
        assert cpu.cycles == 44
        assert cpu.registers[9] == 42
        assert cpu.registers[10] == 7

    def test_branch_loop(self):
        # Sum 1..5 with a BLT loop.
        program = [
            Instruction("MOVI", 0, 0),  # i
            Instruction("MOVI", 1, 5),  # limit
            Instruction("MOVI", 8, 0),  # sum
            Instruction("ADDI", 0, 0, 1),  # loop: i += 1
            Instruction("ADD", 8, 8, 0),
            Instruction("BLT", 3, 0, 1),  # while i < limit
            Instruction("HALT"),
        ]
        cpu = PDProcessor([])
        cpu.run(program)
        assert cpu.registers[8] == 15

    def test_runaway_program_detected(self):
        cpu = PDProcessor([])
        with pytest.raises(RuntimeError):
            cpu.run([Instruction("JMP", 0)], max_steps=100)

    def test_unknown_opcode(self):
        cpu = PDProcessor([])
        with pytest.raises(ValueError):
            cpu.run([Instruction("FROB", 0)])


class TestPDSearchProgram:
    def test_matches_python_replica(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            counts = rng.integers(0, 2000, size=64)
            total = int(counts.sum() * rng.uniform(1.0, 4.0))
            hw, _ = run_pd_search(counts, total, step=4, d_e=16)
            assert hw == pd_search_integer(counts, total, step=4, d_e=16)

    def test_close_to_float_model(self):
        """The hardware's integer PD scores within 5% of the float optimum.

        On noisy RDDs the E curve can be nearly flat, so compare E-values
        (what the policy actually cares about), not argmax positions.
        """
        from repro.core.hit_rate_model import evaluate_e_curve

        rng = np.random.default_rng(11)
        for _ in range(20):
            counts = rng.integers(0, 500, size=64)
            total = int(counts.sum() * 1.5)
            hw, _ = run_pd_search(counts, total, step=4, d_e=16)
            curve = {p.pd: p.e_value for p in evaluate_e_curve(counts, total, 4, 16.0)}
            best = max(curve.values())
            assert curve[hw] >= 0.95 * best

    def test_single_peak_exact(self):
        counts = np.zeros(64, dtype=np.int64)
        counts[17] = 1000
        hw, _ = run_pd_search(counts, 1800, step=4, d_e=16)
        assert hw == 72

    def test_cycles_negligible_vs_interval(self):
        """Sec. 3: total search time is tiny vs the 512K-access interval."""
        counts = np.ones(64, dtype=np.int64) * 100
        _, cycles = run_pd_search(counts, 10_000, step=4, d_e=16)
        assert cycles < 10_000  # < 2% of 512K accesses even at 1 access/cycle

    def test_step_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            assemble_pd_search(num_bins=10, step=3, d_e=16)

    def test_num_bins_bounded(self):
        with pytest.raises(ValueError):
            assemble_pd_search(num_bins=256, step=2, d_e=16)

    def test_normalization_preserves_argmax(self):
        counts = np.zeros(64, dtype=np.int64)
        counts[30] = 500_000  # forces a shift
        scaled, total = normalize_rdd(counts, 1_000_000)
        assert total < (1 << 12)
        hw, _ = run_pd_search(counts, 1_000_000, step=4, d_e=16)
        assert hw == 124


class TestOverhead:
    def test_llc_sram_bits(self):
        geometry = CacheGeometry.from_capacity(2 * 1024 * 1024, ways=16)
        bits = llc_sram_bits(geometry, tag_bits=24)
        assert bits == geometry.total_lines * (512 + 24 + 1)

    def test_pdp_overheads_match_paper_band(self):
        """Sec. 6.2: PDP-2 ~0.6%, PDP-3 ~0.8% of a 2MB LLC."""
        geometry = CacheGeometry.from_capacity(2 * 1024 * 1024, ways=16)
        base = llc_sram_bits(geometry)
        pdp2 = pdp_overhead_bits(geometry, n_c=2) / base
        pdp3 = pdp_overhead_bits(geometry, n_c=3) / base
        assert 0.004 < pdp2 < 0.007
        assert 0.006 < pdp3 < 0.009

    def test_drrip_cheaper_than_dip(self):
        """Paper: DRRIP 0.4%, DIP 0.8% (2 vs 4 recency bits per line)."""
        geometry = CacheGeometry.from_capacity(2 * 1024 * 1024, ways=16)
        assert drrip_overhead_bits(geometry) < dip_overhead_bits(geometry)

    def test_reuse_bit_only_without_bypass(self):
        geometry = CacheGeometry(64, 16)
        with_bypass = pdp_overhead_bits(geometry, bypass=True)
        without = pdp_overhead_bits(geometry, bypass=False)
        assert without - with_bypass == geometry.total_lines

    def test_ucp_scales_with_threads(self):
        geometry = CacheGeometry(256, 16)
        assert ucp_overhead_bits(geometry, 16) > ucp_overhead_bits(geometry, 4)

    def test_report_rows(self):
        rows = overhead_report()
        names = [row.policy for row in rows]
        assert names == ["PDP-2", "PDP-3", "PDP-8", "DIP", "DRRIP"]
        assert all(row.fraction_of_llc < 0.05 for row in rows)
