"""Tests for the EELRU policy."""

import random

from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.policies.eelru import EELRUPolicy
from repro.policies.lru import LRUPolicy
from repro.types import Access
from repro.workloads.streams import cyclic_loop


def run(policy, addresses, num_sets=1, ways=4):
    cache = SetAssociativeCache(CacheGeometry(num_sets, ways), policy)
    for address in addresses:
        cache.access(Access(int(address)))
    return cache


class TestEELRU:
    def test_defaults_to_lru_without_evidence(self):
        rng = random.Random(0)
        addresses = [rng.randrange(4) for _ in range(500)]
        eelru = run(EELRUPolicy(update_interval=100), addresses)
        lru = run(LRUPolicy(), addresses)
        assert eelru.stats.hits == lru.stats.hits

    def test_position_histogram_accumulates(self):
        policy = EELRUPolicy(update_interval=10_000)
        run(policy, [0, 1, 0, 1, 0])
        # Reuses at recency positions beyond 0 were recorded.
        assert sum(policy._position_hits) >= 3

    def test_early_eviction_engages_on_large_loop(self):
        """A loop slightly larger than the cache flips EELRU to early mode."""
        policy = EELRUPolicy(l_max=64, update_interval=64)
        addresses = list(cyclic_loop(4000, working_set=6).addresses)
        run(policy, addresses)
        assert policy._early_mode

    def test_beats_lru_on_looping_pattern(self):
        addresses = list(cyclic_loop(6000, working_set=6).addresses)
        eelru = run(EELRUPolicy(l_max=64, update_interval=64), addresses)
        lru = run(LRUPolicy(), addresses)
        assert lru.stats.hits == 0
        assert eelru.stats.hits > 100

    def test_queue_capped_at_l_max(self):
        policy = EELRUPolicy(l_max=16, update_interval=10_000)
        run(policy, range(200))
        assert len(policy._queue[0]) <= 16

    def test_histogram_decays_after_selection(self):
        policy = EELRUPolicy(l_max=32, update_interval=50)
        run(policy, [0, 1, 0, 1] * 100)
        # After several selections the counters were halved repeatedly.
        assert max(policy._position_hits) < 200

    def test_early_victim_is_not_mru(self):
        """In early mode the victim must never be the most recent line."""
        policy = EELRUPolicy(l_max=64, update_interval=64)
        cache = SetAssociativeCache(CacheGeometry(1, 4), policy)
        last_filled = None
        for address in cyclic_loop(3000, working_set=6).addresses:
            result = cache.access(Access(int(address)))
            if result.evicted is not None and last_filled is not None:
                assert result.evicted != last_filled
            if not result.hit:
                last_filled = int(address)
