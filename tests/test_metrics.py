"""Tests for the multi-core performance metrics (Sec. 5)."""

import pytest

from repro.sim.metrics import (
    geometric_mean,
    harmonic_mean_normalized_ipc,
    miss_reduction_percent,
    percent_change,
    throughput,
    weighted_ipc,
)


class TestWeightedIPC:
    def test_no_slowdown_gives_thread_count(self):
        assert weighted_ipc([1.0, 2.0], [1.0, 2.0]) == pytest.approx(2.0)

    def test_half_speed_threads(self):
        assert weighted_ipc([0.5, 1.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_ipc([1.0], [1.0, 2.0])

    def test_zero_single_rejected(self):
        with pytest.raises(ValueError):
            weighted_ipc([1.0], [0.0])


class TestThroughput:
    def test_sum(self):
        assert throughput([0.5, 1.5, 2.0]) == pytest.approx(4.0)


class TestHarmonicMean:
    def test_equal_speedups(self):
        assert harmonic_mean_normalized_ipc([1.0, 1.0], [2.0, 2.0]) == pytest.approx(0.5)

    def test_penalizes_imbalance(self):
        """H punishes unfairness more than W does."""
        balanced = harmonic_mean_normalized_ipc([1.0, 1.0], [2.0, 2.0])
        unbalanced = harmonic_mean_normalized_ipc([1.8, 0.2], [2.0, 2.0])
        assert unbalanced < balanced

    def test_upper_bound_is_one(self):
        assert harmonic_mean_normalized_ipc([2.0, 2.0], [2.0, 2.0]) == pytest.approx(1.0)


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestPercentHelpers:
    def test_percent_change(self):
        assert percent_change(1.1, 1.0) == pytest.approx(10.0)
        assert percent_change(1.0, 0.0) == 0.0

    def test_miss_reduction(self):
        assert miss_reduction_percent(80, 100) == pytest.approx(20.0)
        assert miss_reduction_percent(120, 100) == pytest.approx(-20.0)
        assert miss_reduction_percent(0, 0) == 0.0
