#!/usr/bin/env python
"""CI smoke test for the sweep service: kill mid-sweep, restart, resume.

Black-box exercise of the full daemon lifecycle over real subprocesses
and the real unix-socket protocol:

1. start ``python -m repro serve`` on a scratch root,
2. submit a deliberately slow sweep (reference engine),
3. SIGTERM the daemon once some — but not all — cell manifests exist,
4. verify the job record was persisted back to ``queued``/interrupted,
5. restart the daemon, watch the job to completion,
6. assert every cell is accounted for (skipped + ran == total), the
   skipped count equals the manifests that survived the kill, and the
   namespace holds exactly one cell manifest per policy,
7. hit the live daemon's ``stats`` verb (queue depth, jobs-by-state,
   latency percentiles) and run ``repro obs scrape --prom`` once,
   validating the Prometheus text exposition.

Exits non-zero (with a diagnostic) on any violation. Usage::

    python tools/service_smoke.py [--root DIR]

Stdlib + repro only; run from the repository root.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.manifest import scan_manifests  # noqa: E402
from repro.service.jobs import SweepSpec  # noqa: E402
from repro.service.protocol import ServiceClient, service_socket  # noqa: E402

POLICIES = ["lru", "fifo", "random", "srrip", "drrip", "pdp"]
NAMESPACE = "smoke"


def fail(message: str) -> None:
    """Print a diagnostic and exit non-zero."""
    print(f"SERVICE SMOKE FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


def start_daemon(root: Path) -> subprocess.Popen:
    """Launch ``repro serve`` and wait for its socket to appear."""
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--root", str(root)],
        env=env,
        cwd=REPO_ROOT,
    )
    sock = service_socket(root)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if sock.exists():
            return proc
        if proc.poll() is not None:
            fail(f"daemon exited early with code {proc.returncode}")
        time.sleep(0.1)
    proc.kill()
    fail("daemon did not bind its socket within 30s")
    raise AssertionError  # unreachable


def stop_daemon(proc: subprocess.Popen) -> None:
    """SIGTERM the daemon, escalating to SIGKILL if it lingers."""
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=15)


def cell_manifests(namespace_dir: Path) -> list:
    """The ``llc`` cell manifests currently in the namespace."""
    return [m for m in scan_manifests(namespace_dir).manifests if m.kind == "llc"]


def verify_stats_and_scrape(root: Path) -> None:
    """Hit the live daemon's ``stats`` verb and ``repro obs scrape --prom``.

    The daemon must answer with queue depth, jobs-by-state, and latency
    percentiles, and the Prometheus scrape must emit text exposition —
    the observability acceptance surface of the live service.
    """
    with ServiceClient(service_socket(root)) as client:
        stats = client.stats()
    if not stats.get("ok"):
        fail(f"stats verb refused: {stats}")
    for key in ("queue_depth", "jobs_by_state", "percentiles", "metrics"):
        if key not in stats:
            fail(f"stats payload missing {key!r}: {sorted(stats)}")
    runtime = stats["percentiles"].get("service.job_runtime_s")
    if not runtime or not runtime.get("count"):
        fail(f"stats has no job runtime histogram: {stats['percentiles']}")
    print(
        f"[smoke] stats OK: queue={stats['queue_depth']} "
        f"jobs={stats['jobs_by_state']} "
        f"job p50={runtime['p50']:.3f}s p99={runtime['p99']:.3f}s"
    )
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    scrape = subprocess.run(
        [sys.executable, "-m", "repro", "obs", "scrape",
         "--root", str(root), "--prom"],
        env=env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=60,
    )
    if scrape.returncode != 0:
        fail(f"obs scrape --prom exited {scrape.returncode}: {scrape.stderr}")
    if "# TYPE repro_service_job_runtime_s histogram" not in scrape.stdout:
        fail(f"scrape output lacks the job runtime histogram:\n{scrape.stdout}")
    print("[smoke] prometheus scrape OK "
          f"({len(scrape.stdout.splitlines())} lines)")


def main() -> int:
    """Run the interrupted-then-resumed smoke scenario."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default=None, help="service root (default: a temp dir)"
    )
    args = parser.parse_args()
    scratch = (
        tempfile.mkdtemp(prefix="repro-service-smoke-")
        if args.root is None
        else args.root
    )
    root = Path(scratch)
    namespace_dir = root / "namespaces" / NAMESPACE
    spec = SweepSpec(
        benchmark="429.mcf",
        length=250_000,
        engine="reference",  # slow on purpose so the kill lands mid-sweep
        policies=list(POLICIES),
        namespace=NAMESPACE,
    )

    print(f"[smoke] root={root}")
    proc = start_daemon(root)
    try:
        with ServiceClient(service_socket(root)) as client:
            job = client.submit(spec.to_dict())
        job_id = job["job_id"]
        print(f"[smoke] submitted {job_id} ({len(POLICIES)} cells)")

        deadline = time.monotonic() + 180
        while time.monotonic() < deadline:
            if len(cell_manifests(namespace_dir)) >= 2:
                break
            time.sleep(0.2)
        else:
            fail("no cell manifests appeared within 180s")
    finally:
        stop_daemon(proc)

    survivors = len(cell_manifests(namespace_dir))
    print(f"[smoke] killed daemon with {survivors} cell manifest(s) durable")
    record = json.loads((root / "jobs" / f"{job_id}.json").read_text())
    if record["state"] == "done":
        # Machine outran the kill — the resume path wasn't exercised, but
        # the lifecycle still holds; verify completion and succeed.
        print("[smoke] sweep finished before SIGTERM (fast machine); "
              "resume not exercised")
        if survivors < len(POLICIES):
            fail(f"job done but only {survivors} cell manifests exist")
        proc = start_daemon(root)
        try:
            # metrics live in the daemon process: give the fresh daemon
            # one (all-skip) job so its latency histograms are non-empty
            with ServiceClient(service_socket(root), timeout=600) as client:
                rerun = client.submit(spec.to_dict())
                list(client.watch(rerun["job_id"]))
            verify_stats_and_scrape(root)
        finally:
            stop_daemon(proc)
        return 0
    if record["state"] != "queued" or not record["interrupted"]:
        fail(
            f"expected queued/interrupted after SIGTERM, got "
            f"{record['state']}/interrupted={record['interrupted']}"
        )
    if not 0 < survivors < len(POLICIES):
        fail(f"expected a partial sweep, found {survivors} cell manifests")

    print("[smoke] restarting daemon; watching the recovered job")
    proc = start_daemon(root)
    try:
        with ServiceClient(service_socket(root), timeout=600) as client:
            responses = list(client.watch(job_id))
        done = responses[-1]["done"]
        verify_stats_and_scrape(root)
    finally:
        stop_daemon(proc)

    if done["state"] != "done":
        fail(f"resumed job ended {done['state']}: {done.get('error')}")
    if done["skipped_cells"] != survivors:
        fail(
            f"resume skipped {done['skipped_cells']} cells but "
            f"{survivors} manifests survived the kill"
        )
    if done["skipped_cells"] + done["ran_cells"] != len(POLICIES):
        fail(
            f"cells unaccounted for: skipped {done['skipped_cells']} + "
            f"ran {done['ran_cells']} != {len(POLICIES)}"
        )
    final = cell_manifests(namespace_dir)
    labels = sorted(m.label for m in final)
    if labels != sorted(POLICIES):
        fail(f"expected one manifest per policy, found {labels}")
    print(
        f"[smoke] OK: resumed job skipped {done['skipped_cells']} and ran "
        f"{done['ran_cells']} of {len(POLICIES)} cells; "
        f"{len(final)} cell manifests total"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
