"""Cross-validate the analytical explorer against the simulator.

The error-budget gate of ``repro.explore`` (CI job ``explorer-xval``)::

    python tools/xval_explorer.py                 # full declared grid
    python tools/xval_explorer.py --benchmarks 403.gcc --geometries 64x4
    python tools/xval_explorer.py --variant broken-set-rescale  # must fail
    python tools/xval_explorer.py --out xval_report.md

For every declared (benchmark, geometry) cell the harness runs one
analytical prediction (one profiling pass per benchmark, shared across
its geometries) and one ground-truth SPDP-B sweep
(:func:`repro.sim.runner.sweep_static_pd`) over the *same* canonical PD
grid (:func:`repro.core.pd_grid.pd_grid`, step ``PD_STEP``), then holds
the model to the declared budget:

- mean ``|predicted - simulated|`` hit rate over all (geometry, PD)
  points at most ``BUDGET_MEAN_PTS`` percentage points;
- max absolute error at most ``BUDGET_MAX_PTS`` points;
- the predicted-best static PD within one PD-grid step of the empirical
  best, **or** within ``BUDGET_TIE_PTS`` points of the empirical best
  hit rate (flat curves make the argmax itself noise — what matters is
  that acting on the prediction costs almost nothing).

Exit status 0 when every cell passes, 1 with a located per-geometry
error report otherwise. ``--variant`` injects a registered model
variant (``broken-set-rescale`` rescales reuse distances with an
off-by-one set count) — the negative test asserts the harness catches
it. The module is importable: ``run_xval`` returns the raw comparison
rows and ``check_budget`` the violations, which is how
``tests/test_explore.py`` runs a reduced grid in-process.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.pd_grid import grid_step, pd_grid  # noqa: E402
from repro.explore import explore  # noqa: E402
from repro.memory.cache import CacheGeometry  # noqa: E402
from repro.sim.runner import sweep_static_pd  # noqa: E402
from repro.workloads import make_benchmark_trace  # noqa: E402

#: The declared cross-validation grid: diverse RDD shapes (streaming,
#: LRU-friendly, scan-heavy, mixed) by construction of the SPEC-like
#: profiles. 473.astar is deliberately absent: it is the measured
#: out-of-model workload (see docs/EXPLORER.md, "Known limitations") —
#: its mid-range hit rates break the pooled-RDD occupancy balance by up
#: to 12 pts, and the declared budget is a contract over workloads the
#: model claims to handle, not a claim of universality.
BENCHMARKS = (
    "403.gcc",
    "429.mcf",
    "450.soplex",
    "462.libquantum",
    "470.lbm",
    "482.sphinx3",
    "483.xalancbmk.2",
)

#: Declared (num_sets, ways) geometries — 2 to 16 ways, 16 to 256 sets.
GEOMETRIES = (
    (16, 2),
    (16, 4),
    (32, 4),
    (64, 8),
    (64, 16),
    (128, 8),
    (256, 16),
)

#: Trace length of every cross-validation cell.
LENGTH = 20_000

#: PD grid step for the sweep (coarser than the production default of 4
#: to keep the simulation side cheap; both sides share the same grid).
PD_STEP = 16

#: Largest candidate protecting distance.
PD_MAX = 256

#: Error budget: mean absolute hit-rate error, percentage points.
BUDGET_MEAN_PTS = 2.0

#: Error budget: max absolute hit-rate error, percentage points.
BUDGET_MAX_PTS = 5.0

#: Best-PD tie tolerance: a predicted best PD whose *simulated* hit rate
#: is within this many points of the empirical best passes even when it
#: sits more than one grid step away (flat-curve argmax noise).
BUDGET_TIE_PTS = 0.5


def run_xval(
    benchmarks=BENCHMARKS,
    geometries=GEOMETRIES,
    length: int = LENGTH,
    pd_step: int = PD_STEP,
    pd_max: int = PD_MAX,
    variant: str = "default",
    engine: str = "vector",
) -> list[dict]:
    """Run the comparison grid; one result row per (benchmark, geometry).

    Each row carries the shared PD grid, both hit-rate curves
    (``predicted``/``simulated``, index-aligned with ``pds``), the
    per-point absolute errors in percentage points, and the two best-PD
    verdict ingredients (``best_pd_pred``/``best_pd_sim`` plus
    ``tie_gap_pts``, the simulated cost of acting on the prediction).
    """
    sets = sorted({s for s, _ in geometries})
    ways = sorted({w for _, w in geometries})
    rows: list[dict] = []
    for benchmark in benchmarks:
        trace = make_benchmark_trace(benchmark, length=length)
        result = explore(
            trace,
            sets=sets,
            ways=ways,
            pd_max=pd_max,
            pd_step=pd_step,
            model_variant=variant,
        )
        for num_sets, way_count in geometries:
            prediction = result.prediction_for(num_sets, way_count)
            pds = pd_grid(way_count, d_max=pd_max, step=pd_step)
            assert prediction is not None and prediction.pds == pds
            geometry = CacheGeometry(
                num_sets=num_sets, ways=way_count, line_size=64
            )
            sim = sweep_static_pd(
                trace, geometry, pds, bypass=True, engine=engine
            )
            simulated = [sim[pd].hit_rate for pd in pds]
            errors = [
                abs(p - s) * 100.0
                for p, s in zip(prediction.hit_rates, simulated)
            ]
            best_sim = max(simulated)
            tie_gap = (
                best_sim - simulated[pds.index(prediction.best_pd)]
            ) * 100.0
            rows.append(
                {
                    "benchmark": benchmark,
                    "num_sets": num_sets,
                    "ways": way_count,
                    "pds": pds,
                    "predicted": list(prediction.hit_rates),
                    "simulated": simulated,
                    "errors": errors,
                    "mean_error": sum(errors) / len(errors),
                    "max_error": max(errors),
                    "best_pd_pred": prediction.best_pd,
                    "best_pd_sim": pds[simulated.index(best_sim)],
                    "tie_gap_pts": tie_gap,
                }
            )
    return rows


def check_budget(
    rows: list[dict],
    mean_pts: float = BUDGET_MEAN_PTS,
    max_pts: float = BUDGET_MAX_PTS,
    tie_pts: float = BUDGET_TIE_PTS,
) -> list[str]:
    """Hold comparison rows to the budget; returns located violations.

    The mean budget applies to the whole grid; the max and best-PD
    checks are per (benchmark, geometry) cell so a violation names the
    exact cell that drifted. An empty return means the gate passes.
    """
    violations: list[str] = []
    all_errors = [error for row in rows for error in row["errors"]]
    if not all_errors:
        return ["no comparison points — empty grid?"]
    mean = sum(all_errors) / len(all_errors)
    if mean > mean_pts:
        violations.append(
            f"grid mean abs error {mean:.2f} pts exceeds budget {mean_pts} pts"
        )
    for row in rows:
        cell = f"{row['benchmark']} {row['num_sets']}x{row['ways']}"
        if row["max_error"] > max_pts:
            worst = row["errors"].index(row["max_error"])
            violations.append(
                f"{cell}: max abs error {row['max_error']:.2f} pts at "
                f"pd={row['pds'][worst]} exceeds budget {max_pts} pts "
                f"(predicted {row['predicted'][worst]:.4f}, "
                f"simulated {row['simulated'][worst]:.4f})"
            )
        step = grid_step(row["pds"])
        off_grid = abs(row["best_pd_pred"] - row["best_pd_sim"]) > step
        if off_grid and row["tie_gap_pts"] > tie_pts:
            violations.append(
                f"{cell}: predicted best pd {row['best_pd_pred']} is more "
                f"than one grid step from empirical best "
                f"{row['best_pd_sim']} and costs {row['tie_gap_pts']:.2f} "
                f"pts of simulated hit rate (tie tolerance {tie_pts} pts)"
            )
    return violations


def render_markdown(rows: list[dict], violations: list[str]) -> str:
    """The per-geometry error table CI uploads as an artifact."""
    all_errors = [error for row in rows for error in row["errors"]]
    mean = sum(all_errors) / len(all_errors) if all_errors else 0.0
    worst = max((row["max_error"] for row in rows), default=0.0)
    lines = [
        "# Explorer cross-validation",
        "",
        f"{len(rows)} cells, {len(all_errors)} (geometry, PD) points; "
        f"grid mean abs error **{mean:.2f} pts** "
        f"(budget {BUDGET_MEAN_PTS}), worst cell max **{worst:.2f} pts** "
        f"(budget {BUDGET_MAX_PTS}).",
        "",
        "| benchmark | sets | ways | mean err (pts) | max err (pts) "
        "| best PD pred | best PD sim | tie gap (pts) |",
        "|:----------|-----:|-----:|---------------:|--------------:"
        "|-------------:|------------:|--------------:|",
    ]
    for row in rows:
        lines.append(
            f"| {row['benchmark']} | {row['num_sets']} | {row['ways']} "
            f"| {row['mean_error']:.2f} | {row['max_error']:.2f} "
            f"| {row['best_pd_pred']} | {row['best_pd_sim']} "
            f"| {row['tie_gap_pts']:.2f} |"
        )
    lines.append("")
    if violations:
        lines.append(f"## {len(violations)} budget violation(s)")
        lines.append("")
        lines += [f"- {violation}" for violation in violations]
    else:
        lines.append("All cells within budget.")
    return "\n".join(lines) + "\n"


def _parse_geometries(text: str) -> tuple:
    """Parse ``"64x4,256x16"`` into ((64, 4), (256, 16))."""
    geometries = []
    for token in text.split(","):
        num_sets, _, ways = token.strip().partition("x")
        geometries.append((int(num_sets), int(ways)))
    return tuple(geometries)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        description="Cross-validate the analytical explorer against the "
        "simulator and enforce the declared error budget."
    )
    parser.add_argument(
        "--benchmarks",
        default=",".join(BENCHMARKS),
        help="comma-separated benchmark names",
    )
    parser.add_argument(
        "--geometries",
        default=",".join(f"{s}x{w}" for s, w in GEOMETRIES),
        help='comma-separated geometries, e.g. "64x4,256x16"',
    )
    parser.add_argument("--length", type=int, default=LENGTH)
    parser.add_argument("--pd-step", type=int, default=PD_STEP)
    parser.add_argument("--pd-max", type=int, default=PD_MAX)
    parser.add_argument(
        "--variant",
        default="default",
        help="model variant to validate (the broken variants must fail)",
    )
    parser.add_argument("--engine", default="vector")
    parser.add_argument(
        "--out", default=None, help="write the markdown report here"
    )
    args = parser.parse_args(argv)
    rows = run_xval(
        benchmarks=tuple(b.strip() for b in args.benchmarks.split(",")),
        geometries=_parse_geometries(args.geometries),
        length=args.length,
        pd_step=args.pd_step,
        pd_max=args.pd_max,
        variant=args.variant,
        engine=args.engine,
    )
    violations = check_budget(rows)
    report = render_markdown(rows, violations)
    print(report)
    if args.out:
        Path(args.out).write_text(report)
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
