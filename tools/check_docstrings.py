#!/usr/bin/env python3
"""Docstring-coverage gate (stdlib-only stand-in for ``interrogate``).

Walks Python files with ``ast`` and counts docstrings on modules,
classes, and functions/methods — including private (``_name``) helpers:
if it is defined at module or class level, it is documented or it drags
the score down. Two exemptions, mirroring interrogate's common
configuration: dunder methods (``__init__``, ``__enter__``, ...), whose
contracts are defined by the data model, and closures nested inside
function bodies, which are implementation detail of their documented
enclosing function.

Usage::

    python tools/check_docstrings.py --fail-under 90 src/repro/obs src/repro/sim
    python tools/check_docstrings.py --verbose src/repro   # list misses

Exit status 0 when every listed path meets the threshold, 1 otherwise.
CI runs this next to the bench smoke jobs (see
``.github/workflows/ci.yml``); ``tests/test_obs.py`` pins the gated
packages above the threshold so a regression fails the tier-1 suite too.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path


def _is_dunder(name: str) -> bool:
    """True for data-model methods like ``__init__`` / ``__exit__``."""
    return name.startswith("__") and name.endswith("__")


def iter_definitions(tree: ast.Module):
    """Yield (node, name) for the module and every countable def/class.

    Recurses through module and class bodies but not function bodies, so
    closures are exempt; dunder methods are skipped entirely.
    """
    yield tree, "<module>"

    def visit(body):
        for node in body:
            if isinstance(node, ast.ClassDef):
                yield node, node.name
                yield from visit(node.body)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not _is_dunder(node.name):
                    yield node, node.name

    yield from visit(tree.body)


def file_coverage(path: Path) -> tuple[int, int, list[str]]:
    """(documented, total, missing-names) for one Python file."""
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except SyntaxError as exc:
        return 0, 1, [f"{path}: unparseable ({exc})"]
    documented = 0
    total = 0
    missing = []
    for node, name in iter_definitions(tree):
        total += 1
        if ast.get_docstring(node):
            documented += 1
        else:
            line = getattr(node, "lineno", 1)
            missing.append(f"{path}:{line}: {name}")
    return documented, total, missing


def collect_files(paths: list[str]) -> list[Path]:
    """Expand arguments into a sorted list of ``.py`` files."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise SystemExit(f"not a Python file or directory: {raw}")
    return files


def check(paths: list[str], fail_under: float, verbose: bool = False) -> int:
    """Print a coverage report; return a process exit status."""
    files = collect_files(paths)
    if not files:
        print("no Python files found", file=sys.stderr)
        return 1
    documented = 0
    total = 0
    missing: list[str] = []
    for path in files:
        file_documented, file_total, file_missing = file_coverage(path)
        documented += file_documented
        total += file_total
        missing.extend(file_missing)
    coverage = 100.0 * documented / total if total else 100.0
    status = "PASSED" if coverage >= fail_under else "FAILED"
    print(
        f"docstring coverage: {documented}/{total} definitions = "
        f"{coverage:.1f}% (threshold {fail_under:.1f}%) — {status}"
    )
    if verbose or coverage < fail_under:
        for entry in missing:
            print(f"  missing: {entry}")
    return 0 if coverage >= fail_under else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", help="files or directories to check")
    parser.add_argument(
        "--fail-under",
        type=float,
        default=90.0,
        help="minimum coverage percentage (default 90)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="always list undocumented definitions",
    )
    args = parser.parse_args(argv)
    return check(args.paths, args.fail_under, verbose=args.verbose)


if __name__ == "__main__":
    raise SystemExit(main())
