"""Benchmark schema migration, trajectory upkeep, and the perf gate.

The command-line face of :mod:`repro.obs.bench`::

    python tools/bench_regress.py migrate BENCH_engine.json BENCH_multicore.json
    python tools/bench_regress.py append --record BENCH_engine.json
    python tools/bench_regress.py check --baseline BENCH_engine.json \
        --current /tmp/bench-now.json --tolerance 0.25
    python tools/bench_regress.py report runs/ --html --out report.html

``migrate`` rewrites legacy ad-hoc ``BENCH_*.json`` files in the
canonical schema (in place by default; idempotent on already-canonical
files). ``append`` adds a canonical record to the appending trajectory
file (``BENCH_trajectory.jsonl``). ``check`` is the CI regression gate:
exit 1 when any ``engine/policy`` throughput in the current record falls
more than ``--tolerance`` below the committed baseline. ``report``
renders the self-contained markdown/HTML observatory report from a
manifest directory with zero re-simulation.

``--migrate FILE...`` is accepted as an alias for the ``migrate``
subcommand.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.bench import (  # noqa: E402
    DEFAULT_TOLERANCE,
    TRAJECTORY_FILENAME,
    append_trajectory,
    compare_records,
    is_canonical,
    load_record,
    render_report,
)


def _cmd_migrate(args: argparse.Namespace) -> int:
    """Rewrite benchmark files in the canonical schema."""
    status = 0
    for path in args.files:
        target = Path(path)
        try:
            original = json.loads(target.read_text())
            record = load_record(target)
        except (OSError, ValueError) as exc:
            print(f"{target}: cannot migrate: {exc}", file=sys.stderr)
            status = 1
            continue
        if is_canonical(original):
            print(f"{target}: already canonical (kind={record['kind']})")
            continue
        out = Path(args.out) if args.out else target
        out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"{target}: migrated legacy report -> {out} (kind={record['kind']})")
    return status


def _cmd_append(args: argparse.Namespace) -> int:
    """Append one canonical record to the trajectory file."""
    record = load_record(args.record)
    append_trajectory(record, args.trajectory)
    print(
        f"appended {record['kind']} record "
        f"({len(record['throughput'])} throughput keys) to {args.trajectory}"
    )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """Compare current throughput against the baseline; exit 1 on
    regression beyond the tolerance."""
    baseline = load_record(args.baseline)
    current = load_record(args.current)
    regressions = compare_records(baseline, current, tolerance=args.tolerance)
    shared = sorted(
        set(baseline["throughput"]) & set(current["throughput"])
    )
    for key in shared:
        base = baseline["throughput"][key]
        curr = current["throughput"][key]
        ratio = curr / base if base else float("nan")
        print(f"{key:>24}: {base:>12,.0f} -> {curr:>12,.0f} acc/s ({ratio:.2f}x)")
    if not shared:
        print("WARNING: no shared throughput keys to compare", file=sys.stderr)
    if regressions:
        print(
            f"FAIL: {len(regressions)} throughput regression(s) beyond "
            f"{args.tolerance:.0%} tolerance:",
            file=sys.stderr,
        )
        for row in regressions:
            print(
                f"  {row['key']}: {row['baseline']:,.0f} -> "
                f"{row['current']:,.0f} acc/s ({row['ratio']:.2f}x)",
                file=sys.stderr,
            )
        return 1
    print(f"CHECK OK: no regression beyond {args.tolerance:.0%} tolerance")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Render the observatory report for a manifest directory."""
    text = render_report(args.manifest_dir, html=args.html)
    if args.out:
        Path(args.out).write_text(text)
        print(f"[written to {args.out}]", file=sys.stderr)
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``bench_regress`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    migrate = sub.add_parser(
        "migrate", help="normalize legacy BENCH_*.json files to the schema"
    )
    migrate.add_argument("files", nargs="+", help="benchmark JSON files")
    migrate.add_argument(
        "--out", default=None,
        help="write the migrated record here instead of in place "
        "(single input only)",
    )
    migrate.set_defaults(func=_cmd_migrate)

    append = sub.add_parser(
        "append", help="append a canonical record to the trajectory file"
    )
    append.add_argument("--record", required=True, help="benchmark JSON file")
    append.add_argument(
        "--trajectory", default=TRAJECTORY_FILENAME,
        help=f"trajectory JSONL path (default {TRAJECTORY_FILENAME})",
    )
    append.set_defaults(func=_cmd_append)

    check = sub.add_parser(
        "check", help="fail when current throughput regresses vs baseline"
    )
    check.add_argument("--baseline", required=True, help="committed baseline JSON")
    check.add_argument("--current", required=True, help="freshly measured JSON")
    check.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=f"allowed relative loss (default {DEFAULT_TOLERANCE})",
    )
    check.set_defaults(func=_cmd_check)

    report = sub.add_parser(
        "report", help="render the observatory report from a manifest dir"
    )
    report.add_argument("manifest_dir", help="directory of run manifests")
    report.add_argument(
        "--html", action="store_true", help="emit HTML instead of markdown"
    )
    report.add_argument("--out", default=None, help="write report to this path")
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``--migrate`` rewrites to the subcommand form)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "--migrate":
        argv[0] = "migrate"
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
