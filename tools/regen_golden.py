#!/usr/bin/env python
"""Regenerate the golden result fixtures in ``tests/golden/``.

The golden grid pins exact statistics (hits, misses, evictions,
bypasses, instructions) and the trace content fingerprint for a fixed
set of (policy x workload x geometry) cells run through the fast-path
engine. ``tests/test_golden.py`` recomputes the grid on every CI run and
fails with a readable per-cell diff when any number drifts — the
tripwire for unintended behavior changes in the policies, the kernels,
or the workload generators.

Run after an *intended* behavior change:

    PYTHONPATH=src python tools/regen_golden.py

and commit the updated ``tests/golden/single_core.json`` together with
the change that moved the numbers.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
GOLDEN_PATH = REPO_ROOT / "tests" / "golden" / "single_core.json"

if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

#: Policies pinned by the grid (constructor-default instantiations).
POLICIES = ("fifo", "lru", "srrip", "dip", "pdp", "pdp-classified", "ship")

#: Deterministic workloads pinned by the grid, keyed by cell name.
WORKLOAD_SEED = 1234


def _workloads():
    from repro.workloads.streams import (
        cyclic_loop,
        random_working_set,
        thrash_loop,
    )

    return {
        "cyclic": cyclic_loop(3_000, working_set=96),
        "random": random_working_set(3_000, working_set=256, seed=WORKLOAD_SEED),
        "thrash": thrash_loop(3_000, ways=8, num_sets=16, overshoot=2),
    }


def compute_golden() -> dict:
    """Run the full grid and return the JSON-native golden dict."""
    from repro.memory.cache import CacheGeometry
    from repro.obs.manifest import trace_fingerprint
    from repro.policies.base import make_policy
    from repro.sim.single_core import run_llc

    geometry = CacheGeometry(num_sets=16, ways=8)
    cells = {}
    for workload_name, trace in sorted(_workloads().items()):
        for policy_name in POLICIES:
            result = run_llc(trace, make_policy(policy_name), geometry)
            cells[f"{workload_name}/{policy_name}"] = {
                "accesses": result.accesses,
                "hits": result.hits,
                "misses": result.misses,
                "bypasses": result.bypasses,
                "evictions": result.evictions,
                "instructions": result.instructions,
            }
    fingerprints = {
        name: trace_fingerprint(trace)
        for name, trace in sorted(_workloads().items())
    }
    return {
        "geometry": {"num_sets": 16, "ways": 8, "line_size": 64},
        "trace_fingerprints": fingerprints,
        "cells": cells,
    }


def main() -> int:
    golden = compute_golden()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(golden['cells'])} cells to {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
