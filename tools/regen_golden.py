#!/usr/bin/env python
"""Regenerate the golden result fixtures in ``tests/golden/``.

The golden grid pins exact statistics (hits, misses, evictions,
bypasses, instructions) and the trace content fingerprint for a fixed
set of (policy x workload x geometry) cells run through the fast-path
engine. ``tests/test_golden.py`` recomputes the grid on every CI run and
fails with a readable per-cell diff when any number drifts — the
tripwire for unintended behavior changes in the policies, the kernels,
or the workload generators.

Run after an *intended* behavior change:

    PYTHONPATH=src python tools/regen_golden.py

and commit the updated ``tests/golden/single_core.json`` together with
the change that moved the numbers.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
GOLDEN_PATH = REPO_ROOT / "tests" / "golden" / "single_core.json"
OBJECTSTORE_GOLDEN_PATH = REPO_ROOT / "tests" / "golden" / "objectstore.json"
EXPLORE_GOLDEN_PATH = REPO_ROOT / "tests" / "golden" / "explore.json"

if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

#: Policies pinned by the grid (constructor-default instantiations).
POLICIES = ("fifo", "lru", "srrip", "dip", "pdp", "pdp-classified", "ship")

#: Deterministic workloads pinned by the grid, keyed by cell name.
WORKLOAD_SEED = 1234


def _workloads():
    from repro.workloads.streams import (
        cyclic_loop,
        random_working_set,
        thrash_loop,
    )

    return {
        "cyclic": cyclic_loop(3_000, working_set=96),
        "random": random_working_set(3_000, working_set=256, seed=WORKLOAD_SEED),
        "thrash": thrash_loop(3_000, ways=8, num_sets=16, overshoot=2),
    }


def compute_golden() -> dict:
    """Run the full grid and return the JSON-native golden dict."""
    from repro.memory.cache import CacheGeometry
    from repro.obs.manifest import trace_fingerprint
    from repro.policies.base import make_policy
    from repro.sim.single_core import run_llc

    geometry = CacheGeometry(num_sets=16, ways=8)
    cells = {}
    for workload_name, trace in sorted(_workloads().items()):
        for policy_name in POLICIES:
            result = run_llc(trace, make_policy(policy_name), geometry)
            cells[f"{workload_name}/{policy_name}"] = {
                "accesses": result.accesses,
                "hits": result.hits,
                "misses": result.misses,
                "bypasses": result.bypasses,
                "evictions": result.evictions,
                "instructions": result.instructions,
            }
    fingerprints = {
        name: trace_fingerprint(trace)
        for name, trace in sorted(_workloads().items())
    }
    return {
        "geometry": {"num_sets": 16, "ways": 8, "line_size": 64},
        "trace_fingerprints": fingerprints,
        "cells": cells,
    }


#: Software-cache policies pinned by the objectstore grid.
SWCACHE_POLICIES = ("size-lru", "gdsf", "tinylfu", "pdp")

#: Objectstore grid workload parameters (seeded, fully deterministic).
OBJECTSTORE_ACCESSES = 20_000
OBJECTSTORE_SEED = 99
OBJECTSTORE_CAPACITY_BYTES = 8 * 1024 * 1024
OBJECTSTORE_TTL_MS = 8_000.0


def _object_stream():
    """The pinned seeded object-request stream (re-iterable)."""
    from repro.workloads.objectstore import make_object_stream

    return make_object_stream(
        OBJECTSTORE_ACCESSES,
        num_objects=2_000,
        seed=OBJECTSTORE_SEED,
        chunk_size=4_096,
    )


def compute_objectstore_golden() -> dict:
    """Run the software-cache grid and return the golden dict.

    Pins the full counter set (byte counters and TTL expirations
    included), PDP's final protecting distance, and the stream's
    content fingerprint — drift in the generator, the cache model, or
    any policy family fails the tripwire.
    """
    from repro.obs.manifest import FingerprintAccumulator
    from repro.swcache.driver import run_object_cache
    from repro.swcache.policies import make_software_policy

    stream = _object_stream()
    accumulator = FingerprintAccumulator()
    for chunk in stream.chunks():
        accumulator.update(chunk)
    cells = {}
    for policy_name in SWCACHE_POLICIES:
        kwargs = (
            {"max_pd": 8_192, "recompute_interval": 2_048}
            if policy_name == "pdp"
            else {}
        )
        result = run_object_cache(
            stream,
            make_software_policy(policy_name, **kwargs),
            OBJECTSTORE_CAPACITY_BYTES,
            ttl=OBJECTSTORE_TTL_MS,
        )
        stats = result.stats
        cells[policy_name] = {
            "accesses": stats.accesses,
            "hits": stats.hits,
            "misses": stats.misses,
            "bypasses": stats.bypasses,
            "evictions": stats.evictions,
            "fills": stats.fills,
            "expirations": stats.expirations,
            "invalidations": stats.invalidations,
            "writes": stats.writes,
            "bytes_requested": stats.bytes_requested,
            "bytes_hit": stats.bytes_hit,
            "bytes_missed": stats.bytes_missed,
            "bytes_admitted": stats.bytes_admitted,
            "bytes_evicted": stats.bytes_evicted,
            "final_pd": result.extra.get("final_pd"),
        }
    return {
        "config": {
            "accesses": OBJECTSTORE_ACCESSES,
            "seed": OBJECTSTORE_SEED,
            "capacity_bytes": OBJECTSTORE_CAPACITY_BYTES,
            "ttl_ms": OBJECTSTORE_TTL_MS,
        },
        "trace_fingerprint": accumulator.digest(
            stream.name, stream.instructions_per_access
        ),
        "cells": cells,
    }


#: Explorer golden grid: one seeded benchmark, a small design space.
EXPLORE_BENCHMARK = "403.gcc"
EXPLORE_LENGTH = 8_000
EXPLORE_SETS = (16, 32, 64)
EXPLORE_WAYS = (2, 4, 8)
EXPLORE_PD_MAX = 128
EXPLORE_PD_STEP = 8


def compute_explore_golden() -> dict:
    """Run the pinned explorer grid and return the golden dict.

    Pins every predicted hit-rate curve (rounded to 9 decimal places,
    the manifest precision), the per-geometry best PD, the frontier
    flags, and the profile's content fingerprint. Drift in the profiler
    (RDD collection, per-set folding, arrival ranks), the rescaling, or
    the model itself fails the tripwire in ``tests/test_explore.py``
    with a per-geometry diff.
    """
    from repro.explore import explore
    from repro.workloads import make_benchmark_trace

    trace = make_benchmark_trace(EXPLORE_BENCHMARK, length=EXPLORE_LENGTH)
    result = explore(
        trace,
        sets=EXPLORE_SETS,
        ways=EXPLORE_WAYS,
        pd_max=EXPLORE_PD_MAX,
        pd_step=EXPLORE_PD_STEP,
    )
    cells = {
        f"{p.num_sets}x{p.ways}": {
            "pds": list(p.pds),
            "hit_rates": [round(h, 9) for h in p.hit_rates],
            "best_pd": p.best_pd,
            "best_hit_rate": round(p.best_hit_rate, 9),
            "confidence": p.confidence,
            "on_frontier": p.on_frontier,
        }
        for p in result.predictions
    }
    return {
        "config": {
            "benchmark": EXPLORE_BENCHMARK,
            "length": EXPLORE_LENGTH,
            "sets": list(EXPLORE_SETS),
            "ways": list(EXPLORE_WAYS),
            "pd_max": EXPLORE_PD_MAX,
            "pd_step": EXPLORE_PD_STEP,
        },
        "trace_fingerprint": result.profile_summary["fingerprint"],
        "profile": {
            "total_accesses": result.profile_summary["total_accesses"],
            "unique_blocks": result.profile_summary["unique_blocks"],
            "total_reuses": result.profile_summary["total_reuses"],
        },
        "cells": cells,
    }


def main() -> int:
    golden = compute_golden()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(golden['cells'])} cells to {GOLDEN_PATH}")
    objectstore = compute_objectstore_golden()
    OBJECTSTORE_GOLDEN_PATH.write_text(
        json.dumps(objectstore, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"wrote {len(objectstore['cells'])} cells to {OBJECTSTORE_GOLDEN_PATH}"
    )
    explore_golden = compute_explore_golden()
    EXPLORE_GOLDEN_PATH.write_text(
        json.dumps(explore_golden, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"wrote {len(explore_golden['cells'])} cells to {EXPLORE_GOLDEN_PATH}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
