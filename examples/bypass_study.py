#!/usr/bin/env python
"""Bypass study (Sec. 2.3 of the paper): why non-inclusive PDP wins.

Runs static PDP with and without bypass (SPDP-B vs SPDP-NB) across a PD
sweep on the bypass-sensitive h264ref-like profile, printing the
miss-vs-PD curves and the access/occupancy breakdown of Fig. 5a. The
bypass variant protects resident lines by dropping fills when every line
is still protected — on this profile it bypasses most misses, like the
paper's 89% for 464.h264ref.

Run:  python examples/bypass_study.py
"""

from __future__ import annotations

from repro import ExperimentConfig, make_benchmark_trace
from repro.core.pdp_policy import PDPPolicy
from repro.sim.single_core import run_llc


def main() -> None:
    config = ExperimentConfig()
    trace = make_benchmark_trace("464.h264ref", length=40_000, num_sets=config.num_sets)
    print(f"trace: {trace}\n")

    print(f"{'PD':>5s} {'SPDP-NB misses':>15s} {'SPDP-B misses':>14s} {'bypass%':>8s}")
    best = {"nb": (None, float("inf")), "b": (None, float("inf"))}
    for pd in range(16, 257, 24):
        nb = run_llc(trace, PDPPolicy(static_pd=pd, bypass=False), config.llc)
        b = run_llc(trace, PDPPolicy(static_pd=pd, bypass=True), config.llc)
        print(
            f"{pd:5d} {nb.misses:15d} {b.misses:14d} {b.bypass_fraction:8.1%}"
        )
        if nb.misses < best["nb"][1]:
            best["nb"] = (pd, nb.misses)
        if b.misses < best["b"][1]:
            best["b"] = (pd, b.misses)

    print(
        f"\nbest SPDP-NB: PD={best['nb'][0]} ({best['nb'][1]} misses); "
        f"best SPDP-B: PD={best['b'][0]} ({best['b'][1]} misses)"
    )

    # Occupancy breakdown at the best bypass PD (Fig. 5a view).
    result = run_llc(
        trace,
        PDPPolicy(static_pd=best["b"][0], bypass=True),
        config.llc,
        track_occupancy=True,
    )
    breakdown = result.extra["occupancy"]
    access = breakdown.access_fractions()
    print("\naccess breakdown at the best bypass PD:")
    for key, value in access.items():
        print(f"  {key:14s} {value:6.1%}")
    print(f"  max eviction occupancy: {breakdown.max_eviction_occupancy} accesses")


if __name__ == "__main__":
    main()
