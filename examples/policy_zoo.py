#!/usr/bin/env python
"""Policy zoo: every implemented policy on every SPEC-like benchmark.

Runs the full policy roster — classical baselines, the paper's
comparison set, dynamic PDP and the Sec. 6.3 extensions, plus offline
Belady OPT as the ceiling — across the 16-benchmark suite, and prints a
hit-rate matrix. A compact way to see each policy's personality:
LRU-friendly vs thrashing vs streaming vs bypass-hungry workloads.

Run:  python examples/policy_zoo.py          (about a minute)
      python examples/policy_zoo.py --fast   (quarter-size traces)
"""

from __future__ import annotations

import sys

from repro import (
    BeladyPolicy,
    ClassifiedPDPPolicy,
    DIPPolicy,
    DRRIPPolicy,
    EELRUPolicy,
    ExperimentConfig,
    LRUPolicy,
    PDPPolicy,
    SDPPolicy,
    make_benchmark_trace,
    run_llc,
)
from repro.workloads.spec_like import SINGLE_CORE_SUITE


def main() -> None:
    fast = "--fast" in sys.argv
    length = 10_000 if fast else 40_000
    config = ExperimentConfig()

    def factories(trace):
        return {
            "LRU": LRUPolicy(),
            "DIP": DIPPolicy(),
            "DRRIP": DRRIPPolicy(),
            "EELRU": EELRUPolicy(),
            "SDP": SDPPolicy(),
            "PDP": PDPPolicy(recompute_interval=config.recompute_interval),
            "PDPcls": ClassifiedPDPPolicy(
                recompute_interval=config.recompute_interval, sampler_mode="full"
            ),
            "OPT": BeladyPolicy(trace.addresses, bypass=True),
        }

    names = None
    print("hit rate by policy (OPT = offline Belady ceiling)\n")
    totals: dict[str, float] = {}
    for benchmark in SINGLE_CORE_SUITE:
        trace = make_benchmark_trace(benchmark, length=length, num_sets=config.num_sets)
        row = {}
        for label, policy in factories(trace).items():
            row[label] = run_llc(trace, policy, config.llc).hit_rate
            totals[label] = totals.get(label, 0.0) + row[label]
        if names is None:
            names = list(row)
            print(f"{'benchmark':18s} " + " ".join(f"{n:>7s}" for n in names))
        print(
            f"{benchmark:18s} "
            + " ".join(f"{row[n]:7.3f}" for n in names)
        )
    count = len(SINGLE_CORE_SUITE)
    print(
        f"{'MEAN':18s} " + " ".join(f"{totals[n] / count:7.3f}" for n in names)
    )
    print(
        "\nReading guide: PDP tracks OPT's ordering on protection-friendly"
        " profiles (cactusADM, soplex, hmmer, h264ref); streaming rows"
        " (milc, lbm, libquantum) are near zero for every online policy."
    )


if __name__ == "__main__":
    main()
