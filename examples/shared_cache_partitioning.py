#!/usr/bin/env python
"""Shared-LLC partitioning demo (Sec. 4 / Fig. 12 of the paper).

Builds a 4-core multi-programmed mix (one cache-hungry reuser, one
streaming thread, two moderate threads), runs it under TA-DRRIP, UCP, PIPP
and the PD-based partitioning policy, and prints the paper's three
metrics: weighted IPC, throughput and harmonic fairness. Also shows the
per-thread protecting distances the PD policy converged to — streaming
threads get short PDs (small partitions), reusers get PDs covering their
reuse peaks.

Run:  python examples/shared_cache_partitioning.py
"""

from __future__ import annotations

from repro import PDPartitionPolicy, PIPPPolicy, TADRRIPPolicy, UCPPolicy
from repro.memory.cache import CacheGeometry
from repro.sim.multi_core import run_shared_llc, single_thread_baselines
from repro.workloads.spec_like import make_benchmark_trace

CORES = 4
MIX = ("450.soplex", "433.milc", "464.h264ref", "470.lbm")


def main() -> None:
    geometry = CacheGeometry(num_sets=16 * CORES, ways=16)
    traces = [
        make_benchmark_trace(name, length=20_000, num_sets=geometry.num_sets, seed=50 + i)
        for i, name in enumerate(MIX)
    ]
    print(f"mix: {MIX} on a shared {geometry} LLC")
    singles = single_thread_baselines(traces, geometry)

    policies = {
        "TA-DRRIP": lambda: TADRRIPPolicy(num_threads=CORES),
        "UCP": lambda: UCPPolicy(num_threads=CORES),
        "PIPP": lambda: PIPPPolicy(num_threads=CORES),
        "PD-partition": lambda: PDPartitionPolicy(
            num_threads=CORES, recompute_interval=8192, sampler_mode="full"
        ),
    }
    print(f"\n{'policy':14s} {'W':>7s} {'T':>7s} {'H':>7s}   per-thread MPKI")
    pd_policy = None
    for name, factory in policies.items():
        policy = factory()
        result = run_shared_llc(traces, policy, geometry, singles=singles)
        mpkis = " ".join(f"{t.mpki:6.1f}" for t in result.threads)
        print(
            f"{name:14s} {result.weighted:7.3f} {result.throughput:7.3f} "
            f"{result.hmean:7.3f}   {mpkis}"
        )
        if isinstance(policy, PDPartitionPolicy):
            pd_policy = policy

    if pd_policy is not None:
        print("\nPD vector chosen by the partitioning policy (one per thread):")
        for name, pd in zip(MIX, pd_policy.pd_vector):
            kind = "streaming -> short PD" if pd <= 16 else "reuser -> protected"
            print(f"  {name:16s} PD = {pd:4d}   ({kind})")


if __name__ == "__main__":
    main()
