#!/usr/bin/env python
"""A tour of the protecting-distance machinery (Sec. 2-3 of the paper).

Walks through the pieces that make dynamic PDP work, on one workload:

1. measure the RDD with the "Real" RD sampler (32 sets x 32-entry FIFOs)
   and show it matches exact offline analysis;
2. evaluate the hit-rate model E(d_p) (Eq. 1) and locate the optimal PD;
3. run the same search on the cycle-level model of the paper's
   special-purpose PD processor and compare;
4. sweep static PDs through a real cache and show the model's optimum
   lands near the measured best (the paper's Fig. 6 story).

Run:  python examples/protecting_distance_tour.py
"""

from __future__ import annotations

import numpy as np

from repro import ExperimentConfig, RDCounterArray, RDSampler, make_benchmark_trace
from repro.core.hit_rate_model import HitRateModel
from repro.hardware.pd_processor import run_pd_search
from repro.sim.runner import sweep_static_pd
from repro.traces.analysis import reuse_distance_distribution


def main() -> None:
    config = ExperimentConfig()
    trace = make_benchmark_trace(
        "483.xalancbmk.2", length=40_000, num_sets=config.num_sets
    )

    # -- 1. dynamic RDD via the hardware sampler ------------------------
    counters = RDCounterArray(d_max=config.d_max, step=config.step)
    sampler = RDSampler.real(
        config.num_sets,
        d_max=config.d_max,
        on_distance=counters.record_distance,
        on_access=counters.record_access,
    )
    for access in trace:
        sampler.observe(config.llc.set_index(access.address), access.address)
    exact_counts, _, _ = reuse_distance_distribution(
        trace, num_sets=config.num_sets, d_max=config.d_max
    )
    sampled_peak = int(np.argmax(counters.counts)) * config.step + config.step
    exact_peak = int(np.argmax(exact_counts[3:])) + 3
    print(
        f"sampled RDD peak ~{sampled_peak} vs exact peak {exact_peak} "
        f"({counters.total} sampled accesses)"
    )

    # -- 2. the hit-rate model E(d_p) ------------------------------------
    model = HitRateModel(counters, associativity=config.associativity)
    best_pd = model.best_pd()
    curve = model.curve()
    print(f"model E(d_p): optimal PD = {best_pd} over {len(curve)} candidates")

    # -- 3. the special-purpose PD processor -----------------------------
    hw_pd, cycles = run_pd_search(
        counters.counts, counters.total, step=config.step, d_e=config.associativity
    )
    print(
        f"PD processor: PD = {hw_pd} in {cycles} cycles "
        f"({cycles / len(counters.counts):.0f} cycles per candidate d_p)"
    )

    # -- 4. validate against a static-PD sweep ---------------------------
    grid = list(range(16, 257, 16))
    runs = sweep_static_pd(trace, config.llc, grid, bypass=True)
    measured_best = min(grid, key=lambda pd: runs[pd].misses)
    print(f"measured best static PD (SPDP-B sweep): {measured_best}")
    print(
        f"hit rate at model PD vs best: "
        f"{runs[min(grid, key=lambda pd: abs(pd - best_pd))].hit_rate:.4f} vs "
        f"{runs[measured_best].hit_rate:.4f}"
    )


if __name__ == "__main__":
    main()
