#!/usr/bin/env python
"""Quickstart: run PDP against LRU/DIP/DRRIP on one synthetic benchmark.

This is the smallest end-to-end use of the library:

1. generate a SPEC-like trace with a controlled reuse-distance profile;
2. inspect its RDD (the paper's Fig. 1 view);
3. run four replacement policies on a 16-way LLC;
4. print MPKI / IPC / bypass statistics and the PD the dynamic policy chose.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DIPPolicy,
    DRRIPPolicy,
    ExperimentConfig,
    LRUPolicy,
    PDPPolicy,
    make_benchmark_trace,
    run_llc,
)
from repro.traces import fraction_below, reuse_distance_distribution


def main() -> None:
    config = ExperimentConfig()
    trace = make_benchmark_trace(
        "436.cactusADM", length=40_000, num_sets=config.num_sets
    )
    print(f"trace: {trace}")

    # The RDD is the policy-relevant signature of the workload (Fig. 1).
    counts, long_count, total = reuse_distance_distribution(
        trace, num_sets=config.num_sets, d_max=config.d_max
    )
    peak = int(np.argmax(counts[3:])) + 3
    below = fraction_below(trace, config.num_sets, config.d_max)
    print(f"RDD peak at reuse distance {peak}; {below:.0%} of reuses below d_max")

    policies = {
        "LRU": LRUPolicy(),
        "DIP": DIPPolicy(),
        "DRRIP": DRRIPPolicy(),
        "PDP (dynamic, bypass)": PDPPolicy(
            recompute_interval=config.recompute_interval
        ),
    }
    print(f"\n{'policy':24s} {'hit rate':>9s} {'MPKI':>8s} {'IPC':>7s} {'bypass':>7s}")
    for name, policy in policies.items():
        result = run_llc(trace, policy, config.llc)
        print(
            f"{name:24s} {result.hit_rate:9.3f} {result.mpki:8.2f} "
            f"{result.ipc:7.3f} {result.bypass_fraction:7.1%}"
        )
        if "final_pd" in result.extra:
            print(
                f"{'':24s} dynamic PD settled at {result.extra['final_pd']} "
                f"(covers the RDD peak at {peak})"
            )


if __name__ == "__main__":
    main()
