#!/usr/bin/env python
"""Phase adaptation demo (Sec. 6.4 / Fig. 11 of the paper).

Builds a workload that switches its reuse-distance profile twice (three
xalancbmk-like windows with different peaks), runs dynamic PDP with
several PD-recompute intervals, and prints the PD trajectory — the PD
must move when the phase changes, and too-slow recomputation costs
performance.

Run:  python examples/phase_adaptation.py
"""

from __future__ import annotations

from repro import DIPPolicy, ExperimentConfig, PDPPolicy, run_llc
from repro.workloads.phased import phase_changing_profiles


def main() -> None:
    config = ExperimentConfig()
    workload = phase_changing_profiles(phase_length=20_000)["483.xalancbmk"]
    trace = workload.generate(num_sets=config.num_sets)
    print(f"workload: {trace.name} with {len(workload.phases)} phases, {len(trace)} accesses")

    dip = run_llc(trace, DIPPolicy(), config.llc)
    print(f"\nDIP baseline: hit rate {dip.hit_rate:.4f}, IPC {dip.ipc:.3f}")

    print(f"\n{'reset interval':>14s} {'hit rate':>9s} {'IPC':>7s}  PD trajectory")
    for interval in (1024, 4096, 16384):
        policy = PDPPolicy(recompute_interval=interval)
        result = run_llc(trace, policy, config.llc)
        history = result.extra["pd_history"]
        # Sample the trajectory at up to 10 points for display.
        stride = max(1, len(history) // 10)
        shown = "->".join(str(pd) for _, pd in history[::stride])
        print(
            f"{interval:14d} {result.hit_rate:9.4f} {result.ipc:7.3f}  {shown}"
        )
    print(
        "\nThe PD follows the phase peaks; a short interval tracks the"
        " change quickly, a long one lags behind (Fig. 11a)."
    )


if __name__ == "__main__":
    main()
