"""repro — reproduction of "Improving Cache Management Policies Using
Dynamic Reuse Distances" (Duong et al., MICRO 2012).

The package implements the Protecting Distance based Policy (PDP) with its
dynamic reuse-distance machinery, the PD-based shared-cache partitioning
policy, every baseline the paper compares against (LRU, DIP, DRRIP,
TA-DRRIP, EELRU, SDP, UCP, PIPP), and the full substrate: a set-associative
cache simulator, a three-level hierarchy, synthetic SPEC-like workload
generators with controlled reuse-distance distributions, an analytic
timing model, and hardware overhead/cycle models. Beyond the LLC,
:mod:`repro.swcache` applies the protecting-distance idea to
variable-size software caches (object/CDN tier) — see
``docs/SCENARIOS.md``.

Quickstart::

    from repro import (
        ExperimentConfig, PDPPolicy, make_benchmark_trace, run_llc,
    )

    config = ExperimentConfig()
    trace = make_benchmark_trace("436.cactusADM", num_sets=config.num_sets)
    result = run_llc(trace, PDPPolicy(), config.llc)
    print(result.mpki, result.ipc)
"""

from repro.core import (
    ClassifiedPDPPolicy,
    HitRateModel,
    MulticoreHitRateModel,
    PDEngine,
    PDPPolicy,
    PrefetchAwarePDPPolicy,
    RDCounterArray,
    RDSampler,
    StreamPrefetcher,
    find_best_pd,
    find_pd_vector,
)
from repro.obs import (
    TELEMETRY,
    Manifest,
    ProgressReporter,
    Telemetry,
    load_manifests,
    scan_manifests,
    summarize_manifests,
)
from repro.memory import (
    CacheGeometry,
    CacheHierarchy,
    OccupancyTracker,
    SetAssociativeCache,
    TimingModel,
)
from repro.partitioning import PDPartitionPolicy, PIPPPolicy, UCPPolicy
from repro.policies import (
    BeladyPolicy,
    DIPPolicy,
    DRRIPPolicy,
    EELRUPolicy,
    LRUPolicy,
    SDPPolicy,
    TADRRIPPolicy,
    make_policy,
)
from repro.sim import (
    ExperimentConfig,
    MachineConfig,
    run_hierarchy,
    run_llc,
    run_shared_llc,
)
from repro.swcache import (
    ObjectCache,
    PDPProtectionPolicy,
    make_software_policy,
    run_object_cache,
)
from repro.traces import ObjectTrace, Trace, reuse_distance_distribution
from repro.types import Access, AccessType
from repro.workloads import (
    RDDProfileGenerator,
    benchmark_names,
    generate_mixes,
    make_benchmark_trace,
    make_object_stream,
)

__version__ = "1.0.0"

__all__ = [
    "Access",
    "AccessType",
    "BeladyPolicy",
    "CacheGeometry",
    "CacheHierarchy",
    "ClassifiedPDPPolicy",
    "DIPPolicy",
    "DRRIPPolicy",
    "EELRUPolicy",
    "ExperimentConfig",
    "HitRateModel",
    "LRUPolicy",
    "MachineConfig",
    "Manifest",
    "MulticoreHitRateModel",
    "OccupancyTracker",
    "PDEngine",
    "PDPPolicy",
    "PDPartitionPolicy",
    "PIPPPolicy",
    "PrefetchAwarePDPPolicy",
    "ProgressReporter",
    "RDCounterArray",
    "RDDProfileGenerator",
    "RDSampler",
    "SDPPolicy",
    "SetAssociativeCache",
    "StreamPrefetcher",
    "TADRRIPPolicy",
    "TELEMETRY",
    "Telemetry",
    "TimingModel",
    "Trace",
    "UCPPolicy",
    "benchmark_names",
    "find_best_pd",
    "find_pd_vector",
    "generate_mixes",
    "load_manifests",
    "make_benchmark_trace",
    "make_policy",
    "reuse_distance_distribution",
    "run_hierarchy",
    "run_llc",
    "run_shared_llc",
    "scan_manifests",
    "summarize_manifests",
]
