"""PIPP: promotion/insertion pseudo-partitioning (Xie & Loh, ISCA 2009).

PIPP realizes a partition implicitly through a per-set priority order:
thread t inserts at priority position pi_t (its UMON/lookahead allocation)
and every hit promotes the line one position with probability ``p_prom``.
Threads classified as streaming (many misses at a high miss rate) insert
near the bottom (``p_stream``) and promote with a tiny probability. The
paper uses p_prom = 3/4, p_stream = 1, theta_m and theta_mr per the
original work (Sec. 5).
"""

from __future__ import annotations

import random

from repro.partitioning.ucp import lookahead_partition
from repro.partitioning.umon import UtilityMonitor
from repro.policies.base import ReplacementPolicy, register_policy
from repro.types import Access


@register_policy("pipp")
class PIPPPolicy(ReplacementPolicy):
    """Priority-list pseudo-partitioning with streaming detection.

    Per-set state is an explicit priority list of ways; index 0 is the
    victim end. Insertion places a thread's line ``pi_t`` positions above
    the bottom; promotion moves a hit line up one slot with probability
    ``p_prom`` (or ``stream_promote_prob`` for streaming threads).
    """

    def __init__(
        self,
        num_threads: int,
        p_prom: float = 0.75,
        p_stream: int = 1,
        stream_promote_prob: float = 1 / 128,
        theta_m: int = 512,
        theta_mr: float = 0.875,
        repartition_interval: int = 4096,
        num_sampled_sets: int = 32,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.num_threads = num_threads
        self.p_prom = p_prom
        self.p_stream = p_stream
        self.stream_promote_prob = stream_promote_prob
        self.theta_m = theta_m
        self.theta_mr = theta_mr
        self.repartition_interval = repartition_interval
        self.num_sampled_sets = num_sampled_sets
        self._rng = random.Random(seed)
        self._accesses = 0
        self.allocation: list[int] = []
        self.streaming: list[bool] = []
        self._interval_misses = [0] * num_threads
        self._interval_accesses = [0] * num_threads

    def _allocate(self, num_sets: int, ways: int) -> None:
        self._ways = ways
        # order[s] lists ways from lowest (index 0, victim) to highest priority.
        self._order = [list(range(ways)) for _ in range(num_sets)]
        self.monitors = [
            UtilityMonitor(num_sets, ways, self.num_sampled_sets)
            for _ in range(self.num_threads)
        ]
        base = ways // self.num_threads
        extra = ways % self.num_threads
        self.allocation = [
            base + (1 if thread < extra else 0) for thread in range(self.num_threads)
        ]
        self.streaming = [False] * self.num_threads

    def on_access(self, set_index: int, access: Access) -> None:
        thread = access.thread_id % self.num_threads
        self.monitors[thread].observe(set_index, access.address)
        self._interval_accesses[thread] += 1
        self._accesses += 1
        if self._accesses % self.repartition_interval == 0:
            self.repartition()

    def repartition(self) -> None:
        """Recompute allocations and streaming classification."""
        curves = [monitor.utility_curve() for monitor in self.monitors]
        self.allocation = lookahead_partition(curves, self._ways)
        for thread in range(self.num_threads):
            accesses = self._interval_accesses[thread]
            misses = self._interval_misses[thread]
            miss_rate = misses / accesses if accesses else 0.0
            self.streaming[thread] = (
                misses >= self.theta_m and miss_rate >= self.theta_mr
            )
            self._interval_accesses[thread] = 0
            self._interval_misses[thread] = 0
        for monitor in self.monitors:
            monitor.decay()

    def on_hit(self, set_index: int, way: int, access: Access) -> None:
        thread = access.thread_id % self.num_threads
        promote_prob = (
            self.stream_promote_prob if self.streaming[thread] else self.p_prom
        )
        if self._rng.random() >= promote_prob:
            return
        order = self._order[set_index]
        position = order.index(way)
        if position + 1 < len(order):
            order[position], order[position + 1] = order[position + 1], order[position]

    def choose_victim(self, set_index: int, access: Access) -> int | None:
        return self._order[set_index][0]

    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        thread = access.thread_id % self.num_threads
        self._interval_misses[thread] += 1
        if self.streaming[thread]:
            position = min(self.p_stream, self._ways - 1)
        else:
            position = min(self.allocation[thread], self._ways - 1)
        order = self._order[set_index]
        order.remove(way)
        order.insert(position, way)

    def priority_of(self, set_index: int, way: int) -> int:
        """Current priority position of a way (0 = next victim)."""
        return self._order[set_index].index(way)


__all__ = ["PIPPPolicy"]
