"""Utility monitors (UMON) — sampled auxiliary tag directories.

Each thread gets a shadow LRU directory over a few sampled sets. Hits are
tallied per LRU stack position, yielding the thread's utility curve: how
many hits it would score with 1..W ways of the shared cache to itself.
UCP and PIPP both consume these curves (Qureshi & Patt, MICRO 2006).
"""

from __future__ import annotations

import numpy as np


class UtilityMonitor:
    """Per-thread sampled LRU stack-position hit counters.

    Args:
        num_sets: sets of the monitored cache.
        ways: associativity (stack depth of the shadow directory).
        num_sampled_sets: sampled sets (32 in the paper's methodology).
    """

    def __init__(self, num_sets: int, ways: int, num_sampled_sets: int = 32) -> None:
        self.ways = ways
        self.num_sampled_sets = min(num_sampled_sets, num_sets)
        stride = max(1, num_sets // self.num_sampled_sets)
        self._stacks: dict[int, list[int]] = {
            set_index: [] for set_index in range(0, num_sets, stride)
        }
        self.position_hits = np.zeros(ways, dtype=np.int64)
        self.accesses = 0
        self.misses = 0

    def is_sampled(self, set_index: int) -> bool:
        return set_index in self._stacks

    def observe(self, set_index: int, address: int) -> None:
        """Present one access by this monitor's thread."""
        stack = self._stacks.get(set_index)
        if stack is None:
            return
        self.accesses += 1
        try:
            position = stack.index(address)
        except ValueError:
            position = -1
        if position >= 0:
            self.position_hits[position] += 1
            del stack[position]
        else:
            self.misses += 1
            if len(stack) >= self.ways:
                stack.pop()
        stack.insert(0, address)

    def utility_curve(self) -> np.ndarray:
        """``curve[w]`` = hits this thread would get with w ways (w in 0..W)."""
        curve = np.zeros(self.ways + 1, dtype=np.int64)
        curve[1:] = np.cumsum(self.position_hits)
        return curve

    def decay(self) -> None:
        """Halve the counters so the curve tracks phase changes."""
        self.position_hits >>= 1
        self.accesses >>= 1
        self.misses >>= 1


__all__ = ["UtilityMonitor"]
