"""PD-based shared-cache partitioning (the paper's Sec. 4 policy).

Each thread gets its own RD sampler and RD counter array over the shared
LLC; a periodic computation runs the peak-combination heuristic
(:func:`repro.core.multicore_model.find_pd_vector`) to pick one protecting
distance per thread such that the shared hit rate E_m is maximized.
Decreasing a thread's PD shrinks its effective partition by retiring its
lines faster; increasing it grows the partition.

Replacement is PDP with bypass: per-line RPDs, unprotected lines first,
bypass when all lines are protected. A line's insertion RPD comes from its
*inserting thread's* PD. The paper uses the single-core PDP parameters
with S_c = 16 (Sec. 6.6).
"""

from __future__ import annotations

from repro.core.multicore_model import ThreadRDD, find_pd_vector
from repro.core.rdd import RDCounterArray
from repro.core.sampler import RDSampler
from repro.policies.base import ReplacementPolicy, register_policy
from repro.types import Access


@register_policy("pd-partition")
class PDPartitionPolicy(ReplacementPolicy):
    """Thread-aware PDP: one protecting distance per thread.

    Args:
        num_threads: threads sharing the cache.
        n_c: per-line RPD bits (3 or 8, as in Fig. 12's PDP-3/PDP-8).
        d_max: maximum protecting distance.
        step: S_c counter granularity (16 for multi-core in the paper).
        recompute_interval: accesses between PD-vector recomputations.
        bypass: non-inclusive bypass when all lines are protected.
        sampler_mode: "real" or "full" per-thread RD samplers.
    """

    def __init__(
        self,
        num_threads: int,
        n_c: int = 8,
        d_max: int = 256,
        step: int = 16,
        recompute_interval: int = 8192,
        bypass: bool = True,
        sampler_mode: str = "real",
        max_peaks: int = 3,
    ) -> None:
        super().__init__()
        self.num_threads = num_threads
        self.n_c = n_c
        self.d_max = d_max
        self.step = step
        self.recompute_interval = recompute_interval
        self.bypass = bypass
        self.supports_bypass = bypass
        self.sampler_mode = sampler_mode
        self.max_peaks = max_peaks
        self.rpd_max = (1 << n_c) - 1
        self.distance_step = max(1, d_max // (1 << n_c))
        self._accesses = 0

    def _allocate(self, num_sets: int, ways: int) -> None:
        self._ways = ways
        self._rpd = [[0] * ways for _ in range(num_sets)]
        self._step_counter = [0] * num_sets
        self.counter_arrays = [
            RDCounterArray(d_max=self.d_max, step=self.step)
            for _ in range(self.num_threads)
        ]
        # One sampler observes every access, so measured distances are in
        # *shared* set-access time — the time base the RPDs tick in. Thread
        # address spaces are disjoint, so a sampler match always belongs to
        # the accessing thread; counters are dispatched via _current_thread.
        self._current_thread = 0
        factory = RDSampler.real if self.sampler_mode == "real" else RDSampler.full
        self.sampler = factory(
            num_sets,
            d_max=self.d_max,
            on_distance=self._record_distance,
            on_access=self._record_access,
        )
        #: One protecting distance per thread; starts at the associativity.
        self.pd_vector = [ways] * self.num_threads
        #: (access_number, vector) history for analysis.
        self.vector_history: list[tuple[int, list[int]]] = [(0, list(self.pd_vector))]

    def _record_distance(self, distance: int) -> None:
        self.counter_arrays[self._current_thread].record_distance(distance)

    def _record_access(self) -> None:
        self.counter_arrays[self._current_thread].record_access()

    def _insertion_rpd(self, thread: int) -> int:
        units = -(-self.pd_vector[thread] // self.distance_step)
        return min(self.rpd_max, max(1, units))

    def on_access(self, set_index: int, access: Access) -> None:
        thread = access.thread_id % self.num_threads
        self._current_thread = thread
        self.sampler.observe(set_index, access.address)
        self._accesses += 1
        if self._accesses % self.recompute_interval == 0:
            self.recompute()
        counter = self._step_counter[set_index] + 1
        if counter >= self.distance_step:
            row = self._rpd[set_index]
            for way in range(self._ways):
                if row[way] > 0:
                    row[way] -= 1
            counter = 0
        self._step_counter[set_index] = counter

    def recompute(self) -> list[int]:
        """Re-run the peak-combination heuristic over per-thread RDDs."""
        rdds = [
            ThreadRDD(counts=array.counts.copy(), total=array.total)
            for array in self.counter_arrays
        ]
        if any(rdd.total > 0 for rdd in rdds):
            self.pd_vector = find_pd_vector(
                rdds,
                step=self.step,
                d_e=float(self._ways),
                max_peaks=self.max_peaks,
                default_pd=self._ways,
            )
        self.vector_history.append((self._accesses, list(self.pd_vector)))
        for array in self.counter_arrays:
            array.reset()
        return self.pd_vector

    def on_hit(self, set_index: int, way: int, access: Access) -> None:
        thread = access.thread_id % self.num_threads
        self._rpd[set_index][way] = self._insertion_rpd(thread)

    def choose_victim(self, set_index: int, access: Access) -> int | None:
        row = self._rpd[set_index]
        for way in range(self._ways):
            if row[way] == 0:
                return way
        if self.bypass:
            return None
        reused = self.cache.reused[set_index]
        inserted = [way for way in range(self._ways) if not reused[way]]
        candidates = inserted if inserted else list(range(self._ways))
        return max(candidates, key=row.__getitem__)

    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        thread = access.thread_id % self.num_threads
        self._rpd[set_index][way] = self._insertion_rpd(thread)


__all__ = ["PDPartitionPolicy"]
