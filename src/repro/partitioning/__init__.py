"""Shared-LLC partitioning policies: UCP, PIPP and PD-based partitioning."""

from repro.partitioning.pd_partition import PDPartitionPolicy
from repro.partitioning.pipp import PIPPPolicy
from repro.partitioning.ucp import UCPPolicy, lookahead_partition
from repro.partitioning.umon import UtilityMonitor

__all__ = [
    "PDPartitionPolicy",
    "PIPPPolicy",
    "UCPPolicy",
    "UtilityMonitor",
    "lookahead_partition",
]
