"""Utility-based cache partitioning (UCP) with the lookahead algorithm.

UCP assigns each thread a way quota from its UMON utility curve and
enforces the quota at replacement time: a thread over quota loses its own
LRU line; a thread under quota steals the LRU line of the most
over-allocated thread. The paper compares UCP in Fig. 12 using the
lookahead allocation algorithm (Sec. 5), reproduced here.
"""

from __future__ import annotations

import numpy as np

from repro.partitioning.umon import UtilityMonitor
from repro.policies.base import ReplacementPolicy, register_policy
from repro.types import Access


def lookahead_partition(
    curves: list[np.ndarray], total_ways: int, min_ways: int = 1
) -> list[int]:
    """Greedy lookahead way allocation (Qureshi & Patt).

    Repeatedly grants ways to the thread with the highest *maximum marginal
    utility per way*, looking ahead past concave plateaus:
    ``mu_t = max_k (U_t(alloc + k) - U_t(alloc)) / k``.

    Args:
        curves: per-thread utility curves, ``curves[t][w]`` = hits with w ways.
        total_ways: ways to distribute.
        min_ways: floor per thread (1, so every thread can make progress).
    """
    num_threads = len(curves)
    if num_threads * min_ways > total_ways:
        raise ValueError(
            f"cannot give {min_ways} way(s) to each of {num_threads} threads "
            f"out of {total_ways}"
        )
    allocation = [min_ways] * num_threads
    remaining = total_ways - min_ways * num_threads
    max_per_thread = min(total_ways, len(curves[0]) - 1)
    while remaining > 0:
        best_thread = -1
        best_mu = -1.0
        best_k = 1
        for thread, curve in enumerate(curves):
            current = allocation[thread]
            limit = min(max_per_thread - current, remaining)
            for k in range(1, limit + 1):
                gain = float(curve[current + k] - curve[current])
                mu = gain / k
                better = mu > best_mu
                # Tie-break toward the thread holding fewer ways so equal
                # curves split evenly instead of starving later threads.
                tie = (
                    mu == best_mu
                    and best_thread >= 0
                    and allocation[thread] < allocation[best_thread]
                )
                if better or tie:
                    best_mu = mu
                    best_thread = thread
                    best_k = k
        if best_thread < 0 or best_mu <= 0.0:
            # No thread benefits: spread the remainder round-robin.
            for thread in range(num_threads):
                if remaining == 0:
                    break
                if allocation[thread] < max_per_thread:
                    allocation[thread] += 1
                    remaining -= 1
            break
        allocation[best_thread] += best_k
        remaining -= best_k
    return allocation


@register_policy("ucp")
class UCPPolicy(ReplacementPolicy):
    """UCP: UMON-driven way quotas enforced over an LRU base order.

    Args:
        num_threads: threads sharing the cache.
        repartition_interval: accesses between lookahead re-allocations
            (5M in the original work; scale down for short traces).
        num_sampled_sets: UMON sampling (32 in the paper).
    """

    def __init__(
        self,
        num_threads: int,
        repartition_interval: int = 4096,
        num_sampled_sets: int = 32,
    ) -> None:
        super().__init__()
        self.num_threads = num_threads
        self.repartition_interval = repartition_interval
        self.num_sampled_sets = num_sampled_sets
        self._accesses = 0
        self.allocation: list[int] = []

    def _allocate(self, num_sets: int, ways: int) -> None:
        self._ways = ways
        self._stamp = [[0] * ways for _ in range(num_sets)]
        self._clock = [0] * num_sets
        self.monitors = [
            UtilityMonitor(num_sets, ways, self.num_sampled_sets)
            for _ in range(self.num_threads)
        ]
        base = ways // self.num_threads
        extra = ways % self.num_threads
        self.allocation = [
            base + (1 if thread < extra else 0) for thread in range(self.num_threads)
        ]

    def _touch(self, set_index: int, way: int) -> None:
        self._clock[set_index] += 1
        self._stamp[set_index][way] = self._clock[set_index]

    def on_access(self, set_index: int, access: Access) -> None:
        thread = access.thread_id % self.num_threads
        self.monitors[thread].observe(set_index, access.address)
        self._accesses += 1
        if self._accesses % self.repartition_interval == 0:
            self.repartition()

    def repartition(self) -> list[int]:
        """Re-run lookahead over the current UMON curves."""
        curves = [monitor.utility_curve() for monitor in self.monitors]
        self.allocation = lookahead_partition(curves, self._ways)
        for monitor in self.monitors:
            monitor.decay()
        return self.allocation

    def on_hit(self, set_index: int, way: int, access: Access) -> None:
        self._touch(set_index, way)

    def choose_victim(self, set_index: int, access: Access) -> int | None:
        thread = access.thread_id % self.num_threads
        owners = self.cache.owner[set_index]
        stamps = self._stamp[set_index]
        counts = [0] * self.num_threads
        for way in range(self._ways):
            counts[owners[way] % self.num_threads] += 1
        if counts[thread] >= self.allocation[thread]:
            own = [w for w in range(self._ways) if owners[w] % self.num_threads == thread]
            return min(own, key=stamps.__getitem__)
        # Steal from the most over-allocated thread.
        overage = [counts[t] - self.allocation[t] for t in range(self.num_threads)]
        donor = max(
            (t for t in range(self.num_threads) if counts[t] > 0),
            key=lambda t: overage[t],
        )
        donor_ways = [w for w in range(self._ways) if owners[w] % self.num_threads == donor]
        return min(donor_ways, key=stamps.__getitem__)

    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        self._touch(set_index, way)


__all__ = ["UCPPolicy", "lookahead_partition"]
