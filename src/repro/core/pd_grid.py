"""The canonical protecting-distance candidate grid.

Every component that sweeps or searches static protecting distances —
:func:`repro.sim.runner.sweep_static_pd` callers via
:func:`repro.sim.runner.default_pd_candidates`, the analytical explorer
(:mod:`repro.explore`), and the cross-validation harness
(``tools/xval_explorer.py``) — must agree on what "the PD grid" is,
otherwise acceptance criteria like "predicted best PD within one grid
step of the empirical best" are ill-defined. This module is the single
source of truth: a uniform grid from the associativity up to ``d_max``
in ``step`` increments.
"""

from __future__ import annotations

#: Default upper bound of the candidate grid (the paper sweeps to 256).
DEFAULT_D_MAX = 256

#: Default grid spacing (the paper's S_c counter granularity).
DEFAULT_STEP = 4


def pd_grid(
    associativity: int = 16,
    d_max: int = DEFAULT_D_MAX,
    step: int = DEFAULT_STEP,
) -> list[int]:
    """The canonical candidate protecting distances for one geometry.

    Starts at the associativity (protecting below W is never useful —
    a full set of W lines can always protect W accesses) and rises to
    ``d_max`` in uniform ``step`` increments. The returned list is
    never empty: when ``associativity > d_max`` the single candidate
    is the associativity itself.
    """
    if associativity < 1:
        raise ValueError(f"associativity must be >= 1, got {associativity}")
    if step < 1:
        raise ValueError(f"step must be >= 1, got {step}")
    grid = list(range(associativity, d_max + 1, step))
    return grid if grid else [associativity]


def grid_step(grid: list[int]) -> int:
    """The spacing of a uniform candidate grid (its "one grid step").

    A single-point grid has no spacing; by convention its step is 0, so
    "within one grid step" degenerates to exact equality.
    """
    if len(grid) < 2:
        return 0
    return grid[1] - grid[0]


def within_one_step(candidate: int, reference: int, grid: list[int]) -> bool:
    """Whether two grid points sit within one grid step of each other.

    This is the well-defined form of the cross-validation acceptance
    criterion "predicted best PD within one PD-grid step of the
    empirical best".
    """
    return abs(candidate - reference) <= grid_step(grid)


__all__ = ["DEFAULT_D_MAX", "DEFAULT_STEP", "grid_step", "pd_grid", "within_one_step"]
