"""Class-based PDP — the paper's Sec. 6.3 improvement direction.

Sec. 6.3: "the PDP can be improved by grouping lines into different
classes, each with its own PD, and where most of the lines are reused.
The lines in a class are protected until its PD only, thus they are not
overprotected if they are not reused. ... A popular way is using the
program counters."

This policy hashes each access's PC into a small number of classes, keeps
one RD counter array per class (fed by the shared RD sampler), and
computes one protecting distance per class at every recompute interval. A
line's RPD comes from the class of the access that inserted or promoted
it, so a streaming PC's lines retire quickly while a reusing PC's lines
are protected to their own reuse point — per-class what dynamic PDP does
globally.

Storage: the per-line class id costs log2(num_classes) extra tag bits and
the counter array is replicated per class; the paper flags exactly this
hardware trade-off.
"""

from __future__ import annotations

from repro.core.hit_rate_model import find_best_pd
from repro.core.rdd import RDCounterArray
from repro.core.sampler import RDSampler
from repro.policies.base import ReplacementPolicy, register_policy
from repro.types import Access


@register_policy("pdp-classified")
class ClassifiedPDPPolicy(ReplacementPolicy):
    """PDP with per-PC-class protecting distances (n_c = 8 RPDs).

    Args:
        num_classes: PC-hash classes (a power of two; 4 by default).
        bypass: non-inclusive bypass when every line is protected.
        d_max / step / recompute_interval / sampler_mode: as for
            :class:`repro.core.pdp_policy.PDPPolicy`.
    """

    def __init__(
        self,
        num_classes: int = 4,
        bypass: bool = True,
        d_max: int = 256,
        step: int = 4,
        recompute_interval: int = 4096,
        sampler_mode: str = "real",
    ) -> None:
        super().__init__()
        if num_classes < 1 or num_classes & (num_classes - 1):
            raise ValueError(f"num_classes must be a power of two, got {num_classes}")
        self.num_classes = num_classes
        self.bypass = bypass
        self.supports_bypass = bypass
        self.d_max = d_max
        self.step = step
        self.recompute_interval = recompute_interval
        self.sampler_mode = sampler_mode
        self._accesses = 0

    def _allocate(self, num_sets: int, ways: int) -> None:
        self._ways = ways
        self._rpd = [[0] * ways for _ in range(num_sets)]
        self.counter_arrays = [
            RDCounterArray(d_max=self.d_max, step=self.step)
            for _ in range(self.num_classes)
        ]
        self._current_class = 0
        factory = RDSampler.real if self.sampler_mode == "real" else RDSampler.full
        self.sampler = factory(
            num_sets,
            d_max=self.d_max,
            on_distance=self._record_distance,
            on_access=self._record_access,
        )
        #: One PD per class; all start at the associativity.
        self.class_pds = [ways] * self.num_classes
        self.pd_history: list[tuple[int, list[int]]] = [(0, list(self.class_pds))]

    def classify(self, pc: int) -> int:
        """Class of a program counter (xor-folded hash)."""
        folded = (pc ^ (pc >> 7) ^ (pc >> 13)) & 0xFFFF
        return folded % self.num_classes

    def _record_distance(self, distance: int) -> None:
        self.counter_arrays[self._current_class].record_distance(distance)

    def _record_access(self) -> None:
        self.counter_arrays[self._current_class].record_access()

    def on_access(self, set_index: int, access: Access) -> None:
        self._current_class = self.classify(access.pc)
        self.sampler.observe(set_index, access.address)
        self._accesses += 1
        if self._accesses % self.recompute_interval == 0:
            self.recompute()
        row = self._rpd[set_index]
        for way in range(self._ways):
            if row[way] > 0:
                row[way] -= 1

    def recompute(self) -> list[int]:
        """Re-run the E(d_p) search independently per class."""
        for class_index, array in enumerate(self.counter_arrays):
            if array.total > 0:
                self.class_pds[class_index] = find_best_pd(
                    array.counts,
                    array.total,
                    step=array.step,
                    d_e=float(self._ways),
                    min_pd=min(self._ways, self.d_max),
                    default_pd=self.class_pds[class_index],
                )
            array.reset()
        self.pd_history.append((self._accesses, list(self.class_pds)))
        return self.class_pds

    def _rpd_for(self, access: Access) -> int:
        pd = self.class_pds[self.classify(access.pc)]
        return min(255, max(1, pd))

    def on_hit(self, set_index: int, way: int, access: Access) -> None:
        self._rpd[set_index][way] = self._rpd_for(access)

    def choose_victim(self, set_index: int, access: Access) -> int | None:
        row = self._rpd[set_index]
        for way in range(self._ways):
            if row[way] == 0:
                return way
        if self.bypass:
            return None
        reused = self.cache.reused[set_index]
        inserted = [way for way in range(self._ways) if not reused[way]]
        candidates = inserted if inserted else list(range(self._ways))
        return max(candidates, key=row.__getitem__)

    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        self._rpd[set_index][way] = self._rpd_for(access)


__all__ = ["ClassifiedPDPPolicy"]
