"""The RD counter array: the dynamically measured RDD (Sec. 3).

Counter ``i`` counts sampler-measured reuse distances in the range
``(i*S_c, (i+1)*S_c]`` — the paper's step counter S_c packs a consecutive
range of RDs into one counter to save space and search time. A 32-bit
counter tracks the total number of sampled accesses N_t. All counters are
16-bit saturating; when one saturates, the whole array freezes to preserve
the RDD's shape.
"""

from __future__ import annotations

import numpy as np


class RDCounterArray:
    """Saturating counter array storing {N_i} and N_t.

    Args:
        d_max: largest distance recorded; longer distances are dropped
            (they land in the "long lines" term N_L = N_t - sum N_i).
        step: S_c, the range of RDs per counter.
        counter_bits: width of each N_i counter (16 in the paper).
        total_bits: width of the N_t counter (32 in the paper).
    """

    def __init__(
        self,
        d_max: int = 256,
        step: int = 4,
        counter_bits: int = 16,
        total_bits: int = 32,
    ) -> None:
        if d_max % step:
            raise ValueError(f"d_max ({d_max}) must be a multiple of step ({step})")
        self.d_max = d_max
        self.step = step
        self.counter_max = (1 << counter_bits) - 1
        self.total_max = (1 << total_bits) - 1
        self.num_counters = d_max // step
        self.counts = np.zeros(self.num_counters, dtype=np.int64)
        self.total = 0
        self.frozen = False

    def record_access(self) -> None:
        """Count one sampled access toward N_t."""
        if self.frozen:
            return
        self.total += 1
        if self.total >= self.total_max:
            self.frozen = True

    def record_distance(self, distance: int) -> None:
        """Count one measured reuse distance toward its bin.

        When any counter saturates, the whole array freezes to preserve
        the RDD's shape (paper Sec. 3).
        """
        if self.frozen:
            return
        if distance < 1 or distance > self.d_max:
            return
        index = (distance - 1) // self.step
        self.counts[index] += 1
        if self.counts[index] >= self.counter_max:
            self.frozen = True

    def bin_upper_edge(self, index: int) -> int:
        """Largest distance counted by bin ``index``."""
        return (index + 1) * self.step

    def bin_midpoint(self, index: int) -> float:
        """Representative distance of bin ``index`` (its midpoint)."""
        return index * self.step + (self.step + 1) / 2

    @property
    def reuse_count(self) -> int:
        """Total reuses recorded (sum of N_i)."""
        return int(self.counts.sum())

    @property
    def long_count(self) -> int:
        """N_L: sampled accesses with no recorded reuse below d_max."""
        return max(0, self.total - self.reuse_count)

    def snapshot(self) -> tuple[np.ndarray, int]:
        """Copy of (counts, total) for the PD computation."""
        return self.counts.copy(), self.total

    def reset(self) -> None:
        """Clear counters (done after each PD recomputation, Sec. 6.4)."""
        self.counts[:] = 0
        self.total = 0
        self.frozen = False

    def decay(self, shift: int = 1) -> None:
        """Halve all counters ``shift`` times (alternative to full reset)."""
        self.counts >>= shift
        self.total >>= shift
        self.frozen = False

    def storage_bits(self, counter_bits: int = 16, total_bits: int = 32) -> int:
        """SRAM bits: d_max/S_c counters of 16 bits plus one 32-bit N_t."""
        return self.num_counters * counter_bits + total_bits


__all__ = ["RDCounterArray"]
