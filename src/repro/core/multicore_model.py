"""The multi-core shared-LLC hit-rate model E_m and PD-vector search (Sec. 4).

For T threads sharing the LLC, each thread t contributes H_t(d_p^t) hits
and A_t(d_p^t) occupancy for its own protecting distance. The multi-core
model (Eq. 2) is

    E_m(d_p) = sum_t H_t(d_p^t) / sum_t A_t(d_p^t)

The paper's heuristic avoids the exhaustive search over the PD vector:
threads are sorted by their best single-core E; the vector is built one
thread at a time, trying only each thread's top peaks (three suffice); a
final coordinate-refinement pass revisits each thread's choice given the
others — giving the O(T^2 * S) complexity the paper quotes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hit_rate_model import EPoint, find_peaks


@dataclass(frozen=True, slots=True)
class ThreadRDD:
    """One thread's sampled RDD: (counts, total) with shared binning."""

    counts: np.ndarray
    total: int


class MulticoreHitRateModel:
    """Evaluates E_m over per-thread RDDs with shared binning.

    Args:
        step: S_c bin width (16 for multi-core in the paper, Sec. 6.6).
        d_e: eviction-lag constant (W).
    """

    def __init__(self, step: int = 16, d_e: float = 16.0) -> None:
        self.step = step
        self.d_e = d_e

    def _hits_and_occupancy(self, rdd: ThreadRDD, pd: int) -> tuple[float, float]:
        """H_t(pd) and A_t(pd) for one thread."""
        hits = 0.0
        occupancy = 0.0
        for index, count in enumerate(rdd.counts):
            upper = (index + 1) * self.step
            if upper > pd:
                break
            midpoint = index * self.step + (self.step + 1) / 2
            hits += float(count)
            occupancy += float(count) * midpoint
        long_lines = max(0.0, float(rdd.total) - hits)
        occupancy += long_lines * (pd + self.d_e)
        return hits, occupancy

    def e_m(self, rdds: list[ThreadRDD], pds: list[int]) -> float:
        """E_m for the given PD vector (Eq. 2)."""
        if len(rdds) != len(pds):
            raise ValueError("one PD per thread is required")
        total_hits = 0.0
        total_occupancy = 0.0
        for rdd, pd in zip(rdds, pds):
            hits, occupancy = self._hits_and_occupancy(rdd, pd)
            total_hits += hits
            total_occupancy += occupancy
        return total_hits / total_occupancy if total_occupancy > 0 else 0.0

    def thread_peaks(self, rdd: ThreadRDD, max_peaks: int = 3) -> list[EPoint]:
        """Top single-core E peaks of one thread."""
        return find_peaks(
            rdd.counts,
            rdd.total,
            step=self.step,
            d_e=self.d_e,
            min_pd=self.step,
            max_peaks=max_peaks,
        )


def find_pd_vector(
    rdds: list[ThreadRDD],
    step: int = 16,
    d_e: float = 16.0,
    max_peaks: int = 3,
    default_pd: int = 16,
    refine_passes: int = 1,
) -> list[int]:
    """The paper's greedy peak-combination heuristic (Sec. 4).

    Returns one PD per thread, in the original thread order.
    """
    model = MulticoreHitRateModel(step=step, d_e=d_e)
    num_threads = len(rdds)
    peak_lists: list[list[int]] = []
    best_single: list[float] = []
    for rdd in rdds:
        peaks = model.thread_peaks(rdd, max_peaks=max_peaks)
        if peaks and peaks[0].e_value > 0.0:
            peak_lists.append([peak.pd for peak in peaks])
            best_single.append(peaks[0].e_value)
        else:
            # No measurable reuse below d_max: give the thread the default
            # (small) PD so its lines retire quickly (streaming threads).
            peak_lists.append([default_pd])
            best_single.append(0.0)

    # Add threads in decreasing order of their best single-core E.
    order = sorted(range(num_threads), key=lambda t: -best_single[t])
    chosen: dict[int, int] = {}
    for thread in order:
        best_pd = peak_lists[thread][0]
        best_score = -1.0
        for candidate in peak_lists[thread]:
            trial = dict(chosen)
            trial[thread] = candidate
            members = sorted(trial)
            score = model.e_m(
                [rdds[t] for t in members], [trial[t] for t in members]
            )
            if score > best_score:
                best_score = score
                best_pd = candidate
        chosen[thread] = best_pd

    # Coordinate refinement: revisit each thread with all others fixed.
    for _ in range(refine_passes):
        for thread in order:
            best_pd = chosen[thread]
            best_score = -1.0
            for candidate in peak_lists[thread]:
                trial = dict(chosen)
                trial[thread] = candidate
                members = sorted(trial)
                score = model.e_m(
                    [rdds[t] for t in members], [trial[t] for t in members]
                )
                if score > best_score:
                    best_score = score
                    best_pd = candidate
            chosen[thread] = best_pd

    return [chosen[t] for t in range(num_threads)]


__all__ = ["MulticoreHitRateModel", "ThreadRDD", "find_pd_vector"]
