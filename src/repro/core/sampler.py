"""The RD sampler: measures reuse distances on a few sampled sets (Sec. 3).

Each sampled set keeps a FIFO of recently accessing addresses. A new access
searches the FIFO; the position of the most recent match gives the reuse
distance. To keep FIFOs small, a new entry is inserted only every M-th
access to the set (a per-set sampling counter counts to M), and the RD is
reconstructed as ``RD = n * M + t`` where ``n`` is the FIFO position of the
hit and ``t`` the sampling counter's value. A matched entry is invalidated
to reduce measurement error, exactly as in the paper.

The "Full" configuration of Fig. 9 (every set, M = 1, FIFO depth d_max)
measures RDs exactly; the "Real" configuration samples 32 sets with
32-entry FIFOs and M = d_max / 32.
"""

from __future__ import annotations


class _SetFIFO:
    """Address FIFO for one sampled set (newest first)."""

    __slots__ = ("entries", "depth")

    def __init__(self, depth: int) -> None:
        self.depth = depth
        self.entries: list[int | None] = []

    def find_and_invalidate(self, address: int) -> int | None:
        """Position of the most recent match, invalidating it; else None."""
        for position, entry in enumerate(self.entries):
            if entry == address:
                self.entries[position] = None
                return position
        return None

    def push(self, address: int) -> None:
        self.entries.insert(0, address)
        if len(self.entries) > self.depth:
            self.entries.pop()


class RDSampler:
    """Measures per-set access-based reuse distances on sampled sets.

    Args:
        num_sets: sets in the monitored cache.
        num_sampled_sets: how many sets to monitor (32 in the "Real"
            configuration; ``num_sets`` for "Full").
        fifo_depth: entries per sampled-set FIFO.
        insertion_rate: M — a new FIFO entry every M-th access.
        on_distance: callback receiving each measured RD.
        on_access: optional callback invoked for every access to a sampled
            set (feeds the N_t counter).

    The maximum measurable distance is ``fifo_depth * insertion_rate``.
    """

    def __init__(
        self,
        num_sets: int,
        num_sampled_sets: int = 32,
        fifo_depth: int = 32,
        insertion_rate: int = 8,
        on_distance=None,
        on_access=None,
    ) -> None:
        if insertion_rate < 1:
            raise ValueError(f"insertion_rate must be >= 1, got {insertion_rate}")
        if fifo_depth < 1:
            raise ValueError(f"fifo_depth must be >= 1, got {fifo_depth}")
        self.num_sets = num_sets
        self.num_sampled_sets = min(num_sampled_sets, num_sets)
        self.fifo_depth = fifo_depth
        self.insertion_rate = insertion_rate
        self.on_distance = on_distance
        self.on_access = on_access
        stride = max(1, num_sets // self.num_sampled_sets)
        self._fifos: dict[int, _SetFIFO] = {
            set_index: _SetFIFO(fifo_depth)
            for set_index in range(0, num_sets, stride)
        }
        self._sampling_counter: dict[int, int] = {s: 0 for s in self._fifos}

    @property
    def d_max(self) -> int:
        """Largest reuse distance this sampler can measure."""
        return self.fifo_depth * self.insertion_rate

    @property
    def sampled_sets(self) -> list[int]:
        return sorted(self._fifos)

    def is_sampled(self, set_index: int) -> bool:
        return set_index in self._fifos

    def observe(self, set_index: int, address: int) -> int | None:
        """Present one access; returns the measured RD on a sampler hit."""
        fifo = self._fifos.get(set_index)
        if fifo is None:
            return None
        if self.on_access is not None:
            self.on_access()
        counter = self._sampling_counter[set_index] + 1
        position = fifo.find_and_invalidate(address)
        distance: int | None = None
        if position is not None:
            distance = position * self.insertion_rate + counter
            if self.on_distance is not None:
                self.on_distance(distance)
        if counter >= self.insertion_rate:
            fifo.push(address)
            counter = 0
        self._sampling_counter[set_index] = counter
        return distance

    def reset(self) -> None:
        """Clear all FIFOs and sampling counters."""
        for set_index, fifo in self._fifos.items():
            fifo.entries.clear()
            self._sampling_counter[set_index] = 0

    def storage_bits(self, tag_bits: int = 16) -> int:
        """SRAM bits this sampler costs (Sec. 3 overhead accounting)."""
        per_set = self.fifo_depth * tag_bits
        counter_bits = max(1, (self.insertion_rate - 1).bit_length())
        return self.num_sampled_sets * (per_set + counter_bits)

    @classmethod
    def full(cls, num_sets: int, d_max: int = 256, **callbacks) -> RDSampler:
        """The exact "Full" configuration: every set, M = 1, depth d_max."""
        return cls(
            num_sets,
            num_sampled_sets=num_sets,
            fifo_depth=d_max,
            insertion_rate=1,
            **callbacks,
        )

    @classmethod
    def real(cls, num_sets: int, d_max: int = 256, **callbacks) -> RDSampler:
        """The paper's "Real" configuration: 32 sets, 32-entry FIFOs."""
        fifo_depth = 32
        insertion_rate = max(1, d_max // fifo_depth)
        return cls(
            num_sets,
            num_sampled_sets=32,
            fifo_depth=fifo_depth,
            insertion_rate=insertion_rate,
            **callbacks,
        )


__all__ = ["RDSampler"]
