"""The paper's primary contribution: Protecting Distance based Policy (PDP).

Exports the RD sampler, the RD counter array (dynamic RDD), the hit-rate
model E(d_p) (Eq. 1), the dynamic PD engine, the PDP replacement/bypass
policy, prefetch-aware variants, and the multi-core hit-rate model (Eq. 2).
"""

from repro.core.classified_pdp import ClassifiedPDPPolicy
from repro.core.hit_rate_model import (
    HitRateModel,
    evaluate_e_curve,
    find_best_pd,
    find_peaks,
)
from repro.core.multicore_model import MulticoreHitRateModel, find_pd_vector
from repro.core.pd_engine import PDEngine
from repro.core.pdp_policy import PDPPolicy
from repro.core.prefetch import PrefetchAwarePDPPolicy, StreamPrefetcher
from repro.core.rdd import RDCounterArray
from repro.core.sampler import RDSampler

__all__ = [
    "ClassifiedPDPPolicy",
    "HitRateModel",
    "MulticoreHitRateModel",
    "PDEngine",
    "PDPPolicy",
    "PrefetchAwarePDPPolicy",
    "RDCounterArray",
    "RDSampler",
    "StreamPrefetcher",
    "evaluate_e_curve",
    "find_best_pd",
    "find_peaks",
    "find_pd_vector",
]
