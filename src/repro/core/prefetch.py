"""Stream prefetching and the prefetch-aware PDP variants (Sec. 6.5).

The paper observes that prefetched lines usually belong to very long
streams (large RDs) and pollute the cache if protected like demand lines.
Two prefetch-aware PDP variants are evaluated:

1. ``"pd1"`` — insert prefetched lines with PD = 1 (barely protected);
2. ``"bypass"`` — prefetched fills bypass the LLC entirely.

:class:`StreamPrefetcher` is the "simple stream prefetcher" of the paper's
initial evaluation: it detects ascending/descending block streams per
memory region and emits prefetch accesses ahead of the stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pdp_policy import PDPPolicy
from repro.types import Access, AccessType


@dataclass(slots=True)
class _StreamEntry:
    """Tracking state for one detected stream."""

    last_address: int
    direction: int
    confidence: int


class StreamPrefetcher:
    """Region-based stream detector issuing ``degree`` prefetches ahead.

    Args:
        num_streams: concurrently tracked streams (LRU-evicted).
        degree: prefetches issued per confirmed stream access.
        region_bits: block-address bits defining a tracking region.
        train_threshold: confirmations before prefetches are issued.
    """

    def __init__(
        self,
        num_streams: int = 16,
        degree: int = 2,
        region_bits: int = 6,
        train_threshold: int = 2,
    ) -> None:
        self.num_streams = num_streams
        self.degree = degree
        self.region_bits = region_bits
        self.train_threshold = train_threshold
        self._streams: dict[int, _StreamEntry] = {}
        self._lru: list[int] = []
        self.issued = 0

    def _region(self, address: int) -> int:
        return address >> self.region_bits

    def observe(self, access: Access) -> list[Access]:
        """Train on a demand access; returns prefetch accesses to issue."""
        region = self._region(access.address)
        entry = self._streams.get(region)
        prefetches: list[Access] = []
        if entry is None:
            if len(self._streams) >= self.num_streams:
                oldest = self._lru.pop(0)
                del self._streams[oldest]
            self._streams[region] = _StreamEntry(access.address, 0, 0)
            self._lru.append(region)
            return prefetches
        delta = access.address - entry.last_address
        if delta in (1, -1):
            if entry.direction == delta:
                entry.confidence = min(entry.confidence + 1, 7)
            else:
                entry.direction = delta
                entry.confidence = 1
            if entry.confidence >= self.train_threshold:
                for ahead in range(1, self.degree + 1):
                    prefetches.append(
                        Access(
                            address=access.address + delta * ahead,
                            pc=access.pc,
                            kind=AccessType.PREFETCH,
                            thread_id=access.thread_id,
                        )
                    )
                self.issued += len(prefetches)
        elif delta != 0:
            entry.confidence = max(entry.confidence - 1, 0)
        entry.last_address = access.address
        self._lru.remove(region)
        self._lru.append(region)
        return prefetches


class PrefetchAwarePDPPolicy(PDPPolicy):
    """PDP that treats prefetched fills specially (Sec. 6.5).

    Args:
        prefetch_mode: ``"none"`` (prefetch-unaware), ``"pd1"`` (insert
            prefetches with PD = 1) or ``"bypass"`` (prefetches skip the
            LLC).
    """

    def __init__(self, prefetch_mode: str = "pd1", **kwargs) -> None:
        if prefetch_mode not in ("none", "pd1", "bypass"):
            raise ValueError(
                f"prefetch_mode must be none/pd1/bypass, got {prefetch_mode!r}"
            )
        super().__init__(**kwargs)
        self.prefetch_mode = prefetch_mode

    def choose_victim(self, set_index: int, access: Access) -> int | None:
        if (
            self.prefetch_mode == "bypass"
            and access.kind is AccessType.PREFETCH
            and self.bypass
        ):
            return None
        return super().choose_victim(set_index, access)

    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        if self.prefetch_mode == "pd1" and access.kind is AccessType.PREFETCH:
            self._rpd[set_index][way] = 1
        else:
            super().on_fill(set_index, way, access)


def interleave_prefetches(accesses, prefetcher: StreamPrefetcher):
    """Yield demand accesses with trained prefetches injected after them."""
    for access in accesses:
        yield access
        yield from prefetcher.observe(access)


__all__ = [
    "PrefetchAwarePDPPolicy",
    "StreamPrefetcher",
    "interleave_prefetches",
]
