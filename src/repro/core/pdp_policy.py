"""The Protecting Distance based Policy (PDP) — Sec. 2.2 of the paper.

Every line carries a Remaining Protecting Distance (RPD), set to the
current PD on insertion and promotion and decremented on every access to
the set (saturating at 0). A line is *protected* while its RPD exceeds 0;
only unprotected lines are eviction candidates.

When no unprotected line exists:

- inclusive cache (no bypass, SPDP-NB flavour): replace the *inserted*
  (never reused) line with the highest RPD; if all lines were reused,
  replace the reused line with the highest RPD — this needs the per-line
  reuse bit the cache already keeps;
- non-inclusive cache (bypass, SPDP-B flavour): bypass the fill entirely,
  further protecting resident lines. No reuse bit is needed.

RPD storage is n_c bits. For n_c < log2(d_max) the policy uses the
Distance Step S_d = d_max / 2^n_c: a per-set counter decrements all RPDs
once every S_d accesses, and PDs quantize to S_d units (Sec. 3, "Cache tag
overhead"). The paper evaluates n_c of 2, 3 and 8 (PDP-2/3/8, Fig. 10).

With ``static_pd`` set, this is the static SPDP of Sec. 2.3; otherwise a
:class:`repro.core.pd_engine.PDEngine` recomputes the PD periodically.
"""

from __future__ import annotations

from repro.core.pd_engine import PDEngine
from repro.policies.base import ReplacementPolicy, register_policy
from repro.types import Access


@register_policy("pdp")
class PDPPolicy(ReplacementPolicy):
    """PDP replacement with optional bypass and dynamic PD.

    Args:
        static_pd: fix the PD (SPDP); ``None`` enables the dynamic engine.
        bypass: non-inclusive behaviour — bypass when all lines are
            protected (SPDP-B / PDP with bypass).
        n_c: bits of RPD storage per line (8, 3 or 2 in the paper).
        d_max: maximum protecting distance (256).
        step: S_c granularity of the RD counter array.
        recompute_interval: accesses between dynamic PD recomputations.
        sampler_mode: "real" or "full" RD sampler (Fig. 9).
        insertion_pd: protect *inserted* lines for this distance instead
            of the computed PD; promotions still use the PD. The paper's
            Sec. 6.3 mcf study sets this to 1 ("mostly unprotected") and
            gains 8% over DIP — dead-on-arrival lines retire immediately
            while established lines stay protected.
    """

    def __init__(
        self,
        static_pd: int | None = None,
        bypass: bool = True,
        n_c: int = 8,
        d_max: int = 256,
        step: int = 4,
        recompute_interval: int = 4096,
        sampler_mode: str = "real",
        insertion_pd: int | None = None,
    ) -> None:
        super().__init__()
        if n_c < 1:
            raise ValueError(f"n_c must be >= 1, got {n_c}")
        if insertion_pd is not None and insertion_pd < 1:
            raise ValueError(f"insertion_pd must be >= 1, got {insertion_pd}")
        self.static_pd = static_pd
        self.bypass = bypass
        self.supports_bypass = bypass
        self.n_c = n_c
        self.d_max = d_max
        self.step = step
        self.recompute_interval = recompute_interval
        self.sampler_mode = sampler_mode
        self.insertion_pd = insertion_pd
        self.rpd_max = (1 << n_c) - 1
        # Distance step S_d: RPDs tick once every distance_step accesses.
        # The step adapts to the PD in force so a small PD is not rounded
        # up to a whole d_max/2^n_c-access tick; the paper only bounds S_d
        # from above by d_max / 2^n_c.
        self.max_distance_step = max(1, d_max // (1 << n_c))
        self.distance_step = self._step_for(static_pd if static_pd else d_max)
        self.engine: PDEngine | None = None

    # -- wiring ------------------------------------------------------------

    def _allocate(self, num_sets: int, ways: int) -> None:
        self._ways = ways
        self._rpd = [[0] * ways for _ in range(num_sets)]
        self._step_counter = [0] * num_sets
        if self.static_pd is None:
            self.engine = PDEngine(
                num_sets,
                associativity=ways,
                d_max=self.d_max,
                step=self.step,
                recompute_interval=self.recompute_interval,
                sampler_mode=self.sampler_mode,
            )

    @property
    def current_pd(self) -> int:
        """The protecting distance in force right now."""
        if self.static_pd is not None:
            return self.static_pd
        return self.engine.current_pd

    def _step_for(self, pd: int) -> int:
        """S_d giving the PD full n_c-bit resolution, capped at the paper's
        d_max / 2^n_c bound."""
        return min(self.max_distance_step, max(1, -(-pd // self.rpd_max)))

    def _insertion_rpd(self) -> int:
        """Quantize the current PD to n_c-bit RPD units."""
        units = -(-self.current_pd // self.distance_step)  # ceil division
        return min(self.rpd_max, max(1, units))

    # -- hooks ---------------------------------------------------------------

    def on_access(self, set_index: int, access: Access) -> None:
        if self.engine is not None:
            recomputes = self.engine.recompute_count
            self.engine.observe(set_index, access.address)
            if self.engine.recompute_count != recomputes:
                self.distance_step = self._step_for(self.engine.current_pd)
        # Count every access, including ones that will bypass (Sec. 3:
        # the per-set counter counts bypasses too).
        counter = self._step_counter[set_index] + 1
        if counter >= self.distance_step:
            row = self._rpd[set_index]
            for way in range(self._ways):
                if row[way] > 0:
                    row[way] -= 1
            counter = 0
        self._step_counter[set_index] = counter

    def on_hit(self, set_index: int, way: int, access: Access) -> None:
        self._rpd[set_index][way] = self._insertion_rpd()

    def choose_victim(self, set_index: int, access: Access) -> int | None:
        row = self._rpd[set_index]
        for way in range(self._ways):
            if row[way] == 0:
                return way
        if self.bypass:
            return None
        # Inclusive fallback: youngest inserted line first, then youngest
        # reused line ("youngest" = highest RPD).
        reused = self.cache.reused[set_index]
        inserted_ways = [way for way in range(self._ways) if not reused[way]]
        candidates = inserted_ways if inserted_ways else list(range(self._ways))
        return max(candidates, key=row.__getitem__)

    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        if self.insertion_pd is not None:
            units = -(-self.insertion_pd // self.distance_step)
            self._rpd[set_index][way] = min(self.rpd_max, max(1, units))
        else:
            self._rpd[set_index][way] = self._insertion_rpd()

    # -- introspection --------------------------------------------------------

    def protected_count(self, set_index: int) -> int:
        """Number of currently protected lines in ``set_index``."""
        return sum(1 for value in self._rpd[set_index] if value > 0)

    def rpd_of(self, set_index: int, way: int) -> int:
        """Current RPD (in S_d units) of one line."""
        return self._rpd[set_index][way]


def make_spdp_nb(pd: int, **kwargs) -> PDPPolicy:
    """Static PDP without bypass (the paper's SPDP-NB)."""
    return PDPPolicy(static_pd=pd, bypass=False, **kwargs)


def make_spdp_b(pd: int, **kwargs) -> PDPPolicy:
    """Static PDP with bypass (the paper's SPDP-B)."""
    return PDPPolicy(static_pd=pd, bypass=True, **kwargs)


__all__ = ["PDPPolicy", "make_spdp_b", "make_spdp_nb"]
