"""The single-core hit-rate model E(d_p) — Eq. 1 of the paper (Sec. 2.4).

Given the RDD counters {N_i}, the total access count N_t and a candidate
protecting distance d_p, the model approximates the hit rate (scaled by the
associativity W, which cancels when comparing candidates):

    E(d_p) = sum_{i <= d_p} N_i
             -----------------------------------------------------
             sum_{i <= d_p} N_i * i  +  (N_t - sum_{i <= d_p} N_i) * (d_p + d_e)

The numerator counts hits from protected lines; the denominator is total
line occupancy: a line reused at distance i occupies its set for i
accesses, and a "long" line (RD > d_p) occupies d_p + d_e accesses, where
d_e accounts for the lag between losing protection and being evicted. The
paper determines experimentally that d_e = W works well.

The search evaluates E at every bin boundary of the counter array (the PD
is a bin range when S_c > 1) and keeps running sums, so a full search is
O(d_max / S_c) — mirroring the incremental E(d_p + 1)-from-E(d_p)
computation of the paper's special-purpose processor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rdd import RDCounterArray


@dataclass(frozen=True, slots=True)
class EPoint:
    """One evaluated candidate: protecting distance and its model score."""

    pd: int
    e_value: float


def evaluate_e_curve(
    counts: np.ndarray,
    total: int,
    step: int = 1,
    d_e: float = 16.0,
    min_pd: int = 1,
) -> list[EPoint]:
    """Evaluate E(d_p) at every bin boundary.

    Args:
        counts: N_i bins (bin i covers distances (i*step, (i+1)*step]).
        total: N_t, total sampled accesses.
        step: S_c, bin width.
        d_e: eviction-lag constant (the paper sets d_e = W).
        min_pd: smallest candidate PD to consider.

    Returns:
        One :class:`EPoint` per bin whose upper edge is >= ``min_pd``.
    """
    points: list[EPoint] = []
    hits = 0.0
    occupancy_of_hits = 0.0
    for index, count in enumerate(counts):
        midpoint = index * step + (step + 1) / 2
        hits += float(count)
        occupancy_of_hits += float(count) * midpoint
        pd = (index + 1) * step
        if pd < min_pd:
            continue
        long_lines = max(0.0, float(total) - hits)
        denominator = occupancy_of_hits + long_lines * (pd + d_e)
        e_value = hits / denominator if denominator > 0 else 0.0
        points.append(EPoint(pd=pd, e_value=e_value))
    return points


def find_best_pd(
    counts: np.ndarray,
    total: int,
    step: int = 1,
    d_e: float = 16.0,
    min_pd: int = 1,
    default_pd: int | None = None,
) -> int:
    """The protecting distance maximizing E(d_p).

    Falls back to ``default_pd`` (or the largest candidate) when the RDD is
    empty — e.g. right after a counter reset. A zero-length counter array
    yields no candidates at all; that degenerate case also falls back to
    ``default_pd`` when one is given, and raises otherwise.
    """
    points = evaluate_e_curve(counts, total, step=step, d_e=d_e, min_pd=min_pd)
    if not points:
        if default_pd is not None:
            return default_pd
        raise ValueError("no candidate protecting distances (empty curve)")
    if total <= 0 or all(point.e_value == 0.0 for point in points):
        return default_pd if default_pd is not None else points[-1].pd
    best = max(points, key=lambda point: point.e_value)
    return best.pd


def find_peaks(
    counts: np.ndarray,
    total: int,
    step: int = 1,
    d_e: float = 16.0,
    min_pd: int = 1,
    max_peaks: int = 3,
) -> list[EPoint]:
    """Local maxima of the E(d_p) curve, strongest first.

    Sec. 4's partitioning heuristic searches near each thread's top peaks;
    the paper finds three peaks per thread sufficient. The global maximum
    is always included even on monotone curves.
    """
    points = evaluate_e_curve(counts, total, step=step, d_e=d_e, min_pd=min_pd)
    if not points:
        return []
    peaks: list[EPoint] = []
    for position, point in enumerate(points):
        left = points[position - 1].e_value if position > 0 else -1.0
        right = (
            points[position + 1].e_value if position + 1 < len(points) else -1.0
        )
        if point.e_value >= left and point.e_value > right:
            peaks.append(point)
    if not peaks:
        peaks = [max(points, key=lambda p: p.e_value)]
    peaks.sort(key=lambda p: -p.e_value)
    return peaks[:max_peaks]


def predicted_hit_rate(
    counts: np.ndarray,
    total: int,
    ways: int,
    pd: int,
    step: int = 1,
    d_e: float | None = None,
) -> float:
    """The model's absolute hit-rate estimate ``min(1, W * E(d_p))``.

    ``E`` is the paper's hit rate scaled by the associativity ``W``
    (Sec. 2.4: each of the W lines of a set contributes E hits per set
    access), so ``W * E(d_p)`` is the predicted hit rate, clamped to 1.
    ``d_e`` defaults to ``ways`` — the paper's experimentally chosen
    eviction lag. Monotone non-decreasing in ``ways`` at fixed
    ``(counts, pd)``: writing ``h(W) = W*A / (B + C*(pd + W))``, its
    derivative is ``A*(B + C*pd) / (...)^2 >= 0``, and clamping
    preserves monotonicity. Returns 0.0 for an empty or all-long RDD.
    """
    if ways < 1:
        raise ValueError(f"ways must be >= 1, got {ways}")
    points = evaluate_e_curve(counts, total, step=step,
                              d_e=float(ways if d_e is None else d_e),
                              min_pd=1)
    if not points or total <= 0:
        return 0.0
    at_pd = next((p for p in points if p.pd >= pd), points[-1])
    return min(1.0, ways * at_pd.e_value)


class HitRateModel:
    """Convenience wrapper binding a counter array to the E(d_p) search."""

    def __init__(
        self,
        counters: RDCounterArray,
        associativity: int = 16,
        d_e: float | None = None,
    ) -> None:
        self.counters = counters
        self.associativity = associativity
        self.d_e = float(d_e if d_e is not None else associativity)

    def curve(self, min_pd: int | None = None) -> list[EPoint]:
        """E(d_p) at every bin boundary of the bound counter array."""
        counts, total = self.counters.snapshot()
        return evaluate_e_curve(
            counts,
            total,
            step=self.counters.step,
            d_e=self.d_e,
            min_pd=min_pd if min_pd is not None else self.counters.step,
        )

    def best_pd(self, min_pd: int | None = None, default_pd: int | None = None) -> int:
        """The PD maximizing E over the bound counter array."""
        counts, total = self.counters.snapshot()
        return find_best_pd(
            counts,
            total,
            step=self.counters.step,
            d_e=self.d_e,
            min_pd=min_pd if min_pd is not None else self.counters.step,
            default_pd=default_pd,
        )

    def peaks(self, max_peaks: int = 3) -> list[EPoint]:
        """Top local maxima of E (for the multi-core heuristic)."""
        counts, total = self.counters.snapshot()
        return find_peaks(
            counts,
            total,
            step=self.counters.step,
            d_e=self.d_e,
            min_pd=self.counters.step,
            max_peaks=max_peaks,
        )


__all__ = [
    "EPoint",
    "HitRateModel",
    "evaluate_e_curve",
    "find_best_pd",
    "find_peaks",
    "predicted_hit_rate",
]
