"""Dynamic PD recomputation: sampler + counter array + periodic search.

The paper recomputes the PD every 512K LLC accesses (Sec. 3) and resets the
RD counters so each interval sees a fresh RDD — this is what lets PDP adapt
to program phases (Sec. 6.4, Fig. 11). The engine also records the PD
history, which reproduces Fig. 11c directly.
"""

from __future__ import annotations

from repro.core.hit_rate_model import HitRateModel
from repro.core.rdd import RDCounterArray
from repro.core.sampler import RDSampler


class PDEngine:
    """Drives the dynamic protecting distance for one cache.

    Args:
        num_sets: sets of the monitored cache.
        associativity: W, used both as d_e and the minimum PD.
        d_max: maximum protecting distance.
        step: S_c counter granularity.
        recompute_interval: LLC accesses between PD recomputations
            (512K in the paper; scale down for short traces).
        sampler_mode: "real" (32 sets x 32-entry FIFO) or "full" (exact).
        initial_pd: PD used before the first recomputation.
    """

    def __init__(
        self,
        num_sets: int,
        associativity: int = 16,
        d_max: int = 256,
        step: int = 4,
        recompute_interval: int = 4096,
        sampler_mode: str = "real",
        initial_pd: int | None = None,
    ) -> None:
        if sampler_mode not in ("real", "full"):
            raise ValueError(f"sampler_mode must be 'real' or 'full', got {sampler_mode!r}")
        self.associativity = associativity
        self.d_max = d_max
        self.recompute_interval = recompute_interval
        self.counters = RDCounterArray(d_max=d_max, step=step)
        factory = RDSampler.real if sampler_mode == "real" else RDSampler.full
        self.sampler = factory(
            num_sets,
            d_max=d_max,
            on_distance=self.counters.record_distance,
            on_access=self.counters.record_access,
        )
        self.model = HitRateModel(self.counters, associativity=associativity)
        self.current_pd = initial_pd if initial_pd is not None else associativity
        self.accesses_since_recompute = 0
        self.recompute_count = 0
        #: (access_number, pd) pairs — the Fig. 11c series.
        self.pd_history: list[tuple[int, int]] = [(0, self.current_pd)]
        self._total_accesses = 0

    def observe(self, set_index: int, address: int) -> None:
        """Feed one LLC access; may trigger a PD recomputation."""
        self.sampler.observe(set_index, address)
        self._total_accesses += 1
        self.accesses_since_recompute += 1
        if self.accesses_since_recompute >= self.recompute_interval:
            self.recompute()

    def recompute(self) -> int:
        """Run the E(d_p) search, update the PD, reset the counters."""
        self.current_pd = self.model.best_pd(
            min_pd=min(self.associativity, self.d_max),
            default_pd=self.current_pd,
        )
        self.recompute_count += 1
        self.pd_history.append((self._total_accesses, self.current_pd))
        self.counters.reset()
        self.accesses_since_recompute = 0
        return self.current_pd


__all__ = ["PDEngine"]
