"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list-benchmarks`` — the available SPEC-like workload profiles.
- ``list-policies`` — registered replacement policies.
- ``run`` — run one benchmark under one policy and print statistics.
- ``rdd`` — print a benchmark's reuse-distance distribution.
- ``sweep`` — static-PD sweep (the Fig. 4 per-benchmark curve).
- ``explore`` — analytical design-space explorer: predict hit rates for
  thousands of (sets, ways, d_p) points from one profiling pass (see
  ``docs/EXPLORER.md``).
- ``experiment`` — run one of the paper's figure/table drivers.
- ``overhead`` — the hardware overhead report.
- ``obs summarize`` — rebuild a result table from a manifest directory.
- ``obs report`` — render the self-contained markdown/HTML observatory
  report (tables + window sparklines) from manifests alone.
- ``obs bench`` — in-process micro benchmark emitting a canonical
  schema-versioned BENCH record (see :mod:`repro.obs.bench`).
- ``trace convert`` / ``trace info`` — stream-convert and inspect
  external trace files (native ``.trz``, ChampSim-style binary, CSV).
- ``serve`` — run the always-on resumable sweep daemon on a service
  root directory (unix socket + job store + per-namespace manifests).
- ``submit`` / ``jobs`` / ``watch`` — client trio for the daemon:
  submit a sweep spec, list jobs, stream a job's progress events
  (``submit --kind predict`` runs the explorer as a cheap first pass
  and auto-submits top-k simulation follow-ups). See
  ``docs/SERVICE.md``.

``run`` and ``sweep`` accept ``--trace-file`` to simulate an external
trace (streamed in chunks, so file size is unbounded by RAM) instead of
a generated ``--benchmark`` workload.

Observability: ``run``, ``sweep`` and ``experiment`` accept
``--manifest-dir`` (defaulting to ``$REPRO_MANIFEST_DIR`` when set) to
write per-run provenance manifests, and ``sweep`` / ``experiment``
accept ``--progress`` to stream started/finished/failed task events to
stderr. ``run --window-size N`` records per-window statistics through
:mod:`repro.obs.timeseries`. See :mod:`repro.obs`.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import common as experiment_common


def _manifest_dir(args):
    """The run's manifest directory: --manifest-dir, else the
    $REPRO_MANIFEST_DIR environment default, else None (disabled)."""
    from repro.obs.manifest import resolve_manifest_dir

    path = resolve_manifest_dir(getattr(args, "manifest_dir", None))
    return str(path) if path is not None else None


def _progress_callback(args, label: str):
    """A stderr progress printer when --progress was given, else None."""
    if not getattr(args, "progress", False):
        return None
    from repro.obs.progress import console_reporter

    return console_reporter(label=label)


def _cmd_list_benchmarks(args) -> int:
    from repro.workloads.spec_like import SPEC_LIKE_PROFILES

    for name, profile in sorted(SPEC_LIKE_PROFILES.items()):
        kinds = []
        for component in profile.components:
            if component.is_infinite:
                kinds.append(f"stream({component.weight:g})")
            else:
                kinds.append(f"[{component.low},{component.high}]({component.weight:g})")
        pc = "pc-informative" if profile.pc_informative else "pc-misleading"
        print(f"{name:18s} {pc:15s} {' + '.join(kinds)}")
    return 0


def _cmd_list_policies(args) -> int:
    from repro.policies.base import registered_policies

    for name in registered_policies():
        print(name)
    return 0


def _make_policy(name: str, config, trace):
    """Instantiate a policy by CLI name, wiring experiment defaults."""
    from repro.core.classified_pdp import ClassifiedPDPPolicy
    from repro.core.pdp_policy import PDPPolicy
    from repro.policies.base import make_policy
    from repro.policies.belady import BeladyPolicy

    if name == "pdp":
        return PDPPolicy(recompute_interval=config.recompute_interval)
    if name == "pdp-nb":
        return PDPPolicy(recompute_interval=config.recompute_interval, bypass=False)
    if name == "pdp-classified":
        return ClassifiedPDPPolicy(recompute_interval=config.recompute_interval)
    if name == "belady":
        return BeladyPolicy(trace.addresses, bypass=True)
    return make_policy(name)


def _workload_source(args, config):
    """Resolve the simulated workload: a generated benchmark trace, or an
    external trace file opened as a chunked stream (``--trace-file``)."""
    if getattr(args, "trace_file", None) is not None:
        if getattr(args, "benchmark", None) is not None:
            raise SystemExit("--benchmark and --trace-file are mutually exclusive")
        from repro.traces.formats import open_trace

        return open_trace(
            args.trace_file,
            format=args.trace_format,
            chunk_size=args.chunk_size,
        )
    if getattr(args, "benchmark", None) is None:
        raise SystemExit("one of --benchmark or --trace-file is required")
    from repro.workloads.spec_like import make_benchmark_trace

    return make_benchmark_trace(
        args.benchmark,
        length=args.length,
        num_sets=config.num_sets,
        seed=getattr(args, "seed", None),
        cache_dir=args.trace_cache_dir,
    )


def _cmd_run(args) -> int:
    from repro.sim.single_core import run_llc
    from repro.traces.stream import TraceStream

    config = experiment_common.experiment_config()
    trace = _workload_source(args, config)
    if args.policy == "belady" and isinstance(trace, TraceStream):
        print(
            "belady needs the full future address stream in memory and "
            "cannot run on a chunked --trace-file; convert the file and "
            "use a generated --benchmark, or pick another policy",
            file=sys.stderr,
        )
        return 2
    policy = _make_policy(args.policy, config, trace)
    result = run_llc(
        trace,
        policy,
        config.llc,
        timing=experiment_common.TIMING,
        engine=args.engine,
        manifest_dir=_manifest_dir(args),
        run_label=args.policy,
        run_meta={"seed": args.seed} if args.seed is not None else None,
        window_size=args.window_size,
    )
    print(f"workload  : {result.name} ({result.accesses} accesses)")
    print(f"policy    : {args.policy}")
    print(f"hit rate  : {result.hit_rate:.4f}")
    print(f"MPKI      : {result.mpki:.2f}")
    print(f"IPC       : {result.ipc:.3f}")
    print(f"bypass    : {result.bypass_fraction:.1%}")
    if "final_pd" in result.extra:
        print(f"final PD  : {result.extra['final_pd']}")
    payload = result.extra.get("timeseries")
    if payload:
        from repro.obs.bench import sparkline
        from repro.obs.timeseries import windows_from_payload

        windows = windows_from_payload(payload)
        rates = [w.hit_rate for w in windows]
        print(
            f"windows   : {payload['windows_closed']} of "
            f"{payload['window_size']} accesses"
            + (f" ({payload['windows_dropped']} dropped)"
               if payload["windows_dropped"] else "")
        )
        if rates:
            print(f"hit rate/w: {sparkline(rates)}")
        pds = [w.pd for w in windows if w.pd is not None]
        if pds:
            print(f"PD/window : {sparkline([float(p) for p in pds])}")
    return 0


def _cmd_rdd(args) -> int:
    from repro.traces.analysis import fraction_below, reuse_distance_distribution
    from repro.workloads.spec_like import make_benchmark_trace

    config = experiment_common.experiment_config()
    trace = make_benchmark_trace(
        args.benchmark, length=args.length, num_sets=config.num_sets
    )
    counts, long_count, total = reuse_distance_distribution(
        trace, num_sets=config.num_sets, d_max=config.d_max
    )
    below = fraction_below(trace, config.num_sets, config.d_max)
    print(f"# RDD of {args.benchmark}: {total} accesses, "
          f"{int(counts.sum())} reuses <= d_max ({below:.1%} of reuses)")
    bucket = max(1, config.d_max // args.bins)
    for start in range(1, config.d_max + 1, bucket):
        count = int(counts[start : start + bucket].sum())
        bar = "#" * min(60, count * 60 // max(1, int(counts.max()) * bucket))
        print(f"{start:4d}-{min(start + bucket - 1, config.d_max):4d} {count:8d} {bar}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.sim.runner import sweep_static_pd

    config = experiment_common.experiment_config()
    trace = _workload_source(args, config)
    grid = list(range(16, config.d_max + 1, args.step))
    # --workers 0 = auto (env REPRO_MAX_WORKERS, else cpu count).
    max_workers = None if args.workers == 0 else args.workers
    results = sweep_static_pd(
        trace,
        config.llc,
        grid,
        bypass=not args.no_bypass,
        max_workers=max_workers,
        manifest_dir=_manifest_dir(args),
        on_event=_progress_callback(args, "sweep"),
    )
    best = min(grid, key=lambda pd: results[pd].misses)
    source = args.benchmark if args.benchmark is not None else args.trace_file
    print(f"# static PD sweep on {source} "
          f"({'SPDP-NB' if args.no_bypass else 'SPDP-B'})")
    for pd in grid:
        marker = "  <= best" if pd == best else ""
        print(f"PD {pd:4d}: misses {results[pd].misses:8d} "
              f"hitrate {results[pd].hit_rate:.4f}{marker}")
    return 0


_EXPERIMENTS = {
    "fig1": ("fig01_rdd", "run_fig1", "format_report"),
    "fig2": ("fig02_epsilon", "run_fig2", "format_report"),
    "fig4": ("fig04_static_pdp", "run_fig4", "format_report"),
    "fig6": ("fig06_model", "run_fig6", "format_report"),
    "fig9": ("fig09_params", "run_fig9", "format_report"),
    "fig10": ("fig10_single_core", "run_fig10", "format_report"),
    "fig11": ("fig11_phases", "run_fig11", "format_report"),
}


def _cmd_experiment(args) -> int:
    import importlib

    if args.name == "fig5":
        from repro.experiments import fig05_occupancy

        print(
            fig05_occupancy.format_report(
                fig05_occupancy.run_fig5a(fast=args.fast),
                fig05_occupancy.run_fig5b(fast=args.fast),
            )
        )
        return 0
    if args.name == "fig12":
        from repro.experiments import fig12_partitioning

        # --workers 0 = auto (env REPRO_MAX_WORKERS, else cpu count);
        # unset keeps fig12's historical serial default.
        if args.workers is None:
            max_workers = 1
        else:
            max_workers = None if args.workers == 0 else args.workers
        results = {
            cores: fig12_partitioning.run_fig12(
                cores,
                num_mixes=args.mixes,
                engine=args.engine,
                max_workers=max_workers,
                manifest_dir=_manifest_dir(args),
                on_event=_progress_callback(args, f"fig12-{cores}core"),
            )
            for cores in (4, 16)
        }
        print(fig12_partitioning.format_report(results))
        return 0
    if args.name in ("fig4", "fig10"):
        # These drivers take the full observability contract (per-cell
        # manifests + progress events) and a worker count (unset / 0 =
        # auto, their historical default).
        module_name, run_name, fmt_name = _EXPERIMENTS[args.name]
        module = importlib.import_module(f"repro.experiments.{module_name}")
        results = getattr(module, run_name)(
            fast=args.fast,
            max_workers=None if args.workers in (None, 0) else args.workers,
            manifest_dir=_manifest_dir(args),
            on_event=_progress_callback(args, args.name),
        )
        print(getattr(module, fmt_name)(results))
        return 0
    if args.name == "prefetch":
        from repro.experiments import prefetch_study

        print(prefetch_study.format_report(prefetch_study.run_prefetch_study(args.fast)))
        return 0
    if args.name == "objectstore":
        return _cmd_experiment_objectstore(args)
    try:
        module_name, run_name, fmt_name = _EXPERIMENTS[args.name]
    except KeyError:
        known = ", ".join(
            sorted([*_EXPERIMENTS, "fig5", "fig12", "objectstore", "prefetch"])
        )
        print(f"unknown experiment {args.name!r}; known: {known}", file=sys.stderr)
        return 2
    module = importlib.import_module(f"repro.experiments.{module_name}")
    results = getattr(module, run_name)(fast=args.fast)
    print(getattr(module, fmt_name)(results))
    return 0


def _cmd_experiment_objectstore(args) -> int:
    """The software-cache scenario: policy comparison over an object
    trace (generated or --trace-file), with windowed hit/byte-hit
    series in the manifests (see repro.experiments.objectstore)."""
    from repro.experiments import objectstore as objectstore_experiment
    from repro.swcache.policies import SOFTWARE_POLICIES

    stream = None
    if args.trace_file:
        from repro.traces.formats import open_trace

        stream = open_trace(args.trace_file)
    policies = tuple(p.strip() for p in args.policies.split(",") if p.strip())
    unknown = [p for p in policies if p not in SOFTWARE_POLICIES]
    if unknown:
        known = ", ".join(sorted(SOFTWARE_POLICIES))
        print(
            f"unknown software-cache policy {unknown[0]!r}; known: {known}",
            file=sys.stderr,
        )
        return 2
    rows = objectstore_experiment.run_objectstore(
        trace=stream,
        policies=policies,
        accesses=args.accesses,
        capacity_bytes=int(args.capacity_mb * 1024 * 1024),
        ttl=args.ttl_ms,
        fast=args.fast,
        seed=args.seed,
        window_size=args.window_size,
        manifest_dir=_manifest_dir(args),
        on_event=_progress_callback(args, "objectstore"),
    )
    print(objectstore_experiment.format_report(rows))
    return 0


def _cmd_explore(args) -> int:
    from repro.explore import explore, render_frontier

    config = experiment_common.experiment_config()
    source = _workload_source(args, config)
    sets = tuple(int(s) for s in args.sets.split(",") if s.strip())
    ways = tuple(int(w) for w in args.ways.split(",") if w.strip())
    try:
        result = explore(
            source,
            sets=sets,
            ways=ways,
            pd_max=args.pd_max,
            pd_step=args.pd_step,
            d_max=args.d_max,
            manifest_dir=_manifest_dir(args),
            run_label=args.label,
        )
    except ValueError as exc:
        print(f"explore failed: {exc}", file=sys.stderr)
        return 2
    print(render_frontier(result, top=args.top))
    if result.manifest_path:
        print(f"\n[explore manifest: {result.manifest_path}]", file=sys.stderr)
    return 0


def _cmd_overhead(args) -> int:
    from repro.experiments import overhead_report

    print(overhead_report.format_report(overhead_report.run_overhead()))
    return 0


def _cmd_obs(args) -> int:
    from repro.obs.manifest import scan_manifests, summarize_manifests

    report = scan_manifests(args.directory)
    if not report.manifests and not report.skipped:
        print(f"no manifests found in {args.directory}", file=sys.stderr)
        return 1
    print(summarize_manifests(report.manifests, skipped=report.skipped))
    return 0


def _cmd_obs_report(args) -> int:
    from pathlib import Path

    from repro.obs.bench import render_report

    text = render_report(args.directory, html=args.html)
    if args.out:
        Path(args.out).write_text(text)
        print(f"[written to {args.out}]", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_obs_bench(args) -> int:
    import json
    from pathlib import Path

    from repro.obs.bench import append_trajectory, run_micro_bench

    engines = tuple(
        engine.strip() for engine in args.engines.split(",") if engine.strip()
    )
    try:
        record = run_micro_bench(
            length=args.length, repeats=args.repeats, engines=engines
        )
    except ValueError as exc:
        print(f"obs bench failed: {exc}", file=sys.stderr)
        return 1
    measured = ", ".join(record["raw"]["engines"])
    print(f"[measured engines: {measured}]", file=sys.stderr)
    print(json.dumps(record, indent=2, sort_keys=True))
    if args.out:
        Path(args.out).write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n"
        )
        print(f"[written to {args.out}]", file=sys.stderr)
    if args.trajectory:
        append_trajectory(record, args.trajectory)
        print(f"[appended to {args.trajectory}]", file=sys.stderr)
    return 0


def _service_root(args) -> str:
    """The sweep service root: --root, else $REPRO_SERVICE_ROOT."""
    import os

    root = args.root if args.root is not None else os.environ.get("REPRO_SERVICE_ROOT")
    if not root:
        raise SystemExit("--root (or $REPRO_SERVICE_ROOT) is required")
    return root


def _cmd_serve(args) -> int:
    from repro.service.protocol import service_socket
    from repro.service.server import serve

    root = _service_root(args)
    print(f"[repro serve] root={root} socket={service_socket(root)}", file=sys.stderr)
    serve(root)
    return 0


def _spec_from_args(args):
    """Build a SweepSpec from ``repro submit`` options (or --spec-file)."""
    import json

    from repro.service.jobs import SweepSpec

    if args.spec_file is not None:
        with open(args.spec_file, encoding="utf-8") as fh:
            return SweepSpec.from_dict(json.load(fh))
    policies = []
    for entry in args.policy or []:
        if "=" in entry:
            key, _, rest = entry.partition("=")
            name, _, kwargs_json = rest.partition(":")
            policies.append(
                {
                    "key": key,
                    "name": name,
                    "kwargs": json.loads(kwargs_json) if kwargs_json else {},
                }
            )
        else:
            policies.append(entry)
    mixes = {}
    for entry in args.mix or []:
        key, _, names = entry.partition("=")
        mixes[key] = [name for name in names.split(",") if name]
    if args.kind == "predict":
        kind = "predict"
    else:
        kind = "mix_matrix" if mixes else "matrix"
    return SweepSpec(
        kind=kind,
        namespace=args.namespace,
        benchmark=args.benchmark,
        trace_file=args.trace_file,
        trace_format=args.trace_format,
        length=args.length,
        seed=args.seed,
        policies=policies,
        mixes=mixes,
        num_sets=args.num_sets,
        ways=args.ways,
        line_size=args.line_size,
        engine=args.engine,
        workers=args.workers,
        window_size=args.window_size,
        match_git_sha=args.match_git_sha,
        force=args.force,
        explore_sets=_parse_int_list(args.explore_sets),
        explore_ways=_parse_int_list(args.explore_ways),
        top_k=args.top_k,
    )


def _parse_int_list(text: str | None) -> list:
    """``"16,32,64"`` → [16, 32, 64]; None/empty → []."""
    if not text:
        return []
    return [int(token) for token in text.split(",") if token.strip()]


def _print_watch_stream(client, job_id: str, replay: bool) -> int:
    """Stream one job's events to stderr; returns a CLI exit code."""
    final = None
    for response in client.watch(job_id, replay=replay):
        if "done" in response:
            final = response["done"]
            break
        event = response.get("event", {})
        kind = event.get("kind")
        if kind == "job-state":
            suffix = f" ({event['error']})" if event.get("error") else ""
            print(f"[{job_id}] state={event.get('state')}{suffix}", file=sys.stderr)
        elif kind == "followup":
            policies = ",".join(
                p["key"] if isinstance(p, dict) else str(p)
                for p in event.get("policies") or []
            )
            print(
                f"[{job_id}] followup {event.get('job_id')} "
                f"({event.get('num_sets')}x{event.get('ways')} {policies})",
                file=sys.stderr,
            )
        elif kind == "followup-error":
            print(
                f"[{job_id}] followup-error {event.get('error')}",
                file=sys.stderr,
            )
        else:
            suffix = f" ({event['error']})" if event.get("error") else ""
            print(
                f"[{job_id}] {event.get('done')}/{event.get('total')} "
                f"{kind} {event.get('key')}{suffix}",
                file=sys.stderr,
            )
    if final is None:
        return 1
    print(
        f"{final['job_id']} {final['state']}: total {final['total_cells']} "
        f"skipped {final['skipped_cells']} ran {final['ran_cells']} "
        f"failed {final['failed_cells']}"
    )
    return 0 if final["state"] == "done" else 1


def _cmd_submit(args) -> int:
    from repro.service.jobs import SpecError
    from repro.service.protocol import ProtocolError, ServiceClient, service_socket

    try:
        spec = _spec_from_args(args)
        spec.validate()
    except SpecError as exc:
        print(f"invalid spec: {exc}", file=sys.stderr)
        return 2
    try:
        with ServiceClient(service_socket(_service_root(args))) as client:
            job = client.submit(spec.to_dict())
            print(job["job_id"])
            if args.watch:
                return _print_watch_stream(client, job["job_id"], replay=True)
    except (ProtocolError, OSError) as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_jobs(args) -> int:
    from repro.service.protocol import ProtocolError, ServiceClient, service_socket

    try:
        with ServiceClient(service_socket(_service_root(args))) as client:
            jobs = client.jobs()
    except (ProtocolError, OSError) as exc:
        print(f"jobs failed: {exc}", file=sys.stderr)
        return 1
    if not jobs:
        print("no jobs", file=sys.stderr)
        return 0
    print(f"{'JOB':32s} {'STATE':9s} {'NS':10s} {'KIND':10s} "
          f"{'CELLS':>5s} {'SKIP':>5s} {'RAN':>5s} "
          f"{'WAIT':>8s} {'RUN':>8s} SUBMITTED")
    for job in jobs:
        spec = job.get("spec", {})
        print(
            f"{job['job_id']:32s} {job['state']:9s} "
            f"{spec.get('namespace', '?'):10s} {spec.get('kind', '?'):10s} "
            f"{job['total_cells']:5d} {job['skipped_cells']:5d} "
            f"{job['ran_cells']:5d} "
            f"{_format_latency(job.get('queue_wait_s')):>8s} "
            f"{_format_latency(job.get('runtime_s')):>8s} "
            f"{job['submitted_at']}"
        )
    return 0


def _format_latency(seconds) -> str:
    """Human-width seconds column: '-' when unknown, '12.3s' otherwise."""
    if seconds is None:
        return "-"
    return f"{seconds:.1f}s"


def _cmd_watch(args) -> int:
    from repro.service.protocol import ProtocolError, ServiceClient, service_socket

    try:
        with ServiceClient(service_socket(_service_root(args))) as client:
            return _print_watch_stream(client, args.job_id, replay=not args.no_replay)
    except (ProtocolError, OSError) as exc:
        print(f"watch failed: {exc}", file=sys.stderr)
        return 1


def _render_stats(stats: dict) -> str:
    """One dashboard frame from a ``stats`` verb payload.

    Queue depth, jobs by state, the running job/cell, resume-skip
    counter, then a percentile table for every latency histogram the
    daemon has observed so far.
    """
    lines = ["repro top — sweep service"]
    lines.append(f"  queue depth : {stats.get('queue_depth', 0)}")
    by_state = stats.get("jobs_by_state", {})
    states = " ".join(
        f"{state}={count}" for state, count in sorted(by_state.items())
    ) or "(none)"
    lines.append(f"  jobs        : {states}")
    running = stats.get("running") or "-"
    cell = stats.get("running_cell") or "-"
    lines.append(f"  running     : {running}  cell={cell}")
    lines.append(f"  skipped     : {stats.get('skipped_cells_total', 0)} cells resumed from manifests")
    percentiles = stats.get("percentiles", {})
    if percentiles:
        lines.append("")
        lines.append(f"  {'histogram':28s} {'count':>7s} {'mean':>9s} "
                     f"{'p50':>9s} {'p90':>9s} {'p99':>9s}")
        for name in sorted(percentiles):
            row = percentiles[name]

            def _cell(value) -> str:
                return "-" if value is None else f"{value:.4f}s"

            lines.append(
                f"  {name:28s} {row.get('count', 0):7d} "
                f"{_cell(row.get('mean')):>9s} {_cell(row.get('p50')):>9s} "
                f"{_cell(row.get('p90')):>9s} {_cell(row.get('p99')):>9s}"
            )
    else:
        lines.append("  (no latency histograms yet)")
    return "\n".join(lines)


def _cmd_top(args) -> int:
    import time

    from repro.service.protocol import ProtocolError, ServiceClient, service_socket

    socket_path = service_socket(_service_root(args))
    while True:
        try:
            with ServiceClient(socket_path) as client:
                stats = client.stats()
        except (ProtocolError, OSError) as exc:
            print(f"top failed: {exc}", file=sys.stderr)
            return 1
        if not args.once:
            # Clear screen + home cursor so each frame overwrites the last.
            print("\x1b[2J\x1b[H", end="")
        print(_render_stats(stats))
        if args.once:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _cmd_obs_scrape(args) -> int:
    import json
    from pathlib import Path

    from repro.obs.metrics import render_prometheus
    from repro.service.protocol import ProtocolError, ServiceClient, service_socket

    try:
        with ServiceClient(service_socket(_service_root(args))) as client:
            stats = client.stats()
    except (ProtocolError, OSError) as exc:
        print(f"scrape failed: {exc}", file=sys.stderr)
        return 1
    if args.prom:
        text = render_prometheus(stats.get("metrics", {}))
    else:
        text = json.dumps(stats.get("metrics", {}), indent=2, sort_keys=True) + "\n"
    if args.out:
        Path(args.out).write_text(text)
        print(f"[written to {args.out}]", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _cmd_obs_trace(args) -> int:
    from pathlib import Path

    from repro.obs.spans import SPANS_FILENAME, read_spans, render_span_tree

    path = Path(args.directory)
    if path.is_dir():
        path = path / SPANS_FILENAME
    if not path.exists():
        print(f"no span log at {path}", file=sys.stderr)
        return 1
    spans = read_spans(path)
    if not spans:
        print(f"span log {path} is empty", file=sys.stderr)
        return 1
    print(render_span_tree(spans))
    return 0


def _cmd_trace_convert(args) -> int:
    from repro.traces.formats import TraceFormatError, convert_trace

    try:
        copied = convert_trace(
            args.src,
            args.dst,
            src_format=args.from_format,
            dst_format=args.to_format,
            chunk_size=args.chunk_size,
            name=args.name,
            instructions_per_access=args.instructions_per_access,
        )
    except (TraceFormatError, FileNotFoundError) as exc:
        print(f"trace convert failed: {exc}", file=sys.stderr)
        return 1
    print(f"wrote {copied} accesses to {args.dst}")
    return 0


def _cmd_trace_info(args) -> int:
    import json

    from repro.traces.formats import TraceFormatError, trace_info

    try:
        info = trace_info(
            args.path, format=args.format, chunk_size=args.chunk_size
        )
    except (TraceFormatError, FileNotFoundError) as exc:
        print(f"trace info failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    threads = info["threads"]
    span = (
        f"[{info['min_address']:#x}, {info['max_address']:#x}]"
        if info["min_address"] is not None
        else "(empty)"
    )
    print(f"path        : {info['path']}")
    print(f"format      : {info['format']}")
    print(f"name        : {info['name']}")
    print(f"accesses    : {info['accesses']}")
    print(f"insns/access: {info['instructions_per_access']:g}")
    print(f"threads     : {len(threads)} ({threads})")
    print(f"addresses   : {span}")
    print(f"fingerprint : {info['fingerprint']}")
    return 0


def _add_trace_file(parser: argparse.ArgumentParser) -> None:
    """The external-trace-input options shared by ``run`` and ``sweep``."""
    from repro.traces.formats import format_names
    from repro.traces.stream import DEFAULT_CHUNK_SIZE

    parser.add_argument(
        "--trace-file",
        default=None,
        help="simulate this on-disk trace (streamed in chunks) instead of "
        "a generated --benchmark workload",
    )
    parser.add_argument(
        "--trace-format",
        choices=format_names(),
        default=None,
        help="format of --trace-file (default: infer from suffix/content)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK_SIZE,
        help="accesses per streamed chunk when reading --trace-file",
    )


def _add_manifest_dir(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--manifest-dir",
        default=None,
        help="write per-run provenance manifests into this directory "
        "(default: $REPRO_MANIFEST_DIR, unset = disabled)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PDP (MICRO 2012) reproduction — cache policy experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-benchmarks").set_defaults(func=_cmd_list_benchmarks)
    sub.add_parser("list-policies").set_defaults(func=_cmd_list_policies)

    run = sub.add_parser("run", help="run one benchmark under one policy")
    run.add_argument("--benchmark", default=None)
    run.add_argument("--policy", default="pdp")
    run.add_argument("--length", type=int, default=40_000)
    run.add_argument("--seed", type=int, default=None)
    _add_trace_file(run)
    run.add_argument(
        "--engine",
        choices=("vector", "fast", "reference"),
        default="vector",
        help="simulation engine (vector = columnar set-batched kernels, "
        "fast = batched per-access kernel, reference = original "
        "per-access loop)",
    )
    run.add_argument(
        "--trace-cache-dir",
        default=None,
        help="directory for the on-disk trace cache "
        "(default: $REPRO_TRACE_CACHE_DIR, unset = no caching)",
    )
    run.add_argument(
        "--window-size",
        type=int,
        default=None,
        help="record per-window statistics every N accesses (printed as "
        "sparklines and persisted into the run manifest)",
    )
    _add_manifest_dir(run)
    run.set_defaults(func=_cmd_run)

    rdd = sub.add_parser("rdd", help="print a benchmark's RDD")
    rdd.add_argument("--benchmark", required=True)
    rdd.add_argument("--length", type=int, default=40_000)
    rdd.add_argument("--bins", type=int, default=16)
    rdd.set_defaults(func=_cmd_rdd)

    sweep = sub.add_parser("sweep", help="static protecting-distance sweep")
    sweep.add_argument("--benchmark", default=None)
    sweep.add_argument("--length", type=int, default=40_000)
    sweep.add_argument("--step", type=int, default=16)
    sweep.add_argument("--no-bypass", action="store_true")
    _add_trace_file(sweep)
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="sweep worker processes (1 = serial, 0 = auto via "
        "$REPRO_MAX_WORKERS or CPU count)",
    )
    sweep.add_argument(
        "--trace-cache-dir",
        default=None,
        help="directory for the on-disk trace cache "
        "(default: $REPRO_TRACE_CACHE_DIR, unset = no caching)",
    )
    _add_manifest_dir(sweep)
    sweep.add_argument(
        "--progress",
        action="store_true",
        help="print per-task progress events (with ETA) to stderr",
    )
    sweep.set_defaults(func=_cmd_sweep)

    experiment = sub.add_parser("experiment", help="run a paper figure driver")
    experiment.add_argument("name")
    experiment.add_argument("--fast", action="store_true")
    experiment.add_argument("--mixes", type=int, default=3)
    experiment.add_argument(
        "--engine",
        choices=("vector", "fast", "reference"),
        default="fast",
        help="simulation engine for fig12's shared-LLC runs "
        "(vector is accepted as an alias for fast there; "
        "reference = original per-access loop)",
    )
    experiment.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the parallel drivers (fig4/fig10/fig12). "
        "0 = auto via $REPRO_MAX_WORKERS or CPU count; unset keeps each "
        "driver's default (fig12 serial, fig4/fig10 auto)",
    )
    _add_manifest_dir(experiment)
    experiment.add_argument(
        "--progress",
        action="store_true",
        help="print per-cell progress events (with ETA) to stderr "
        "(fig4/fig10/fig12/objectstore)",
    )
    objstore = experiment.add_argument_group(
        "objectstore", "options for the software-cache scenario driver"
    )
    objstore.add_argument(
        "--trace-file",
        default=None,
        help="object trace to replay (any readable trace format; "
        "default: a generated Zipf workload)",
    )
    objstore.add_argument(
        "--accesses",
        type=int,
        default=1_000_000,
        help="requests in the generated workload (ignored with "
        "--trace-file)",
    )
    objstore.add_argument(
        "--capacity-mb",
        type=float,
        default=256.0,
        help="software-cache byte budget in MiB",
    )
    objstore.add_argument(
        "--ttl-ms",
        type=float,
        default=None,
        help="object TTL in trace milliseconds (default: no expiry)",
    )
    objstore.add_argument(
        "--policies",
        default="size-lru,gdsf,tinylfu,pdp",
        help="comma-separated software-cache policies to compare",
    )
    objstore.add_argument(
        "--seed", type=int, default=0, help="generated-workload RNG seed"
    )
    objstore.add_argument(
        "--window-size",
        type=int,
        default=None,
        help="accesses per recorded time-series window "
        "(default: 1/64 of the stream)",
    )
    experiment.set_defaults(func=_cmd_experiment)

    explore_p = sub.add_parser(
        "explore",
        help="analytical design-space explorer: predict hit rates for "
        "thousands of (sets, ways, d_p) points from one profiling pass",
    )
    explore_p.add_argument("--benchmark", default=None)
    explore_p.add_argument("--length", type=int, default=40_000)
    explore_p.add_argument("--seed", type=int, default=None)
    explore_p.add_argument(
        "--trace-cache-dir",
        default=None,
        help="cache generated benchmark traces in this directory",
    )
    _add_trace_file(explore_p)
    explore_p.add_argument(
        "--sets",
        default="16,32,64,128,256,512",
        help="comma-separated candidate set counts (powers of two)",
    )
    explore_p.add_argument(
        "--ways",
        default="1,2,4,8,16",
        help="comma-separated candidate associativities",
    )
    explore_p.add_argument(
        "--pd-max", type=int, default=256,
        help="largest candidate protecting distance",
    )
    explore_p.add_argument(
        "--pd-step", type=int, default=4,
        help="candidate PD grid spacing (the canonical pd_grid step)",
    )
    explore_p.add_argument(
        "--d-max", type=int, default=1024,
        help="per-set reuse-distance cap of the rescaled RDD",
    )
    explore_p.add_argument(
        "--top", type=int, default=10,
        help="number of ranked geometries to print",
    )
    explore_p.add_argument(
        "--label", default=None, help="label recorded in the explore manifest"
    )
    _add_manifest_dir(explore_p)
    explore_p.set_defaults(func=_cmd_explore)

    sub.add_parser("overhead", help="hardware overhead report").set_defaults(
        func=_cmd_overhead
    )

    from repro.traces.formats import format_names
    from repro.traces.stream import DEFAULT_CHUNK_SIZE

    trace = sub.add_parser("trace", help="trace-file utilities")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    convert = trace_sub.add_parser(
        "convert",
        help="stream-convert a trace file between formats (O(chunk) memory)",
    )
    convert.add_argument("src", help="source trace file")
    convert.add_argument("dst", help="destination trace file")
    convert.add_argument(
        "--from",
        dest="from_format",
        choices=format_names(),
        default=None,
        help="source format (default: infer from suffix/content)",
    )
    convert.add_argument(
        "--to",
        dest="to_format",
        choices=format_names(),
        default=None,
        help="destination format (default: infer from suffix, else native)",
    )
    convert.add_argument(
        "--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE,
        help="accesses copied per chunk",
    )
    convert.add_argument(
        "--name", default=None, help="workload-name metadata override"
    )
    convert.add_argument(
        "--instructions-per-access",
        type=float,
        default=None,
        help="instructions-per-access metadata override",
    )
    convert.set_defaults(func=_cmd_trace_convert)
    info = trace_sub.add_parser(
        "info", help="scan and summarize a trace file (one chunked pass)"
    )
    info.add_argument("path", help="trace file to inspect")
    info.add_argument(
        "--format",
        choices=format_names(),
        default=None,
        help="trace format (default: infer from suffix/content)",
    )
    info.add_argument(
        "--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE,
        help="accesses scanned per chunk",
    )
    info.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    info.set_defaults(func=_cmd_trace_info)

    def _add_root(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--root",
            default=None,
            help="service root directory (default: $REPRO_SERVICE_ROOT)",
        )

    serve = sub.add_parser(
        "serve", help="run the always-on resumable sweep daemon"
    )
    _add_root(serve)
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser("submit", help="submit a sweep to the daemon")
    _add_root(submit)
    submit.add_argument(
        "--spec-file",
        default=None,
        help="read the full SweepSpec from this JSON file (overrides the "
        "inline options below)",
    )
    submit.add_argument("--namespace", default="default",
                        help="manifest namespace (the multi-tenant unit)")
    submit.add_argument(
        "--kind",
        choices=("auto", "predict"),
        default="auto",
        help="job kind: auto picks matrix/mix_matrix from the options; "
        "predict runs the analytical explorer (repro.explore) instead "
        "of simulating",
    )
    submit.add_argument("--benchmark", default=None)
    submit.add_argument("--trace-file", default=None)
    submit.add_argument("--trace-format", default=None)
    submit.add_argument("--length", type=int, default=40_000)
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument(
        "--policy",
        action="append",
        help="policy to sweep; repeatable. Either a registered name "
        "('lru') or key=name[:kwargs-json] ('pdp8=pdp:{\"recompute_"
        "interval\": 8192}')",
    )
    submit.add_argument(
        "--mix",
        action="append",
        help="mix_matrix mix as key=bench1,bench2,...; repeatable "
        "(any --mix switches the job kind to mix_matrix)",
    )
    submit.add_argument("--num-sets", type=int, default=64)
    submit.add_argument("--ways", type=int, default=16)
    submit.add_argument("--line-size", type=int, default=64)
    submit.add_argument(
        "--engine", choices=("vector", "fast", "reference"), default="vector"
    )
    submit.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes per sweep (1 = serial, 0 = auto)",
    )
    submit.add_argument("--window-size", type=int, default=None)
    submit.add_argument(
        "--match-git-sha",
        action="store_true",
        help="only resume from manifests written at the current git SHA",
    )
    submit.add_argument(
        "--force",
        action="store_true",
        help="resume even over a namespace containing corrupt manifests",
    )
    submit.add_argument(
        "--explore-sets",
        default=None,
        help="predict jobs: comma-separated candidate set counts "
        "(default: the explorer's built-in grid)",
    )
    submit.add_argument(
        "--explore-ways",
        default=None,
        help="predict jobs: comma-separated candidate associativities",
    )
    submit.add_argument(
        "--top-k",
        type=int,
        default=0,
        help="predict jobs: auto-submit simulation jobs for this many "
        "predicted-frontier geometries (0 = predictions only)",
    )
    submit.add_argument(
        "--watch",
        action="store_true",
        help="stay attached and stream the job's progress events",
    )
    submit.set_defaults(func=_cmd_submit)

    jobs = sub.add_parser("jobs", help="list the daemon's jobs")
    _add_root(jobs)
    jobs.set_defaults(func=_cmd_jobs)

    watch = sub.add_parser("watch", help="stream one job's progress events")
    _add_root(watch)
    watch.add_argument("job_id")
    watch.add_argument(
        "--no-replay",
        action="store_true",
        help="skip the event history, follow live events only",
    )
    watch.set_defaults(func=_cmd_watch)

    top = sub.add_parser(
        "top", help="live dashboard of the daemon's queue and latencies"
    )
    _add_root(top)
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes (default 2)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print a single frame and exit (no screen clearing)",
    )
    top.set_defaults(func=_cmd_top)

    obs = sub.add_parser("obs", help="observability utilities")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    summarize = obs_sub.add_parser(
        "summarize",
        help="rebuild a result table from a directory of run manifests",
    )
    summarize.add_argument("directory", help="manifest directory to read")
    summarize.set_defaults(func=_cmd_obs)
    report = obs_sub.add_parser(
        "report",
        help="render a self-contained markdown/HTML report (tables + "
        "window sparklines) from a manifest directory, zero re-simulation",
    )
    report.add_argument("directory", help="manifest directory to read")
    report.add_argument(
        "--html", action="store_true", help="emit HTML instead of markdown"
    )
    report.add_argument("--out", default=None, help="write report to this path")
    report.set_defaults(func=_cmd_obs_report)
    bench = obs_sub.add_parser(
        "bench",
        help="run the in-process micro benchmark and record a canonical "
        "schema-versioned BENCH record",
    )
    bench.add_argument(
        "--length", type=int, default=50_000, help="trace length to measure"
    )
    bench.add_argument(
        "--repeats", type=int, default=1, help="best-of-N timing repeats"
    )
    bench.add_argument(
        "--engines",
        default="reference,fast,vector",
        help="comma-separated engines to measure; the record names each "
        "engine it actually ran in its throughput keys and raw report",
    )
    bench.add_argument(
        "--out", default=None, help="write the canonical record to this path"
    )
    bench.add_argument(
        "--trajectory",
        default=None,
        help="append the record to this JSONL trajectory file",
    )
    bench.set_defaults(func=_cmd_obs_bench)
    scrape = obs_sub.add_parser(
        "scrape",
        help="fetch the daemon's live metrics snapshot (JSON by default, "
        "Prometheus text exposition with --prom)",
    )
    _add_root(scrape)
    scrape.add_argument(
        "--prom",
        action="store_true",
        help="render Prometheus text exposition instead of JSON",
    )
    scrape.add_argument("--out", default=None, help="write output to this path")
    scrape.set_defaults(func=_cmd_obs_scrape)
    obs_trace = obs_sub.add_parser(
        "trace",
        help="render the span tree of a sweep directory's spans.jsonl "
        "with the critical path highlighted",
    )
    obs_trace.add_argument(
        "directory", help="sweep/manifest directory (or spans.jsonl path)"
    )
    obs_trace.set_defaults(func=_cmd_obs_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — a normal way to end.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
