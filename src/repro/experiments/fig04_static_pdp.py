"""Fig. 4 — Static PDP (SPDP-NB / SPDP-B) vs DRRIP with the best epsilon.

For every benchmark the driver finds DRRIP's best epsilon, the best static
PD without bypass (SPDP-NB) and with bypass (SPDP-B), and reports miss
reduction relative to DRRIP at the default epsilon = 1/32. The paper's
qualitative findings: a tuned epsilon helps several benchmarks; both SPDP
variants beat tuned DRRIP; SPDP-B generally beats SPDP-NB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    EXPERIMENT_GEOMETRY,
    TIMING,
    default_trace,
    format_table,
)
from repro.policies.rrip import DRRIPPolicy
from repro.sim.metrics import miss_reduction_percent
from repro.sim.runner import sweep_static_pd
from repro.sim.single_core import run_llc

EPSILONS = (1 / 4, 1 / 8, 1 / 16, 1 / 32, 1 / 64, 1 / 128)


def pd_grid(step: int = 16, d_max: int = 256, ways: int = 16) -> list[int]:
    """The static-PD sweep grid: associativity .. d_max."""
    return list(range(ways, d_max + 1, step))


@dataclass(frozen=True)
class StaticPDPResult:
    """Per-benchmark Fig. 4 bars plus the winning static PDs."""

    name: str
    drrip_best_reduction: float
    spdp_nb_reduction: float
    spdp_b_reduction: float
    best_pd_nb: int
    best_pd_b: int
    best_epsilon: float


def run_fig4(
    benchmarks: tuple[str, ...] | None = None,
    fast: bool = False,
    max_workers: int | None = None,
    manifest_dir: str | None = None,
    on_event=None,
) -> list[StaticPDPResult]:
    """Reproduce the Fig. 4 comparison over the suite.

    ``max_workers=None`` parallelizes the per-benchmark PD sweeps across
    CPUs (serial on single-core hosts); pass 1 to force serial.
    ``manifest_dir`` / ``on_event`` are forwarded to the underlying
    static-PD sweeps (per-PD manifests plus a sweep manifest per
    (benchmark, bypass-mode); progress events keyed by PD).
    """
    from repro.experiments.common import EXPERIMENT_SUITE

    benchmarks = benchmarks or EXPERIMENT_SUITE
    grid = pd_grid()
    results = []
    for name in benchmarks:
        trace = default_trace(name, fast=fast)
        baseline = run_llc(trace, DRRIPPolicy(), EXPERIMENT_GEOMETRY, timing=TIMING)
        best_eps_misses = baseline.misses
        best_epsilon = 1 / 32
        for epsilon in EPSILONS:
            if epsilon == 1 / 32:
                continue
            result = run_llc(
                trace, DRRIPPolicy(epsilon=epsilon), EXPERIMENT_GEOMETRY, timing=TIMING
            )
            if result.misses < best_eps_misses:
                best_eps_misses = result.misses
                best_epsilon = epsilon
        nb = sweep_static_pd(
            trace,
            EXPERIMENT_GEOMETRY,
            grid,
            bypass=False,
            max_workers=max_workers,
            manifest_dir=manifest_dir,
            on_event=on_event,
        )
        b = sweep_static_pd(
            trace,
            EXPERIMENT_GEOMETRY,
            grid,
            bypass=True,
            max_workers=max_workers,
            manifest_dir=manifest_dir,
            on_event=on_event,
        )
        best_nb = min(nb, key=lambda pd: nb[pd].misses)
        best_b = min(b, key=lambda pd: b[pd].misses)
        results.append(
            StaticPDPResult(
                name=name,
                drrip_best_reduction=miss_reduction_percent(
                    best_eps_misses, baseline.misses
                ),
                spdp_nb_reduction=miss_reduction_percent(
                    nb[best_nb].misses, baseline.misses
                ),
                spdp_b_reduction=miss_reduction_percent(
                    b[best_b].misses, baseline.misses
                ),
                best_pd_nb=best_nb,
                best_pd_b=best_b,
                best_epsilon=best_epsilon,
            )
        )
    return results


def format_report(results: list[StaticPDPResult]) -> str:
    rows = [
        [
            r.name,
            f"{r.drrip_best_reduction:6.1f}%",
            f"{r.spdp_nb_reduction:6.1f}%",
            f"{r.spdp_b_reduction:6.1f}%",
            str(r.best_pd_nb),
            str(r.best_pd_b),
            f"1/{int(1 / r.best_epsilon)}",
        ]
        for r in results
    ]
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    rows.append(
        [
            "AVERAGE",
            f"{mean([r.drrip_best_reduction for r in results]):6.1f}%",
            f"{mean([r.spdp_nb_reduction for r in results]):6.1f}%",
            f"{mean([r.spdp_b_reduction for r in results]):6.1f}%",
            "",
            "",
            "",
        ]
    )
    return format_table(
        [
            "benchmark",
            "DRRIP-best-eps",
            "SPDP-NB",
            "SPDP-B",
            "PD(NB)",
            "PD(B)",
            "eps*",
        ],
        rows,
        title="Fig. 4 — miss reduction vs DRRIP(eps=1/32)",
    )


__all__ = ["StaticPDPResult", "format_report", "pd_grid", "run_fig4"]
