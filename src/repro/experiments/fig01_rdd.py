"""Fig. 1 — Reuse-distance distributions of selected benchmarks.

The paper plots the RDD of 403.gcc, 436.cactusADM, 450.soplex, 464.h264ref
and 482.sphinx3, plus a bar with the fraction of reuses below d_max. This
driver rebuilds those series from the synthetic traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import EXPERIMENT_GEOMETRY, default_trace, format_table
from repro.traces.analysis import fraction_below, reuse_distance_distribution

FIG1_BENCHMARKS = (
    "403.gcc",
    "436.cactusADM",
    "450.soplex",
    "464.h264ref",
    "482.sphinx3",
)

D_MAX = 256


@dataclass(frozen=True)
class RDDResult:
    """One benchmark's RDD series plus the below-d_max bar."""

    name: str
    counts: np.ndarray
    fraction_below_dmax: float
    dominant_distance: int


def run_fig1(fast: bool = False) -> list[RDDResult]:
    """Measure the RDD of each Fig. 1 benchmark."""
    results = []
    for name in FIG1_BENCHMARKS:
        trace = default_trace(name, fast=fast)
        counts, _, _ = reuse_distance_distribution(
            trace, num_sets=EXPERIMENT_GEOMETRY.num_sets, d_max=D_MAX
        )
        below = fraction_below(trace, EXPERIMENT_GEOMETRY.num_sets, D_MAX)
        # Dominant beyond-trivial distance (ignore distance <= 2 noise).
        dominant = int(np.argmax(counts[3:])) + 3 if counts[3:].any() else 0
        results.append(
            RDDResult(
                name=name,
                counts=counts,
                fraction_below_dmax=below,
                dominant_distance=dominant,
            )
        )
    return results


def format_report(results: list[RDDResult]) -> str:
    """Paper-style summary: dominant RD peak and below-d_max fraction."""
    rows = []
    for result in results:
        total = result.counts.sum() or 1
        quartiles = []
        for lo, hi in ((1, 16), (17, 64), (65, 128), (129, 256)):
            share = result.counts[lo : hi + 1].sum() / total
            quartiles.append(f"{100 * share:4.1f}%")
        rows.append(
            [result.name, str(result.dominant_distance)]
            + quartiles
            + [f"{100 * result.fraction_below_dmax:5.1f}%"]
        )
    return format_table(
        ["benchmark", "peak RD", "1-16", "17-64", "65-128", "129-256", "<=d_max"],
        rows,
        title="Fig. 1 — reuse distance distributions (shares of reuses by RD band)",
    )


__all__ = ["FIG1_BENCHMARKS", "RDDResult", "format_report", "run_fig1"]
