"""Shared constants and helpers for the experiment drivers.

All experiments run on the scaled geometry (64 sets x 16 ways, the paper's
associativity) with SPEC-like traces positioned relative to (W = 16,
d_max = 256). ``fast=True`` halves trace lengths for quick smoke runs.
"""

from __future__ import annotations

from repro.memory.cache import CacheGeometry
from repro.memory.timing import TimingModel
from repro.sim.config import ExperimentConfig
from repro.traces.trace import Trace
from repro.workloads.spec_like import SINGLE_CORE_SUITE, make_benchmark_trace

#: Scaled LLC used by every single-core experiment.
EXPERIMENT_GEOMETRY = CacheGeometry(num_sets=64, ways=16)

#: The paper's 16-benchmark single-core suite.
EXPERIMENT_SUITE = SINGLE_CORE_SUITE

#: Default single-core trace length (accesses).
TRACE_LENGTH = 40_000

#: Dynamic-PD recomputation interval, scaled from the paper's 512K.
RECOMPUTE_INTERVAL = 4096

#: Timing model shared by all experiments.
TIMING = TimingModel()

#: Per-core sets for the shared-LLC experiments (shared size = cores x this).
MULTICORE_SETS_PER_CORE = 16


def experiment_config() -> ExperimentConfig:
    """The ExperimentConfig matching the constants above."""
    return ExperimentConfig(
        llc=EXPERIMENT_GEOMETRY,
        recompute_interval=RECOMPUTE_INTERVAL,
        trace_length=TRACE_LENGTH,
    )


def trace_length(fast: bool) -> int:
    return TRACE_LENGTH // 2 if fast else TRACE_LENGTH


def default_trace(name: str, fast: bool = False, seed: int | None = None) -> Trace:
    """The canonical trace for one benchmark at experiment geometry."""
    return make_benchmark_trace(
        name,
        length=trace_length(fast),
        num_sets=EXPERIMENT_GEOMETRY.num_sets,
        seed=seed,
    )


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Render an aligned text table for bench reports."""
    widths = [len(h) for h in headers]
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


__all__ = [
    "EXPERIMENT_GEOMETRY",
    "EXPERIMENT_SUITE",
    "MULTICORE_SETS_PER_CORE",
    "RECOMPUTE_INTERVAL",
    "TIMING",
    "TRACE_LENGTH",
    "default_trace",
    "experiment_config",
    "format_table",
    "trace_length",
]
