"""Sec. 6.5 — prefetch-aware PDP.

A simple stream prefetcher is interleaved with demand traffic; three PDP
variants are compared: prefetch-unaware, insert-prefetches-with-PD-1, and
bypass-prefetches. The paper finds both aware variants improve on the
unaware PDP because prefetched lines (long streams) stop polluting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.prefetch import (
    PrefetchAwarePDPPolicy,
    StreamPrefetcher,
    interleave_prefetches,
)
from repro.experiments.common import (
    EXPERIMENT_GEOMETRY,
    RECOMPUTE_INTERVAL,
    TIMING,
    default_trace,
    format_table,
)
from repro.memory.cache import SetAssociativeCache
from repro.policies.rrip import DRRIPPolicy
from repro.sim.metrics import percent_change

PREFETCH_BENCHMARKS = ("403.gcc", "450.soplex", "482.sphinx3", "483.xalancbmk.1")
MODES = ("none", "pd1", "bypass")


def _with_stream_bursts(trace, burst: int = 8, period: int = 32):
    """Splice sequential scan bursts into a trace.

    The RDD-profile generator has no spatial adjacency, so the stream
    prefetcher would never train on its output; real prefetch studies need
    sequential runs. Every ``period`` demand accesses we insert a
    ``burst``-long block-sequential scan from a rolling region — one-use
    lines, exactly the "very long distance access streams" the paper says
    prefetchers target (Sec. 6.5).
    """
    import numpy as np

    from repro.traces.trace import Trace

    addresses = []
    pcs = []
    stream_base = 1 << 30
    for index, (address, pc) in enumerate(zip(trace.addresses, trace.pcs)):
        addresses.append(int(address))
        pcs.append(int(pc))
        if (index + 1) % period == 0:
            for offset in range(burst):
                addresses.append(stream_base + offset)
                pcs.append(0x9000)
            stream_base += burst
    merged = Trace(
        np.asarray(addresses, dtype=np.int64),
        pcs=np.asarray(pcs, dtype=np.int64),
        name=f"{trace.name}+streams",
        instructions_per_access=trace.instructions_per_access,
    )
    return merged


@dataclass(frozen=True)
class PrefetchResult:
    """Demand hit rates under each prefetch handling mode."""

    name: str
    drrip_hit_rate: float
    hit_rate_by_mode: dict[str, float]
    prefetches_issued: int


def _run_with_prefetcher(trace, policy) -> tuple[float, int]:
    """Drive demand + prefetches through a scaled hierarchy.

    Prefetched lines fill the upper levels regardless of the LLC's bypass
    decision (non-inclusive semantics, Sec. 2.2), so bypassing a prefetch
    only controls LLC pollution — the paper's setting. Returns the demand
    hit rate (served above memory) and prefetches issued.
    """
    from repro.memory.cache import CacheGeometry
    from repro.memory.hierarchy import CacheHierarchy
    from repro.types import AccessType

    hierarchy = CacheHierarchy(
        policy,
        l1_geometry=CacheGeometry(8, 4),
        l2_geometry=CacheGeometry(16, 8),
        llc_geometry=EXPERIMENT_GEOMETRY,
    )
    prefetcher = StreamPrefetcher(degree=2, train_threshold=2)
    demand_hits = 0
    demand_accesses = 0
    for access in interleave_prefetches(iter(trace), prefetcher):
        served = hierarchy.access(access)
        if access.kind is not AccessType.PREFETCH:
            demand_accesses += 1
            demand_hits += served != "memory"
    rate = demand_hits / demand_accesses if demand_accesses else 0.0
    return rate, prefetcher.issued


def run_prefetch_study(fast: bool = False) -> list[PrefetchResult]:
    results = []
    for name in PREFETCH_BENCHMARKS:
        trace = _with_stream_bursts(default_trace(name, fast=fast))
        drrip_rate, _ = _run_with_prefetcher(trace, DRRIPPolicy())
        rates = {}
        issued = 0
        for mode in MODES:
            policy = PrefetchAwarePDPPolicy(
                prefetch_mode=mode, recompute_interval=RECOMPUTE_INTERVAL
            )
            rates[mode], issued = _run_with_prefetcher(trace, policy)
        results.append(
            PrefetchResult(
                name=name,
                drrip_hit_rate=drrip_rate,
                hit_rate_by_mode=rates,
                prefetches_issued=issued,
            )
        )
    return results


def format_report(results: list[PrefetchResult]) -> str:
    rows = []
    for result in results:
        unaware = result.hit_rate_by_mode["none"]
        rows.append(
            [
                result.name,
                f"{result.drrip_hit_rate:.3f}",
                f"{unaware:.3f}",
                f"{percent_change(result.hit_rate_by_mode['pd1'], max(unaware, 1e-9)):+6.2f}%",
                f"{percent_change(result.hit_rate_by_mode['bypass'], max(unaware, 1e-9)):+6.2f}%",
                str(result.prefetches_issued),
            ]
        )
    return format_table(
        [
            "benchmark",
            "DRRIP HR",
            "PDP-unaware HR",
            "PD1 vs unaware",
            "bypass vs unaware",
            "prefetches",
        ],
        rows,
        title="Sec. 6.5 — prefetch-aware PDP (demand hit rates)",
    )


__all__ = [
    "MODES",
    "PREFETCH_BENCHMARKS",
    "PrefetchResult",
    "format_report",
    "run_prefetch_study",
]
