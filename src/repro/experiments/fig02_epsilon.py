"""Fig. 2 — DRRIP misses as a function of epsilon.

The paper sweeps the BRRIP bimodal parameter from 1/4 down to 1/128 on
403.gcc, 436.cactusADM, 464.h264ref and 483.xalancbmk.3 and observes two
trends: some benchmarks want a small epsilon (lines protected longer),
others a larger one (lines yielded sooner).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import EXPERIMENT_GEOMETRY, TIMING, default_trace, format_table
from repro.policies.rrip import DRRIPPolicy
from repro.sim.single_core import run_llc

FIG2_BENCHMARKS = ("403.gcc", "436.cactusADM", "464.h264ref", "483.xalancbmk.3")
EPSILONS = (1 / 4, 1 / 8, 1 / 16, 1 / 32, 1 / 64, 1 / 128)


@dataclass(frozen=True)
class EpsilonSweep:
    """Normalized MPKI per epsilon for one benchmark."""

    name: str
    mpki_by_epsilon: dict[float, float]

    def normalized(self) -> dict[float, float]:
        """MPKI normalized to epsilon = 1/32 (the DRRIP default)."""
        baseline = self.mpki_by_epsilon[1 / 32] or 1.0
        return {eps: mpki / baseline for eps, mpki in self.mpki_by_epsilon.items()}

    @property
    def best_epsilon(self) -> float:
        return min(self.mpki_by_epsilon, key=self.mpki_by_epsilon.get)


def run_fig2(fast: bool = False) -> list[EpsilonSweep]:
    """Sweep DRRIP's epsilon over the Fig. 2 benchmarks."""
    sweeps = []
    for name in FIG2_BENCHMARKS:
        trace = default_trace(name, fast=fast)
        mpki = {}
        for epsilon in EPSILONS:
            result = run_llc(
                trace, DRRIPPolicy(epsilon=epsilon), EXPERIMENT_GEOMETRY, timing=TIMING
            )
            mpki[epsilon] = result.mpki
        sweeps.append(EpsilonSweep(name=name, mpki_by_epsilon=mpki))
    return sweeps


def format_report(sweeps: list[EpsilonSweep]) -> str:
    headers = ["benchmark"] + [f"1/{int(1/e)}" for e in EPSILONS] + ["best eps"]
    rows = []
    for sweep in sweeps:
        normalized = sweep.normalized()
        rows.append(
            [sweep.name]
            + [f"{normalized[e]:.3f}" for e in EPSILONS]
            + [f"1/{int(1 / sweep.best_epsilon)}"]
        )
    return format_table(
        headers, rows, title="Fig. 2 — DRRIP MPKI vs epsilon (normalized to 1/32)"
    )


__all__ = ["EPSILONS", "EpsilonSweep", "FIG2_BENCHMARKS", "format_report", "run_fig2"]
