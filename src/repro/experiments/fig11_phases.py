"""Fig. 11 — adaptation to program phases.

(a) sensitivity of dynamic PDP to the PD-recompute interval on the five
phase-changing workloads; (b) policy comparison on those workloads;
(c) the PD trajectory over time, which must move when the phase changes.

The PD trajectory and the per-window hit-rate profile both come from a
:class:`repro.obs.timeseries.WindowedRecorder` attached to the run
(window size = the PD recompute interval, so each window closes with the
PD in force for that stretch of the trace) — the recorder replaces the
driver's former reliance on the PD engine's internal history plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pdp_policy import PDPPolicy
from repro.experiments.common import EXPERIMENT_GEOMETRY, TIMING, format_table
from repro.obs.bench import sparkline
from repro.obs.timeseries import WindowedRecorder
from repro.policies.lip_bip_dip import DIPPolicy
from repro.policies.rrip import DRRIPPolicy
from repro.sim.metrics import percent_change
from repro.sim.single_core import run_llc
from repro.workloads.phased import phase_changing_profiles

#: Scaled analogues of the paper's 1M..8M-access reset intervals.
RESET_INTERVALS = (1024, 2048, 4096, 8192)

#: The reset interval whose run provides the Fig. 11c trajectory.
TRAJECTORY_INTERVAL = 4096


@dataclass(frozen=True)
class PhaseResult:
    """One phased workload's Fig. 11 numbers.

    ``pd_history`` is the recorder's ``(window_end, pd)`` trajectory and
    ``window_hit_rates`` the matching per-window hit rates, both from the
    ``TRAJECTORY_INTERVAL`` run.
    """

    name: str
    ipc_by_interval: dict[int, float]
    dip_ipc: float
    drrip_ipc: float
    pdp_ipc: float
    pd_history: list[tuple[int, int]]
    window_hit_rates: list[float]

    @property
    def pd_values_seen(self) -> set[int]:
        """Distinct PDs the run settled on (must be >1 across phases)."""
        return {pd for _, pd in self.pd_history}


def run_fig11(fast: bool = False, phase_length: int | None = None) -> list[PhaseResult]:
    """Run the Fig. 11 grid over the phase-changing workloads."""
    phase_length = phase_length or (10_000 if fast else 20_000)
    results = []
    for key, workload in phase_changing_profiles(phase_length=phase_length).items():
        trace = workload.generate(num_sets=EXPERIMENT_GEOMETRY.num_sets)
        ipc_by_interval = {}
        best_history: list[tuple[int, int]] = []
        best_hit_rates: list[float] = []
        for interval in RESET_INTERVALS:
            policy = PDPPolicy(recompute_interval=interval)
            recorder = WindowedRecorder(window_size=interval)
            run = run_llc(
                trace, policy, EXPERIMENT_GEOMETRY, timing=TIMING,
                timeseries=recorder,
            )
            ipc_by_interval[interval] = run.ipc
            if interval == TRAJECTORY_INTERVAL:
                best_history = recorder.pd_trajectory()
                best_hit_rates = [w.hit_rate for w in recorder.windows]
        dip = run_llc(trace, DIPPolicy(), EXPERIMENT_GEOMETRY, timing=TIMING)
        drrip = run_llc(trace, DRRIPPolicy(), EXPERIMENT_GEOMETRY, timing=TIMING)
        results.append(
            PhaseResult(
                name=workload.name,
                ipc_by_interval=ipc_by_interval,
                dip_ipc=dip.ipc,
                drrip_ipc=drrip.ipc,
                pdp_ipc=ipc_by_interval[TRAJECTORY_INTERVAL],
                pd_history=best_history,
                window_hit_rates=best_hit_rates,
            )
        )
    return results


def format_report(results: list[PhaseResult]) -> str:
    """Render the Fig. 11 tables (interval sensitivity, policy
    comparison, PD trajectory, per-window hit-rate sparkline)."""
    interval_rows = []
    for result in results:
        baseline = result.ipc_by_interval[RESET_INTERVALS[0]] or 1.0
        interval_rows.append(
            [result.name]
            + [
                f"{result.ipc_by_interval[i] / baseline:.3f}"
                for i in RESET_INTERVALS
            ]
        )
    table_a = format_table(
        ["workload"] + [str(i) for i in RESET_INTERVALS],
        interval_rows,
        title="Fig. 11a — IPC vs PD reset interval (normalized to shortest)",
    )
    compare_rows = [
        [
            result.name,
            f"{percent_change(result.drrip_ipc, result.dip_ipc):+6.2f}%",
            f"{percent_change(result.pdp_ipc, result.dip_ipc):+6.2f}%",
            str(len(result.pd_values_seen)),
            "->".join(str(pd) for _, pd in result.pd_history[:8]),
            sparkline(result.window_hit_rates, width=16)
            if result.window_hit_rates
            else "-",
        ]
        for result in results
    ]
    table_b = format_table(
        [
            "workload",
            "DRRIP vs DIP",
            "PDP vs DIP",
            "#PDs",
            "PD trajectory (head)",
            "hitrate/t",
        ],
        compare_rows,
        title="Fig. 11b/c — phased workloads: policy comparison and PD over time",
    )
    return table_a + "\n\n" + table_b


__all__ = [
    "PhaseResult",
    "RESET_INTERVALS",
    "TRAJECTORY_INTERVAL",
    "format_report",
    "run_fig11",
]
