"""Sec. 3 / Sec. 6.2 — hardware overhead and PD-processor cycle counts.

Reproduces the paper's overhead accounting: SRAM bits for PDP-2/3/8 vs DIP
and DRRIP on a 2MB 16-way LLC, and the cycle cost of one full PD search on
the special-purpose processor (negligible against the 512K-access
recompute interval).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import format_table
from repro.hardware.overhead import overhead_report
from repro.hardware.pd_processor import run_pd_search
from repro.memory.cache import CacheGeometry


@dataclass(frozen=True)
class OverheadSummary:
    rows: list
    search_cycles: int
    cycles_per_candidate: float
    recompute_interval: int = 512 * 1024

    @property
    def search_fraction_of_interval(self) -> float:
        return self.search_cycles / self.recompute_interval


def run_overhead() -> OverheadSummary:
    """Compute the full overhead table plus search cycle counts."""
    rows = overhead_report(CacheGeometry.from_capacity(2 * 1024 * 1024, ways=16))
    rng = np.random.default_rng(0)
    counts = rng.integers(0, 2000, size=64)
    _, cycles = run_pd_search(counts, int(counts.sum() * 2), step=4, d_e=16)
    return OverheadSummary(
        rows=rows,
        search_cycles=cycles,
        cycles_per_candidate=cycles / len(counts),
    )


def format_report(summary: OverheadSummary) -> str:
    table = format_table(
        ["policy", "SRAM bits", "% of 2MB LLC"],
        [
            [row.policy, str(row.bits), f"{100 * row.fraction_of_llc:.2f}%"]
            for row in summary.rows
        ],
        title="Sec. 6.2 — storage overhead (2MB, 16-way LLC)",
    )
    cycles = format_table(
        ["full PD search (cycles)", "per candidate d_p", "fraction of 512K interval"],
        [
            [
                str(summary.search_cycles),
                f"{summary.cycles_per_candidate:.1f}",
                f"{100 * summary.search_fraction_of_interval:.3f}%",
            ]
        ],
        title="Sec. 3 — PD compute processor",
    )
    return table + "\n\n" + cycles


__all__ = ["OverheadSummary", "format_report", "run_overhead"]
