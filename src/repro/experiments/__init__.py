"""Experiment drivers reproducing every table and figure of the paper.

One module per experiment; each exposes ``run_*`` returning structured
results and ``format_report`` rendering the paper-style rows. The
``benchmarks/`` directory wraps these in pytest-benchmark targets.
"""

from repro.experiments.common import (
    EXPERIMENT_GEOMETRY,
    EXPERIMENT_SUITE,
    default_trace,
    experiment_config,
)

__all__ = [
    "EXPERIMENT_GEOMETRY",
    "EXPERIMENT_SUITE",
    "default_trace",
    "experiment_config",
]
