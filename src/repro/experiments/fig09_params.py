"""Fig. 9 — PDP parameter space: sampler configuration and counter step.

The paper compares the "Full" RD sampler (every set, exact) against the
"Real" one (32 sets x 32-entry FIFOs) and sweeps the counter step S_c over
{1, 2, 4, 8}, concluding that Real matches Full and S_c = 4 is a good
trade-off. Table 2's optimal-PD distribution is also computed here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pdp_policy import PDPPolicy
from repro.experiments.common import (
    EXPERIMENT_GEOMETRY,
    RECOMPUTE_INTERVAL,
    TIMING,
    default_trace,
    format_table,
)
from repro.sim.single_core import run_llc

CONFIGS = (
    ("Full, Sc=1", "full", 1),
    ("Real, Sc=1", "real", 1),
    ("Real, Sc=2", "real", 2),
    ("Real, Sc=4", "real", 4),
    ("Real, Sc=8", "real", 8),
)


@dataclass(frozen=True)
class ParamResult:
    """Normalized MPKI per configuration for one benchmark."""

    name: str
    mpki_by_config: dict[str, float]
    pd_by_config: dict[str, int]

    def normalized(self) -> dict[str, float]:
        baseline = self.mpki_by_config["Full, Sc=1"] or 1.0
        return {k: v / baseline for k, v in self.mpki_by_config.items()}


def run_fig9(
    benchmarks: tuple[str, ...] | None = None, fast: bool = False
) -> list[ParamResult]:
    from repro.experiments.common import EXPERIMENT_SUITE

    benchmarks = benchmarks or EXPERIMENT_SUITE
    results = []
    for name in benchmarks:
        trace = default_trace(name, fast=fast)
        mpki = {}
        pds = {}
        for label, mode, step in CONFIGS:
            policy = PDPPolicy(
                sampler_mode=mode,
                step=step,
                recompute_interval=RECOMPUTE_INTERVAL,
            )
            run = run_llc(trace, policy, EXPERIMENT_GEOMETRY, timing=TIMING)
            mpki[label] = run.mpki
            pds[label] = run.extra["final_pd"]
        results.append(ParamResult(name=name, mpki_by_config=mpki, pd_by_config=pds))
    return results


def pd_distribution(results: list[ParamResult]) -> dict[str, int]:
    """Table 2 — distribution of optimal PDs (Full sampler, Sc=1)."""
    buckets = {"16-32": 0, "33-64": 0, "65-128": 0, "129-256": 0}
    for result in results:
        pd = result.pd_by_config["Full, Sc=1"]
        if pd <= 32:
            buckets["16-32"] += 1
        elif pd <= 64:
            buckets["33-64"] += 1
        elif pd <= 128:
            buckets["65-128"] += 1
        else:
            buckets["129-256"] += 1
    return buckets


def format_report(results: list[ParamResult]) -> str:
    labels = [label for label, _, _ in CONFIGS]
    rows = []
    for result in results:
        normalized = result.normalized()
        rows.append(
            [result.name]
            + [f"{normalized[label]:.3f}" for label in labels]
            + [str(result.pd_by_config["Full, Sc=1"])]
        )
    table = format_table(
        ["benchmark"] + labels + ["PD(full)"],
        rows,
        title="Fig. 9 — MPKI by sampler/step configuration (normalized to Full, Sc=1)",
    )
    buckets = pd_distribution(results)
    dist = format_table(
        ["PD range"] + list(buckets),
        [["# benchmarks"] + [str(v) for v in buckets.values()]],
        title="Table 2 — distribution of optimal PDs",
    )
    return table + "\n\n" + dist


__all__ = ["CONFIGS", "ParamResult", "format_report", "pd_distribution", "run_fig9"]
