"""Fig. 5 — access/occupancy breakdown and the xalancbmk window RDDs.

Fig. 5a breaks accesses and line occupancy into: hits (promotions),
bypasses, lines evicted within 16 accesses, and lines evicted later — for
DRRIP, SPDP-NB and SPDP-B on 436.cactusADM and 464.h264ref. The paper's
claims: PDP shrinks the occupancy share of long-evicted lines, and SPDP-B
bypasses most h264ref misses. Fig. 5b shows the three xalancbmk windows'
RDDs peak at different distances.

Each Fig. 5a cell is **one** simulation: the occupancy tracker and a
:class:`repro.obs.timeseries.WindowedRecorder` ride the same
:func:`run_llc` call, so the time-resolved columns (eviction-cause split,
per-window protected-line occupancy) come from recorder output rather
than a second bespoke loop over the trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pdp_policy import PDPPolicy
from repro.experiments.common import (
    EXPERIMENT_GEOMETRY,
    TIMING,
    default_trace,
    format_table,
)
from repro.memory.stats import OccupancyBreakdown
from repro.obs.bench import sparkline
from repro.obs.timeseries import Window, WindowedRecorder
from repro.policies.rrip import DRRIPPolicy
from repro.sim.runner import best_static_pd
from repro.sim.single_core import run_llc
from repro.traces.analysis import reuse_distance_distribution

FIG5_BENCHMARKS = ("436.cactusADM", "464.h264ref")
XALANC_WINDOWS = ("483.xalancbmk.1", "483.xalancbmk.2", "483.xalancbmk.3")

#: Windows recorded per Fig. 5a run (window size adapts to trace length).
FIG5_WINDOW_COUNT = 32


@dataclass(frozen=True)
class OccupancyResult:
    """Fig. 5a: one (benchmark, policy) breakdown plus its recorded
    windows (the time-resolved view of the same single run)."""

    name: str
    policy: str
    breakdown: OccupancyBreakdown
    bypass_fraction: float
    windows: list[Window]

    @property
    def evictions_reused(self) -> int:
        """Evicted lines that were hit while resident (summed windows)."""
        return sum(w.evictions_reused for w in self.windows)

    @property
    def evictions_dead(self) -> int:
        """Evicted lines never hit while resident (summed windows)."""
        return sum(w.evictions_dead for w in self.windows)

    @property
    def protected_trajectory(self) -> list[int]:
        """Per-window protected-line occupancy (PDP policies only)."""
        return [
            w.protected_lines for w in self.windows if w.protected_lines is not None
        ]


def run_fig5a(fast: bool = False) -> list[OccupancyResult]:
    """Occupancy breakdowns under DRRIP / SPDP-NB / SPDP-B.

    One :func:`run_llc` call per cell carries both the occupancy tracker
    and the windowed recorder; no re-simulation happens after the
    static-PD sweeps pick the SPDP operating points.
    """
    grid = list(range(16, 257, 16))
    results = []
    for name in FIG5_BENCHMARKS:
        trace = default_trace(name, fast=fast)
        window_size = max(1, len(trace) // FIG5_WINDOW_COUNT)
        pd_nb, _ = best_static_pd(trace, EXPERIMENT_GEOMETRY, grid, bypass=False)
        pd_b, _ = best_static_pd(trace, EXPERIMENT_GEOMETRY, grid, bypass=True)
        policies = (
            ("DRRIP", DRRIPPolicy()),
            ("SPDP-NB", PDPPolicy(static_pd=pd_nb, bypass=False)),
            ("SPDP-B", PDPPolicy(static_pd=pd_b, bypass=True)),
        )
        for label, policy in policies:
            recorder = WindowedRecorder(window_size=window_size)
            run = run_llc(
                trace,
                policy,
                EXPERIMENT_GEOMETRY,
                timing=TIMING,
                track_occupancy=True,
                occupancy_threshold=16,
                timeseries=recorder,
            )
            results.append(
                OccupancyResult(
                    name=name,
                    policy=label,
                    breakdown=run.extra["occupancy"],
                    bypass_fraction=run.bypass_fraction,
                    windows=recorder.windows,
                )
            )
    return results


@dataclass(frozen=True)
class WindowRDD:
    """Fig. 5b: one xalancbmk window's RDD."""

    name: str
    counts: np.ndarray
    peak_distance: int


def run_fig5b(fast: bool = False) -> list[WindowRDD]:
    """The three xalancbmk windows' RDDs (peaks must differ)."""
    windows = []
    for name in XALANC_WINDOWS:
        trace = default_trace(name, fast=fast)
        counts, _, _ = reuse_distance_distribution(
            trace, num_sets=EXPERIMENT_GEOMETRY.num_sets, d_max=256
        )
        peak = int(np.argmax(counts[17:])) + 17  # beyond-associativity peak
        windows.append(WindowRDD(name=name, counts=counts, peak_distance=peak))
    return windows


def format_report(
    occupancy: list[OccupancyResult], windows: list[WindowRDD]
) -> str:
    """Render the Fig. 5 tables, including the recorder-derived
    eviction-cause split and protected-occupancy sparkline."""
    rows = []
    for result in occupancy:
        access = result.breakdown.access_fractions()
        occ = result.breakdown.occupancy_fractions()
        evictions = result.evictions_reused + result.evictions_dead
        dead = result.evictions_dead / evictions if evictions else 0.0
        protected = result.protected_trajectory
        rows.append(
            [
                result.name,
                result.policy,
                f"{100 * access['hit']:5.1f}%",
                f"{100 * access['bypass']:5.1f}%",
                f"{100 * access['evicted_short']:5.1f}%",
                f"{100 * access['evicted_long']:5.1f}%",
                f"{100 * (occ['evicted_short'] + occ['evicted_long']):5.1f}%",
                str(result.breakdown.max_eviction_occupancy),
                f"{100 * dead:5.1f}%",
                sparkline([float(p) for p in protected], width=16)
                if protected
                else "-",
            ]
        )
    table_a = format_table(
        [
            "benchmark",
            "policy",
            "hit",
            "bypass",
            "evict<=16",
            "evict>16",
            "evictOcpy",
            "maxOcpy",
            "deadEvict",
            "protected/t",
        ],
        rows,
        title="Fig. 5a — access breakdown and evicted-line occupancy share",
    )
    table_b = format_table(
        ["window", "RDD peak (beyond W)"],
        [[w.name, str(w.peak_distance)] for w in windows],
        title="Fig. 5b — xalancbmk windows",
    )
    return table_a + "\n\n" + table_b


__all__ = [
    "FIG5_BENCHMARKS",
    "FIG5_WINDOW_COUNT",
    "OccupancyResult",
    "WindowRDD",
    "XALANC_WINDOWS",
    "format_report",
    "run_fig5a",
    "run_fig5b",
]
