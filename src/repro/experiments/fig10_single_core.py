"""Fig. 10 — the headline single-core comparison.

Miss reduction (a), IPC improvement (b) and bypass fraction (c), all
relative to DIP, for: PDP-2/PDP-3/PDP-8 (dynamic, with bypass), SPDP-B
(static upper bound), SDP, DRRIP and EELRU. Expected shapes: PDP-8 best on
average with PDP-8 > PDP-3 > PDP-2; SPDP-B an upper bound on dynamic PDP;
DRRIP ~ DIP; EELRU mixed with losses on several benchmarks; SDP winning on
PC-informative profiles and losing on PC-misleading ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from repro.core.pdp_policy import PDPPolicy
from repro.experiments.common import (
    EXPERIMENT_GEOMETRY,
    RECOMPUTE_INTERVAL,
    TIMING,
    default_trace,
    format_table,
)
from repro.obs.progress import ProgressReporter
from repro.policies.eelru import EELRUPolicy
from repro.policies.lip_bip_dip import DIPPolicy
from repro.policies.rrip import DRRIPPolicy
from repro.policies.sdp import SDPPolicy
from repro.sim.metrics import miss_reduction_percent, percent_change
from repro.sim.runner import best_static_pd
from repro.sim.single_core import emit_run_manifest, run_llc


def policy_factories() -> dict[str, callable]:
    """Fresh-policy factories for every Fig. 10 series (except SPDP-B)."""
    return {
        "DRRIP": DRRIPPolicy,
        "EELRU": EELRUPolicy,
        "SDP": SDPPolicy,
        "PDP-2": lambda: PDPPolicy(n_c=2, recompute_interval=RECOMPUTE_INTERVAL),
        "PDP-3": lambda: PDPPolicy(n_c=3, recompute_interval=RECOMPUTE_INTERVAL),
        "PDP-8": lambda: PDPPolicy(n_c=8, recompute_interval=RECOMPUTE_INTERVAL),
    }


@dataclass
class Fig10Row:
    """One benchmark's Fig. 10 numbers (relative to DIP)."""

    name: str
    miss_reduction: dict[str, float] = field(default_factory=dict)
    ipc_improvement: dict[str, float] = field(default_factory=dict)
    bypass_fraction: dict[str, float] = field(default_factory=dict)
    final_pd: int | None = None


def run_fig10(
    benchmarks: tuple[str, ...] | None = None,
    fast: bool = False,
    include_spdp_b: bool = True,
    seeds: tuple[int | None, ...] = (None,),
    max_workers: int | None = None,
    manifest_dir: str | None = None,
    on_event=None,
) -> list[Fig10Row]:
    """The full single-core comparison, optionally averaged over seeds.

    ``max_workers`` parallelizes the SPDP-B sweep (None = auto).
    ``manifest_dir`` writes one provenance manifest per (policy,
    benchmark) cell — including the DIP baseline and the derived SPDP-B
    column — into the directory; ``on_event`` receives per-cell
    started/finished progress events (see :mod:`repro.obs.progress`).
    """
    from repro.experiments.common import EXPERIMENT_SUITE

    benchmarks = benchmarks or EXPERIMENT_SUITE
    series_labels = list(policy_factories())
    cells_per_trace = 1 + len(series_labels) + (1 if include_spdp_b else 0)
    reporter = ProgressReporter(
        len(benchmarks) * len(seeds) * cells_per_trace,
        on_event=on_event,
        label="fig10",
    )

    def cell_key(name: str, label: str, seed) -> str:
        return f"{name}/{label}" if seed is None else f"{name}/{label}@seed{seed}"

    rows = []
    for name in benchmarks:
        row = Fig10Row(name=name)
        samples: dict[str, list[tuple[float, float, float]]] = {}
        for seed in seeds:
            trace = default_trace(name, fast=fast, seed=seed)
            meta = {"seed": seed} if seed is not None else None
            key = cell_key(name, "DIP", seed)
            reporter.started(key)
            dip = run_llc(
                trace,
                DIPPolicy(),
                EXPERIMENT_GEOMETRY,
                timing=TIMING,
                manifest_dir=manifest_dir,
                run_label="DIP",
                run_meta=meta,
            )
            reporter.finished(key)
            series = dict(policy_factories())
            for label, factory in series.items():
                key = cell_key(name, label, seed)
                reporter.started(key)
                run = run_llc(
                    trace,
                    factory(),
                    EXPERIMENT_GEOMETRY,
                    timing=TIMING,
                    manifest_dir=manifest_dir,
                    run_label=label,
                    run_meta=meta,
                )
                reporter.finished(key)
                samples.setdefault(label, []).append(
                    (
                        miss_reduction_percent(run.misses, dip.misses),
                        percent_change(run.ipc, dip.ipc),
                        run.bypass_fraction,
                    )
                )
                if label == "PDP-8":
                    row.final_pd = run.extra.get("final_pd")
            if include_spdp_b:
                grid = list(range(16, 257, 16))
                key = cell_key(name, "SPDP-B", seed)
                reporter.started(key)
                sweep_start = perf_counter()
                pd, best = best_static_pd(
                    trace,
                    EXPERIMENT_GEOMETRY,
                    grid,
                    bypass=True,
                    max_workers=max_workers,
                )
                if manifest_dir is not None:
                    # The sweep's per-PD runs are internal; record only
                    # the winning point as this benchmark's SPDP-B cell.
                    emit_run_manifest(
                        manifest_dir,
                        "llc",
                        trace,
                        f"SPDP-B(pd={pd})",
                        EXPERIMENT_GEOMETRY,
                        "fast",
                        best,
                        perf_counter() - sweep_start,
                        run_label="SPDP-B",
                        run_meta=meta,
                    )
                reporter.finished(key)
                samples.setdefault("SPDP-B", []).append(
                    (
                        miss_reduction_percent(best.misses, dip.misses),
                        percent_change(best.ipc, dip.ipc),
                        best.bypass_fraction,
                    )
                )
        for label, values in samples.items():
            count = len(values)
            row.miss_reduction[label] = sum(v[0] for v in values) / count
            row.ipc_improvement[label] = sum(v[1] for v in values) / count
            row.bypass_fraction[label] = sum(v[2] for v in values) / count
        rows.append(row)
    return rows


def averages(rows: list[Fig10Row]) -> Fig10Row:
    """Suite averages (arithmetic mean, as in the paper's AVG bars)."""
    labels = rows[0].miss_reduction.keys()
    avg = Fig10Row(name="AVERAGE")
    for label in labels:
        avg.miss_reduction[label] = sum(r.miss_reduction[label] for r in rows) / len(rows)
        avg.ipc_improvement[label] = sum(
            r.ipc_improvement[label] for r in rows
        ) / len(rows)
        avg.bypass_fraction[label] = sum(
            r.bypass_fraction[label] for r in rows
        ) / len(rows)
    return avg


def format_report(rows: list[Fig10Row]) -> str:
    labels = list(rows[0].miss_reduction.keys())
    body = [
        [row.name]
        + [f"{row.miss_reduction[label]:6.1f}" for label in labels]
        + [str(row.final_pd)]
        for row in rows
    ]
    avg = averages(rows)
    body.append(
        ["AVERAGE"] + [f"{avg.miss_reduction[label]:6.1f}" for label in labels] + [""]
    )
    table_a = format_table(
        ["benchmark"] + labels + ["PD"],
        body,
        title="Fig. 10a — miss reduction vs DIP (%)",
    )
    ipc_rows = [["AVERAGE"] + [f"{avg.ipc_improvement[label]:+6.2f}" for label in labels]]
    table_b = format_table(
        ["metric"] + labels, ipc_rows, title="Fig. 10b — IPC improvement vs DIP (%)"
    )
    bypass_rows = [
        ["AVERAGE"] + [f"{100 * avg.bypass_fraction[label]:5.1f}%" for label in labels]
    ]
    table_c = format_table(
        ["metric"] + labels, bypass_rows, title="Fig. 10c — bypass fraction of accesses"
    )
    return "\n\n".join((table_a, table_b, table_c))


__all__ = ["Fig10Row", "averages", "format_report", "policy_factories", "run_fig10"]
