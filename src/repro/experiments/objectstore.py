"""Object-store scenario: PDP-style protection vs. classic CDN policies.

The experiment behind ``repro experiment objectstore``: drive one
object-request stream (a synthetic Zipf/lognormal workload by default,
or any ``.objtrace`` file) through the software cache of
:mod:`repro.swcache` once per policy family and compare

- ``size-lru`` — recency eviction, admit-all (the baseline);
- ``gdsf`` — GreedyDual-Size-Frequency priorities;
- ``tinylfu`` — LRU behind TinyLFU frequency admission;
- ``pdp`` — the paper's protecting distance, recomputed online from a
  sampled reuse-distance histogram.

Every run records a windowed time-series (object hit ratio *and* byte
hit ratio per window) through the standard
:class:`repro.obs.timeseries.WindowedRecorder`, persists a
``kind="objectstore"`` manifest when a manifest directory is given, and
the report renders the comparison table plus per-policy hit-rate
sparklines. The stream is re-iterated per policy, so all policies see
the identical request sequence in O(chunk) memory regardless of trace
length.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import format_table
from repro.obs.progress import ProgressReporter
from repro.obs.timeseries import WindowedRecorder, windows_from_payload
from repro.swcache.driver import ObjectCacheResult, run_object_cache
from repro.swcache.policies import make_software_policy
from repro.traces.stream import TraceStream, as_stream
from repro.workloads.objectstore import make_object_stream

#: Policy families compared by default, in report order.
DEFAULT_POLICIES = ("size-lru", "gdsf", "tinylfu", "pdp")

#: Default request count of the generated workload.
DEFAULT_ACCESSES = 1_000_000

#: Default byte budget (256 MiB — a few percent of the default
#: catalog's total bytes, enough pressure to separate the policies).
DEFAULT_CAPACITY_BYTES = 256 * 1024 * 1024

#: Default object TTL in trace milliseconds (None = no expiry).
DEFAULT_TTL_MS = None


@dataclass(slots=True)
class ObjectStoreRow:
    """One policy's line in the comparison: the run result plus the
    per-window hit/byte-hit series extracted from its time-series
    payload (empty when recording was off)."""

    policy: str
    result: ObjectCacheResult
    window_hit_rates: list[float]
    window_byte_hit_rates: list[float]


def _policy_kwargs(name: str, accesses: int) -> dict:
    """Workload-scaled constructor arguments for one policy family.

    PDP's recompute interval and maximum tracked distance scale with
    the stream length so short smoke runs still recompute a few times;
    the other families need no tuning.
    """
    if name != "pdp":
        return {}
    recompute = max(256, min(1 << 15, accesses // 16))
    max_pd = max(2048, min(1 << 17, accesses // 2))
    return {"recompute_interval": recompute, "max_pd": max_pd}


def _window_series(result: ObjectCacheResult) -> tuple[list[float], list[float]]:
    """Per-window (hit-rate, byte-hit-rate) series of one run."""
    windows = windows_from_payload(result.extra.get("timeseries", {}))
    return (
        [w.hit_rate for w in windows],
        [w.byte_hit_rate for w in windows],
    )


def run_objectstore(
    trace: TraceStream | None = None,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    accesses: int = DEFAULT_ACCESSES,
    capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
    ttl: float | None = DEFAULT_TTL_MS,
    fast: bool = False,
    seed: int = 0,
    window_size: int | None = None,
    manifest_dir: str | None = None,
    on_event=None,
) -> list[ObjectStoreRow]:
    """Run the policy comparison over one object-request stream.

    Args:
        trace: the request stream; when None a synthetic Zipf workload
            of ``accesses`` requests is generated from ``seed`` (a
            ``fast`` run shrinks it 5x with a smaller catalog).
        policies: registry names from
            :data:`repro.swcache.policies.SOFTWARE_POLICIES`.
        capacity_bytes: the byte budget shared by every policy run.
        ttl: object TTL in trace time units (None disables expiry).
        window_size: accesses per recorded window; defaults to 1/64 of
            the stream (at least 1024), so every run yields a usable
            time-series.
        manifest_dir: when set, one provenance manifest per policy run.
        on_event: progress callback (one started/finished event pair
            per policy, keyed by policy name).
    """
    if trace is None:
        if fast:
            accesses = max(10_000, accesses // 5)
        stream = make_object_stream(
            accesses,
            num_objects=20_000 if fast else 100_000,
            seed=seed,
        )
    else:
        stream = as_stream(trace)
    total = stream.length if stream.length is not None else accesses
    if window_size is None:
        window_size = max(1024, total // 64)
    reporter = ProgressReporter(len(policies), on_event=on_event, label="objectstore")
    rows: list[ObjectStoreRow] = []
    for name in policies:
        reporter.started(name)
        result = run_object_cache(
            stream,
            make_software_policy(name, **_policy_kwargs(name, total)),
            capacity_bytes,
            ttl=ttl,
            manifest_dir=manifest_dir,
            run_label=name,
            run_meta={"seed": seed} if trace is None else None,
            timeseries=WindowedRecorder(window_size=window_size),
        )
        reporter.finished(name)
        hit_series, byte_series = _window_series(result)
        rows.append(
            ObjectStoreRow(
                policy=name,
                result=result,
                window_hit_rates=hit_series,
                window_byte_hit_rates=byte_series,
            )
        )
    return rows


def format_report(rows: list[ObjectStoreRow]) -> str:
    """The comparison table plus per-policy windowed sparklines."""
    from repro.obs.bench import sparkline

    table_rows = []
    for row in rows:
        stats = row.result.stats
        final_pd = row.result.extra.get("final_pd")
        table_rows.append(
            [
                row.policy,
                f"{stats.hit_rate * 100:.2f}%",
                f"{stats.byte_hit_rate * 100:.2f}%",
                f"{stats.bypass_fraction * 100:.2f}%",
                str(stats.evictions),
                str(stats.expirations),
                str(final_pd) if final_pd is not None else "-",
            ]
        )
    lines = [
        format_table(
            ["policy", "hit", "byte-hit", "bypassed", "evictions", "expired", "PD"],
            table_rows,
            title="objectstore: software-cache policy comparison",
        )
    ]
    for row in rows:
        if row.window_hit_rates:
            lines.append(f"{row.policy:>9} hit/window      {sparkline(row.window_hit_rates)}")
        if row.window_byte_hit_rates:
            lines.append(f"{row.policy:>9} byte-hit/window {sparkline(row.window_byte_hit_rates)}")
    return "\n".join(lines)


__all__ = [
    "DEFAULT_ACCESSES",
    "DEFAULT_CAPACITY_BYTES",
    "DEFAULT_POLICIES",
    "ObjectStoreRow",
    "format_report",
    "run_objectstore",
]
