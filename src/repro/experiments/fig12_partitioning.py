"""Fig. 12 — shared-cache partitioning at 4 and 16 cores.

Weighted IPC (W), throughput (T) and harmonic fairness (H) for UCP, PIPP
and the PD-based partitioning, normalized to TA-DRRIP, over random
multi-programmed mixes. The paper's shape: PD-based partitioning is
slightly ahead at 4 cores and scales best at 16 cores, where UCP and PIPP
fall behind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

from repro.experiments.common import MULTICORE_SETS_PER_CORE, TIMING, format_table
from repro.memory.cache import CacheGeometry
from repro.partitioning.pd_partition import PDPartitionPolicy
from repro.partitioning.pipp import PIPPPolicy
from repro.partitioning.ucp import UCPPolicy
from repro.policies.ta_drrip import TADRRIPPolicy
from repro.sim.multi_core import single_thread_baselines
from repro.sim.parallel import run_mix_matrix
from repro.workloads.mixes import generate_mixes, make_mix_traces

#: Key under which the TA-DRRIP normalization baseline runs in the grid.
BASELINE = "TA-DRRIP"


def shared_geometry(cores: int) -> CacheGeometry:
    """Shared LLC: per-core slice times the core count (paper Sec. 5)."""
    return CacheGeometry(num_sets=MULTICORE_SETS_PER_CORE * cores, ways=16)


def partition_policies(cores: int) -> dict[str, callable]:
    # functools.partial (not lambdas) so the factories pickle and the
    # grid can fan out over run_mix_matrix's worker processes.
    return {
        "UCP": partial(UCPPolicy, num_threads=cores),
        "PIPP": partial(PIPPPolicy, num_threads=cores),
        "PDP": partial(
            PDPartitionPolicy,
            num_threads=cores,
            recompute_interval=8192,
            sampler_mode="full",
        ),
    }


@dataclass
class MixResult:
    """One mix's W/T/H per policy, normalized to TA-DRRIP."""

    mix_name: str
    benchmarks: tuple[str, ...]
    weighted: dict[str, float] = field(default_factory=dict)
    throughput: dict[str, float] = field(default_factory=dict)
    hmean: dict[str, float] = field(default_factory=dict)


def run_fig12(
    cores: int,
    num_mixes: int = 4,
    length_per_thread: int | None = None,
    seed: int = 7,
    engine: str = "fast",
    max_workers: int | None = 1,
    manifest_dir: str | None = None,
    on_event=None,
) -> list[MixResult]:
    """Run the Fig. 12 comparison for one core count.

    ``max_workers=1`` (the default) runs the (mix x policy) grid serially
    in-process; any other value — including None for auto — fans it out
    via :func:`repro.sim.parallel.run_mix_matrix`. ``manifest_dir`` /
    ``on_event`` follow the :func:`run_mix_matrix` observability
    contract (one manifest per (mix, policy) cell plus a grid manifest).
    """
    if length_per_thread is None:
        length_per_thread = 20_000 if cores <= 4 else 8_000
    geometry = shared_geometry(cores)
    mixes = generate_mixes(num_mixes, cores=cores, seed=seed)
    mix_traces = {
        mix.name: make_mix_traces(
            mix, length_per_thread=length_per_thread, num_sets=geometry.num_sets
        )
        for mix in mixes
    }
    singles = {
        name: single_thread_baselines(traces, geometry, timing=TIMING, engine=engine)
        for name, traces in mix_traces.items()
    }
    factories = {
        BASELINE: partial(TADRRIPPolicy, num_threads=cores),
        **partition_policies(cores),
    }
    grid = run_mix_matrix(
        mix_traces,
        factories,
        geometry,
        timing=TIMING,
        singles=singles,
        max_workers=max_workers,
        engine=engine,
        manifest_dir=manifest_dir,
        on_event=on_event,
    )
    results = []
    for mix in mixes:
        baseline = grid[(mix.name, BASELINE)]
        entry = MixResult(mix_name=mix.name, benchmarks=mix.benchmarks)
        for label in partition_policies(cores):
            run = grid[(mix.name, label)]
            entry.weighted[label] = run.weighted / baseline.weighted
            entry.throughput[label] = run.throughput / baseline.throughput
            entry.hmean[label] = run.hmean / baseline.hmean
        results.append(entry)
    return results


def averages(results: list[MixResult]) -> dict[str, dict[str, float]]:
    """Mean normalized W/T/H per policy."""
    labels = results[0].weighted.keys()
    out: dict[str, dict[str, float]] = {}
    for label in labels:
        out[label] = {
            "W": sum(r.weighted[label] for r in results) / len(results),
            "T": sum(r.throughput[label] for r in results) / len(results),
            "H": sum(r.hmean[label] for r in results) / len(results),
        }
    return out


def format_report(results_by_cores: dict[int, list[MixResult]]) -> str:
    sections = []
    for cores, results in results_by_cores.items():
        rows = []
        for label, metrics in averages(results).items():
            rows.append(
                [
                    label,
                    f"{100 * (metrics['W'] - 1):+6.2f}%",
                    f"{100 * (metrics['T'] - 1):+6.2f}%",
                    f"{100 * (metrics['H'] - 1):+6.2f}%",
                ]
            )
        sections.append(
            format_table(
                ["policy", "W vs TA-DRRIP", "T vs TA-DRRIP", "H vs TA-DRRIP"],
                rows,
                title=f"Fig. 12 — {cores}-core partitioning ({len(results)} mixes)",
            )
        )
    return "\n\n".join(sections)


__all__ = [
    "BASELINE",
    "MixResult",
    "averages",
    "format_report",
    "partition_policies",
    "run_fig12",
    "shared_geometry",
]
