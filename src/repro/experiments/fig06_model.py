"""Fig. 6 — E(d_p) vs the actual hit rate vs the RDD.

The paper overlays the model E(d_p) (Eq. 1), the measured SPDP-B hit rate
and the RDD for five benchmarks, showing the model tracks the real curve —
especially around the hit-rate-maximizing PD. This driver computes all
three series and their agreement statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hit_rate_model import evaluate_e_curve
from repro.experiments.common import (
    EXPERIMENT_GEOMETRY,
    TIMING,
    default_trace,
    format_table,
)
from repro.sim.runner import sweep_static_pd
from repro.traces.analysis import reuse_distance_distribution

FIG6_BENCHMARKS = (
    "464.h264ref",
    "403.gcc",
    "436.cactusADM",
    "482.sphinx3",
    "483.xalancbmk.2",
)


@dataclass(frozen=True)
class ModelFit:
    """Model-vs-measured hit-rate curves for one benchmark."""

    name: str
    pds: list[int]
    e_values: list[float]
    hit_rates: list[float]
    correlation: float
    model_best_pd: int
    measured_best_pd: int


def run_fig6(fast: bool = False, grid_step: int = 16) -> list[ModelFit]:
    """Compare E(d_p) with the measured SPDP-B hit-rate curve."""
    fits = []
    pds = list(range(16, 257, grid_step))
    for name in FIG6_BENCHMARKS:
        trace = default_trace(name, fast=fast)
        counts, _, total = reuse_distance_distribution(
            trace, num_sets=EXPERIMENT_GEOMETRY.num_sets, d_max=256
        )
        curve = {
            p.pd: p.e_value
            for p in evaluate_e_curve(counts[1:], total, step=1, d_e=16.0)
        }
        e_values = [curve[pd] for pd in pds]
        runs = sweep_static_pd(trace, EXPERIMENT_GEOMETRY, pds, bypass=True)
        hit_rates = [runs[pd].hit_rate for pd in pds]
        correlation = float(np.corrcoef(e_values, hit_rates)[0, 1])
        fits.append(
            ModelFit(
                name=name,
                pds=pds,
                e_values=e_values,
                hit_rates=hit_rates,
                correlation=correlation,
                model_best_pd=pds[int(np.argmax(e_values))],
                measured_best_pd=pds[int(np.argmax(hit_rates))],
            )
        )
    return fits


def format_report(fits: list[ModelFit]) -> str:
    rows = [
        [
            fit.name,
            f"{fit.correlation:.3f}",
            str(fit.model_best_pd),
            str(fit.measured_best_pd),
            f"{max(fit.hit_rates):.3f}",
        ]
        for fit in fits
    ]
    return format_table(
        ["benchmark", "corr(E, hitrate)", "argmax E", "argmax hitrate", "best HR"],
        rows,
        title="Fig. 6 — E(d_p) model vs measured hit rate (SPDP-B sweep)",
    )


__all__ = ["FIG6_BENCHMARKS", "ModelFit", "format_report", "run_fig6"]
