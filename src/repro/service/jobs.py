"""Job specs, job records, and the on-disk job store of the sweep service.

A :class:`SweepSpec` is the declarative description of one sweep — what
to simulate (a generated benchmark or an on-disk trace file for
``matrix`` jobs, a dict of benchmark mixes for ``mix_matrix`` jobs),
under which policies (registered policy names plus keyword arguments —
resolvable to picklable factories via :func:`policy_factories`), on what
geometry/engine, and into which manifest *namespace*. Namespaces are the
multi-tenant unit: each one is a separate manifest directory under the
service root, and resume matching only ever looks inside the submitting
job's namespace.

The third kind, ``predict``, is the analytical fast-forward tier: one
:func:`repro.explore.explore` pass over the workload instead of a
simulation grid. Its geometry fields (``explore_sets``/``explore_ways``
and the PD-grid knobs) describe the design space to evaluate, and
``top_k > 0`` asks the service to auto-submit follow-up ``matrix`` jobs
(:func:`predict_followup_specs`) that *simulate* the top-K predicted
frontier geometries at their predicted-best static PD — cheap triage
first, expensive confirmation only where the model says it matters.

A :class:`JobRecord` tracks one submitted spec through its lifecycle
(``queued → running → done|failed``, plus ``cancelled``), and the
:class:`JobStore` persists records as atomic JSON files under
``<root>/jobs/`` — the same temp-file + ``os.replace`` discipline as run
manifests — so a killed daemon recovers its queue on restart: ``running``
jobs are re-queued (their completed cells are skipped by the resume
scheduler) and ``queued`` jobs simply run.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from functools import partial
from pathlib import Path
from typing import Callable

from repro.obs.manifest import new_run_id, utc_now_iso

#: Sweep kinds the service can schedule.
VALID_KINDS = ("matrix", "mix_matrix", "predict")

#: Lifecycle states of a job record.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: Job states that will never change again.
TERMINAL_STATES = ("done", "failed", "cancelled")


class SpecError(ValueError):
    """An invalid or unsatisfiable sweep spec."""


@dataclass
class SweepSpec:
    """Declarative description of one sweep job.

    ``policies`` entries are either a registered policy name (``"lru"``)
    or a dict ``{"key": ..., "name": ..., "kwargs": {...}}`` — ``key``
    defaults to ``name`` and becomes the cell key / manifest label, so
    two parameterizations of the same policy need distinct keys.
    ``workers=0`` means auto (``$REPRO_MAX_WORKERS``, else CPU count).
    ``match_git_sha=True`` additionally requires a manifest's recorded
    git SHA to equal the current one before its cell is skipped on
    resume; ``force=True`` lets the job resume over a namespace
    containing corrupt manifests (which are otherwise refused — see
    :class:`repro.service.scheduler.CorruptManifestError`).

    ``num_sets`` doubles as the benchmark *generation* parameter and the
    simulated geometry; ``trace_num_sets`` decouples them when set — the
    trace generates with ``trace_num_sets`` while the cache simulates at
    ``num_sets``. Predict follow-up jobs rely on this so their simulated
    geometries all share the predict pass's exact trace (and therefore
    its fingerprint, the join key of the prediction-error report).

    ``explore_sets``/``explore_ways`` (empty → the explorer's defaults),
    ``pd_max``/``pd_step``/``d_max`` and ``top_k`` only apply to
    ``predict`` jobs; see the module docstring.
    """

    kind: str = "matrix"
    namespace: str = "default"
    benchmark: str | None = None
    trace_file: str | None = None
    trace_format: str | None = None
    length: int = 40_000
    seed: int | None = None
    policies: list = field(default_factory=list)
    mixes: dict = field(default_factory=dict)
    num_sets: int = 64
    ways: int = 16
    line_size: int = 64
    engine: str = "vector"
    workers: int = 1
    window_size: int | None = None
    match_git_sha: bool = False
    force: bool = False
    trace_num_sets: int | None = None
    # -- predict-kind fields (ignored by matrix/mix_matrix jobs) ----------
    explore_sets: list = field(default_factory=list)
    explore_ways: list = field(default_factory=list)
    pd_max: int = 256
    pd_step: int = 4
    d_max: int = 1_024
    top_k: int = 0

    def validate(self) -> None:
        """Reject malformed specs with a actionable :class:`SpecError`."""
        if self.kind not in VALID_KINDS:
            raise SpecError(f"kind must be one of {VALID_KINDS}, got {self.kind!r}")
        if not self.namespace or "/" in self.namespace or self.namespace in (".", ".."):
            raise SpecError(
                f"namespace must be a plain directory name, got {self.namespace!r}"
            )
        if self.kind == "matrix":
            if (self.benchmark is None) == (self.trace_file is None):
                raise SpecError(
                    "matrix jobs need exactly one of benchmark/trace_file"
                )
            if not self.policies:
                raise SpecError("matrix jobs need at least one policy")
        elif self.kind == "predict":
            if (self.benchmark is None) == (self.trace_file is None):
                raise SpecError(
                    "predict jobs need exactly one of benchmark/trace_file"
                )
            if self.policies:
                raise SpecError(
                    "predict jobs are analytical and take no policies; "
                    "follow-up simulation jobs pick theirs automatically"
                )
            for label, values in (
                ("explore_sets", self.explore_sets),
                ("explore_ways", self.explore_ways),
            ):
                for value in values:
                    if not isinstance(value, int) or value < 1:
                        raise SpecError(
                            f"{label} entries must be positive ints, got {value!r}"
                        )
            for value in self.explore_sets:
                if value & (value - 1):
                    raise SpecError(
                        f"explore_sets entries must be powers of two, got {value}"
                    )
            if self.pd_max < 1 or self.pd_step < 1 or self.d_max < 1:
                raise SpecError(
                    "pd_max, pd_step and d_max must be >= 1, got "
                    f"{self.pd_max}/{self.pd_step}/{self.d_max}"
                )
            if self.top_k < 0:
                raise SpecError(f"top_k must be >= 0, got {self.top_k}")
        else:
            if not self.mixes:
                raise SpecError("mix_matrix jobs need a non-empty mixes dict")
            if not self.policies:
                raise SpecError("mix_matrix jobs need at least one policy")
        keys = [key for key, _, _ in self.policy_items()]
        if len(set(keys)) != len(keys):
            raise SpecError(f"duplicate policy keys in spec: {keys}")
        if self.workers < 0:
            raise SpecError(f"workers must be >= 0, got {self.workers}")
        if self.window_size is not None and self.window_size <= 0:
            raise SpecError(f"window_size must be positive, got {self.window_size}")

    def policy_items(self) -> list[tuple[str, str, dict]]:
        """Normalize ``policies`` into ``(key, name, kwargs)`` triples."""
        items = []
        for entry in self.policies:
            if isinstance(entry, str):
                items.append((entry, entry, {}))
            elif isinstance(entry, dict) and "name" in entry:
                items.append(
                    (
                        str(entry.get("key", entry["name"])),
                        str(entry["name"]),
                        dict(entry.get("kwargs", {})),
                    )
                )
            else:
                raise SpecError(
                    f"policy entries must be a name or a {{name, key, kwargs}} "
                    f"dict, got {entry!r}"
                )
        return items

    def to_dict(self) -> dict:
        """The JSON-ready form (round-trips via :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        """Rebuild a spec from :meth:`to_dict` output (tolerates extras)."""
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"unknown spec fields: {sorted(unknown)}")
        return cls(**data)


def policy_factories(spec: SweepSpec) -> dict[str, Callable]:
    """Build the ``{cell key: zero-arg factory}`` dict for a spec.

    Factories are ``functools.partial`` of the module-level registry
    lookup, so they pickle cleanly into pool workers. Unknown policy
    names raise :class:`SpecError` (with the known names) rather than
    failing later inside a worker.
    """
    from repro.policies.base import make_policy, registered_policies

    known = set(registered_policies())
    factories: dict[str, Callable] = {}
    for key, name, kwargs in spec.policy_items():
        if name not in known:
            raise SpecError(
                f"unknown policy {name!r}; known: {', '.join(sorted(known))}"
            )
        factories[key] = partial(make_policy, name, **kwargs)
    return factories


def load_matrix_source(spec: SweepSpec):
    """Resolve a matrix/predict job's workload: a generated benchmark
    :class:`~repro.traces.trace.Trace`, or an on-disk trace opened as a
    chunked :class:`~repro.traces.stream.TraceStream`. Benchmark
    generation uses ``trace_num_sets`` when set (so follow-up jobs can
    simulate other geometries on the identical trace), ``num_sets``
    otherwise."""
    if spec.trace_file is not None:
        from repro.traces.formats import open_trace

        return open_trace(spec.trace_file, format=spec.trace_format)
    from repro.workloads.spec_like import make_benchmark_trace

    generation_sets = (
        spec.trace_num_sets if spec.trace_num_sets is not None else spec.num_sets
    )
    return make_benchmark_trace(
        spec.benchmark,
        length=spec.length,
        num_sets=generation_sets,
        seed=spec.seed,
    )


def predict_followup_specs(spec: SweepSpec, frontier: list) -> list:
    """Simulation specs for a predict job's top-K frontier geometries.

    ``frontier`` entries are the explore manifest's frontier dicts
    (``num_sets``, ``ways``, ``best_pd``, ...), best predicted hit rate
    first. Each follow-up is a single-cell ``matrix`` job in the same
    namespace simulating SPDP-B at the predicted-best static PD on the
    predict pass's exact trace: ``trace_num_sets`` pins benchmark
    generation to the predict job's generation parameter while
    ``num_sets``/``ways`` take the frontier geometry, keeping the trace
    fingerprint — the prediction-error report's join key — identical
    across the predict job and every follow-up. The cell label
    ``spdp-<pd>`` is what ``repro obs report`` parses the simulated PD
    back out of.
    """
    followups = []
    for entry in frontier[: max(spec.top_k, 0)]:
        best_pd = int(entry["best_pd"])
        followups.append(
            SweepSpec(
                kind="matrix",
                namespace=spec.namespace,
                benchmark=spec.benchmark,
                trace_file=spec.trace_file,
                trace_format=spec.trace_format,
                length=spec.length,
                seed=spec.seed,
                policies=[
                    {
                        "key": f"spdp-{best_pd}",
                        "name": "pdp",
                        "kwargs": {"static_pd": best_pd, "bypass": True},
                    }
                ],
                num_sets=int(entry["num_sets"]),
                ways=int(entry["ways"]),
                line_size=spec.line_size,
                engine=spec.engine,
                workers=spec.workers,
                window_size=spec.window_size,
                match_git_sha=spec.match_git_sha,
                force=spec.force,
                trace_num_sets=(
                    None
                    if spec.benchmark is None
                    else (
                        spec.trace_num_sets
                        if spec.trace_num_sets is not None
                        else spec.num_sets
                    )
                ),
            )
        )
    return followups


def load_mix_traces(spec: SweepSpec) -> dict[str, list]:
    """Materialize a mix_matrix job's per-thread benchmark traces."""
    from repro.workloads.spec_like import make_benchmark_trace

    return {
        str(mix_key): [
            make_benchmark_trace(
                name, length=spec.length, num_sets=spec.num_sets, seed=spec.seed
            )
            for name in names
        ]
        for mix_key, names in spec.mixes.items()
    }


def spec_geometry(spec: SweepSpec):
    """The spec's :class:`~repro.memory.cache.CacheGeometry`."""
    from repro.memory.cache import CacheGeometry

    return CacheGeometry(
        num_sets=spec.num_sets, ways=spec.ways, line_size=spec.line_size
    )


@dataclass
class JobRecord:
    """One submitted sweep job and its lifecycle bookkeeping.

    ``queue_wait_s`` (submit to start) and ``runtime_s`` (start to
    finish) are filled by the daemon as the job moves through its
    lifecycle; ``repro jobs`` surfaces them as WAIT/RUN columns and the
    daemon's ``stats`` verb aggregates them into latency histograms.
    """

    job_id: str
    spec: SweepSpec
    state: str = "queued"
    submitted_at: str = field(default_factory=utc_now_iso)
    started_at: str | None = None
    finished_at: str | None = None
    total_cells: int = 0
    skipped_cells: int = 0
    ran_cells: int = 0
    failed_cells: int = 0
    interrupted: bool = False
    error: str | None = None
    queue_wait_s: float | None = None
    runtime_s: float | None = None

    @classmethod
    def new(cls, spec: SweepSpec) -> "JobRecord":
        """A fresh queued record with a sortable unique job id."""
        return cls(job_id=new_run_id(), spec=spec)

    @property
    def terminal(self) -> bool:
        """Whether the job will never change state again."""
        return self.state in TERMINAL_STATES

    def to_dict(self) -> dict:
        """The JSON-ready form (round-trips via :meth:`from_dict`)."""
        data = asdict(self)
        data["spec"] = self.spec.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        payload = dict(data)
        payload["spec"] = SweepSpec.from_dict(payload.get("spec", {}))
        known = set(cls.__dataclass_fields__)
        payload = {k: v for k, v in payload.items() if k in known}
        return cls(**payload)


class JobStore:
    """Directory-backed persistence for job records and namespaces.

    Layout under the service root::

        <root>/jobs/<job_id>.json        one JSON file per job, atomic
        <root>/namespaces/<namespace>/   manifest dir per tenant
        <root>/service.sock              the daemon's unix socket

    Records are written with temp-file + ``os.replace`` so a reader (or
    a crashed writer) never observes a partial document — the property
    the restart-recovery path depends on.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.namespaces_dir = self.root / "namespaces"

    def ensure_layout(self) -> None:
        """Create the root/jobs/namespaces directories."""
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.namespaces_dir.mkdir(parents=True, exist_ok=True)

    def namespace_dir(self, namespace: str) -> Path:
        """The manifest directory of one namespace (created on demand)."""
        path = self.namespaces_dir / namespace
        path.mkdir(parents=True, exist_ok=True)
        return path

    def save(self, record: JobRecord) -> Path:
        """Atomically persist one record; returns its path."""
        self.ensure_layout()
        path = self.jobs_dir / f"{record.job_id}.json"
        payload = json.dumps(record.to_dict(), indent=2, sort_keys=True)
        handle, temp_path = tempfile.mkstemp(dir=self.jobs_dir, suffix=".json.tmp")
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        return path

    def get(self, job_id: str) -> JobRecord | None:
        """Load one record, or None when unknown/unreadable."""
        path = self.jobs_dir / f"{job_id}.json"
        try:
            with open(path, encoding="utf-8") as fh:
                return JobRecord.from_dict(json.load(fh))
        except (OSError, ValueError, KeyError, TypeError, SpecError):
            return None

    def list_jobs(self) -> list[JobRecord]:
        """Every readable record, sorted by (submitted_at, job_id)."""
        records = []
        if self.jobs_dir.is_dir():
            for path in sorted(self.jobs_dir.glob("*.json")):
                record = self.get(path.stem)
                if record is not None:
                    records.append(record)
        records.sort(key=lambda r: (r.submitted_at, r.job_id))
        return records

    def recover(self) -> list[JobRecord]:
        """Restart recovery: re-queue interrupted work.

        Jobs found ``running`` were interrupted by a daemon death — flip
        them back to ``queued`` with ``interrupted=True`` (the resume
        scheduler skips their completed cells). Returns every job now
        pending, in submission order, ready to enqueue.
        """
        pending = []
        for record in self.list_jobs():
            if record.state == "running":
                record.state = "queued"
                record.interrupted = True
                self.save(record)
            if record.state == "queued":
                pending.append(record)
        return pending


__all__ = [
    "JOB_STATES",
    "JobRecord",
    "JobStore",
    "SpecError",
    "SweepSpec",
    "TERMINAL_STATES",
    "VALID_KINDS",
    "load_matrix_source",
    "load_mix_traces",
    "policy_factories",
    "predict_followup_specs",
    "spec_geometry",
]
