"""Manifest-driven resume scheduling for sweep grids.

The source of truth for "which cells already ran" is the per-cell run
manifests (:mod:`repro.obs.manifest`) that ``run_matrix`` /
``run_mix_matrix`` write into a namespace directory. Before dispatching
a cell, the scheduler matches the cell's *identity* — manifest kind,
cell label, workload name, trace fingerprint, cache geometry, engine,
and (behind the ``match_git_sha`` knob) the git SHA the manifest was
written at — against the namespace. Matching cells are skipped and
their results reconstructed from the manifest, so an interrupted sweep
restarts where it died and the merged output is bit-identical to an
uninterrupted run for everything a manifest persists (counters, derived
metrics, and the windowed time-series payload).

Trust rules:

- A manifest only exists if its run completed (manifests are written
  atomically *after* a successful simulation), so existence == cell
  complete.
- A namespace containing unparseable manifest files cannot be trusted —
  a corrupt cell manifest would silently re-run (or worse, mis-skip)
  work — so resuming over one raises :class:`CorruptManifestError`
  unless ``force=True``.
- When the job asked for a windowed time-series, a manifest without a
  matching ``window_size`` payload does not satisfy the cell (the
  resumed merge would lose windows) and the cell re-runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Callable

from repro.memory.cache import CacheGeometry
from repro.obs.manifest import (
    Manifest,
    ManifestLoadReport,
    fingerprint_source,
    scan_manifests,
    trace_fingerprint,
)
from repro.obs.manifest import git_sha as _git_sha
from repro.obs.metrics import METRICS
from repro.obs.progress import ProgressEvent, ProgressReporter
from repro.obs.spans import SpanTracer
from repro.obs.trace_log import EVENTS_FILENAME, TraceLog
from repro.sim.multi_core import MultiCoreResult, ThreadOutcome
from repro.sim.parallel import run_matrix, run_mix_matrix
from repro.sim.single_core import SingleCoreResult
from repro.workloads.mixes import interleave_traces


class CorruptManifestError(RuntimeError):
    """Refusal to resume over a namespace with unparseable manifests.

    ``skipped`` carries the offending
    :class:`repro.obs.manifest.SkippedManifest` records; pass
    ``force=True`` (after inspecting or deleting the files) to resume
    anyway, treating the corrupt files as absent.
    """

    def __init__(self, skipped) -> None:
        paths = ", ".join(s.path for s in skipped)
        super().__init__(
            f"refusing to resume over {len(skipped)} corrupt manifest "
            f"file(s) (pass force=True to override): {paths}"
        )
        self.skipped = list(skipped)


@dataclass
class ResumePlan:
    """Outcome of matching a grid against existing manifests.

    ``skipped`` maps already-complete cell keys to results reconstructed
    from their manifests; ``to_run`` lists the keys still needing
    simulation, in original grid order. ``fingerprint`` records the
    identity digest(s) the match used.
    """

    skipped: dict = field(default_factory=dict)
    to_run: list = field(default_factory=list)
    fingerprint: str | dict | None = None

    @property
    def total(self) -> int:
        """Cells in the full grid."""
        return len(self.skipped) + len(self.to_run)


def check_resume_substrate(
    manifest_dir: str | os.PathLike, force: bool = False
) -> ManifestLoadReport:
    """Scan a namespace, refusing corrupt state unless forced."""
    report = scan_manifests(manifest_dir)
    if report.skipped and not force:
        raise CorruptManifestError(report.skipped)
    return report


def single_core_result_from_manifest(manifest: Manifest) -> SingleCoreResult:
    """Rebuild a :class:`SingleCoreResult` from an ``llc`` cell manifest.

    Counters come back bit-identical (they are JSON integers) and
    derived floats (IPC) round-trip exactly (JSON floats preserve the
    full ``repr``). ``extra`` carries only what manifests persist: the
    windowed time-series payload, when one was recorded.
    """
    stats = manifest.stats
    extra: dict = {}
    if manifest.timeseries:
        extra["timeseries"] = manifest.timeseries
    return SingleCoreResult(
        name=manifest.workload,
        accesses=stats["accesses"],
        hits=stats["hits"],
        misses=stats["misses"],
        bypasses=stats["bypasses"],
        instructions=stats["instructions"],
        ipc=manifest.metrics["ipc"],
        evictions=stats.get("evictions", 0),
        extra=extra,
    )


def multi_core_result_from_manifest(manifest: Manifest) -> MultiCoreResult:
    """Rebuild a :class:`MultiCoreResult` from a ``shared_llc`` manifest."""
    threads = [ThreadOutcome(**t) for t in manifest.stats["threads"]]
    extra: dict = {"singles": list(manifest.stats.get("singles", []))}
    if manifest.timeseries:
        extra["timeseries"] = manifest.timeseries
    return MultiCoreResult(
        name=manifest.workload,
        threads=threads,
        weighted=manifest.metrics["weighted"],
        throughput=manifest.metrics["throughput"],
        hmean=manifest.metrics["hmean"],
        extra=extra,
    )


def _geometry_matches(manifest: Manifest, geometry: CacheGeometry) -> bool:
    """Whether a manifest's recorded config is this cell's geometry."""
    config = manifest.config if isinstance(manifest.config, dict) else {}
    return (
        config.get("num_sets") == geometry.num_sets
        and config.get("ways") == geometry.ways
        and config.get("line_size") == geometry.line_size
    )


def _window_matches(manifest: Manifest, window_size: int | None) -> bool:
    """Whether a manifest satisfies the job's windowed-series request."""
    if window_size is None:
        return True
    timeseries = manifest.timeseries if isinstance(manifest.timeseries, dict) else {}
    return timeseries.get("window_size") == window_size


def manifest_satisfies_cell(
    manifest: Manifest,
    kind: str,
    label: str,
    workload: str,
    fingerprint: str | None,
    geometry: CacheGeometry,
    engine: str,
    window_size: int | None = None,
    match_git_sha: bool = False,
) -> bool:
    """The cell-identity match: does this manifest prove the cell ran?

    All of (kind, label, workload, trace fingerprint, geometry, engine)
    must agree; a None fingerprint on either side never matches (an
    unidentifiable trace must re-run — this is why the sweep runners now
    always record real fingerprints). ``match_git_sha=True`` adds the
    code-state dimension: the manifest's recorded SHA must equal the
    current HEAD.
    """
    if manifest.kind != kind or manifest.label != label:
        return False
    if manifest.workload != workload or manifest.engine != engine:
        return False
    if fingerprint is None or manifest.trace_fingerprint != fingerprint:
        return False
    if not _geometry_matches(manifest, geometry):
        return False
    if not _window_matches(manifest, window_size):
        return False
    if match_git_sha and manifest.git_sha != _git_sha():
        return False
    return True


def _emit_skip_events(
    plan: ResumePlan,
    manifest_dir: str | os.PathLike | None,
    on_event: Callable[[ProgressEvent], None] | None,
) -> None:
    """Broadcast one ``skipped`` event per resumed cell.

    Events go to the caller's ``on_event`` callback and — matching the
    grid runners' observability contract — append to the namespace's
    ``events.jsonl``, so a resumed sweep's log shows exactly which cells
    were satisfied from manifests.
    """
    if not plan.skipped:
        return
    METRICS.inc("scheduler.cells_skipped", len(plan.skipped))
    log = (
        TraceLog(Path(manifest_dir) / EVENTS_FILENAME)
        if manifest_dir is not None
        else None
    )
    start = perf_counter()
    try:
        for done, key in enumerate(plan.skipped, start=1):
            event = ProgressEvent(
                kind="skipped",
                key=str(key),
                done=done,
                total=len(plan.skipped),
                elapsed_s=perf_counter() - start,
            )
            if log is not None:
                log.emit_progress(event)
            if on_event is not None:
                on_event(event)
    finally:
        if log is not None:
            log.close()


def plan_matrix_resume(
    manifests: list[Manifest],
    keys: list,
    workload: str,
    fingerprint: str | None,
    geometry: CacheGeometry,
    engine: str,
    window_size: int | None = None,
    match_git_sha: bool = False,
) -> ResumePlan:
    """Match a ``run_matrix`` grid against existing cell manifests."""
    plan = ResumePlan(fingerprint=fingerprint)
    for key in keys:
        match = next(
            (
                m
                for m in reversed(manifests)
                if manifest_satisfies_cell(
                    m,
                    "llc",
                    str(key),
                    workload,
                    fingerprint,
                    geometry,
                    engine,
                    window_size=window_size,
                    match_git_sha=match_git_sha,
                )
            ),
            None,
        )
        if match is not None:
            plan.skipped[key] = single_core_result_from_manifest(match)
        else:
            plan.to_run.append(key)
    return plan


def plan_mix_resume(
    manifests: list[Manifest],
    grid: list,
    mix_fingerprints: dict,
    geometry: CacheGeometry,
    engine: str,
    match_git_sha: bool = False,
) -> ResumePlan:
    """Match a ``run_mix_matrix`` grid against ``shared_llc`` manifests.

    ``grid`` holds ``(mix_key, policy_key)`` pairs;
    ``mix_fingerprints`` maps each mix key to the fingerprint of its
    interleaved trace (what ``run_shared_llc`` records).
    """
    plan = ResumePlan(fingerprint=dict(mix_fingerprints))
    for mix_key, policy_key in grid:
        key = (mix_key, policy_key)
        match = next(
            (
                m
                for m in reversed(manifests)
                if manifest_satisfies_cell(
                    m,
                    "shared_llc",
                    str(key),
                    mix_key,
                    mix_fingerprints.get(mix_key),
                    geometry,
                    engine,
                    match_git_sha=match_git_sha,
                )
            ),
            None,
        )
        if match is not None:
            plan.skipped[key] = multi_core_result_from_manifest(match)
        else:
            plan.to_run.append(key)
    return plan


def run_resumable_matrix(
    trace,
    factories: dict,
    geometry: CacheGeometry,
    manifest_dir: str | os.PathLike,
    timing=None,
    engine: str = "vector",
    max_workers: int | None = None,
    window_size: int | None = None,
    match_git_sha: bool = False,
    force: bool = False,
    on_event: Callable[[ProgressEvent], None] | None = None,
) -> tuple[dict, ResumePlan]:
    """A :func:`repro.sim.parallel.run_matrix` that resumes from manifests.

    Scans ``manifest_dir`` (refusing corrupt state unless ``force``),
    skips every cell whose manifest matches (emitting ``skipped``
    events), runs the remainder through ``run_matrix`` with the same
    manifest directory, and merges — preserving the original factory
    order. The merged results are bit-identical to an uninterrupted run
    for all manifest-persisted fields; resumed cells' ``extra`` carries
    only the windowed time-series (transient driver extras like PDP's
    ``pd_history`` exist only on freshly run cells).

    Returns ``(results, plan)``.

    With a manifest directory (always, here) the phases are traced to
    ``spans.jsonl``: a ``job`` root span wrapping a ``resume-scan`` span
    (manifest matching + skip events) and a ``run-grid`` span under
    which ``run_matrix`` nests its own grid/cell spans — `repro obs
    trace <dir>` shows where a resumed sweep's wall time went.
    """
    tracer = SpanTracer.for_dir(manifest_dir)
    try:
        with tracer.span("job", kind="matrix", workload=str(trace.name)):
            with tracer.span("resume-scan") as scan_span:
                report = check_resume_substrate(manifest_dir, force=force)
                fingerprint = fingerprint_source(trace)
                plan = plan_matrix_resume(
                    report.manifests,
                    list(factories),
                    trace.name,
                    fingerprint,
                    geometry,
                    engine,
                    window_size=window_size,
                    match_git_sha=match_git_sha,
                )
                _emit_skip_events(plan, manifest_dir, on_event)
                scan_span.set("skipped", len(plan.skipped))
                scan_span.set("to_run", len(plan.to_run))
            fresh: dict = {}
            if plan.to_run:
                remaining = {key: factories[key] for key in plan.to_run}
                with tracer.span("run-grid", cells=len(plan.to_run)):
                    fresh = run_matrix(
                        trace,
                        remaining,
                        geometry,
                        timing=timing,
                        max_workers=max_workers,
                        engine=engine,
                        manifest_dir=manifest_dir,
                        on_event=on_event,
                        window_size=window_size,
                    )
    finally:
        tracer.close()
    results = {
        key: (plan.skipped[key] if key in plan.skipped else fresh[key])
        for key in factories
    }
    return results, plan


def run_resumable_mix_matrix(
    mixes: dict,
    factories: dict,
    geometry: CacheGeometry,
    manifest_dir: str | os.PathLike,
    timing=None,
    singles: dict | None = None,
    engine: str = "fast",
    max_workers: int | None = None,
    match_git_sha: bool = False,
    force: bool = False,
    on_event: Callable[[ProgressEvent], None] | None = None,
) -> tuple[dict, ResumePlan]:
    """A :func:`repro.sim.parallel.run_mix_matrix` that resumes from
    manifests (the shared-LLC counterpart of
    :func:`run_resumable_matrix`).

    Mix identity uses the fingerprint of each mix's round-robin
    interleaved trace — exactly what ``run_shared_llc`` records in its
    cell manifests — recomputed here with the same
    :func:`~repro.workloads.mixes.interleave_traces` the simulation
    uses. Returns ``(results, plan)``.
    """
    tracer = SpanTracer.for_dir(manifest_dir)
    try:
        with tracer.span("job", kind="mix_matrix"):
            with tracer.span("resume-scan") as scan_span:
                report = check_resume_substrate(manifest_dir, force=force)
                mix_fingerprints = {
                    mix_key: trace_fingerprint(interleave_traces(traces)[0])
                    for mix_key, traces in mixes.items()
                }
                grid = [
                    (mix_key, policy_key)
                    for mix_key in mixes
                    for policy_key in factories
                ]
                plan = plan_mix_resume(
                    report.manifests,
                    grid,
                    mix_fingerprints,
                    geometry,
                    engine,
                    match_git_sha=match_git_sha,
                )
                _emit_skip_events(plan, manifest_dir, on_event)
                scan_span.set("skipped", len(plan.skipped))
                scan_span.set("to_run", len(plan.to_run))
            fresh: dict = {}
            if plan.to_run:
                needed_mixes = {mix_key for mix_key, _ in plan.to_run}
                needed_policies = {policy_key for _, policy_key in plan.to_run}
                # run_mix_matrix runs full sub-grids; restrict both axes
                # to what is still missing, then run any leftover odd
                # cells serially.
                sub_mixes = {k: v for k, v in mixes.items() if k in needed_mixes}
                sub_factories = {
                    k: v for k, v in factories.items() if k in needed_policies
                }
                sub_grid = [(m, p) for m in sub_mixes for p in sub_factories]
                extra_cells = [key for key in sub_grid if key not in plan.to_run]
                with tracer.span("run-grid", cells=len(plan.to_run)):
                    if not extra_cells:
                        fresh = run_mix_matrix(
                            sub_mixes,
                            sub_factories,
                            geometry,
                            timing=timing,
                            singles=None
                            if singles is None
                            else {k: singles[k] for k in sub_mixes},
                            max_workers=max_workers,
                            engine=engine,
                            manifest_dir=manifest_dir,
                            on_event=on_event,
                        )
                    else:
                        # Ragged remainder (different policies missing per
                        # mix): run each missing cell as its own
                        # single-cell grid.
                        for mix_key, policy_key in plan.to_run:
                            cell = run_mix_matrix(
                                {mix_key: mixes[mix_key]},
                                {policy_key: factories[policy_key]},
                                geometry,
                                timing=timing,
                                singles=None
                                if singles is None
                                else {mix_key: singles[mix_key]},
                                max_workers=max_workers,
                                engine=engine,
                                manifest_dir=manifest_dir,
                                on_event=on_event,
                            )
                            fresh.update(cell)
    finally:
        tracer.close()
    results = {
        key: (plan.skipped[key] if key in plan.skipped else fresh[key])
        for key in grid
    }
    return results, plan


def _matching_explore_manifest(
    report: ManifestLoadReport, fingerprint: str, config: dict
) -> Manifest | None:
    """The namespace's ``kind="explore"`` manifest satisfying a predict
    cell (same trace fingerprint, same design-space config), or None."""
    for manifest in report.manifests:
        if manifest.kind != "explore":
            continue
        if manifest.trace_fingerprint != fingerprint:
            continue
        if all(manifest.config.get(key) == value for key, value in config.items()):
            return manifest
    return None


def execute_predict(
    spec,
    manifest_dir: str | os.PathLike,
    on_event: Callable[[ProgressEvent], None] | None = None,
) -> dict:
    """Run one ``predict`` spec: the analytical explorer with resume.

    The cell identity is (trace fingerprint, design-space config): when
    the namespace already holds a ``kind="explore"`` manifest matching
    both, the pass is skipped and the frontier reloaded from it —
    profiling is cheap but not free, and skip-on-resume keeps predict
    jobs idempotent like their simulation siblings. Returns the usual
    summary dict plus ``frontier`` (the ranked geometry dicts) and
    ``followups`` (``top_k`` single-cell matrix specs as dicts, ready
    for :meth:`SweepSpec.from_dict` — the daemon auto-submits them).
    """
    from repro.explore.explorer import DEFAULT_SETS, DEFAULT_WAYS, explore
    from repro.service.jobs import load_matrix_source, predict_followup_specs

    spec.validate()
    report = check_resume_substrate(manifest_dir, force=spec.force)
    trace = load_matrix_source(spec)
    sets = tuple(spec.explore_sets) or DEFAULT_SETS
    ways = tuple(spec.explore_ways) or DEFAULT_WAYS
    config = {
        "sets": sorted(set(int(s) for s in sets)),
        "ways": sorted(set(int(w) for w in ways)),
        "pd_max": spec.pd_max,
        "pd_step": spec.pd_step,
        "d_max": spec.d_max,
        "line_size": spec.line_size,
        "model_variant": "default",
    }
    reporter = ProgressReporter(1, on_event, label="predict")
    started = perf_counter()
    existing = None
    if any(m.kind == "explore" for m in report.manifests):
        fingerprint = fingerprint_source(trace)
        existing = _matching_explore_manifest(report, fingerprint, config)
    if existing is not None:
        if on_event is not None:
            on_event(
                ProgressEvent(
                    kind="skipped",
                    key="explore",
                    done=1,
                    total=1,
                    elapsed_s=perf_counter() - started,
                )
            )
        frontier = list(existing.extra.get("frontier", []))
        skipped, ran = 1, 0
    else:
        reporter.started("explore")
        result = explore(
            trace,
            sets=sets,
            ways=ways,
            pd_max=spec.pd_max,
            pd_step=spec.pd_step,
            d_max=spec.d_max,
            line_size=spec.line_size,
            manifest_dir=manifest_dir,
        )
        reporter.finished("explore")
        frontier = [
            {
                "num_sets": p.num_sets,
                "ways": p.ways,
                "capacity_bytes": p.capacity_bytes,
                "best_pd": p.best_pd,
                "best_hit_rate": round(p.best_hit_rate, 9),
                "confidence": p.confidence,
            }
            for p in result.frontier
        ]
        skipped, ran = 0, 1
    followups = predict_followup_specs(spec, frontier) if spec.top_k else []
    return {
        "kind": "predict",
        "total_cells": 1,
        "skipped_cells": skipped,
        "ran_cells": ran,
        "cells": 1,
        "frontier": frontier,
        "followups": [f.to_dict() for f in followups],
    }


def execute_spec(
    spec,
    manifest_dir: str | os.PathLike,
    on_event: Callable[[ProgressEvent], None] | None = None,
) -> dict:
    """Run one :class:`~repro.service.jobs.SweepSpec` with resume.

    The synchronous job body the service worker runs in a thread; also
    directly usable as a library entry point. Returns a summary dict
    (``kind``, ``total_cells``, ``skipped_cells``, ``ran_cells``).
    Simulation failures propagate (after the grid completes its other
    cells and writes its sweep manifest — the ``run_matrix`` contract),
    as does :class:`CorruptManifestError`. ``predict`` specs route to
    :func:`execute_predict`, whose summary additionally carries the
    predicted frontier and any follow-up simulation specs.
    """
    from repro.service.jobs import (
        load_matrix_source,
        load_mix_traces,
        policy_factories,
        spec_geometry,
    )

    if spec.kind == "predict":
        return execute_predict(spec, manifest_dir, on_event)
    spec.validate()
    factories = policy_factories(spec)
    geometry = spec_geometry(spec)
    max_workers = None if spec.workers == 0 else spec.workers
    if spec.kind == "matrix":
        trace = load_matrix_source(spec)
        results, plan = run_resumable_matrix(
            trace,
            factories,
            geometry,
            manifest_dir,
            engine=spec.engine,
            max_workers=max_workers,
            window_size=spec.window_size,
            match_git_sha=spec.match_git_sha,
            force=spec.force,
            on_event=on_event,
        )
    else:
        mixes = load_mix_traces(spec)
        engine = "fast" if spec.engine == "vector" else spec.engine
        results, plan = run_resumable_mix_matrix(
            mixes,
            factories,
            geometry,
            manifest_dir,
            engine=engine,
            max_workers=max_workers,
            match_git_sha=spec.match_git_sha,
            force=spec.force,
            on_event=on_event,
        )
    return {
        "kind": spec.kind,
        "total_cells": plan.total,
        "skipped_cells": len(plan.skipped),
        "ran_cells": len(plan.to_run),
        "cells": len(results),
    }


__all__ = [
    "CorruptManifestError",
    "ResumePlan",
    "check_resume_substrate",
    "execute_predict",
    "execute_spec",
    "manifest_satisfies_cell",
    "multi_core_result_from_manifest",
    "plan_matrix_resume",
    "plan_mix_resume",
    "run_resumable_matrix",
    "run_resumable_mix_matrix",
    "single_core_result_from_manifest",
]
