"""Always-on sweep service: daemon, job store, resume scheduler, protocol.

The service layer turns the batch sweep runners
(:mod:`repro.sim.parallel`) into a long-running, resumable system:

- :mod:`repro.service.protocol` — line-delimited JSON over a unix
  socket; :class:`ServiceClient` is the synchronous client.
- :mod:`repro.service.jobs` — :class:`SweepSpec` (declarative sweep
  descriptions), :class:`JobRecord` lifecycle, :class:`JobStore` atomic
  persistence and restart recovery.
- :mod:`repro.service.scheduler` — manifest-driven resume: skip cells
  whose identity (config, trace fingerprint, engine, optional git SHA)
  matches an existing per-cell manifest, reconstruct their results
  bit-identically, run only the remainder.
- :mod:`repro.service.server` — the :class:`SweepService` asyncio
  daemon behind ``repro serve`` / ``submit`` / ``jobs`` / ``watch``.

See ``docs/SERVICE.md`` for the lifecycle, wire protocol, and resume
rules.
"""

from repro.service.jobs import JobRecord, JobStore, SpecError, SweepSpec
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    ServiceClient,
    service_socket,
)
from repro.service.scheduler import (
    CorruptManifestError,
    ResumePlan,
    execute_spec,
    run_resumable_matrix,
    run_resumable_mix_matrix,
)
from repro.service.server import SweepService, serve

__all__ = [
    "CorruptManifestError",
    "JobRecord",
    "JobStore",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ResumePlan",
    "ServiceClient",
    "SpecError",
    "SweepSpec",
    "SweepService",
    "execute_spec",
    "run_resumable_matrix",
    "run_resumable_mix_matrix",
    "serve",
    "service_socket",
]
