"""Wire protocol of the sweep service: line-delimited JSON over a socket.

Every message — request, response, or streamed event — is one JSON
object serialized onto a single ``\\n``-terminated line (UTF-8, no
embedded newlines), the classic ndjson framing: trivially greppable,
tail-able, and parseable from any language with a socket and a JSON
library. The daemon listens on a unix domain socket that lives inside
its service root (:func:`service_socket`), so addressing a service is
the same as naming its root directory.

Requests carry an ``op`` field::

    {"op": "ping"}
    {"op": "submit", "spec": {...SweepSpec...}}
    {"op": "jobs"}
    {"op": "watch", "job_id": "...", "replay": true}
    {"op": "stats"}
    {"op": "shutdown"}

Responses carry ``ok`` (boolean) plus op-specific payload; failures are
``{"ok": false, "error": "..."}``. ``watch`` is the one streaming op:
the server emits ``{"ok": true, "event": {...}}`` lines (each event a
JSON-ified :class:`repro.obs.progress.ProgressEvent` or job lifecycle
record) and terminates the stream with ``{"ok": true, "done": {...job
record...}}``.

``stats`` is the live-introspection op: one request returns the
daemon's queue depth, jobs-by-state counts, the currently running job
and cell, resume-skip totals, p50/p90/p99 summaries of every latency
histogram, and the full :class:`repro.obs.metrics.MetricsRegistry`
snapshot — what ``repro top`` renders and ``repro obs scrape --prom``
serializes for Prometheus.

:class:`ServiceClient` is the synchronous client used by the CLI
(``repro submit`` / ``jobs`` / ``watch``) and tests; the async helpers
(:func:`read_message` / :func:`write_message`) are the server side.
"""

from __future__ import annotations

import json
import os
import socket
from collections.abc import Iterator
from pathlib import Path

#: Protocol revision, echoed by ``ping`` so clients can detect skew.
PROTOCOL_VERSION = 1

#: Upper bound on one framed line; anything larger is a protocol error
#: (sweep specs and progress events are tiny — a oversized line means a
#: confused or hostile peer, not a legitimate message).
MAX_LINE_BYTES = 1 << 20

#: Socket filename inside a service root directory.
SOCKET_FILENAME = "service.sock"


class ProtocolError(RuntimeError):
    """A malformed, oversized, or non-JSON-object wire message."""


def service_socket(root: str | os.PathLike) -> Path:
    """The unix-socket path for the service rooted at ``root``."""
    return Path(root) / SOCKET_FILENAME


def encode_message(payload: dict) -> bytes:
    """Frame one message: compact JSON plus the terminating newline."""
    line = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message of {len(data)} bytes exceeds MAX_LINE_BYTES "
            f"({MAX_LINE_BYTES})"
        )
    return data


def decode_message(line: bytes | str) -> dict:
    """Parse one framed line back into a message dict."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError("line exceeds MAX_LINE_BYTES")
        line = line.decode("utf-8", errors="replace")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON on the wire: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"wire messages must be JSON objects, got {type(payload).__name__}"
        )
    return payload


def error_response(message: str) -> dict:
    """The canonical failure response."""
    return {"ok": False, "error": message}


async def read_message(reader) -> dict | None:
    """Read one framed message from an asyncio stream reader.

    Returns None on a clean EOF (peer closed the connection). Raises
    :class:`ProtocolError` on malformed input.
    """
    import asyncio

    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise ProtocolError("line exceeds the stream limit") from None
    if not line:
        return None
    return decode_message(line)


async def write_message(writer, payload: dict) -> None:
    """Frame and send one message on an asyncio stream writer."""
    writer.write(encode_message(payload))
    await writer.drain()


class ServiceClient:
    """Synchronous line-delimited JSON client for the sweep daemon.

    Connects lazily on first use; usable as a context manager. One
    client holds one connection and issues requests sequentially (the
    protocol has no multiplexing — open a second client for concurrent
    streams).
    """

    def __init__(self, socket_path: str | os.PathLike, timeout: float = 30.0):
        self.socket_path = str(socket_path)
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._file = None

    def connect(self) -> "ServiceClient":
        """Open the connection (no-op when already connected)."""
        if self._sock is None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
            self._sock = sock
            self._file = sock.makefile("rwb")
        return self

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def _send(self, payload: dict) -> None:
        """Frame and flush one request line."""
        self.connect()
        self._file.write(encode_message(payload))
        self._file.flush()

    def _receive(self) -> dict:
        """Read and decode one response line (errors on EOF)."""
        line = self._file.readline(MAX_LINE_BYTES + 1)
        if not line:
            raise ProtocolError("server closed the connection mid-exchange")
        return decode_message(line)

    def request(self, payload: dict) -> dict:
        """One request → one response; raises on ``ok: false``."""
        self._send(payload)
        response = self._receive()
        if not response.get("ok", False):
            raise ProtocolError(response.get("error", "unknown server error"))
        return response

    def stream(self, payload: dict) -> Iterator[dict]:
        """One request → a stream of responses, ending at ``done``.

        Yields each response dict (including the terminal one, which
        carries ``done``). Raises on any ``ok: false`` line.
        """
        self._send(payload)
        while True:
            response = self._receive()
            if not response.get("ok", False):
                raise ProtocolError(response.get("error", "unknown server error"))
            yield response
            if "done" in response:
                return

    # -- convenience ops ---------------------------------------------------

    def ping(self) -> dict:
        """Health check; returns the server's ping payload."""
        return self.request({"op": "ping"})

    def submit(self, spec: dict) -> dict:
        """Submit one sweep spec; returns the created job record."""
        return self.request({"op": "submit", "spec": spec})["job"]

    def jobs(self) -> list[dict]:
        """List every job record the service knows about."""
        return self.request({"op": "jobs"})["jobs"]

    def watch(self, job_id: str, replay: bool = True) -> Iterator[dict]:
        """Stream a job's progress events; final item carries ``done``."""
        return self.stream({"op": "watch", "job_id": job_id, "replay": replay})

    def stats(self) -> dict:
        """Live service introspection: queue depth, jobs-by-state, the
        running job/cell, latency percentiles, and the full metrics
        snapshot."""
        return self.request({"op": "stats"})

    def shutdown(self) -> dict:
        """Ask an idle server to stop accepting work and exit."""
        return self.request({"op": "shutdown"})


__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServiceClient",
    "SOCKET_FILENAME",
    "decode_message",
    "encode_message",
    "error_response",
    "read_message",
    "service_socket",
    "write_message",
]
