"""The ``repro serve`` daemon: an always-on, resumable sweep service.

:class:`SweepService` is a single-process asyncio server that owns a
*service root* directory (job store + per-namespace manifest dirs + unix
socket), accepts sweep specs over the line-delimited JSON protocol
(:mod:`repro.service.protocol`), and executes them one at a time on a
worker thread — each sweep internally fanning out across a process pool
via :func:`repro.sim.parallel.run_matrix` /
:func:`~repro.sim.parallel.run_mix_matrix`, with per-cell failure
isolation and manifest-driven resume
(:mod:`repro.service.scheduler`).

Durability model: every state transition of a job is persisted
atomically before it is acted on, and cell completion is recorded by the
simulation layer's atomic per-cell manifests. So the daemon can die at
any point — SIGTERM, SIGKILL, power loss — and on restart
:meth:`repro.service.jobs.JobStore.recover` re-queues interrupted jobs,
whose completed cells the resume scheduler then skips. The SIGTERM
handler merely makes the common case tidy (persist ``interrupted=True``
eagerly, close the socket); correctness never depends on it running.

Progress streaming: each job keeps an in-memory event history; ``watch``
clients replay the history and then follow live events. Events are
published from the worker thread via ``loop.call_soon_threadsafe``, so
history appends happen only on the event loop — a subscriber snapshots
``len(history)`` and registers its queue with no await in between, which
makes the replay/live handoff gap-free and duplicate-free.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
from dataclasses import asdict
from datetime import datetime
from time import perf_counter
from typing import Callable

from repro.obs.metrics import METRICS, histogram_percentiles
from repro.service.jobs import JobRecord, JobStore, SpecError, SweepSpec, policy_factories
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    error_response,
    read_message,
    service_socket,
    write_message,
)
from repro.service.scheduler import execute_spec


class SweepService:
    """The sweep daemon: job queue, executor thread, and socket server.

    Args:
        root: the service root directory (created on demand). Holds
            ``jobs/``, ``namespaces/<ns>/`` manifest dirs, and the
            ``service.sock`` unix socket.
        install_signal_handlers: register SIGTERM/SIGINT handlers that
            persist in-flight state and exit. Disable for in-process
            embedding (tests, notebooks) where the host owns signals.
    """

    def __init__(
        self, root: str | os.PathLike, install_signal_handlers: bool = True
    ) -> None:
        self.store = JobStore(root)
        self.socket_path = service_socket(root)
        self.install_signal_handlers = install_signal_handlers
        self._queue: asyncio.Queue[str] = asyncio.Queue()
        self._history: dict[str, list[dict]] = {}
        self._subscribers: dict[str, list[asyncio.Queue]] = {}
        self._current: JobRecord | None = None
        self._current_cell: str | None = None
        self._server: asyncio.AbstractServer | None = None
        self._worker: asyncio.Task | None = None
        self._stopping = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Recover persisted state, bind the socket, start the worker.

        Also turns on the process-wide metrics registry: a daemon must
        always be able to answer a ``stats`` request with live queue
        depth and latency percentiles, regardless of the
        ``$REPRO_TELEMETRY`` gate library users opt into. Forked pool
        workers inherit the enabled registry and their per-task
        snapshots merge back through the grid runners. :meth:`stop`
        restores the registry's prior enabled state so in-process
        embedders (tests) don't leak metrics collection.
        """
        self._metrics_was_enabled = METRICS.enabled
        METRICS.enable()
        self.store.ensure_layout()
        for record in self.store.recover():
            self._queue.put_nowait(record.job_id)
        with contextlib.suppress(OSError):
            self.socket_path.unlink()
        self._server = await asyncio.start_unix_server(
            self._handle_client, path=str(self.socket_path)
        )
        if self.install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError, ValueError):
                    loop.add_signal_handler(signum, self._handle_termination, signum)
        self._worker = asyncio.create_task(self._drain_jobs())

    async def run(self) -> None:
        """Start and serve until :meth:`stop` (or a signal) ends it."""
        await self.start()
        await self._stopping.wait()
        await self.stop()

    async def stop(self) -> None:
        """Graceful in-process shutdown (used by tests and ``shutdown``)."""
        self._stopping.set()
        if self._worker is not None:
            self._worker.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._worker
            self._worker = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        with contextlib.suppress(OSError):
            self.socket_path.unlink()
        if not getattr(self, "_metrics_was_enabled", True):
            METRICS.disable()

    def _handle_termination(self, signum: int) -> None:
        """SIGTERM/SIGINT: persist in-flight state, exit immediately.

        The running job flips back to ``queued`` with
        ``interrupted=True`` so the next daemon resumes it; its completed
        cells are already durable as manifests. ``os._exit`` skips
        teardown on purpose — pool workers die with the process, and
        everything that matters is already on disk.
        """
        record = self._current
        if record is not None and not record.terminal:
            record.state = "queued"
            record.interrupted = True
            with contextlib.suppress(OSError):
                self.store.save(record)
        with contextlib.suppress(OSError):
            self.socket_path.unlink()
        os._exit(0)

    # -- job execution -----------------------------------------------------

    async def _drain_jobs(self) -> None:
        """The single worker loop: pop and run queued jobs in order."""
        while True:
            job_id = await self._queue.get()
            record = self.store.get(job_id)
            if record is None or record.state != "queued":
                continue
            await self._run_job(record)

    async def _run_job(self, record: JobRecord) -> None:
        """Execute one job on a thread; publish lifecycle + progress."""
        from repro.obs.manifest import utc_now_iso

        loop = asyncio.get_running_loop()
        record.state = "running"
        record.started_at = utc_now_iso()
        record.queue_wait_s = self._elapsed_between(
            record.submitted_at, record.started_at
        )
        self.store.save(record)
        self._current = record
        self._publish(record.job_id, {"kind": "job-state", "state": "running"})

        counts = {"skipped": 0, "finished": 0, "failed": 0}

        def on_event(event) -> None:
            if event.kind in counts:
                counts[event.kind] += 1
            if event.kind == "started":
                # Plain attribute write from the worker thread: atomic
                # under the GIL, read by the `stats` verb on the loop.
                self._current_cell = event.key
            loop.call_soon_threadsafe(self._publish, record.job_id, asdict(event))

        namespace_dir = self.store.namespace_dir(record.spec.namespace)
        run_started = perf_counter()
        try:
            summary = await asyncio.to_thread(
                execute_spec, record.spec, namespace_dir, on_event
            )
        except Exception as exc:  # noqa: BLE001 — job isolation boundary
            record.state = "failed"
            record.error = f"{type(exc).__name__}: {exc}"
        else:
            record.state = "done"
            record.total_cells = summary["total_cells"]
            self._submit_followups(record, summary.get("followups") or [])
        record.finished_at = utc_now_iso()
        record.runtime_s = perf_counter() - run_started
        record.skipped_cells = counts["skipped"]
        record.ran_cells = counts["finished"]
        record.failed_cells = counts["failed"]
        if record.state == "done" and counts["failed"]:
            record.state = "failed"
            record.error = f"{counts['failed']} cell(s) failed"
        if record.queue_wait_s is not None:
            METRICS.observe("service.job_queue_wait_s", record.queue_wait_s)
        METRICS.observe("service.job_runtime_s", record.runtime_s)
        METRICS.inc(f"service.jobs_{record.state}")
        self._current = None
        self._current_cell = None
        self.store.save(record)
        self._publish(
            record.job_id,
            {"kind": "job-state", "state": record.state, "error": record.error},
        )
        self._finish_stream(record.job_id)

    @staticmethod
    def _elapsed_between(start_iso: str | None, end_iso: str | None) -> float | None:
        """Seconds between two ISO timestamps, or None when unparsable.

        Job records carry wall-clock ISO strings (they must survive a
        daemon restart, which a ``perf_counter`` origin would not), so
        queue wait is derived from them; clock steps can make this
        slightly off, which is fine for a latency column.
        """
        if not start_iso or not end_iso:
            return None
        try:
            start = datetime.fromisoformat(start_iso)
            end = datetime.fromisoformat(end_iso)
        except ValueError:
            return None
        return max(0.0, (end - start).total_seconds())

    def _submit_followups(self, parent: JobRecord, specs: list) -> None:
        """Queue the simulation jobs a predict job asked for.

        Each spec dict (from ``execute_predict``'s summary) becomes a
        normal queued :class:`JobRecord` — persisted first, so a daemon
        crash between parent completion and follow-up execution recovers
        them like any other queued job. A ``followup`` event on the
        parent's stream links each child id for watchers. A malformed
        follow-up spec fails that follow-up only, never the parent (its
        results are already durable); the error is published instead.
        """
        for spec_dict in specs:
            try:
                spec = SweepSpec.from_dict(spec_dict)
                spec.validate()
                policy_factories(spec)
            except SpecError as exc:
                self._publish(
                    parent.job_id,
                    {"kind": "followup-error", "error": str(exc)},
                )
                continue
            child = JobRecord.new(spec)
            self.store.save(child)
            self._queue.put_nowait(child.job_id)
            self._publish(
                parent.job_id,
                {
                    "kind": "followup",
                    "job_id": child.job_id,
                    "num_sets": spec.num_sets,
                    "ways": spec.ways,
                    "policies": spec.policies,
                },
            )

    # -- event fan-out -----------------------------------------------------

    def _publish(self, job_id: str, event: dict) -> None:
        """Append one event to history and offer it to live watchers.

        Must run on the event loop thread (worker threads get here via
        ``call_soon_threadsafe``) so appends are ordered and the
        snapshot-then-subscribe handoff in ``watch`` stays race-free.
        """
        self._history.setdefault(job_id, []).append(event)
        for queue in self._subscribers.get(job_id, []):
            queue.put_nowait(event)

    def _finish_stream(self, job_id: str) -> None:
        """Signal end-of-stream (None sentinel) to every watcher."""
        for queue in self._subscribers.get(job_id, []):
            queue.put_nowait(None)

    # -- protocol handlers -------------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        """Serve one connection: a sequence of requests until EOF."""
        try:
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError as exc:
                    await write_message(writer, error_response(str(exc)))
                    break
                if message is None:
                    break
                done = await self._dispatch(message, writer)
                if done:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(self, message: dict, writer) -> bool:
        """Handle one request; returns True when the connection is done."""
        op = message.get("op")
        if op == "ping":
            await write_message(
                writer,
                {
                    "ok": True,
                    "protocol": PROTOCOL_VERSION,
                    "queued": self._queue.qsize(),
                    "running": None if self._current is None else self._current.job_id,
                },
            )
            return False
        if op == "submit":
            return await self._op_submit(message, writer)
        if op == "jobs":
            await write_message(
                writer,
                {"ok": True, "jobs": [r.to_dict() for r in self.store.list_jobs()]},
            )
            return False
        if op == "watch":
            await self._op_watch(message, writer)
            return False
        if op == "stats":
            await write_message(writer, self._stats_payload())
            return False
        if op == "shutdown":
            await write_message(writer, {"ok": True, "stopping": True})
            self._stopping.set()
            return True
        await write_message(writer, error_response(f"unknown op {op!r}"))
        return False

    def _stats_payload(self) -> dict:
        """The live ``stats`` response: queue, jobs, latency, metrics.

        Refreshes the registry's service gauges (queue depth, jobs per
        state) so a Prometheus scrape of the embedded snapshot carries
        them, then summarizes every histogram into p50/p90/p99 — the
        cell-level ``grid.cell_runtime_s`` / ``grid.cell_queue_wait_s``
        and the job-level ``service.job_*`` distributions are the ones
        ``repro top`` renders.
        """
        jobs_by_state: dict[str, int] = {}
        for record in self.store.list_jobs():
            jobs_by_state[record.state] = jobs_by_state.get(record.state, 0) + 1
        METRICS.gauge("service.queue_depth", self._queue.qsize())
        for state, count in jobs_by_state.items():
            METRICS.gauge(f"service.jobs_state_{state}", count)
        snapshot = METRICS.snapshot()
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "queue_depth": self._queue.qsize(),
            "jobs_by_state": jobs_by_state,
            "running": None if self._current is None else self._current.job_id,
            "running_cell": self._current_cell,
            "skipped_cells_total": snapshot["counters"].get(
                "scheduler.cells_skipped", 0
            ),
            "percentiles": {
                name: histogram_percentiles(payload)
                for name, payload in snapshot["histograms"].items()
            },
            "metrics": snapshot,
        }

    async def _op_submit(self, message: dict, writer) -> bool:
        """Validate a spec, persist a queued record, enqueue it."""
        try:
            spec = SweepSpec.from_dict(message.get("spec") or {})
            spec.validate()
            policy_factories(spec)  # fail fast on unknown policy names
        except SpecError as exc:
            await write_message(writer, error_response(str(exc)))
            return False
        record = JobRecord.new(spec)
        self.store.save(record)
        self._queue.put_nowait(record.job_id)
        await write_message(writer, {"ok": True, "job": record.to_dict()})
        return False

    async def _op_watch(self, message: dict, writer) -> None:
        """Stream a job's events: replay history, then follow live."""
        job_id = message.get("job_id")
        record = None if job_id is None else self.store.get(job_id)
        if record is None:
            await write_message(writer, error_response(f"unknown job {job_id!r}"))
            return
        replay = bool(message.get("replay", True))
        history = self._history.setdefault(job_id, [])
        queue: asyncio.Queue = asyncio.Queue()
        # Snapshot + subscribe with no await in between: every event is
        # either in the snapshot or will arrive on the queue — never both.
        snapshot = list(history) if replay else []
        live = not record.terminal
        if live:
            self._subscribers.setdefault(job_id, []).append(queue)
        try:
            for event in snapshot:
                await write_message(writer, {"ok": True, "event": event})
            while live:
                event = await queue.get()
                if event is None:
                    break
                await write_message(writer, {"ok": True, "event": event})
        finally:
            if live:
                with contextlib.suppress(ValueError):
                    self._subscribers.get(job_id, []).remove(queue)
        final = self.store.get(job_id) or record
        await write_message(writer, {"ok": True, "done": final.to_dict()})


def serve(root: str | os.PathLike, ready: Callable[[], None] | None = None) -> None:
    """Blocking entry point for ``repro serve``: run a daemon at ``root``."""

    async def _main() -> None:
        service = SweepService(root)
        await service.start()
        if ready is not None:
            ready()
        await service._stopping.wait()
        await service.stop()

    asyncio.run(_main())


__all__ = ["SweepService", "serve"]
