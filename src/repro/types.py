"""Common value types shared across the simulator.

Addresses in this library are *block* addresses: the byte address divided by
the cache line size. All caches, traces and generators speak block addresses,
so the line size only matters when converting capacities to set counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class AccessType(enum.Enum):
    """Kind of memory access presented to a cache."""

    READ = "read"
    WRITE = "write"
    PREFETCH = "prefetch"


@dataclass(frozen=True, slots=True)
class Access:
    """One memory access.

    Attributes:
        address: block address (byte address >> log2(line size)).
        pc: program counter of the instruction issuing the access; used by
            PC-based predictors (SDP). Synthetic workloads fabricate PCs.
        kind: read / write / prefetch.
        thread_id: originating thread (hardware context) for shared caches.
    """

    address: int
    pc: int = 0
    kind: AccessType = AccessType.READ
    thread_id: int = 0


@dataclass(slots=True)
class AccessResult:
    """Outcome of presenting one access to a cache.

    Attributes:
        hit: the block was resident.
        bypassed: the fill was not inserted (non-inclusive bypass policies).
        evicted: block address evicted to make room, if any.
        way: way touched (hit way or fill way); -1 when bypassed.
    """

    hit: bool
    bypassed: bool = False
    evicted: int | None = None
    way: int = -1


@dataclass(slots=True)
class EvictionEvent:
    """Notification describing a line leaving the cache (for stats hooks)."""

    set_index: int
    address: int
    was_reused: bool
    occupancy: int


def block_address(byte_address: int, line_size: int = 64) -> int:
    """Convert a byte address to a block address for ``line_size`` lines."""
    if line_size <= 0 or line_size & (line_size - 1):
        raise ValueError(f"line_size must be a power of two, got {line_size}")
    return byte_address // line_size


__all__ = [
    "Access",
    "AccessResult",
    "AccessType",
    "EvictionEvent",
    "block_address",
]
