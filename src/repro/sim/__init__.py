"""Simulation drivers: configs, single-core and multi-core runs, metrics."""

from repro.sim.config import ExperimentConfig, MachineConfig
from repro.sim.metrics import (
    geometric_mean,
    harmonic_mean_normalized_ipc,
    throughput,
    weighted_ipc,
)
from repro.sim.multi_core import MultiCoreResult, run_shared_llc, single_thread_baselines
from repro.sim.runner import compare_policies, sweep_static_pd
from repro.sim.single_core import SingleCoreResult, run_hierarchy, run_llc

__all__ = [
    "ExperimentConfig",
    "MachineConfig",
    "MultiCoreResult",
    "SingleCoreResult",
    "compare_policies",
    "geometric_mean",
    "harmonic_mean_normalized_ipc",
    "run_hierarchy",
    "run_llc",
    "run_shared_llc",
    "single_thread_baselines",
    "sweep_static_pd",
    "throughput",
    "weighted_ipc",
]
