"""Simulation drivers: configs, single-core and multi-core runs, metrics."""

from repro.sim.config import ExperimentConfig, MachineConfig
from repro.sim.metrics import (
    geometric_mean,
    harmonic_mean_normalized_ipc,
    throughput,
    weighted_ipc,
)
from repro.sim.multi_core import MultiCoreResult, run_shared_llc, single_thread_baselines
from repro.sim.parallel import (
    parallel_compare_policies,
    parallel_sweep_static_pd,
    resolve_max_workers,
    run_matrix,
    run_mix_matrix,
)
from repro.sim.runner import compare_policies, sweep_static_pd
from repro.sim.single_core import ENGINES, SingleCoreResult, run_hierarchy, run_llc

__all__ = [
    "ENGINES",
    "ExperimentConfig",
    "MachineConfig",
    "MultiCoreResult",
    "SingleCoreResult",
    "compare_policies",
    "geometric_mean",
    "harmonic_mean_normalized_ipc",
    "parallel_compare_policies",
    "parallel_sweep_static_pd",
    "resolve_max_workers",
    "run_hierarchy",
    "run_llc",
    "run_matrix",
    "run_mix_matrix",
    "run_shared_llc",
    "single_thread_baselines",
    "sweep_static_pd",
    "throughput",
    "weighted_ipc",
]
