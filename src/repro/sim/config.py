"""Machine and experiment configurations.

:class:`MachineConfig` mirrors the paper's Table 1 (Nehalem-like). Pure
Python cannot simulate 1B-instruction windows, so every experiment takes an
:class:`ExperimentConfig` with a scaled LLC geometry and trace length;
``ExperimentConfig.paper_scale()`` restores the full Table 1 geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.cache import CacheGeometry
from repro.memory.timing import TimingModel


@dataclass(frozen=True)
class MachineConfig:
    """The paper's Table 1 machine."""

    pipeline_depth: int = 8
    processor_width: int = 4
    instruction_window: int = 128
    l1d: CacheGeometry = field(
        default_factory=lambda: CacheGeometry.from_capacity(32 * 1024, ways=8)
    )
    l2: CacheGeometry = field(
        default_factory=lambda: CacheGeometry.from_capacity(256 * 1024, ways=8)
    )
    llc: CacheGeometry = field(
        default_factory=lambda: CacheGeometry.from_capacity(2 * 1024 * 1024, ways=16)
    )
    l1_latency: int = 2
    l2_latency: int = 10
    llc_latency: int = 30
    memory_latency: int = 200

    def timing(self, mlp: float = 2.0) -> TimingModel:
        """Timing model with this machine's latencies."""
        return TimingModel(
            issue_width=self.processor_width,
            l1_latency=self.l1_latency,
            l2_latency=self.l2_latency,
            llc_latency=self.llc_latency,
            memory_latency=self.memory_latency,
            mlp=mlp,
        )


@dataclass(frozen=True)
class ExperimentConfig:
    """Scaled experiment parameters shared by tests and benchmarks.

    Attributes:
        llc: LLC geometry (16-way like the paper; fewer sets for speed).
        d_max: maximum protecting distance (256 in the paper).
        step: S_c of the RD counter array (4 single-core, 16 multi-core).
        n_c: RPD bits per line.
        recompute_interval: dynamic-PD recomputation period in accesses
            (512K in the paper; scaled to trace length here).
        trace_length: default single-core trace length.
        timing: the analytic core timing model.
    """

    llc: CacheGeometry = field(default_factory=lambda: CacheGeometry(64, 16))
    d_max: int = 256
    step: int = 4
    n_c: int = 8
    recompute_interval: int = 4096
    trace_length: int = 60_000
    timing: TimingModel = field(default_factory=TimingModel)

    @property
    def associativity(self) -> int:
        """LLC ways (the W of the paper's formulas)."""
        return self.llc.ways

    @property
    def num_sets(self) -> int:
        """LLC set count."""
        return self.llc.num_sets

    @classmethod
    def paper_scale(cls) -> ExperimentConfig:
        """Full Table 1 LLC: 2MB, 16-way, 2048 sets, 512K-access interval."""
        return cls(
            llc=CacheGeometry.from_capacity(2 * 1024 * 1024, ways=16),
            recompute_interval=512 * 1024,
            trace_length=4_000_000,
        )

    @classmethod
    def small(cls) -> ExperimentConfig:
        """Tiny geometry for fast unit tests."""
        return cls(
            llc=CacheGeometry(16, 16),
            recompute_interval=2048,
            trace_length=20_000,
        )

    def shared_llc(self, cores: int) -> CacheGeometry:
        """Shared-LLC geometry: per-core size times the core count (Sec. 5)."""
        return CacheGeometry(
            num_sets=self.llc.num_sets * cores,
            ways=self.llc.ways,
            line_size=self.llc.line_size,
        )


__all__ = ["ExperimentConfig", "MachineConfig"]
