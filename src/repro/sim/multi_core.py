"""Multi-core shared-LLC simulation (Sec. 5 methodology).

Threads interleave round-robin into a shared LLC; a thread finishing its
trace rewinds and keeps running (to keep pressuring the cache), and its
statistics freeze at first completion — exactly the paper's rules. Each
thread's IPC is normalized against the stand-alone LRU run on the same
shared-size LLC, the paper's baseline for W/T/H.

Both drivers accept the same ``engine=`` contract as
:func:`repro.sim.single_core.run_llc`: ``"fast"`` (the default) batches
the whole interleaved run through
:func:`repro.memory.fastpath.run_shared_trace`; ``"reference"`` keeps the
original per-``Access`` loop. The two are observationally identical —
per-thread frozen statistics and the derived W/T/H metrics match exactly
(``tests/test_fastpath_multicore.py``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from time import perf_counter

from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.memory.fastpath import run_shared_trace
from repro.memory.timing import TimingModel
from repro.obs.manifest import Manifest, trace_fingerprint
from repro.obs.manifest import git_sha as _git_sha
from repro.obs.telemetry import TELEMETRY
from repro.obs.timeseries import WindowedRecorder, _WindowFeed
from repro.policies.lru import LRUPolicy
from repro.sim.metrics import (
    harmonic_mean_normalized_ipc,
    throughput,
    weighted_ipc,
)
from repro.sim.single_core import _check_engine, _resolve_recorder, run_llc
from repro.traces.trace import Trace
from repro.workloads.mixes import interleave_traces


@dataclass(slots=True)
class ThreadOutcome:
    """Frozen per-thread statistics from a shared run."""

    accesses: int
    hits: int
    misses: int
    bypasses: int
    instructions: int
    ipc: float

    @property
    def mpki(self) -> float:
        """Misses per thousand instructions (frozen counters)."""
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.misses / self.instructions


@dataclass(slots=True)
class MultiCoreResult:
    """Shared-run outcome plus the three paper metrics."""

    name: str
    threads: list[ThreadOutcome]
    weighted: float
    throughput: float
    hmean: float
    extra: dict = field(default_factory=dict)


def single_thread_baselines(
    traces: list[Trace],
    geometry: CacheGeometry,
    timing: TimingModel | None = None,
    engine: str = "fast",
) -> list[float]:
    """Stand-alone LRU IPC of each thread on the shared-size LLC."""
    timing = timing or TimingModel()
    return [
        run_llc(trace, LRUPolicy(), geometry, timing=timing, engine=engine).ipc
        for trace in traces
    ]


def run_shared_llc(
    traces: list[Trace],
    policy,
    geometry: CacheGeometry,
    timing: TimingModel | None = None,
    singles: list[float] | None = None,
    name: str = "mix",
    engine: str = "fast",
    chunk_size: int | None = None,
    manifest_dir: str | os.PathLike | None = None,
    run_label: str | None = None,
    run_meta: dict | None = None,
    timeseries: WindowedRecorder | None = None,
    window_size: int | None = None,
) -> MultiCoreResult:
    """Run a multi-programmed mix on a shared LLC under ``policy``.

    Args:
        traces: one per-thread trace (addresses are given private spaces).
        policy: fresh thread-aware policy instance for the shared LLC.
        geometry: shared LLC shape.
        singles: stand-alone LRU IPCs (computed here when omitted).
        engine: "fast" (batched kernel) or "reference" (per-Access loop);
            both produce identical per-thread statistics. ``"vector"`` is
            accepted as an alias for the fast kernel — the columnar
            kernels do not cover thread-freeze bookkeeping, and shared
            policies are thread-aware (global state) anyway.
        chunk_size: when set (fast engine), feed the interleaved mix
            through :func:`run_shared_trace` in zero-copy chunks of this
            many accesses, summing the per-thread counters — identical
            statistics to the one-shot call (the streaming contract of
            :func:`repro.sim.single_core.run_llc`, applied to the
            interleaved stream).
        manifest_dir: when set, write a provenance manifest (kind
            ``"shared_llc"``) for this run — explicit only, never read
            from the environment (see :func:`repro.sim.single_core.run_llc`).
        run_label: display label recorded in the manifest (e.g. the
            (mix, policy) grid key); defaults to the policy class name.
        run_meta: extra JSON-native manifest context; a ``seed`` key is
            lifted into the manifest's ``seed`` field.
        timeseries: a :class:`repro.obs.timeseries.WindowedRecorder` for
            per-window statistics over the interleaved stream, including
            per-thread ``thread_accesses``/``thread_hits``/... shares
            that honour the freeze rule (a finished thread stops
            contributing). Windows are bit-identical across engines and
            chunk sizes; the payload lands in
            ``result.extra["timeseries"]`` and the manifest.
        window_size: convenience alternative to ``timeseries`` — record
            with a fresh default-budget recorder of this window size
            (mutually exclusive with ``timeseries``).
    """
    _check_engine(engine)
    recorder = _resolve_recorder(timeseries, window_size)
    if chunk_size is not None and chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    timing = timing or TimingModel()
    start = perf_counter()
    num_threads = len(traces)
    if singles is None:
        singles = single_thread_baselines(traces, geometry, timing, engine=engine)
    mixed, completion = interleave_traces(traces)
    cache = SetAssociativeCache(geometry, policy)
    if recorder is not None:
        recorder.attach(cache, policy, num_threads=num_threads)

    if engine in ("fast", "vector") and (
        chunk_size is not None or recorder is not None
    ):
        accesses = [0] * num_threads
        hits = [0] * num_threads
        misses = [0] * num_threads
        bypasses = [0] * num_threads
        feed = _WindowFeed(recorder, chunk_limit=chunk_size)
        begin = 0
        for sub, take in feed.slices(mixed):
            part = run_shared_trace(
                cache, sub, completion, position_offset=begin
            )
            for totals, counts in zip((accesses, hits, misses, bypasses), part):
                for thread, count in enumerate(counts):
                    totals[thread] += count
            feed.account(take, part)
            begin += take
    elif engine in ("fast", "vector"):
        accesses, hits, misses, bypasses = run_shared_trace(
            cache, mixed, completion
        )
    elif recorder is None:
        accesses = [0] * num_threads
        hits = [0] * num_threads
        misses = [0] * num_threads
        bypasses = [0] * num_threads
        frozen = [False] * num_threads
        for position, access in enumerate(mixed):
            outcome = cache.access(access)
            thread = access.thread_id
            if frozen[thread]:
                continue
            accesses[thread] += 1
            if outcome.hit:
                hits[thread] += 1
            else:
                misses[thread] += 1
                if outcome.bypassed:
                    bypasses[thread] += 1
            if position + 1 >= completion[thread]:
                frozen[thread] = True
    else:
        # Reference loop, windowed: identical per-access semantics, but
        # split at window boundaries with window-local per-thread counts.
        accesses = [0] * num_threads
        hits = [0] * num_threads
        misses = [0] * num_threads
        bypasses = [0] * num_threads
        frozen = [False] * num_threads
        position = 0
        total = len(mixed)
        while position < total:
            take = min(total - position, recorder.pending())
            part = [[0] * num_threads for _ in range(4)]
            for access in mixed.slice(position, position + take):
                outcome = cache.access(access)
                thread = access.thread_id
                position += 1
                if frozen[thread]:
                    continue
                part[0][thread] += 1
                if outcome.hit:
                    part[1][thread] += 1
                else:
                    part[2][thread] += 1
                    if outcome.bypassed:
                        part[3][thread] += 1
                if position >= completion[thread]:
                    frozen[thread] = True
            for totals, counts in zip((accesses, hits, misses, bypasses), part):
                for thread, count in enumerate(counts):
                    totals[thread] += count
            recorder.advance(take, part)

    if recorder is not None:
        recorder.finalize()

    outcomes: list[ThreadOutcome] = []
    for thread in range(num_threads):
        instructions = int(
            round(accesses[thread] * traces[thread].instructions_per_access)
        )
        ipc = timing.ipc(
            instructions,
            l2_hits=0,
            llc_hits=hits[thread],
            memory_accesses=misses[thread],
        )
        outcomes.append(
            ThreadOutcome(
                accesses=accesses[thread],
                hits=hits[thread],
                misses=misses[thread],
                bypasses=bypasses[thread],
                instructions=instructions,
                ipc=ipc,
            )
        )

    ipcs = [outcome.ipc for outcome in outcomes]
    result = MultiCoreResult(
        name=name,
        threads=outcomes,
        weighted=weighted_ipc(ipcs, singles),
        throughput=throughput(ipcs),
        hmean=harmonic_mean_normalized_ipc(ipcs, singles),
        extra={"singles": singles},
    )
    if recorder is not None:
        result.extra["timeseries"] = recorder.to_dict()
    if manifest_dir is not None:
        meta = dict(run_meta or {})
        total_accesses = len(mixed)
        wall = perf_counter() - start
        Manifest(
            kind="shared_llc",
            workload=name,
            policy=type(policy).__name__,
            engine=engine,
            label=run_label,
            seed=meta.pop("seed", None),
            config={
                "num_sets": geometry.num_sets,
                "ways": geometry.ways,
                "line_size": geometry.line_size,
                "threads": num_threads,
            },
            trace_fingerprint=trace_fingerprint(mixed),
            git_sha=_git_sha(),
            wall_time_s=wall,
            accesses=total_accesses,
            accesses_per_sec=total_accesses / wall if wall > 0 else 0.0,
            stats={
                "threads": [
                    {
                        "accesses": t.accesses,
                        "hits": t.hits,
                        "misses": t.misses,
                        "bypasses": t.bypasses,
                        "instructions": t.instructions,
                        "ipc": t.ipc,
                    }
                    for t in outcomes
                ],
                "singles": list(singles),
            },
            metrics={
                "weighted": result.weighted,
                "throughput": result.throughput,
                "hmean": result.hmean,
            },
            telemetry=TELEMETRY.snapshot() if TELEMETRY.enabled else {},
            timeseries=recorder.to_dict() if recorder is not None else {},
            extra=meta,
        ).save(manifest_dir)
    return result


__all__ = ["MultiCoreResult", "ThreadOutcome", "run_shared_llc", "single_thread_baselines"]
