"""Parallel sweep / comparison runners built on ``ProcessPoolExecutor``.

The unit of work is one (trace, policy-factory) simulation. The trace is
written to a packed ``.npz`` payload once (:meth:`Trace.save`) and workers
load it at most once per process (a module-level memo), so a 32-point PD
sweep ships the trace a handful of times instead of re-pickling it per
task. Factories must be picklable — module-level callables, classes, or
``functools.partial`` of those; lambdas and closures trigger the serial
fallback.

Worker count resolution (``resolve_max_workers``): an explicit
``max_workers`` argument wins, then the ``REPRO_MAX_WORKERS`` environment
variable, then ``os.cpu_count()``. A resolved count of 1 — or any failure
to stand up the pool (unpicklable payloads, sandboxed environments
without process support) — falls back to running serially in-process, so
these entry points are always safe to call.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import tempfile
from collections.abc import Callable, Iterable
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from pathlib import Path

from repro.core.pdp_policy import PDPPolicy
from repro.memory.cache import CacheGeometry
from repro.memory.timing import TimingModel
from repro.sim.single_core import SingleCoreResult, run_llc
from repro.traces.trace import Trace

#: Environment variable overriding the default worker count.
ENV_MAX_WORKERS = "REPRO_MAX_WORKERS"

#: Per-worker-process memo of loaded trace payloads (path -> Trace).
_WORKER_TRACES: dict[str, Trace] = {}


def resolve_max_workers(max_workers: int | None = None) -> int:
    """Effective worker count: argument, else $REPRO_MAX_WORKERS, else
    ``os.cpu_count()``; always at least 1 (1 means run serially)."""
    if max_workers is None:
        env = os.environ.get(ENV_MAX_WORKERS, "").strip()
        if env:
            try:
                max_workers = int(env)
            except ValueError:
                raise ValueError(
                    f"${ENV_MAX_WORKERS} must be an integer, got {env!r}"
                ) from None
        else:
            max_workers = os.cpu_count() or 1
    return max(1, int(max_workers))


def _pool_context():
    """Fork where available (cheap, inherits the interpreter); the
    default start method elsewhere."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def _load_packed_trace(path: str) -> Trace:
    trace = _WORKER_TRACES.get(path)
    if trace is None:
        trace = Trace.load(path)
        _WORKER_TRACES[path] = trace
    return trace


def _run_packed_task(
    trace_path: str,
    key,
    factory: Callable[[], object],
    geometry: CacheGeometry,
    timing: TimingModel | None,
    engine: str,
):
    """Worker entry: one simulation against the shared packed trace."""
    trace = _load_packed_trace(trace_path)
    return key, run_llc(trace, factory(), geometry, timing=timing, engine=engine)


def _run_serial(trace, factories, geometry, timing, engine):
    return {
        key: run_llc(trace, factory(), geometry, timing=timing, engine=engine)
        for key, factory in factories.items()
    }


def run_matrix(
    trace: Trace,
    factories: dict,
    geometry: CacheGeometry,
    timing: TimingModel | None = None,
    max_workers: int | None = None,
    engine: str = "fast",
) -> dict:
    """Run a trace x policy-factory matrix, in parallel when possible.

    Args:
        trace: the access stream every task simulates.
        factories: {key: zero-arg policy factory}; keys are preserved in
            the result dict, insertion order retained.
        geometry / timing / engine: forwarded to :func:`run_llc`.
        max_workers: worker processes; None resolves via
            :func:`resolve_max_workers`, 0/1 forces serial.

    Returns:
        {key: SingleCoreResult} for every entry in ``factories``.
    """
    workers = resolve_max_workers(max_workers)
    items = list(factories.items())
    if workers <= 1 or len(items) <= 1:
        return _run_serial(trace, factories, geometry, timing, engine)
    try:
        pickle.dumps([factory for _, factory in items])
    except Exception:
        return _run_serial(trace, factories, geometry, timing, engine)
    try:
        with tempfile.TemporaryDirectory(prefix="repro-trace-") as payload_dir:
            trace_path = str(Path(payload_dir) / "trace.npz")
            trace.save(trace_path)
            with ProcessPoolExecutor(
                max_workers=min(workers, len(items)), mp_context=_pool_context()
            ) as pool:
                futures = [
                    pool.submit(
                        _run_packed_task,
                        trace_path,
                        key,
                        factory,
                        geometry,
                        timing,
                        engine,
                    )
                    for key, factory in items
                ]
                resolved = dict(future.result() for future in futures)
    except (OSError, RuntimeError, PermissionError):
        # No usable process pool (restricted sandbox, missing /dev/shm,
        # exhausted pids, ...): run the matrix in-process instead.
        return _run_serial(trace, factories, geometry, timing, engine)
    return {key: resolved[key] for key, _ in items}


def parallel_sweep_static_pd(
    trace: Trace,
    geometry: CacheGeometry,
    pds: Iterable[int],
    bypass: bool = True,
    n_c: int = 8,
    timing: TimingModel | None = None,
    max_workers: int | None = None,
    engine: str = "fast",
) -> dict[int, SingleCoreResult]:
    """Parallel counterpart of :func:`repro.sim.runner.sweep_static_pd`."""
    factories = {
        pd: partial(PDPPolicy, static_pd=pd, bypass=bypass, n_c=n_c) for pd in pds
    }
    return run_matrix(
        trace,
        factories,
        geometry,
        timing=timing,
        max_workers=max_workers,
        engine=engine,
    )


def parallel_compare_policies(
    trace: Trace,
    factories: dict[str, Callable[[], object]],
    geometry: CacheGeometry,
    timing: TimingModel | None = None,
    max_workers: int | None = None,
    engine: str = "fast",
) -> dict[str, SingleCoreResult]:
    """Parallel counterpart of :func:`repro.sim.runner.compare_policies`.

    Unpicklable factories (lambdas/closures) degrade gracefully to the
    serial path.
    """
    return run_matrix(
        trace,
        factories,
        geometry,
        timing=timing,
        max_workers=max_workers,
        engine=engine,
    )


__all__ = [
    "ENV_MAX_WORKERS",
    "parallel_compare_policies",
    "parallel_sweep_static_pd",
    "resolve_max_workers",
    "run_matrix",
]
