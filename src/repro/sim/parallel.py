"""Parallel sweep / comparison runners built on ``ProcessPoolExecutor``.

The unit of work is one (trace, policy-factory) simulation — or, for the
multi-core grid, one (mix, policy-factory) shared-LLC run. Traces are
written to packed ``.npz`` payloads once (:meth:`Trace.save`) and workers
load each at most once per process (a module-level memo), so a 32-point
PD sweep ships the trace a handful of times instead of re-pickling it per
task. Factories must be picklable — module-level callables, classes, or
``functools.partial`` of those; lambdas and closures trigger the serial
fallback.

Worker count resolution (``resolve_max_workers``): an explicit
``max_workers`` argument wins, then the ``REPRO_MAX_WORKERS`` environment
variable, then ``os.cpu_count()``. A resolved count of 1 — or any failure
to stand up the pool (unpicklable payloads, sandboxed environments
without process support) — falls back to running serially in-process, so
these entry points are always safe to call.

Failure semantics: only *infrastructure* failures fall back to the serial
path — payload-directory / pool setup errors and a broken pool
(``BrokenProcessPool``: a worker process died). An exception raised by
the simulation itself inside a worker (a policy bug surfacing as
``RuntimeError``, ``ValueError``, ...) propagates to the caller exactly
as it would under the serial path; it is never silently masked by a
serial re-run.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import tempfile
from collections.abc import Callable, Iterable
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from pathlib import Path

from repro.core.pdp_policy import PDPPolicy
from repro.memory.cache import CacheGeometry
from repro.memory.timing import TimingModel
from repro.sim.multi_core import MultiCoreResult, run_shared_llc
from repro.sim.single_core import SingleCoreResult, run_llc
from repro.traces.trace import Trace

#: Environment variable overriding the default worker count.
ENV_MAX_WORKERS = "REPRO_MAX_WORKERS"

#: Per-worker-process memo of loaded trace payloads (path -> Trace).
_WORKER_TRACES: dict[str, Trace] = {}


def resolve_max_workers(max_workers: int | None = None) -> int:
    """Effective worker count: argument, else $REPRO_MAX_WORKERS, else
    ``os.cpu_count()``; always at least 1 (1 means run serially)."""
    if max_workers is None:
        env = os.environ.get(ENV_MAX_WORKERS, "").strip()
        if env:
            try:
                max_workers = int(env)
            except ValueError:
                raise ValueError(
                    f"${ENV_MAX_WORKERS} must be an integer, got {env!r}"
                ) from None
        else:
            max_workers = os.cpu_count() or 1
    return max(1, int(max_workers))


def _pool_context():
    """Fork where available (cheap, inherits the interpreter); the
    default start method elsewhere."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def _load_packed_trace(path: str) -> Trace:
    trace = _WORKER_TRACES.get(path)
    if trace is None:
        trace = Trace.load(path)
        _WORKER_TRACES[path] = trace
    return trace


def _run_packed_task(
    trace_path: str,
    key,
    factory: Callable[[], object],
    geometry: CacheGeometry,
    timing: TimingModel | None,
    engine: str,
):
    """Worker entry: one simulation against the shared packed trace."""
    trace = _load_packed_trace(trace_path)
    return key, run_llc(trace, factory(), geometry, timing=timing, engine=engine)


def _run_shared_task(
    trace_paths: list[str],
    key,
    factory: Callable[[], object],
    geometry: CacheGeometry,
    timing: TimingModel | None,
    singles: list[float] | None,
    name: str,
    engine: str,
):
    """Worker entry: one shared-LLC mix run against packed thread traces."""
    traces = [_load_packed_trace(path) for path in trace_paths]
    return key, run_shared_llc(
        traces,
        factory(),
        geometry,
        timing=timing,
        singles=singles,
        name=name,
        engine=engine,
    )


def _run_pooled(worker_fn, workers: int, write_payloads, serial_fallback) -> dict:
    """Fan ``worker_fn`` tasks over a process pool; dict of its returns.

    ``write_payloads(payload_dir)`` persists shared payloads and returns
    one argument tuple per task. Infrastructure failures (payload dir /
    pool setup, a broken pool) invoke ``serial_fallback``; exceptions
    raised *by a task* propagate to the caller.
    """
    try:
        payload_dir = tempfile.TemporaryDirectory(prefix="repro-trace-")
    except (OSError, PermissionError):
        return serial_fallback()
    try:
        try:
            tasks = write_payloads(Path(payload_dir.name))
            pool = ProcessPoolExecutor(
                max_workers=workers, mp_context=_pool_context()
            )
        except (OSError, RuntimeError, PermissionError):
            # No usable payload dir or process pool (restricted sandbox,
            # missing /dev/shm, exhausted pids, ...): run in-process.
            return serial_fallback()
        with pool:
            futures = [pool.submit(worker_fn, *task) for task in tasks]
            try:
                return dict(future.result() for future in futures)
            except BrokenProcessPool:
                # A worker *process* died (OOM-kill, sandbox teardown) —
                # infrastructure, not a simulation error: retry serially.
                return serial_fallback()
    finally:
        payload_dir.cleanup()


def _run_serial(trace, factories, geometry, timing, engine):
    return {
        key: run_llc(trace, factory(), geometry, timing=timing, engine=engine)
        for key, factory in factories.items()
    }


def run_matrix(
    trace: Trace,
    factories: dict,
    geometry: CacheGeometry,
    timing: TimingModel | None = None,
    max_workers: int | None = None,
    engine: str = "fast",
) -> dict:
    """Run a trace x policy-factory matrix, in parallel when possible.

    Args:
        trace: the access stream every task simulates.
        factories: {key: zero-arg policy factory}; keys are preserved in
            the result dict, insertion order retained.
        geometry / timing / engine: forwarded to :func:`run_llc`.
        max_workers: worker processes; None resolves via
            :func:`resolve_max_workers`, 0/1 forces serial.

    Returns:
        {key: SingleCoreResult} for every entry in ``factories``.

    Raises:
        Whatever a simulation task raises (see the module docstring);
        only infrastructure failures fall back to the serial path.
    """
    workers = resolve_max_workers(max_workers)
    items = list(factories.items())
    serial = partial(_run_serial, trace, factories, geometry, timing, engine)
    if workers <= 1 or len(items) <= 1:
        return serial()
    try:
        pickle.dumps([factory for _, factory in items])
    except Exception:
        return serial()

    def write_payloads(payload_dir: Path) -> list[tuple]:
        trace_path = str(payload_dir / "trace.npz")
        trace.save(trace_path)
        return [
            (trace_path, key, factory, geometry, timing, engine)
            for key, factory in items
        ]

    resolved = _run_pooled(
        _run_packed_task, min(workers, len(items)), write_payloads, serial
    )
    return {key: resolved[key] for key, _ in items}


def _run_mixes_serial(mixes, factories, geometry, timing, singles, engine):
    return {
        (mix_key, policy_key): run_shared_llc(
            traces,
            factory(),
            geometry,
            timing=timing,
            singles=None if singles is None else singles[mix_key],
            name=mix_key,
            engine=engine,
        )
        for mix_key, traces in mixes.items()
        for policy_key, factory in factories.items()
    }


def run_mix_matrix(
    mixes: dict[str, list[Trace]],
    factories: dict[str, Callable[[], object]],
    geometry: CacheGeometry,
    timing: TimingModel | None = None,
    singles: dict[str, list[float]] | None = None,
    max_workers: int | None = None,
    engine: str = "fast",
) -> dict[tuple[str, str], MultiCoreResult]:
    """Run a (mix x policy-factory) grid of shared-LLC runs in parallel.

    The multi-core counterpart of :func:`run_matrix`: each task is one
    :func:`repro.sim.multi_core.run_shared_llc` call. Per-thread traces
    are written once per mix as packed ``.npz`` payloads and memoized per
    worker process, so an 80-mix x 4-policy Fig. 12 grid ships each trace
    a handful of times rather than 4x80 times.

    Args:
        mixes: {mix_key: per-thread traces} (private address spaces, as
            fed to ``run_shared_llc``).
        factories: {policy_key: zero-arg factory for a fresh shared-LLC
            policy}; must be picklable for the parallel path.
        singles: optional {mix_key: stand-alone LRU IPCs}. When omitted
            every task recomputes its mix's baselines — pass precomputed
            values (``single_thread_baselines`` once per mix) to avoid
            the duplicate work.
        max_workers: worker processes; None resolves via
            :func:`resolve_max_workers`, 0/1 forces serial.

    Returns:
        {(mix_key, policy_key): MultiCoreResult} for the full grid, in
        mixes-major insertion order.

    Raises:
        Whatever a simulation task raises (see the module docstring);
        only infrastructure failures fall back to the serial path.
    """
    if singles is not None and set(singles) != set(mixes):
        raise ValueError("singles must provide baselines for exactly the mixes")
    workers = resolve_max_workers(max_workers)
    grid = [(mix_key, policy_key) for mix_key in mixes for policy_key in factories]
    serial = partial(
        _run_mixes_serial, mixes, factories, geometry, timing, singles, engine
    )
    if workers <= 1 or len(grid) <= 1:
        return serial()
    try:
        pickle.dumps(list(factories.values()))
    except Exception:
        return serial()

    def write_payloads(payload_dir: Path) -> list[tuple]:
        mix_paths: dict[str, list[str]] = {}
        for slot, (mix_key, traces) in enumerate(mixes.items()):
            paths = []
            for thread, trace in enumerate(traces):
                path = str(payload_dir / f"mix{slot}-t{thread}.npz")
                trace.save(path)
                paths.append(path)
            mix_paths[mix_key] = paths
        return [
            (
                mix_paths[mix_key],
                (mix_key, policy_key),
                factories[policy_key],
                geometry,
                timing,
                None if singles is None else singles[mix_key],
                mix_key,
                engine,
            )
            for mix_key, policy_key in grid
        ]

    resolved = _run_pooled(
        _run_shared_task, min(workers, len(grid)), write_payloads, serial
    )
    return {key: resolved[key] for key in grid}


def parallel_sweep_static_pd(
    trace: Trace,
    geometry: CacheGeometry,
    pds: Iterable[int],
    bypass: bool = True,
    n_c: int = 8,
    timing: TimingModel | None = None,
    max_workers: int | None = None,
    engine: str = "fast",
) -> dict[int, SingleCoreResult]:
    """Parallel counterpart of :func:`repro.sim.runner.sweep_static_pd`."""
    factories = {
        pd: partial(PDPPolicy, static_pd=pd, bypass=bypass, n_c=n_c) for pd in pds
    }
    return run_matrix(
        trace,
        factories,
        geometry,
        timing=timing,
        max_workers=max_workers,
        engine=engine,
    )


def parallel_compare_policies(
    trace: Trace,
    factories: dict[str, Callable[[], object]],
    geometry: CacheGeometry,
    timing: TimingModel | None = None,
    max_workers: int | None = None,
    engine: str = "fast",
) -> dict[str, SingleCoreResult]:
    """Parallel counterpart of :func:`repro.sim.runner.compare_policies`.

    Unpicklable factories (lambdas/closures) degrade gracefully to the
    serial path.
    """
    return run_matrix(
        trace,
        factories,
        geometry,
        timing=timing,
        max_workers=max_workers,
        engine=engine,
    )


__all__ = [
    "ENV_MAX_WORKERS",
    "parallel_compare_policies",
    "parallel_sweep_static_pd",
    "resolve_max_workers",
    "run_matrix",
    "run_mix_matrix",
]
