"""Parallel sweep / comparison runners built on ``ProcessPoolExecutor``.

The unit of work is one (trace, policy-factory) simulation — or, for the
multi-core grid, one (mix, policy-factory) shared-LLC run. Traces are
written once to packed payloads in the native compressed format
(:meth:`Trace.save` / ``.trz``) and workers load each at most once per
process (a module-level memo), so a 32-point PD sweep ships the trace a
handful of times instead of re-pickling it per task. A
:class:`repro.traces.stream.TraceStream` source (an external trace file
opened via :func:`repro.traces.formats.open_trace`) is stream-copied to
the payload once and each worker re-opens it as a chunked stream, so the
parallel path never materializes a huge trace either. Factories must be
picklable — module-level callables, classes, or ``functools.partial`` of
those; lambdas and closures trigger the serial fallback.

Worker count resolution (``resolve_max_workers``): an explicit
``max_workers`` argument wins, then the ``REPRO_MAX_WORKERS`` environment
variable, then ``os.cpu_count()``. A resolved count of 1 — or any failure
to stand up the pool (unpicklable payloads, sandboxed environments
without process support) — falls back to running serially in-process, so
these entry points are always safe to call. The fallback is *loud*: it
raises a :class:`RuntimeWarning`, emits a ``warning`` progress event
through the grid observer, and the sweep manifest records
``workers_requested`` vs ``workers_effective`` so a degraded sweep is
diagnosable from its manifest alone.

Observability: both grid runners accept ``on_event`` (a callback fed
started/finished/failed :class:`repro.obs.progress.ProgressEvent`
records, emitted from the *parent* process as tasks dispatch and
complete) and ``manifest_dir``. With a manifest directory configured,
every cell writes its own provenance manifest (inside the worker, via
the driver's ``manifest_dir=`` parameter), the runner appends all
progress events to ``events.jsonl``, and a sweep-level manifest records
per-task status — including failed tasks with policy, workload and a
traceback summary — so a partially failed grid is diagnosable from the
manifest directory alone. The runners additionally split each cell's
wall time into queue wait and in-worker runtime (histograms in the
process-wide :data:`repro.obs.metrics.METRICS` registry, served live by
the sweep daemon's ``stats`` verb) and — with a manifest directory —
write one span per cell under a grid root span to ``spans.jsonl``,
rendered by ``repro obs trace``; the sweep manifest embeds the metrics
snapshot when the registry is enabled.

Failure semantics: only *infrastructure* failures fall back to the serial
path — payload-directory / pool setup errors and a broken pool
(``BrokenProcessPool``: a worker process died). An exception raised by
the simulation itself inside a worker (a policy bug surfacing as
``RuntimeError``, ``ValueError``, ...) propagates to the caller; it is
never silently masked by a serial re-run. The runners let the remaining
tasks of the grid complete (their results still land in per-cell
manifests), record every failure, then re-raise the first one.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import tempfile
import warnings
from collections.abc import Callable, Iterable
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from pathlib import Path
from time import perf_counter

from repro.core.pdp_policy import PDPPolicy
from repro.memory.cache import CacheGeometry
from repro.memory.columnar import merge_shard_parts, run_llc_shard, set_shardable
from repro.memory.timing import TimingModel
from repro.obs.manifest import (
    FingerprintAccumulator,
    Manifest,
    TaskFailure,
    trace_fingerprint,
)
from repro.obs.manifest import git_sha as _git_sha
from repro.obs.metrics import METRICS
from repro.obs.progress import ProgressEvent, ProgressReporter
from repro.obs.spans import SpanTracer
from repro.obs.telemetry import TELEMETRY
from repro.obs.trace_log import EVENTS_FILENAME, TraceLog
from repro.sim.multi_core import MultiCoreResult, run_shared_llc
from repro.sim.single_core import SingleCoreResult, run_llc
from repro.traces.stream import TraceStream
from repro.traces.trace import Trace

#: Environment variable overriding the default worker count.
ENV_MAX_WORKERS = "REPRO_MAX_WORKERS"

#: Per-worker-process memo of loaded trace payloads (path -> Trace or
#: re-iterable TraceStream).
_WORKER_TRACES: dict[str, Trace | TraceStream] = {}


def resolve_max_workers(max_workers: int | None = None) -> int:
    """Effective worker count: argument, else $REPRO_MAX_WORKERS, else
    ``os.cpu_count()``; always at least 1 (1 means run serially)."""
    if max_workers is None:
        env = os.environ.get(ENV_MAX_WORKERS, "").strip()
        if env:
            try:
                max_workers = int(env)
            except ValueError:
                raise ValueError(
                    f"${ENV_MAX_WORKERS} must be an integer, got {env!r}"
                ) from None
        else:
            max_workers = os.cpu_count() or 1
    return max(1, int(max_workers))


def _pool_context():
    """Fork where available (cheap, inherits the interpreter); the
    default start method elsewhere."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def _load_packed_trace(path: str, as_stream: bool = False) -> Trace | TraceStream:
    """Load (and per-process memoize) one packed trace payload.

    ``as_stream=True`` opens the payload as a re-iterable chunked
    :class:`TraceStream` instead of materializing it — the worker-side
    half of the streaming parallel path.
    """
    trace = _WORKER_TRACES.get(path)
    if trace is None:
        if as_stream:
            from repro.traces.formats import open_trace

            trace = open_trace(path, format="native")
        else:
            trace = Trace.load(path)
        _WORKER_TRACES[path] = trace
    return trace


def _task_obs_begin() -> float:
    """Start a clean per-task observability scope inside a pool worker.

    Workers are reused across tasks (and fork inherits the parent's
    accumulated state), so without a reset each snapshot would bleed the
    previous tasks' counters into the next result. Returns the task's
    ``perf_counter`` start so :func:`_task_obs_finish` can measure the
    in-worker runtime (the parent subtracts it from dispatch-to-completion
    wall time to estimate pool queue wait).
    """
    if TELEMETRY.enabled:
        TELEMETRY.reset()
    if METRICS.enabled:
        METRICS.reset()
    return perf_counter()


def _task_obs_finish(start: float) -> dict:
    """The worker's observability payload for the task just run.

    ``{"telemetry": snapshot-or-None, "metrics": snapshot-or-None,
    "runtime_s": in-worker seconds}`` — shipped back with the result so
    the parent merges both sinks losslessly and can split wall time into
    queue wait vs runtime.
    """
    return {
        "telemetry": TELEMETRY.snapshot() if TELEMETRY.enabled else None,
        "metrics": METRICS.snapshot() if METRICS.enabled else None,
        "runtime_s": perf_counter() - start,
    }


def _run_packed_task(
    trace_path: str,
    key,
    factory: Callable[[], object],
    geometry: CacheGeometry,
    timing: TimingModel | None,
    engine: str,
    manifest_dir: str | None,
    as_stream: bool = False,
    shard_spec: tuple[int, int, int] | None = None,
    window_size: int | None = None,
):
    """Worker entry: one simulation against the shared packed trace.

    With ``shard_spec=(shard, num_shards, total_length)`` the task runs
    only the sets assigned to that shard (vector engine, no per-cell
    manifest) and returns a part dict for :func:`merge_shard_parts`
    instead of a :class:`SingleCoreResult`.
    """
    start = _task_obs_begin()
    trace = _load_packed_trace(trace_path, as_stream=as_stream)
    if shard_spec is not None:
        shard, num_shards, total_length = shard_spec
        part = run_llc_shard(
            trace,
            factory(),
            geometry,
            shard,
            num_shards,
            total_length,
            window_size=window_size,
        )
        return key, part, _task_obs_finish(start)
    result = run_llc(
        trace,
        factory(),
        geometry,
        timing=timing,
        engine=engine,
        manifest_dir=manifest_dir,
        run_label=str(key),
        window_size=window_size,
    )
    return key, result, _task_obs_finish(start)


def _run_shared_task(
    trace_paths: list[str],
    key,
    factory: Callable[[], object],
    geometry: CacheGeometry,
    timing: TimingModel | None,
    singles: list[float] | None,
    name: str,
    engine: str,
    manifest_dir: str | None,
):
    """Worker entry: one shared-LLC mix run against packed thread traces."""
    start = _task_obs_begin()
    traces = [_load_packed_trace(path) for path in trace_paths]
    result = run_shared_llc(
        traces,
        factory(),
        geometry,
        timing=timing,
        singles=singles,
        name=name,
        engine=engine,
        manifest_dir=manifest_dir,
        run_label=str(key),
    )
    return key, result, _task_obs_finish(start)


class _FingerprintingStream(TraceStream):
    """A pass-through :class:`TraceStream` that fingerprints its first
    complete pass.

    ``run_matrix`` wraps stream sources in one of these so the sweep
    manifest can carry a real, chunk-size-invariant trace fingerprint —
    the grid already iterates the stream at least once (payload copy on
    the pooled path, per-cell simulation on the serial path), so the
    digest comes for free instead of needing a second scan of the file.
    Only a pass that ran to exhaustion finalizes the digest; an aborted
    iteration (a failing cell) leaves the accumulator to retry on the
    next pass.
    """

    def __init__(self, inner: TraceStream) -> None:
        self._inner = inner
        self._digest: str | None = None
        super().__init__(
            self._fingerprinting_chunks,
            name=inner.name,
            instructions_per_access=inner.instructions_per_access,
            length=inner.length,
            source=inner.source,
            format=inner.format,
        )

    def _fingerprinting_chunks(self):
        """Yield the inner chunks, accumulating the digest en route."""
        if self._digest is not None:
            yield from self._inner.chunks()
            return
        accumulator = FingerprintAccumulator()
        for chunk in self._inner.chunks():
            accumulator.update(chunk)
            yield chunk
        self._digest = accumulator.digest(self.name, self.instructions_per_access)

    @property
    def fingerprint(self) -> str | None:
        """The digest of one full pass, or None if no pass completed."""
        return self._digest


def _warn_serial_fallback(
    observer: "_GridObserver | None", label: str, requested: int, reason: str
) -> None:
    """Surface a parallel-to-serial degradation instead of hiding it.

    A user who asked for N workers and got 1 deserves a signal: emit a
    :class:`RuntimeWarning` and — when the grid has an observer — a
    ``warning`` progress event (which also lands in ``events.jsonl``).
    The sweep manifest additionally records ``workers_requested`` vs
    ``workers_effective`` so the degradation is diagnosable post hoc.
    """
    message = (
        f"{label}: requested {requested} workers but running serially — "
        f"{reason}"
    )
    warnings.warn(message, RuntimeWarning, stacklevel=3)
    if observer is not None:
        observer.warning("serial-fallback", message)


class _GridObserver:
    """Per-grid progress/event-log/failure/latency bookkeeping.

    Wraps a :class:`ProgressReporter` (teeing every event into the
    manifest directory's ``events.jsonl`` when one is configured) and
    accumulates per-task status plus :class:`TaskFailure` records for
    the sweep-level manifest.

    It is also the grid's latency observer: task dispatch times are
    remembered so each completion can be split into queue wait (wall
    time minus in-worker runtime) and runtime, recorded into the
    ``grid.cell_queue_wait_s`` / ``grid.cell_runtime_s`` histograms of
    the process-wide :data:`repro.obs.metrics.METRICS` registry — and,
    when a manifest directory is configured, emitted as one per-cell
    span (child of the grid's root span) in ``spans.jsonl``.
    """

    def __init__(
        self,
        total: int,
        on_event: Callable[[ProgressEvent], None] | None,
        manifest_dir: Path | None,
        label: str,
        failure_context: Callable[[object], tuple[str, str]],
    ) -> None:
        self._log = (
            TraceLog(manifest_dir / EVENTS_FILENAME)
            if manifest_dir is not None
            else None
        )
        self._failure_context = failure_context
        self.statuses: dict[str, str] = {}
        self.failures: list[TaskFailure] = []
        self.reporter = ProgressReporter(
            total, on_event=self._dispatch, label=label
        )
        self._on_event = on_event
        self._dispatched: dict[str, float] = {}
        self.tracer = SpanTracer.for_dir(manifest_dir)
        # Root span for the whole grid: entering it makes every cell
        # span emitted below a child of it (and, transitively, of any
        # scheduler span already active); close() exits and records it.
        self._grid_span = self.tracer.span(label, cells=total)
        self._grid_span.__enter__()

    def _dispatch(self, event: ProgressEvent) -> None:
        """Tee one event into the JSONL log and the user callback."""
        if self._log is not None:
            self._log.emit_progress(event)
        if self._on_event is not None:
            self._on_event(event)

    def started(self, key) -> None:
        """Record and broadcast task dispatch."""
        self.statuses[str(key)] = "started"
        self._dispatched[str(key)] = perf_counter()
        self.reporter.started(key)

    def _observe_cell(self, key, status: str, runtime_s: float | None) -> None:
        """Record one completed cell's latency split and span.

        Wall time runs dispatch to completion; ``runtime_s`` is the
        in-worker (or in-process) execution time when known, and their
        difference is the time the task spent queued behind the pool.
        """
        dispatched = self._dispatched.pop(str(key), None)
        if dispatched is None:
            return
        wall = perf_counter() - dispatched
        runtime = wall if runtime_s is None else min(runtime_s, wall)
        queue_wait = max(0.0, wall - runtime)
        if METRICS.enabled:
            METRICS.observe("grid.cell_runtime_s", runtime)
            METRICS.observe("grid.cell_queue_wait_s", queue_wait)
            METRICS.inc(f"grid.cells_{status}")
        self.tracer.emit(
            f"cell:{key}",
            start_s=dispatched,
            duration_s=wall,
            attributes={
                "status": status,
                "runtime_s": runtime,
                "queue_wait_s": queue_wait,
            },
        )

    def finished(self, key, runtime_s: float | None = None) -> None:
        """Record and broadcast successful completion."""
        self.statuses[str(key)] = "finished"
        self._observe_cell(key, "finished", runtime_s)
        self.reporter.finished(key)

    def failed(self, key, exc: BaseException) -> None:
        """Record and broadcast a task failure (kept for the manifest)."""
        self.statuses[str(key)] = "failed"
        self._observe_cell(key, "failed", None)
        policy, workload = self._failure_context(key)
        self.failures.append(
            TaskFailure.from_exception(key, exc, policy=policy, workload=workload)
        )
        self.reporter.failed(key, exc)

    def warning(self, key, message: str) -> None:
        """Broadcast a grid-level warning (no per-task status change)."""
        self.reporter.warning(key, message)

    def task_records(self) -> list[dict]:
        """JSON-ready ``{key, status}`` rows for the sweep manifest."""
        return [
            {"key": key, "status": status}
            for key, status in self.statuses.items()
        ]

    def close(self) -> None:
        """Finish the grid span and close the event/span logs."""
        self._grid_span.__exit__(None, None, None)
        self.tracer.close()
        if self._log is not None:
            self._log.close()


def _run_serial_tasks(run_one, items, observer: _GridObserver | None):
    """Run ``run_one(key, value)`` for each item in-process.

    Returns ``(results, failures)`` where failures are ``(key, exc)``
    pairs; the grid keeps going past a failed task so every cell's
    outcome is known (matching the pooled path).
    """
    results: dict = {}
    failures: list[tuple] = []
    for key, value in items:
        if observer is not None:
            observer.started(key)
        start = perf_counter()
        try:
            results[key] = run_one(key, value)
        except Exception as exc:  # noqa: BLE001 — recorded, then re-raised
            failures.append((key, exc))
            if observer is not None:
                observer.failed(key, exc)
        else:
            if observer is not None:
                observer.finished(key, runtime_s=perf_counter() - start)
    return results, failures


def _run_pooled(worker_fn, workers: int, write_payloads, serial_fallback, observer):
    """Fan ``worker_fn`` tasks over a process pool.

    ``write_payloads(payload_dir)`` persists shared payloads and returns
    one argument tuple per task (the task key at index 1, the contract
    of both worker entries). Returns ``(results, failures)``.
    Infrastructure failures (payload dir / pool setup, a broken pool)
    invoke ``serial_fallback``; exceptions raised *by a task* are
    collected as failures for the caller to record and re-raise.
    Worker tasks return ``(key, result, obs_payload)`` where the payload
    carries the worker's telemetry and metrics snapshots plus its
    in-worker runtime (:func:`_task_obs_finish`); non-None snapshots are
    merged into this process's :data:`TELEMETRY` / :data:`METRICS` sinks
    as each future completes, so counters recorded inside workers are
    not lost (the serial path records into the sinks directly), and the
    runtime feeds the observer's queue-wait/runtime split.
    """
    try:
        payload_dir = tempfile.TemporaryDirectory(prefix="repro-trace-")
    except (OSError, PermissionError):
        return serial_fallback()
    try:
        try:
            tasks = write_payloads(Path(payload_dir.name))
            pool = ProcessPoolExecutor(
                max_workers=workers, mp_context=_pool_context()
            )
        except (OSError, RuntimeError, PermissionError):
            # No usable payload dir or process pool (restricted sandbox,
            # missing /dev/shm, exhausted pids, ...): run in-process.
            return serial_fallback()
        results: dict = {}
        failures: list[tuple] = []
        with pool:
            future_keys = {}
            for task in tasks:
                key = task[1]
                if observer is not None:
                    observer.started(key)
                future_keys[pool.submit(worker_fn, *task)] = key
            try:
                for future in as_completed(future_keys):
                    key = future_keys[future]
                    try:
                        result_key, result, obs_payload = future.result()
                    except BrokenProcessPool:
                        raise
                    except Exception as exc:  # noqa: BLE001 — see docstring
                        failures.append((key, exc))
                        if observer is not None:
                            observer.failed(key, exc)
                    else:
                        results[result_key] = result
                        if obs_payload["telemetry"] is not None:
                            TELEMETRY.merge_snapshot(obs_payload["telemetry"])
                        if obs_payload["metrics"] is not None:
                            METRICS.merge_snapshot(obs_payload["metrics"])
                        if observer is not None:
                            observer.finished(
                                key, runtime_s=obs_payload["runtime_s"]
                            )
            except BrokenProcessPool:
                # A worker *process* died (OOM-kill, sandbox teardown) —
                # infrastructure, not a simulation error: retry serially.
                return serial_fallback()
        return results, failures
    finally:
        payload_dir.cleanup()


def _finish_grid(
    observer: _GridObserver | None,
    manifest_out: Path | None,
    failures: list[tuple],
    sweep_manifest: Callable[[_GridObserver], Manifest] | None,
):
    """Close the observer, write the sweep manifest, re-raise failures.

    The sweep manifest is written *before* re-raising so a partially
    failed grid still leaves a complete post-mortem record (the
    ``run_matrix`` failure-diagnosability contract).
    """
    if observer is not None:
        observer.close()
    if manifest_out is not None and observer is not None and sweep_manifest:
        sweep_manifest(observer).save(manifest_out)
    if failures:
        raise failures[0][1]


def run_matrix(
    trace: Trace | TraceStream,
    factories: dict,
    geometry: CacheGeometry,
    timing: TimingModel | None = None,
    max_workers: int | None = None,
    engine: str = "vector",
    manifest_dir: str | os.PathLike | None = None,
    on_event: Callable[[ProgressEvent], None] | None = None,
    set_partitions: int | None = None,
    window_size: int | None = None,
) -> dict:
    """Run a trace x policy-factory matrix, in parallel when possible.

    Args:
        trace: the access stream every task simulates — an in-memory
            :class:`Trace`, or a chunked :class:`TraceStream` (e.g. an
            external trace file): the stream is copied once to a native
            payload and every worker re-opens it chunked, so even the
            parallel path stays O(chunk) per process.
        factories: {key: zero-arg policy factory}; keys are preserved in
            the result dict, insertion order retained.
        geometry / timing / engine: forwarded to :func:`run_llc`.
        max_workers: worker processes; None resolves via
            :func:`resolve_max_workers`, 0/1 forces serial.
        manifest_dir: when set, each cell writes a per-run manifest, all
            progress events land in ``events.jsonl``, and a sweep-level
            manifest (kind ``"matrix"``) records per-task status and any
            failures. Set-partitioned cells do not write per-cell
            manifests (a merged cell has no single worker run to
            describe); the sweep-level manifest still records every
            shard task.
        on_event: optional callback receiving started/finished/failed
            :class:`ProgressEvent` records (emitted in this process).
        set_partitions: when > 1 (vector engine, in-memory trace only),
            split each cell whose policy is
            :func:`repro.memory.columnar.set_shardable` into that many
            set-partitioned shard tasks — shard ``k`` simulates only the
            sets with ``set_index % K == k`` — and merge the per-shard
            statistics and windowed time-series bit-identically to the
            unsharded run. Cells whose policy couples sets (e.g. PDP
            with a dynamic ``pd_engine``) run unsharded. Values are
            clamped to ``geometry.num_sets``.
        window_size: when set, record a windowed time-series of this
            window size for every cell (``result.extra["timeseries"]``),
            sharded or not.

    Returns:
        {key: SingleCoreResult} for every entry in ``factories``.

    Raises:
        ValueError: ``set_partitions`` with a non-vector engine or a
            :class:`TraceStream` source (shard slicing needs the
            materialized address column).
        Whatever the first failing simulation task raised (after the
        remaining tasks complete and the sweep manifest is written);
        only infrastructure failures fall back to the serial path.
    """
    workers = resolve_max_workers(max_workers)
    items = list(factories.items())
    stream_source = isinstance(trace, TraceStream)
    if stream_source:
        # Fingerprint the stream on its first full pass (payload copy or
        # first serial cell) so the sweep manifest can identify the
        # trace — resume matching needs it (see repro.service.scheduler).
        trace = _FingerprintingStream(trace)
    partitions = 0
    if set_partitions is not None:
        if set_partitions < 1:
            raise ValueError(
                f"set_partitions must be >= 1, got {set_partitions}"
            )
        if set_partitions > 1:
            if engine != "vector":
                raise ValueError(
                    "set_partitions requires engine='vector' "
                    f"(got engine={engine!r})"
                )
            if stream_source:
                raise ValueError(
                    "set_partitions requires an in-memory Trace source"
                )
            partitions = min(set_partitions, geometry.num_sets)
    # Shard only the cells whose policy state is provably per-set;
    # everything else (dynamic-PD samplers, unknown policies) keeps the
    # exact unsharded path.
    sharded = {
        key: partitions
        for key, factory in items
        if partitions > 1 and set_shardable(factory())
    }
    total_length = 0 if stream_source else len(trace)

    # Task list: plain cells keyed by their factory key; sharded cells
    # expand to (key, shard) tasks whose parts merge after the grid.
    task_items: list[tuple] = []
    for key, factory in items:
        if key in sharded:
            for shard in range(partitions):
                task_items.append(
                    ((key, shard), (factory, (shard, partitions, total_length)))
                )
        else:
            task_items.append((key, (factory, None)))

    manifest_out = Path(manifest_dir) if manifest_dir is not None else None
    manifest_arg = str(manifest_out) if manifest_out is not None else None
    observer = None
    if manifest_out is not None or on_event is not None:
        observer = _GridObserver(
            total=len(task_items),
            on_event=on_event,
            manifest_dir=manifest_out,
            label="matrix",
            failure_context=lambda key: (str(key), trace.name),
        )

    def run_one(key, value):
        factory, shard_spec = value
        if shard_spec is not None:
            shard, num_shards, length = shard_spec
            return run_llc_shard(
                trace,
                factory(),
                geometry,
                shard,
                num_shards,
                length,
                window_size=window_size,
            )
        return run_llc(
            trace,
            factory(),
            geometry,
            timing=timing,
            engine=engine,
            manifest_dir=manifest_arg,
            run_label=str(key),
            window_size=window_size,
        )

    serial = partial(_run_serial_tasks, run_one, task_items, observer)
    start = perf_counter()
    effective = {"workers": 1}
    use_pool = workers > 1 and len(task_items) > 1
    if use_pool:
        try:
            pickle.dumps([factory for _, factory in items])
        except Exception as exc:
            use_pool = False
            _warn_serial_fallback(
                observer,
                "matrix",
                workers,
                f"policy factories are not picklable ({type(exc).__name__}: {exc})",
            )
    if use_pool:
        effective["workers"] = min(workers, len(task_items))

        def serial_after_pool_failure():
            effective["workers"] = 1
            _warn_serial_fallback(
                observer,
                "matrix",
                workers,
                "process pool unavailable (infrastructure failure)",
            )
            return serial()

        def write_payloads(payload_dir: Path) -> list[tuple]:
            trace_path = str(payload_dir / "trace.trz")
            if stream_source:
                from repro.traces.formats import write_stream

                write_stream(trace, trace_path, format="native")
            else:
                trace.save(trace_path)
            return [
                (
                    trace_path,
                    key,
                    factory,
                    geometry,
                    timing,
                    engine,
                    manifest_arg,
                    stream_source,
                    shard_spec,
                    window_size,
                )
                for key, (factory, shard_spec) in task_items
            ]

        results, failures = _run_pooled(
            _run_packed_task,
            min(workers, len(task_items)),
            write_payloads,
            serial_after_pool_failure,
            observer,
        )
    else:
        results, failures = serial()

    # Merge shard parts back into one SingleCoreResult per sharded cell.
    # A cell with any failed shard is left out of `results` (its failure
    # re-raises below, and the sweep manifest records each shard task).
    merge_timing = timing or TimingModel()
    if sharded and not failures:
        for key in sharded:
            parts = [results.pop((key, shard)) for shard in range(partitions)]
            results[key] = merge_shard_parts(
                parts,
                trace.name,
                total_length,
                trace.instructions_per_access,
                merge_timing,
                window_size=window_size,
            )

    def sweep_manifest(obs: _GridObserver) -> Manifest:
        wall = perf_counter() - start
        # Stream sources fingerprint during their first full pass (see
        # _FingerprintingStream) — no extra scan of the file, and the
        # sweep manifest can identify the trace for resume matching.
        fingerprint = trace.fingerprint if stream_source else trace_fingerprint(trace)
        length = (trace.length or 0) if stream_source else len(trace)
        config = {
            "num_sets": geometry.num_sets,
            "ways": geometry.ways,
            "line_size": geometry.line_size,
            "workers": workers,
            "workers_requested": workers,
            "workers_effective": effective["workers"],
        }
        if sharded:
            config["set_partitions"] = partitions
            config["sharded_cells"] = sorted(str(key) for key in sharded)
        return Manifest(
            kind="matrix",
            workload=trace.name,
            policy=f"{len(items)} policies",
            engine=engine,
            config=config,
            trace_fingerprint=fingerprint,
            git_sha=_git_sha(),
            wall_time_s=wall,
            accesses=length * len(items),
            accesses_per_sec=(length * len(items)) / wall if wall > 0 else 0.0,
            tasks=obs.task_records(),
            failures=list(obs.failures),
            telemetry=TELEMETRY.snapshot() if TELEMETRY.enabled else {},
            metrics=METRICS.snapshot() if METRICS.enabled else {},
        )

    _finish_grid(observer, manifest_out, failures, sweep_manifest)
    return {key: results[key] for key, _ in items}


def run_mix_matrix(
    mixes: dict[str, list[Trace]],
    factories: dict[str, Callable[[], object]],
    geometry: CacheGeometry,
    timing: TimingModel | None = None,
    singles: dict[str, list[float]] | None = None,
    max_workers: int | None = None,
    engine: str = "fast",
    manifest_dir: str | os.PathLike | None = None,
    on_event: Callable[[ProgressEvent], None] | None = None,
) -> dict[tuple[str, str], MultiCoreResult]:
    """Run a (mix x policy-factory) grid of shared-LLC runs in parallel.

    The multi-core counterpart of :func:`run_matrix`: each task is one
    :func:`repro.sim.multi_core.run_shared_llc` call. Per-thread traces
    are written once per mix as packed native payloads and memoized per
    worker process, so an 80-mix x 4-policy Fig. 12 grid ships each trace
    a handful of times rather than 4x80 times.

    Args:
        mixes: {mix_key: per-thread traces} (private address spaces, as
            fed to ``run_shared_llc``).
        factories: {policy_key: zero-arg factory for a fresh shared-LLC
            policy}; must be picklable for the parallel path.
        singles: optional {mix_key: stand-alone LRU IPCs}. When omitted
            every task recomputes its mix's baselines — pass precomputed
            values (``single_thread_baselines`` once per mix) to avoid
            the duplicate work.
        max_workers: worker processes; None resolves via
            :func:`resolve_max_workers`, 0/1 forces serial.
        manifest_dir / on_event: the :func:`run_matrix` observability
            contract; the sweep-level manifest kind is ``"mix_matrix"``.

    Returns:
        {(mix_key, policy_key): MultiCoreResult} for the full grid, in
        mixes-major insertion order.

    Raises:
        Whatever the first failing simulation task raised (after the
        remaining tasks complete and the sweep manifest is written);
        only infrastructure failures fall back to the serial path.
    """
    if singles is not None and set(singles) != set(mixes):
        raise ValueError("singles must provide baselines for exactly the mixes")
    workers = resolve_max_workers(max_workers)
    grid = [(mix_key, policy_key) for mix_key in mixes for policy_key in factories]
    manifest_out = Path(manifest_dir) if manifest_dir is not None else None
    manifest_arg = str(manifest_out) if manifest_out is not None else None
    observer = None
    if manifest_out is not None or on_event is not None:
        observer = _GridObserver(
            total=len(grid),
            on_event=on_event,
            manifest_dir=manifest_out,
            label="mix-matrix",
            # grid keys are (mix, policy) pairs
            failure_context=lambda key: (str(key[1]), str(key[0])),
        )

    def run_one(key, _value):
        mix_key, policy_key = key
        return run_shared_llc(
            mixes[mix_key],
            factories[policy_key](),
            geometry,
            timing=timing,
            singles=None if singles is None else singles[mix_key],
            name=mix_key,
            engine=engine,
            manifest_dir=manifest_arg,
            run_label=str(key),
        )

    serial = partial(
        _run_serial_tasks, run_one, [(key, None) for key in grid], observer
    )
    start = perf_counter()
    effective = {"workers": 1}
    use_pool = workers > 1 and len(grid) > 1
    if use_pool:
        try:
            pickle.dumps(list(factories.values()))
        except Exception as exc:
            use_pool = False
            _warn_serial_fallback(
                observer,
                "mix-matrix",
                workers,
                f"policy factories are not picklable ({type(exc).__name__}: {exc})",
            )
    if use_pool:
        effective["workers"] = min(workers, len(grid))

        def serial_after_pool_failure():
            effective["workers"] = 1
            _warn_serial_fallback(
                observer,
                "mix-matrix",
                workers,
                "process pool unavailable (infrastructure failure)",
            )
            return serial()

        def write_payloads(payload_dir: Path) -> list[tuple]:
            mix_paths: dict[str, list[str]] = {}
            for slot, (mix_key, traces) in enumerate(mixes.items()):
                paths = []
                for thread, trace in enumerate(traces):
                    path = str(payload_dir / f"mix{slot}-t{thread}.trz")
                    trace.save(path)
                    paths.append(path)
                mix_paths[mix_key] = paths
            return [
                (
                    mix_paths[mix_key],
                    (mix_key, policy_key),
                    factories[policy_key],
                    geometry,
                    timing,
                    None if singles is None else singles[mix_key],
                    mix_key,
                    engine,
                    manifest_arg,
                )
                for mix_key, policy_key in grid
            ]

        results, failures = _run_pooled(
            _run_shared_task,
            min(workers, len(grid)),
            write_payloads,
            serial_after_pool_failure,
            observer,
        )
    else:
        results, failures = serial()

    def sweep_manifest(obs: _GridObserver) -> Manifest:
        wall = perf_counter() - start
        total_accesses = sum(
            len(trace) for traces in mixes.values() for trace in traces
        ) * len(factories)
        return Manifest(
            kind="mix_matrix",
            workload=",".join(mixes),
            policy=",".join(str(key) for key in factories),
            engine=engine,
            config={
                "num_sets": geometry.num_sets,
                "ways": geometry.ways,
                "line_size": geometry.line_size,
                "workers": workers,
                "workers_requested": workers,
                "workers_effective": effective["workers"],
                "mixes": len(mixes),
            },
            git_sha=_git_sha(),
            wall_time_s=wall,
            accesses=total_accesses,
            accesses_per_sec=total_accesses / wall if wall > 0 else 0.0,
            tasks=obs.task_records(),
            failures=list(obs.failures),
            telemetry=TELEMETRY.snapshot() if TELEMETRY.enabled else {},
            metrics=METRICS.snapshot() if METRICS.enabled else {},
        )

    _finish_grid(observer, manifest_out, failures, sweep_manifest)
    return {key: results[key] for key in grid}


def parallel_sweep_static_pd(
    trace: Trace,
    geometry: CacheGeometry,
    pds: Iterable[int],
    bypass: bool = True,
    n_c: int = 8,
    timing: TimingModel | None = None,
    max_workers: int | None = None,
    engine: str = "vector",
    manifest_dir: str | os.PathLike | None = None,
    on_event: Callable[[ProgressEvent], None] | None = None,
) -> dict[int, SingleCoreResult]:
    """Parallel counterpart of :func:`repro.sim.runner.sweep_static_pd`."""
    factories = {
        pd: partial(PDPPolicy, static_pd=pd, bypass=bypass, n_c=n_c) for pd in pds
    }
    return run_matrix(
        trace,
        factories,
        geometry,
        timing=timing,
        max_workers=max_workers,
        engine=engine,
        manifest_dir=manifest_dir,
        on_event=on_event,
    )


def parallel_compare_policies(
    trace: Trace,
    factories: dict[str, Callable[[], object]],
    geometry: CacheGeometry,
    timing: TimingModel | None = None,
    max_workers: int | None = None,
    engine: str = "vector",
    manifest_dir: str | os.PathLike | None = None,
    on_event: Callable[[ProgressEvent], None] | None = None,
) -> dict[str, SingleCoreResult]:
    """Parallel counterpart of :func:`repro.sim.runner.compare_policies`.

    Unpicklable factories (lambdas/closures) degrade gracefully to the
    serial path.
    """
    return run_matrix(
        trace,
        factories,
        geometry,
        timing=timing,
        max_workers=max_workers,
        engine=engine,
        manifest_dir=manifest_dir,
        on_event=on_event,
    )


__all__ = [
    "ENV_MAX_WORKERS",
    "parallel_compare_policies",
    "parallel_sweep_static_pd",
    "resolve_max_workers",
    "run_matrix",
    "run_mix_matrix",
]
