"""Experiment helpers: static-PD sweeps and policy comparisons."""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable

from repro.core.pdp_policy import PDPPolicy
from repro.memory.cache import CacheGeometry
from repro.memory.timing import TimingModel
from repro.sim.single_core import SingleCoreResult, run_llc
from repro.traces.trace import Trace


def sweep_static_pd(
    trace: Trace,
    geometry: CacheGeometry,
    pds: Iterable[int],
    bypass: bool = True,
    n_c: int = 8,
    timing: TimingModel | None = None,
    max_workers: int | None = 1,
    engine: str = "vector",
    manifest_dir: str | os.PathLike | None = None,
    on_event: Callable | None = None,
) -> dict[int, SingleCoreResult]:
    """Run static PDP (SPDP) for each candidate PD (Sec. 2.3).

    ``max_workers=1`` (the default) runs serially in-process; any other
    value — including None for auto — delegates to
    :func:`repro.sim.parallel.parallel_sweep_static_pd`. Requesting
    observability (``manifest_dir`` or ``on_event``) also delegates, so
    manifests and progress events are emitted regardless of worker
    count.
    """
    if max_workers != 1 or manifest_dir is not None or on_event is not None:
        from repro.sim.parallel import parallel_sweep_static_pd

        return parallel_sweep_static_pd(
            trace,
            geometry,
            pds,
            bypass=bypass,
            n_c=n_c,
            timing=timing,
            max_workers=max_workers,
            engine=engine,
            manifest_dir=manifest_dir,
            on_event=on_event,
        )
    results: dict[int, SingleCoreResult] = {}
    for pd in pds:
        policy = PDPPolicy(static_pd=pd, bypass=bypass, n_c=n_c)
        results[pd] = run_llc(trace, policy, geometry, timing=timing, engine=engine)
    return results


def best_static_pd(
    trace: Trace,
    geometry: CacheGeometry,
    pds: Iterable[int],
    bypass: bool = True,
    n_c: int = 8,
    timing: TimingModel | None = None,
    max_workers: int | None = 1,
    manifest_dir: str | os.PathLike | None = None,
    on_event: Callable | None = None,
) -> tuple[int, SingleCoreResult]:
    """The PD minimizing misses over a sweep, with its result."""
    results = sweep_static_pd(
        trace,
        geometry,
        pds,
        bypass=bypass,
        n_c=n_c,
        timing=timing,
        max_workers=max_workers,
        manifest_dir=manifest_dir,
        on_event=on_event,
    )
    pd = min(results, key=lambda candidate: results[candidate].misses)
    return pd, results[pd]


def compare_policies(
    trace: Trace,
    factories: dict[str, Callable[[], object]],
    geometry: CacheGeometry,
    timing: TimingModel | None = None,
    max_workers: int | None = 1,
    engine: str = "vector",
    manifest_dir: str | os.PathLike | None = None,
    on_event: Callable | None = None,
) -> dict[str, SingleCoreResult]:
    """Run one trace under several policies (fresh instance per run).

    See :func:`sweep_static_pd` for the ``max_workers`` and
    observability contracts.
    """
    if max_workers != 1 or manifest_dir is not None or on_event is not None:
        from repro.sim.parallel import parallel_compare_policies

        return parallel_compare_policies(
            trace,
            factories,
            geometry,
            timing=timing,
            max_workers=max_workers,
            engine=engine,
            manifest_dir=manifest_dir,
            on_event=on_event,
        )
    return {
        name: run_llc(trace, factory(), geometry, timing=timing, engine=engine)
        for name, factory in factories.items()
    }


def default_pd_candidates(
    associativity: int = 16, d_max: int = 256, step: int = 4
) -> list[int]:
    """PD sweep grid: associativity up to d_max in S_c steps.

    Delegates to :func:`repro.core.pd_grid.pd_grid` — the canonical
    grid shared with the analytical explorer and its cross-validation
    harness, so "within one grid step" means the same thing everywhere.
    """
    from repro.core.pd_grid import pd_grid

    return pd_grid(associativity, d_max=d_max, step=step)


__all__ = [
    "best_static_pd",
    "compare_policies",
    "default_pd_candidates",
    "sweep_static_pd",
]
