"""Experiment helpers: static-PD sweeps and policy comparisons."""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.core.pdp_policy import PDPPolicy
from repro.memory.cache import CacheGeometry
from repro.memory.timing import TimingModel
from repro.sim.single_core import SingleCoreResult, run_llc
from repro.traces.trace import Trace


def sweep_static_pd(
    trace: Trace,
    geometry: CacheGeometry,
    pds: Iterable[int],
    bypass: bool = True,
    n_c: int = 8,
    timing: TimingModel | None = None,
) -> dict[int, SingleCoreResult]:
    """Run static PDP (SPDP) for each candidate PD (Sec. 2.3)."""
    results: dict[int, SingleCoreResult] = {}
    for pd in pds:
        policy = PDPPolicy(static_pd=pd, bypass=bypass, n_c=n_c)
        results[pd] = run_llc(trace, policy, geometry, timing=timing)
    return results


def best_static_pd(
    trace: Trace,
    geometry: CacheGeometry,
    pds: Iterable[int],
    bypass: bool = True,
    n_c: int = 8,
    timing: TimingModel | None = None,
) -> tuple[int, SingleCoreResult]:
    """The PD minimizing misses over a sweep, with its result."""
    results = sweep_static_pd(trace, geometry, pds, bypass=bypass, n_c=n_c, timing=timing)
    pd = min(results, key=lambda candidate: results[candidate].misses)
    return pd, results[pd]


def compare_policies(
    trace: Trace,
    factories: dict[str, Callable[[], object]],
    geometry: CacheGeometry,
    timing: TimingModel | None = None,
) -> dict[str, SingleCoreResult]:
    """Run one trace under several policies (fresh instance per run)."""
    return {
        name: run_llc(trace, factory(), geometry, timing=timing)
        for name, factory in factories.items()
    }


def default_pd_candidates(
    associativity: int = 16, d_max: int = 256, step: int = 4
) -> list[int]:
    """PD sweep grid: associativity up to d_max in S_c steps."""
    return list(range(associativity, d_max + 1, step))


__all__ = [
    "best_static_pd",
    "compare_policies",
    "default_pd_candidates",
    "sweep_static_pd",
]
