"""Single-core simulation drivers.

``run_llc`` drives a trace straight into the LLC — the standard mode for
the paper's experiments, where traces stand for the post-L1/L2 access
stream. ``run_hierarchy`` drives the full three-level hierarchy for
end-to-end studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.memory.fastpath import run_hierarchy_trace, run_trace
from repro.memory.hierarchy import CacheHierarchy
from repro.memory.stats import OccupancyTracker
from repro.memory.timing import TimingModel
from repro.traces.trace import Trace

#: Engine modes accepted by the drivers: "fast" (batched kernel, the
#: default) and "reference" (the original per-Access loop, kept for
#: equivalence testing — see tests/test_fastpath.py).
ENGINES = ("fast", "reference")


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")


@dataclass(slots=True)
class SingleCoreResult:
    """Outcome of one single-core run."""

    name: str
    accesses: int
    hits: int
    misses: int
    bypasses: int
    instructions: int
    ipc: float
    extra: dict = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def mpki(self) -> float:
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.misses / self.instructions

    @property
    def bypass_fraction(self) -> float:
        return self.bypasses / self.accesses if self.accesses else 0.0


def run_llc(
    trace: Trace,
    policy,
    geometry: CacheGeometry,
    timing: TimingModel | None = None,
    track_occupancy: bool = False,
    occupancy_threshold: int = 16,
    engine: str = "fast",
) -> SingleCoreResult:
    """Drive ``trace`` into an LLC governed by ``policy``.

    Args:
        trace: LLC-level access stream.
        policy: a fresh (unattached) replacement policy instance.
        geometry: LLC shape.
        timing: IPC model; defaults to :class:`TimingModel` defaults.
        track_occupancy: attach an occupancy tracker (Fig. 5a data).
        engine: "fast" (batched kernel) or "reference" (per-Access loop);
            both produce identical results.
    """
    _check_engine(engine)
    timing = timing or TimingModel()
    cache = SetAssociativeCache(geometry, policy)
    tracker = None
    if track_occupancy:
        tracker = OccupancyTracker(short_threshold=occupancy_threshold)
        cache.observers.append(tracker)
    if engine == "fast":
        run_trace(cache, trace)
    else:
        for access in trace:
            cache.access(access)
    stats = cache.stats
    instructions = trace.instruction_count
    ipc = timing.ipc(
        instructions,
        l2_hits=0,
        llc_hits=stats.hits,
        memory_accesses=stats.misses,
    )
    extra: dict = {}
    if tracker is not None:
        extra["occupancy"] = tracker.breakdown
    # NB: named pd_engine, not engine — reusing the name would clobber
    # the engine-mode parameter (tests/test_fastpath.py pins this).
    pd_engine = getattr(policy, "engine", None)
    if pd_engine is not None:
        extra["pd_history"] = list(pd_engine.pd_history)
        extra["final_pd"] = pd_engine.current_pd
    if hasattr(policy, "current_pd"):
        extra["current_pd"] = policy.current_pd
    return SingleCoreResult(
        name=trace.name,
        accesses=stats.accesses,
        hits=stats.hits,
        misses=stats.misses,
        bypasses=stats.bypasses,
        instructions=instructions,
        ipc=ipc,
        extra=extra,
    )


def run_hierarchy(
    trace: Trace,
    llc_policy,
    machine=None,
    timing: TimingModel | None = None,
    engine: str = "fast",
) -> SingleCoreResult:
    """Drive ``trace`` through L1 -> L2 -> LLC (Table 1 defaults)."""
    from repro.sim.config import MachineConfig

    _check_engine(engine)
    machine = machine or MachineConfig()
    timing = timing or machine.timing()
    hierarchy = CacheHierarchy(
        llc_policy,
        l1_geometry=machine.l1d,
        l2_geometry=machine.l2,
        llc_geometry=machine.llc,
    )
    if engine == "fast":
        run_hierarchy_trace(hierarchy, trace)
    else:
        hierarchy.run(iter(trace))
    result = hierarchy.result
    instructions = trace.instruction_count
    ipc = timing.ipc(
        instructions,
        l2_hits=result.l2_hits,
        llc_hits=result.llc_hits,
        memory_accesses=result.memory_accesses,
    )
    return SingleCoreResult(
        name=trace.name,
        accesses=result.accesses,
        hits=result.l1_hits + result.l2_hits + result.llc_hits,
        misses=result.memory_accesses,
        bypasses=result.llc_bypasses,
        instructions=instructions,
        ipc=ipc,
        extra={"hierarchy": result},
    )


__all__ = ["ENGINES", "SingleCoreResult", "run_hierarchy", "run_llc"]
