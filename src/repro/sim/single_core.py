"""Single-core simulation drivers.

``run_llc`` drives a trace straight into the LLC — the standard mode for
the paper's experiments, where traces stand for the post-L1/L2 access
stream. ``run_hierarchy`` drives the full three-level hierarchy for
end-to-end studies.

Both drivers accept either an in-memory :class:`Trace` or a chunked
:class:`repro.traces.stream.TraceStream` (e.g. from
:func:`repro.traces.formats.open_trace`): chunks are fed through the
selected engine back to back, and because all simulation state lives in
the cache and policy objects, the accumulated statistics are
bit-identical to a one-shot run of the concatenated trace while peak
memory stays O(chunk) (``tests/test_streaming.py``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from time import perf_counter

from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.memory.columnar import run_trace_vector
from repro.memory.fastpath import run_hierarchy_trace, run_trace
from repro.memory.hierarchy import CacheHierarchy
from repro.memory.stats import OccupancyTracker
from repro.memory.timing import TimingModel
from repro.obs.manifest import FingerprintAccumulator, Manifest, trace_fingerprint
from repro.obs.manifest import git_sha as _git_sha
from repro.obs.telemetry import TELEMETRY
from repro.obs.timeseries import WindowedRecorder, _WindowFeed, active_recorder
from repro.traces.stream import TraceStream, as_stream
from repro.traces.trace import Trace

#: Engine modes accepted by the drivers: "vector" (columnar set-batched
#: kernels with per-policy fallback to the fast path — the ``run_llc``
#: default), "fast" (batched kernel) and "reference" (the original
#: per-Access loop, kept for equivalence testing — see
#: tests/test_fastpath.py and tests/test_conformance.py).
ENGINES = ("vector", "fast", "reference")


def _check_engine(engine: str) -> None:
    """Reject unknown engine names early, before any setup work."""
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")


def _resolve_recorder(
    timeseries: WindowedRecorder | None, window_size: int | None
) -> WindowedRecorder | None:
    """The run's active recorder: an explicit enabled ``timeseries``
    recorder, a fresh default-budget one when only ``window_size`` was
    given, or None (recording disabled — the zero-overhead path)."""
    if timeseries is not None and window_size is not None:
        raise ValueError("pass either timeseries= or window_size=, not both")
    if window_size is not None:
        return WindowedRecorder(window_size=window_size)
    return active_recorder(timeseries)


def _stream_fingerprint(stream: TraceStream) -> str:
    """Fingerprint a stream by re-scanning its chunks (O(chunk) memory)."""
    accumulator = FingerprintAccumulator()
    for chunk in stream.chunks():
        accumulator.update(chunk)
    return accumulator.digest(stream.name, stream.instructions_per_access)


def emit_run_manifest(
    manifest_dir: str | os.PathLike,
    kind: str,
    trace: Trace | TraceStream,
    policy_name: str,
    geometry: CacheGeometry,
    engine: str,
    result: SingleCoreResult,
    wall_time_s: float,
    run_label: str | None = None,
    run_meta: dict | None = None,
    fingerprint: str | None = None,
    timeseries: dict | None = None,
) -> None:
    """Write one per-run provenance manifest (see ``repro.obs.manifest``).

    Used by :func:`run_llc` / :func:`run_hierarchy` and by experiment
    drivers that derive a cell from an existing
    :class:`SingleCoreResult` (e.g. Fig. 10's SPDP-B column, the best
    point of a sweep) and still want it represented in the manifest
    directory. ``fingerprint`` lets a streaming run pass the digest it
    accumulated while simulating (avoiding a second pass over the file);
    when omitted it is computed here — for a :class:`TraceStream` that
    means one extra chunked scan.
    """
    meta = dict(run_meta or {})
    if fingerprint is None:
        if isinstance(trace, TraceStream):
            fingerprint = _stream_fingerprint(trace)
        else:
            fingerprint = trace_fingerprint(trace)
    Manifest(
        kind=kind,
        workload=trace.name,
        policy=policy_name,
        engine=engine,
        label=run_label,
        seed=meta.pop("seed", None),
        config={
            "num_sets": geometry.num_sets,
            "ways": geometry.ways,
            "line_size": geometry.line_size,
        },
        trace_fingerprint=fingerprint,
        git_sha=_git_sha(),
        wall_time_s=wall_time_s,
        accesses=result.accesses,
        accesses_per_sec=result.accesses / wall_time_s if wall_time_s > 0 else 0.0,
        stats={
            "accesses": result.accesses,
            "hits": result.hits,
            "misses": result.misses,
            "bypasses": result.bypasses,
            "evictions": result.evictions,
            "instructions": result.instructions,
        },
        metrics={
            "hit_rate": result.hit_rate,
            "mpki": result.mpki,
            "ipc": result.ipc,
            "bypass_fraction": result.bypass_fraction,
        },
        telemetry=TELEMETRY.snapshot() if TELEMETRY.enabled else {},
        timeseries=timeseries or {},
        extra=meta,
    ).save(manifest_dir)


@dataclass(slots=True)
class SingleCoreResult:
    """Outcome of one single-core run."""

    name: str
    accesses: int
    hits: int
    misses: int
    bypasses: int
    instructions: int
    ipc: float
    evictions: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Hits over accesses (0.0 on an empty run)."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def mpki(self) -> float:
        """Misses per thousand instructions."""
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.misses / self.instructions

    @property
    def bypass_fraction(self) -> float:
        """Fraction of accesses that bypassed the LLC."""
        return self.bypasses / self.accesses if self.accesses else 0.0


def run_llc(
    trace: Trace | TraceStream,
    policy,
    geometry: CacheGeometry,
    timing: TimingModel | None = None,
    track_occupancy: bool = False,
    occupancy_threshold: int = 16,
    engine: str = "vector",
    manifest_dir: str | os.PathLike | None = None,
    run_label: str | None = None,
    run_meta: dict | None = None,
    timeseries: WindowedRecorder | None = None,
    window_size: int | None = None,
) -> SingleCoreResult:
    """Drive ``trace`` into an LLC governed by ``policy``.

    Args:
        trace: LLC-level access stream — an in-memory :class:`Trace`
            (simulated in one shot, exactly as before) or a chunked
            :class:`TraceStream` (simulated chunk by chunk in O(chunk)
            memory, with bit-identical statistics).
        policy: a fresh (unattached) replacement policy instance.
        geometry: LLC shape.
        timing: IPC model; defaults to :class:`TimingModel` defaults.
        track_occupancy: attach an occupancy tracker (Fig. 5a data).
        engine: "vector" (columnar set-batched kernels, falling back to
            the fast path per policy — the default), "fast" (batched
            kernel) or "reference" (per-Access loop); all three produce
            identical results.
        manifest_dir: when set, write a provenance manifest for this run
            into the directory (see :mod:`repro.obs.manifest`). Never
            read from the environment here — nested helper runs must not
            emit surprise manifests. Streaming runs fingerprint their
            chunks while simulating — no second pass over the file.
        run_label: display label recorded in the manifest (e.g. the
            sweep cell key); defaults to the policy class name.
        run_meta: extra JSON-native context for the manifest; a ``seed``
            key is lifted into the manifest's ``seed`` field.
        timeseries: a :class:`repro.obs.timeseries.WindowedRecorder` to
            fill with per-window statistics. The simulation is split at
            absolute window boundaries, so the recorded windows are
            bit-identical across engines and chunk sizes; a disabled (or
            absent) recorder keeps the exact pre-existing code path.
            The window payload lands in ``result.extra["timeseries"]``
            and in the manifest when one is written.
        window_size: convenience alternative to ``timeseries``: record
            with a fresh default-budget recorder of this window size
            (mutually exclusive with ``timeseries``).
    """
    _check_engine(engine)
    recorder = _resolve_recorder(timeseries, window_size)
    timing = timing or TimingModel()
    start = perf_counter()
    stream = as_stream(trace)
    cache = SetAssociativeCache(geometry, policy)
    tracker = None
    if track_occupancy:
        tracker = OccupancyTracker(short_threshold=occupancy_threshold)
        cache.observers.append(tracker)
    if recorder is not None:
        recorder.attach(cache, policy)
    feed = _WindowFeed(recorder)
    fingerprinter = FingerprintAccumulator() if manifest_dir is not None else None
    total_accesses = 0
    kernel = run_trace_vector if engine == "vector" else run_trace
    for chunk in stream.chunks():
        for sub, take in feed.slices(chunk):
            if engine == "reference":
                for access in sub:
                    cache.access(access)
            else:
                kernel(cache, sub)
            feed.account(take)
        total_accesses += len(chunk)
        if fingerprinter is not None:
            fingerprinter.update(chunk)
    feed.finish()
    stats = cache.stats
    instructions = int(round(total_accesses * stream.instructions_per_access))
    ipc = timing.ipc(
        instructions,
        l2_hits=0,
        llc_hits=stats.hits,
        memory_accesses=stats.misses,
    )
    extra: dict = {}
    if tracker is not None:
        extra["occupancy"] = tracker.breakdown
    # NB: named pd_engine, not engine — reusing the name would clobber
    # the engine-mode parameter (tests/test_fastpath.py pins this).
    pd_engine = getattr(policy, "engine", None)
    if pd_engine is not None:
        extra["pd_history"] = list(pd_engine.pd_history)
        extra["final_pd"] = pd_engine.current_pd
    if hasattr(policy, "current_pd"):
        extra["current_pd"] = policy.current_pd
    if recorder is not None:
        extra["timeseries"] = recorder.to_dict()
    result = SingleCoreResult(
        name=stream.name,
        accesses=stats.accesses,
        hits=stats.hits,
        misses=stats.misses,
        bypasses=stats.bypasses,
        instructions=instructions,
        ipc=ipc,
        evictions=stats.evictions,
        extra=extra,
    )
    if manifest_dir is not None:
        emit_run_manifest(
            manifest_dir,
            "llc",
            stream,
            type(policy).__name__,
            geometry,
            engine,
            result,
            perf_counter() - start,
            run_label,
            run_meta,
            fingerprint=fingerprinter.digest(
                stream.name, stream.instructions_per_access
            ),
            timeseries=recorder.to_dict() if recorder is not None else None,
        )
    return result


def run_hierarchy(
    trace: Trace | TraceStream,
    llc_policy,
    machine=None,
    timing: TimingModel | None = None,
    engine: str = "fast",
    manifest_dir: str | os.PathLike | None = None,
    run_label: str | None = None,
    run_meta: dict | None = None,
    timeseries: WindowedRecorder | None = None,
    window_size: int | None = None,
) -> SingleCoreResult:
    """Drive ``trace`` through L1 -> L2 -> LLC (Table 1 defaults).

    Accepts an in-memory :class:`Trace` or a chunked
    :class:`TraceStream` (the :func:`run_llc` streaming contract).
    ``manifest_dir`` / ``run_label`` / ``run_meta`` follow the
    :func:`run_llc` contract (manifest ``kind`` is ``"hierarchy"``).
    ``timeseries`` / ``window_size`` follow :func:`run_llc` too, with one
    twist: the recorder observes the **LLC**, so window boundaries count
    trace (L1) positions while the counters are LLC-stat deltas — windows
    where the upper levels absorb everything are legitimately all-zero.
    ``engine="vector"`` is accepted as an alias for the fast hierarchy
    kernel (hierarchy traffic is filtered through L1/L2, so the columnar
    LLC kernels do not apply).
    """
    from repro.sim.config import MachineConfig

    _check_engine(engine)
    recorder = _resolve_recorder(timeseries, window_size)
    machine = machine or MachineConfig()
    start = perf_counter()
    timing = timing or machine.timing()
    stream = as_stream(trace)
    hierarchy = CacheHierarchy(
        llc_policy,
        l1_geometry=machine.l1d,
        l2_geometry=machine.l2,
        llc_geometry=machine.llc,
    )
    if recorder is not None:
        recorder.attach(hierarchy.llc, llc_policy)
    feed = _WindowFeed(recorder)
    fingerprinter = FingerprintAccumulator() if manifest_dir is not None else None
    total_accesses = 0
    for chunk in stream.chunks():
        for sub, take in feed.slices(chunk):
            if engine in ("fast", "vector"):
                run_hierarchy_trace(hierarchy, sub)
            else:
                hierarchy.run(iter(sub))
            feed.account(take)
        total_accesses += len(chunk)
        if fingerprinter is not None:
            fingerprinter.update(chunk)
    feed.finish()
    result = hierarchy.result
    instructions = int(round(total_accesses * stream.instructions_per_access))
    ipc = timing.ipc(
        instructions,
        l2_hits=result.l2_hits,
        llc_hits=result.llc_hits,
        memory_accesses=result.memory_accesses,
    )
    hierarchy_extra: dict = {"hierarchy": result}
    if recorder is not None:
        hierarchy_extra["timeseries"] = recorder.to_dict()
    outcome = SingleCoreResult(
        name=stream.name,
        accesses=result.accesses,
        hits=result.l1_hits + result.l2_hits + result.llc_hits,
        misses=result.memory_accesses,
        bypasses=result.llc_bypasses,
        instructions=instructions,
        ipc=ipc,
        extra=hierarchy_extra,
    )
    if manifest_dir is not None:
        emit_run_manifest(
            manifest_dir,
            "hierarchy",
            stream,
            type(llc_policy).__name__,
            machine.llc,
            engine,
            outcome,
            perf_counter() - start,
            run_label,
            run_meta,
            fingerprint=fingerprinter.digest(
                stream.name, stream.instructions_per_access
            ),
            timeseries=recorder.to_dict() if recorder is not None else None,
        )
    return outcome


__all__ = [
    "ENGINES",
    "SingleCoreResult",
    "emit_run_manifest",
    "run_hierarchy",
    "run_llc",
]
