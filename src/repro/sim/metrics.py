"""Performance metrics (Sec. 5 of the paper).

Single-core: MPKI and IPC. Multi-core, for per-thread IPCs ``ipc[t]`` and
stand-alone baselines ``single[t]`` (thread alone on the shared LLC with
LRU, the paper's normalization):

- weighted IPC      W = sum_t ipc[t] / single[t]
- throughput        T = sum_t ipc[t]
- harmonic fairness H = N / sum_t (single[t] / ipc[t])
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def weighted_ipc(ipcs: Sequence[float], singles: Sequence[float]) -> float:
    """Weighted IPC: sum of per-thread speedups over stand-alone LRU."""
    _check(ipcs, singles)
    return sum(ipc / single for ipc, single in zip(ipcs, singles))


def throughput(ipcs: Sequence[float]) -> float:
    """Raw throughput: sum of per-thread IPCs."""
    return sum(ipcs)


def harmonic_mean_normalized_ipc(
    ipcs: Sequence[float], singles: Sequence[float]
) -> float:
    """Harmonic mean of normalized IPCs — the paper's fairness metric H."""
    _check(ipcs, singles)
    total = sum(single / ipc for ipc, single in zip(ipcs, singles))
    return len(ipcs) / total if total > 0 else 0.0


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (for averaging speedup ratios)."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(value <= 0 for value in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


def percent_change(new: float, baseline: float) -> float:
    """(new - baseline) / baseline, in percent."""
    if baseline == 0:
        return 0.0
    return 100.0 * (new - baseline) / baseline


def miss_reduction_percent(misses: float, baseline_misses: float) -> float:
    """Reduction in misses vs a baseline, in percent (positive = better)."""
    if baseline_misses == 0:
        return 0.0
    return 100.0 * (baseline_misses - misses) / baseline_misses


def _check(ipcs: Sequence[float], singles: Sequence[float]) -> None:
    """Validate the per-thread IPC inputs of the W/T/H metrics."""
    if len(ipcs) != len(singles):
        raise ValueError("per-thread IPC lists must have equal length")
    if any(value <= 0 for value in singles):
        raise ValueError("stand-alone IPCs must be positive")
    if any(value <= 0 for value in ipcs):
        raise ValueError("per-thread IPCs must be positive")


__all__ = [
    "geometric_mean",
    "harmonic_mean_normalized_ipc",
    "miss_reduction_percent",
    "percent_change",
    "throughput",
    "weighted_ipc",
]
