"""Analytic core timing model.

The paper models an 8-deep, 4-wide out-of-order core (Table 1) in CMP$im.
We substitute a penalty-based model: cycles are issue cycles plus per-level
stall penalties, divided by a memory-level-parallelism (MLP) factor that
stands in for out-of-order overlap. The model is monotone in miss counts,
which is what the paper's relative IPC comparisons rely on.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TimingModel:
    """Latency parameters, defaulting to the paper's Table 1.

    Attributes:
        issue_width: instructions retired per cycle at best.
        l1_latency: cycles for an L1 hit (hidden by the pipeline).
        l2_latency / llc_latency / memory_latency: total load-to-use cycles
            for hits at each level.
        mlp: average overlap factor applied to stall cycles.
    """

    issue_width: int = 4
    l1_latency: int = 2
    l2_latency: int = 10
    llc_latency: int = 30
    memory_latency: int = 200
    mlp: float = 2.0

    def cycles(
        self,
        instructions: int,
        l2_hits: int,
        llc_hits: int,
        memory_accesses: int,
    ) -> float:
        """Total cycles for a run with the given service counts."""
        issue_cycles = instructions / self.issue_width
        stall_cycles = (
            l2_hits * (self.l2_latency - self.l1_latency)
            + llc_hits * (self.llc_latency - self.l1_latency)
            + memory_accesses * (self.memory_latency - self.l1_latency)
        )
        return issue_cycles + stall_cycles / self.mlp

    def ipc(
        self,
        instructions: int,
        l2_hits: int,
        llc_hits: int,
        memory_accesses: int,
    ) -> float:
        """Instructions per cycle under this model."""
        total = self.cycles(instructions, l2_hits, llc_hits, memory_accesses)
        return instructions / total if total > 0 else 0.0


@dataclass(slots=True)
class TimingResult:
    """IPC/cycles pair for one run."""

    instructions: int
    cycles: float

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles > 0 else 0.0


__all__ = ["TimingModel", "TimingResult"]
