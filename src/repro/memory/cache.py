"""Set-associative cache with a pluggable replacement/bypass policy.

The cache owns tags, valid bits, per-line reuse bits, ownership (inserting
thread) and per-set access counters. Replacement policies keep their own
per-line metadata and are driven through the
:class:`repro.policies.base.ReplacementPolicy` hook interface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.memory.stats import CacheStats
from repro.types import Access, AccessResult


@dataclass(frozen=True)
class CacheGeometry:
    """Shape of a cache: sets x ways x line size."""

    num_sets: int
    ways: int
    line_size: int = 64

    def __post_init__(self) -> None:
        if self.num_sets <= 0 or self.num_sets & (self.num_sets - 1):
            raise ValueError(f"num_sets must be a power of two, got {self.num_sets}")
        if self.ways <= 0:
            raise ValueError(f"ways must be positive, got {self.ways}")

    @property
    def capacity_bytes(self) -> int:
        return self.num_sets * self.ways * self.line_size

    @property
    def total_lines(self) -> int:
        return self.num_sets * self.ways

    @classmethod
    def from_capacity(
        cls, capacity_bytes: int, ways: int, line_size: int = 64
    ) -> CacheGeometry:
        """Build a geometry from capacity / associativity / line size."""
        num_sets = capacity_bytes // (ways * line_size)
        if num_sets * ways * line_size != capacity_bytes:
            raise ValueError(
                f"capacity {capacity_bytes} is not sets*ways*line_size-aligned"
            )
        return cls(num_sets=num_sets, ways=ways, line_size=line_size)

    def set_index(self, block_address: int) -> int:
        return block_address % self.num_sets

    def tag(self, block_address: int) -> int:
        return block_address // self.num_sets

    def __str__(self) -> str:
        kib = self.capacity_bytes / 1024
        return f"{kib:g}KB/{self.ways}-way/{self.line_size}B"


class SetAssociativeCache:
    """A set-associative cache driven by a replacement policy.

    Access flow: tag check -> on hit, promote via the policy; on miss, fill
    an invalid way if present, otherwise ask the policy for a victim. A
    policy that supports bypass may return ``None`` from ``choose_victim``,
    in which case the fill is dropped (non-inclusive behaviour, Sec. 2.2).

    Observers (e.g. :class:`repro.memory.stats.OccupancyTracker`) receive
    ``on_hit(set, addr, occupancy)``, ``on_evict(set, addr, occupancy,
    was_reused)``, ``on_bypass(set, addr)`` and ``on_fill(set, addr)``.
    """

    def __init__(self, geometry: CacheGeometry, policy) -> None:
        self.geometry = geometry
        self.policy = policy
        num_sets, ways = geometry.num_sets, geometry.ways
        self.tags = [[0] * ways for _ in range(num_sets)]
        self.valid = [[False] * ways for _ in range(num_sets)]
        # Reuse bit: set on first hit after insertion (paper Sec. 2.2).
        self.reused = [[False] * ways for _ in range(num_sets)]
        # Thread that inserted the line (shared-cache policies).
        self.owner = [[0] * ways for _ in range(num_sets)]
        # Per-set access count; also drives occupancy accounting.
        self.set_accesses = [0] * num_sets
        # Set access count at the line's last insertion/promotion.
        self._interval_start = [[0] * ways for _ in range(num_sets)]
        # Per-set {tag: way} index of the valid lines. All mutations go
        # through access()/invalidate_all(), which keep it coherent; it
        # replaces the O(ways) tag scans in lookup() and access(). Lines
        # are only invalidated wholesale, so valid ways are always the
        # prefix [0, len(index)) and len(index) names the next free way.
        self._tag_index: list[dict[int, int]] = [{} for _ in range(num_sets)]
        self.stats = CacheStats()
        self.observers: list = []
        policy.attach(self)

    # -- queries ---------------------------------------------------------

    def lookup(self, block_address: int) -> int | None:
        """Way holding ``block_address`` or None; no state change."""
        set_index = self.geometry.set_index(block_address)
        return self._tag_index[set_index].get(self.geometry.tag(block_address))

    def resident_addresses(self, set_index: int) -> list[int]:
        """Block addresses currently valid in ``set_index``."""
        return [
            self.tags[set_index][w] * self.geometry.num_sets + set_index
            for w in range(self.geometry.ways)
            if self.valid[set_index][w]
        ]

    def occupancy_of(self, set_index: int, way: int) -> int:
        """Set accesses since the line's last insertion or promotion."""
        return self.set_accesses[set_index] - self._interval_start[set_index][way]

    # -- the access path --------------------------------------------------

    def access(self, access: Access) -> AccessResult:
        """Present one access; returns hit/miss/bypass outcome."""
        geometry = self.geometry
        set_index = geometry.set_index(access.address)
        tag = geometry.tag(access.address)
        self.stats.accesses += 1
        self.set_accesses[set_index] += 1
        self.policy.on_access(set_index, access)

        index = self._tag_index[set_index]
        hit_way = index.get(tag)
        if hit_way is not None:
            self.stats.hits += 1
            occupancy = self.occupancy_of(set_index, hit_way)
            self.reused[set_index][hit_way] = True
            self._interval_start[set_index][hit_way] = self.set_accesses[set_index]
            self.policy.on_hit(set_index, hit_way, access)
            for observer in self.observers:
                observer.on_hit(set_index, access.address, occupancy)
            return AccessResult(hit=True, way=hit_way)

        self.stats.misses += 1
        row_tags = self.tags[set_index]
        evicted_address: int | None = None
        if len(index) < geometry.ways:
            victim_way = len(index)  # lowest-numbered invalid way
        else:
            chosen = self.policy.choose_victim(set_index, access)
            if chosen is None:
                self.stats.bypasses += 1
                self.policy.on_bypass(set_index, access)
                for observer in self.observers:
                    observer.on_bypass(set_index, access.address)
                return AccessResult(hit=False, bypassed=True)
            victim_way = chosen
            evicted_address = row_tags[victim_way] * geometry.num_sets + set_index
            occupancy = self.occupancy_of(set_index, victim_way)
            was_reused = self.reused[set_index][victim_way]
            self.stats.evictions += 1
            self.policy.on_evict(set_index, victim_way, access)
            for observer in self.observers:
                observer.on_evict(set_index, evicted_address, occupancy, was_reused)
            del index[row_tags[victim_way]]

        row_tags[victim_way] = tag
        self.valid[set_index][victim_way] = True
        self.reused[set_index][victim_way] = False
        self.owner[set_index][victim_way] = access.thread_id
        self._interval_start[set_index][victim_way] = self.set_accesses[set_index]
        index[tag] = victim_way
        self.stats.fills += 1
        self.policy.on_fill(set_index, victim_way, access)
        for observer in self.observers:
            observer.on_fill(set_index, access.address)
        return AccessResult(hit=False, evicted=evicted_address, way=victim_way)

    def run_trace(self, trace) -> None:
        """Drive a whole :class:`repro.traces.trace.Trace` (fast path).

        Batched equivalent of ``for access in trace: self.access(access)``
        — see :mod:`repro.memory.fastpath`.
        """
        from repro.memory.fastpath import run_trace

        run_trace(self, trace)

    def invalidate_all(self) -> None:
        """Drop all lines (used between experiment phases)."""
        for set_index in range(self.geometry.num_sets):
            self._tag_index[set_index].clear()
            for way in range(self.geometry.ways):
                self.valid[set_index][way] = False
                self.reused[set_index][way] = False

    def __repr__(self) -> str:
        return (
            f"SetAssociativeCache({self.geometry}, "
            f"policy={type(self.policy).__name__})"
        )


def log2_int(value: int) -> int:
    """Integer log2 of a power of two."""
    result = int(math.log2(value))
    if 1 << result != value:
        raise ValueError(f"{value} is not a power of two")
    return result


__all__ = ["CacheGeometry", "SetAssociativeCache", "log2_int"]
