"""Columnar set-batched engine — the ``engine="vector"`` tier.

:func:`run_trace_vector` is the third engine behind the drivers'
``engine=`` seam (reference → fast → vector). Like
:func:`repro.memory.fastpath.run_trace` it is semantically identical to
``for access in trace: cache.access(access)``, but instead of resolving
the trace in arrival order it *groups a chunk by set index* (one stable
numpy argsort + one bulk ``tolist``) and replays each set's subsequence
through a policy-specialized kernel with every per-access Python hook
call eliminated. Sets are independent under every vectorized policy, so
the grouped replay reaches the exact same final state, statistics,
eviction decisions and windowed time-series as the reference loop —
``tests/test_conformance.py`` and ``tests/test_columnar.py`` pin this,
including invariance under arbitrary permutations of the set-batch
processing order.

Vectorized policies (exact types; subclasses keep the fast path): LRU,
MRU, FIFO, SRRIP, and PDP — static and dynamic. Everything else falls
back per-policy to the fast path inside :func:`run_trace_vector`, which
is what lets ``run_llc``/``run_matrix`` default to ``engine="vector"``
safely:

- BRRIP/DRRIP (and the random policy) consume a shared RNG / set-dueling
  PSEL in *global fill order*, which set grouping would reorder — they
  cannot be vectorized bit-identically and are not registered.
- Dynamic PDP is vectorized only when
  ``recompute_interval <= counter_max`` (65535 with the paper's 16-bit
  counters): within one recompute epoch the RD counters then provably
  cannot saturate, so the order-dependent freeze rule of
  :class:`repro.core.rdd.RDCounterArray` can never fire mid-epoch and
  batched counter accumulation is exact. The paper-scale 512K interval
  (which *does* rely on freezing) keeps the fast path.

The PDP kernel replaces the per-access all-ways RPD decrement loop with
an *expiry* representation: with ``T`` the set's tick count, a line whose
RPD was set to ``v`` at tick ``T0`` is protected exactly while
``T < T0 + v``, so storing ``expiry = T0 + v`` turns the O(ways)
decrement into a single ``T += 1`` and victim selection into a scan for
``expiry <= T``. A cached per-set lower bound on the minimum expiry
short-circuits the all-protected case (the common one under bypass) to
O(1). Policy-visible state (``_rpd``/``_step_counter``) is rebuilt from
the expiry columns at the end of every kernel call, so
:meth:`~repro.core.pdp_policy.PDPPolicy.protected_count` and windowed
recorders observe exactly the reference values at every window boundary.

Dynamic PDP splits each call at the same absolute recompute epochs as
the reference: the sampler FIFOs and RD counters are fed set-grouped
(their state is per-set and the counter sums commute), and
``PDEngine.recompute`` fires at the exact access positions the
per-access loop would trigger it — ``pd_history`` is bit-identical.

Set independence also makes one trace *shardable* across processes:
:func:`shard_trace` / :func:`run_llc_shard` / :func:`merge_shard_parts`
back ``run_matrix(set_partitions=...)``, partitioning the sets of one
grid cell over workers with bit-identically merging statistics and
windowed time-series (see :func:`repro.sim.parallel.run_matrix`).
"""

from __future__ import annotations

from itertools import repeat
from time import perf_counter

import numpy as np

from repro.core.pdp_policy import PDPPolicy
from repro.memory.cache import SetAssociativeCache, log2_int
from repro.memory.fastpath import run_trace
from repro.obs.metrics import METRICS
from repro.obs.telemetry import TELEMETRY
from repro.policies.fifo import FIFOPolicy
from repro.policies.lru import LRUPolicy, MRUPolicy
from repro.policies.rrip import SRRIPPolicy
from repro.traces.trace import Trace

class _FallbackKernel:
    """Cached dispatch decision for a policy with no vector kernel:
    every chunk goes straight to the fast path."""

    def __init__(self, cache) -> None:
        self.cache = cache
        self.policy = cache.policy

    def run(self, trace, set_order=None) -> None:
        """Delegate to :func:`repro.memory.fastpath.run_trace`."""
        run_trace(self.cache, trace)


def _group_by_set(set_ids: np.ndarray):
    """Stable set grouping of one (sub-)chunk.

    Returns ``(order, group_sets, starts, ends)``: ``order`` is the
    stable argsort permutation; group ``g`` covers sorted positions
    ``starts[g]:ends[g]`` and belongs to set ``group_sets[g]``. Stability
    preserves each set's arrival-order subsequence, which is all a
    set-local policy can observe.
    """
    order = np.argsort(set_ids, kind="stable")
    sorted_sets = set_ids[order]
    boundaries = np.flatnonzero(sorted_sets[1:] != sorted_sets[:-1]) + 1
    starts = np.concatenate((np.zeros(1, dtype=np.int64), boundaries))
    ends = np.concatenate((boundaries, np.asarray([len(sorted_sets)])))
    return order, sorted_sets[starts].tolist(), starts.tolist(), ends.tolist()


class _SetBatchKernel:
    """Base vector kernel: grouping, stats flushing, common layout.

    Subclasses implement ``_run_set(set_index, tags, tids)`` — the
    policy-specialized replay of one set's subsequence, mutating the
    cache's own per-set rows (``tags``/``valid``/``reused``/``owner``/
    ``_interval_start``/``_tag_index``) and the policy's own per-set
    state so that no separate write-back is needed and any engine can
    take over on the next chunk.
    """

    def __init__(self, cache) -> None:
        self.cache = cache
        self.policy = cache.policy
        geometry = cache.geometry
        self.num_sets = geometry.num_sets
        self.set_mask = self.num_sets - 1
        self.set_shift = log2_int(self.num_sets)
        self.ways = geometry.ways
        self.observers = cache.observers
        self.hits = 0
        self.bypasses = 0
        self.evictions = 0
        self._tid0 = 0

    @classmethod
    def supports(cls, policy) -> bool:
        """Whether this kernel can run ``policy`` bit-identically."""
        return True

    def run(self, trace, set_order=None) -> None:
        """Drive every access of ``trace`` through the cache, set-batched.

        ``set_order`` optionally fixes the order in which set batches are
        replayed (any permutation covering the sets present in the
        chunk); the default is ascending set index. The end state is
        identical either way — the permutation hook exists so tests can
        assert exactly that.
        """
        n = len(trace)
        if n == 0:
            return
        obs_enabled = TELEMETRY.enabled or METRICS.enabled
        telemetry_start = perf_counter() if obs_enabled else 0.0
        addresses = trace.addresses
        set_ids = addresses & self.set_mask
        tags = addresses >> self.set_shift
        thread_ids = trace.thread_ids
        if bool((thread_ids[0] == thread_ids).all()):
            self._tid0 = int(thread_ids[0])
            tids = None
        else:
            tids = thread_ids
        self.hits = self.bypasses = self.evictions = 0
        self._drive(set_ids, tags, tids, 0, n, set_order)
        misses = n - self.hits
        stats = self.cache.stats
        stats.accesses += n
        stats.hits += self.hits
        stats.misses += misses
        stats.bypasses += self.bypasses
        stats.evictions += self.evictions
        stats.fills += misses - self.bypasses
        self._sync()
        if obs_enabled:
            elapsed = perf_counter() - telemetry_start
            TELEMETRY.record("columnar.run_trace", elapsed)
            TELEMETRY.count("columnar.accesses", n)
            METRICS.observe("columnar.run_trace_s", elapsed)
            METRICS.inc("columnar.accesses", n)

    def _drive(self, set_ids, tags, tids, lo, hi, set_order) -> None:
        """Replay accesses ``[lo, hi)``; one segment for static policies
        (the dynamic-PDP kernel overrides this with epoch splitting)."""
        self._resolve_range(set_ids, tags, tids, lo, hi, set_order)

    def _resolve_range(self, set_ids, tags, tids, lo, hi, set_order) -> None:
        """Group ``[lo, hi)`` by set and replay each batch."""
        order, group_sets, starts, ends = _group_by_set(set_ids[lo:hi])
        sorted_tags = tags[lo:hi][order].tolist()
        sorted_tids = None if tids is None else tids[lo:hi][order].tolist()
        if set_order is None:
            groups = range(len(group_sets))
        else:
            remaining = {s: g for g, s in enumerate(group_sets)}
            groups = [
                remaining.pop(s) for s in set_order if s in remaining
            ]
            if remaining:
                raise ValueError(
                    f"set_order misses sets present in the chunk: "
                    f"{sorted(remaining)}"
                )
        run_set = self._run_set
        for g in groups:
            a, b = starts[g], ends[g]
            run_set(
                group_sets[g],
                sorted_tags[a:b],
                None if sorted_tids is None else sorted_tids[a:b],
            )

    def _sync(self) -> None:
        """Write kernel-private state back into policy-visible storage
        (no-op for kernels operating directly on policy state)."""


class _LRUKernel(_SetBatchKernel):
    """LRU replay on the policy's own per-set recency lists."""

    _evict_last = False  # MRU flips this

    def _run_set(self, s, tag_seq, tid_seq) -> None:
        cache = self.cache
        index = cache._tag_index[s]
        row_tags = cache.tags[s]
        valid_row = cache.valid[s]
        reused_row = cache.reused[s]
        owner_row = cache.owner[s]
        start_row = cache._interval_start[s]
        order_row = self.policy._order[s]
        observers = self.observers
        ways = self.ways
        num_sets = self.num_sets
        set_shift = self.set_shift
        evict_last = self._evict_last
        get = index.get
        count = cache.set_accesses[s]
        hits = evictions = 0
        tid_seq = repeat(self._tid0) if tid_seq is None else tid_seq
        for tag, tid in zip(tag_seq, tid_seq):
            count += 1
            way = get(tag)
            if way is not None:
                hits += 1
                if observers:
                    occupancy = count - start_row[way]
                reused_row[way] = True
                start_row[way] = count
                if order_row[-1] != way:
                    order_row.remove(way)
                    order_row.append(way)
                if observers:
                    address = (tag << set_shift) | s
                    for observer in observers:
                        observer.on_hit(s, address, occupancy)
                continue
            filled = len(index)
            if filled < ways:
                way = filled  # lowest-numbered invalid way
                valid_row[way] = True
            else:
                way = order_row[-1] if evict_last else order_row[0]
                old_tag = row_tags[way]
                evictions += 1
                if observers:
                    evicted_address = old_tag * num_sets + s
                    occupancy = count - start_row[way]
                    was_reused = reused_row[way]
                    for observer in observers:
                        observer.on_evict(
                            s, evicted_address, occupancy, was_reused
                        )
                del index[old_tag]
            row_tags[way] = tag
            reused_row[way] = False
            owner_row[way] = tid
            start_row[way] = count
            index[tag] = way
            if order_row[-1] != way:
                order_row.remove(way)
                order_row.append(way)
            if observers:
                address = (tag << set_shift) | s
                for observer in observers:
                    observer.on_fill(s, address)
        cache.set_accesses[s] = count
        self.hits += hits
        self.evictions += evictions


class _MRUKernel(_LRUKernel):
    """MRU replay: evict the most recently touched way."""

    _evict_last = True


class _FIFOKernel(_SetBatchKernel):
    """FIFO replay on the policy's per-set insertion stamps."""

    def _run_set(self, s, tag_seq, tid_seq) -> None:
        cache = self.cache
        policy = self.policy
        index = cache._tag_index[s]
        row_tags = cache.tags[s]
        valid_row = cache.valid[s]
        reused_row = cache.reused[s]
        owner_row = cache.owner[s]
        start_row = cache._interval_start[s]
        inserted_row = policy._inserted[s]
        observers = self.observers
        ways = self.ways
        num_sets = self.num_sets
        set_shift = self.set_shift
        get = index.get
        count = cache.set_accesses[s]
        clock = policy._clock[s]
        hits = evictions = 0
        tid_seq = repeat(self._tid0) if tid_seq is None else tid_seq
        for tag, tid in zip(tag_seq, tid_seq):
            count += 1
            way = get(tag)
            if way is not None:
                hits += 1
                if observers:
                    occupancy = count - start_row[way]
                reused_row[way] = True
                start_row[way] = count
                if observers:
                    address = (tag << set_shift) | s
                    for observer in observers:
                        observer.on_hit(s, address, occupancy)
                continue
            filled = len(index)
            if filled < ways:
                way = filled  # lowest-numbered invalid way
                valid_row[way] = True
            else:
                # First way with the oldest insertion stamp — identical
                # to min(range(ways), key=row.__getitem__).
                way = inserted_row.index(min(inserted_row))
                old_tag = row_tags[way]
                evictions += 1
                if observers:
                    evicted_address = old_tag * num_sets + s
                    occupancy = count - start_row[way]
                    was_reused = reused_row[way]
                    for observer in observers:
                        observer.on_evict(
                            s, evicted_address, occupancy, was_reused
                        )
                del index[old_tag]
            row_tags[way] = tag
            reused_row[way] = False
            owner_row[way] = tid
            start_row[way] = count
            index[tag] = way
            clock += 1
            inserted_row[way] = clock
            if observers:
                address = (tag << set_shift) | s
                for observer in observers:
                    observer.on_fill(s, address)
        cache.set_accesses[s] = count
        policy._clock[s] = clock
        self.hits += hits
        self.evictions += evictions


class _SRRIPKernel(_SetBatchKernel):
    """SRRIP replay: batched aging instead of the step-by-step scan.

    The reference victim loop ages the whole set by one until a way
    reaches ``rrpv_max``; since RRPVs never exceed ``rrpv_max``, that is
    exactly "add ``rrpv_max - max(row)`` to every way, evict the first
    way that held the maximum" — one ``max``/``index`` pair and one list
    comprehension per eviction.
    """

    def _run_set(self, s, tag_seq, tid_seq) -> None:
        cache = self.cache
        policy = self.policy
        index = cache._tag_index[s]
        row_tags = cache.tags[s]
        valid_row = cache.valid[s]
        reused_row = cache.reused[s]
        owner_row = cache.owner[s]
        start_row = cache._interval_start[s]
        rrpv_row = policy._rrpv[s]
        rrpv_max = policy.rrpv_max
        insert_value = rrpv_max - 1  # "long" re-reference prediction
        observers = self.observers
        ways = self.ways
        num_sets = self.num_sets
        set_shift = self.set_shift
        get = index.get
        count = cache.set_accesses[s]
        hits = evictions = 0
        tid_seq = repeat(self._tid0) if tid_seq is None else tid_seq
        for tag, tid in zip(tag_seq, tid_seq):
            count += 1
            way = get(tag)
            if way is not None:
                hits += 1
                if observers:
                    occupancy = count - start_row[way]
                reused_row[way] = True
                start_row[way] = count
                rrpv_row[way] = 0  # hit promotion
                if observers:
                    address = (tag << set_shift) | s
                    for observer in observers:
                        observer.on_hit(s, address, occupancy)
                continue
            filled = len(index)
            if filled < ways:
                way = filled  # lowest-numbered invalid way
                valid_row[way] = True
            else:
                top = max(rrpv_row)
                way = rrpv_row.index(top)
                if top < rrpv_max:
                    delta = rrpv_max - top
                    rrpv_row[:] = [value + delta for value in rrpv_row]
                old_tag = row_tags[way]
                evictions += 1
                if observers:
                    evicted_address = old_tag * num_sets + s
                    occupancy = count - start_row[way]
                    was_reused = reused_row[way]
                    for observer in observers:
                        observer.on_evict(
                            s, evicted_address, occupancy, was_reused
                        )
                del index[old_tag]
            row_tags[way] = tag
            reused_row[way] = False
            owner_row[way] = tid
            start_row[way] = count
            index[tag] = way
            rrpv_row[way] = insert_value
            if observers:
                address = (tag << set_shift) | s
                for observer in observers:
                    observer.on_fill(s, address)
        cache.set_accesses[s] = count
        self.hits += hits
        self.evictions += evictions


class _PDPKernel(_SetBatchKernel):
    """PDP replay: expiry columns, epoch-exact dynamic recomputation.

    Per touched set the kernel keeps ``[expiry_row, ticks, step_counter,
    min_expiry]``, seeded lazily from the policy's ``_rpd`` /
    ``_step_counter`` at first touch in a call and written back (RPDs
    clamped at zero, exactly the reference's saturating decrement) in
    :meth:`_sync` — so window-boundary introspection and any engine
    switch between chunks see reference-identical state.
    """

    def __init__(self, cache) -> None:
        super().__init__(cache)
        self._sets: dict[int, list] = {}
        self._fifo_states: dict[int, list] = {}
        self._sampled_lut = None
        engine = self.policy.engine
        if engine is not None:
            lut = np.zeros(self.num_sets, dtype=bool)
            lut[list(engine.sampler._fifos)] = True
            self._sampled_lut = lut
        self._refresh_params()

    @classmethod
    def supports(cls, policy) -> bool:
        """Static PDP always; dynamic PDP only when the recompute
        interval rules out a counter freeze within one epoch (the freeze
        rule is order-dependent, so batching must prove it cannot fire).
        """
        if policy.static_pd is not None:
            return True
        engine = policy.engine
        if engine is None:  # not attached yet: decide from parameters
            return policy.recompute_interval <= (1 << 16) - 1
        counters = engine.counters
        return (
            engine.recompute_interval <= counters.counter_max
            and engine.recompute_interval <= counters.total_max
            and not counters.frozen
        )

    def _refresh_params(self) -> None:
        """Re-derive the per-epoch constants from the policy (called
        after every PD recomputation)."""
        policy = self.policy
        step = policy.distance_step
        self._step = step
        self._units = policy._insertion_rpd()
        if policy.insertion_pd is not None:
            units = -(-policy.insertion_pd // step)  # ceil division
            self._fill_units = min(policy.rpd_max, max(1, units))
        else:
            self._fill_units = self._units
        self._bypass = policy.bypass

    def _set_state(self, s: int) -> list:
        """The expiry-domain state of one set, seeded on first touch."""
        state = self._sets.get(s)
        if state is None:
            expiry_row = self.policy._rpd[s][:]
            state = [
                expiry_row,
                0,
                self.policy._step_counter[s],
                min(expiry_row),
            ]
            self._sets[s] = state
        return state

    def _sync(self) -> None:
        """Materialize ``_rpd``/``_step_counter`` for the touched sets and
        rebuild the touched sampler FIFO rows from their stamp maps."""
        policy = self.policy
        rpd = policy._rpd
        step_counter = policy._step_counter
        for s, (expiry_row, ticks, stepc, _minexp) in self._sets.items():
            if ticks:
                rpd[s] = [
                    e - ticks if e > ticks else 0 for e in expiry_row
                ]
            else:
                rpd[s] = expiry_row
            step_counter[s] = stepc
        self._sets = {}
        if self._fifo_states:
            fifos = policy.engine.sampler._fifos
            set_shift = self.set_shift
            for s, (stamps, pushes, length) in self._fifo_states.items():
                entries: list = [None] * length
                for tag, stamp in stamps.items():
                    position = pushes - 1 - stamp
                    if 0 <= position < length:
                        entries[position] = (tag << set_shift) | s
                fifos[s].entries = entries
            self._fifo_states = {}

    def _drive(self, set_ids, tags, tids, lo, hi, set_order) -> None:
        policy = self.policy
        engine = policy.engine
        self._refresh_params()
        if engine is None:
            self._resolve_range(set_ids, tags, tids, lo, hi, set_order)
            return
        # Dynamic PD: split the call at recompute epochs. The sampler
        # sees accesses *through* the triggering one before the
        # recomputation, while the triggering access itself resolves
        # under the new PD — exactly the reference's observe() ordering.
        interval = engine.recompute_interval
        offset = resolve_start = lo
        while offset < hi:
            segment = min(interval - engine.accesses_since_recompute, hi - offset)
            self._feed_sampler(set_ids, tags, offset, offset + segment)
            engine._total_accesses += segment
            engine.accesses_since_recompute += segment
            offset += segment
            if engine.accesses_since_recompute >= interval:
                if resolve_start < offset - 1:
                    self._resolve_range(
                        set_ids, tags, tids, resolve_start, offset - 1, set_order
                    )
                engine.recompute()
                policy.distance_step = policy._step_for(engine.current_pd)
                self._refresh_params()
                resolve_start = offset - 1
        if resolve_start < hi:
            self._resolve_range(set_ids, tags, tids, resolve_start, hi, set_order)

    def _feed_sampler(self, set_ids, tags, lo, hi) -> None:
        """Feed accesses ``[lo, hi)`` (one epoch's worth at most) to the
        RD sampler, set-grouped.

        Sampler FIFOs and sampling counters are per-set, and the RD
        counter array cannot freeze within an epoch (the
        :meth:`supports` gate), so distance counts and N_t commute —
        grouped feeding is bit-identical to arrival order.
        """
        engine = self.policy.engine
        sampler = engine.sampler
        counters = engine.counters
        fifos = sampler._fifos
        sampling_counters = sampler._sampling_counter
        insertion_rate = sampler.insertion_rate
        d_max = counters.d_max
        bin_step = counters.step
        set_shift = self.set_shift
        segment_sets = set_ids[lo:hi]
        segment_tags = tags[lo:hi]
        if len(fifos) < self.num_sets:
            mask = self._sampled_lut[segment_sets]
            segment_sets = segment_sets[mask]
            segment_tags = segment_tags[mask]
        sampled = len(segment_sets)
        if not sampled:
            return
        order, group_sets, starts, ends = _group_by_set(segment_sets)
        sorted_tags = segment_tags[order].tolist()
        bins: list[int] = []
        append_bin = bins.append
        for g, s in enumerate(group_sets):
            fifo = fifos[s]
            depth = fifo.depth
            # The FIFO as a stamp map: an entry pushed as the p-th push
            # sits at position ``pushes - 1 - p`` (insert-at-front shifts
            # everything by one per push) and is live while that position
            # is inside the list. Existing rows seed with negative
            # stamps. Turns the per-access O(depth) ``list.index`` scan
            # into one dict probe; ``_sync`` rebuilds the real row.
            state = self._fifo_states.get(s)
            if state is None:
                stamps = {}
                for i, entry in enumerate(fifo.entries):
                    if entry is not None:
                        stamps[entry >> set_shift] = -1 - i
                state = [stamps, 0, len(fifo.entries)]
                self._fifo_states[s] = state
            stamps, pushes, length = state
            prune_at = 8 * depth
            counter = sampling_counters[s]
            stamp_get = stamps.get
            for tag in sorted_tags[starts[g]:ends[g]]:
                counter += 1
                stamp = stamp_get(tag)
                if stamp is not None:
                    del stamps[tag]  # found or stale: either way gone
                    position = pushes - 1 - stamp
                    if position < length:
                        distance = position * insertion_rate + counter
                        if distance <= d_max:  # >= 1 since counter >= 1
                            append_bin((distance - 1) // bin_step)
                if counter >= insertion_rate:
                    stamps[tag] = pushes
                    pushes += 1
                    if length < depth:
                        length += 1
                    elif len(stamps) > prune_at:
                        cutoff = pushes - length
                        stamps = {
                            t: p for t, p in stamps.items() if p >= cutoff
                        }
                        state[0] = stamps
                        stamp_get = stamps.get
                    counter = 0
            sampling_counters[s] = counter
            state[1] = pushes
            state[2] = length
        counters.total += sampled
        if bins:
            counters.counts += np.bincount(
                bins, minlength=counters.num_counters
            )

    def _run_set(self, s, tag_seq, tid_seq) -> None:
        cache = self.cache
        index = cache._tag_index[s]
        row_tags = cache.tags[s]
        valid_row = cache.valid[s]
        reused_row = cache.reused[s]
        owner_row = cache.owner[s]
        start_row = cache._interval_start[s]
        observers = self.observers
        ways = self.ways
        num_sets = self.num_sets
        set_shift = self.set_shift
        state = self._set_state(s)
        expiry_row, ticks, stepc, minexp = state
        step = self._step
        units = self._units
        fill_units = self._fill_units
        bypass_mode = self._bypass
        get = index.get
        count = cache.set_accesses[s]
        hits = bypasses = evictions = 0
        if step == 1 and tag_seq:
            # Every access ticks and resets the per-set step counter.
            stepc = 0
        if step == 1 and tid_seq is None and not observers:
            # Fast loop for the dominant configuration: no per-access
            # step-counter branch, no observer checks, no thread-id zip.
            tid = self._tid0
            filled = len(index)
            for tag in tag_seq:
                count += 1
                ticks += 1
                way = get(tag)
                if way is not None:
                    hits += 1
                    reused_row[way] = True
                    start_row[way] = count
                    expiry_row[way] = expiry = ticks + units
                    if expiry < minexp:
                        minexp = expiry
                    continue
                if filled < ways:
                    way = filled
                    filled += 1
                    valid_row[way] = True
                else:
                    if minexp > ticks:
                        way = -1  # every line provably protected
                    else:
                        way = -1
                        w = 0
                        for expiry in expiry_row:
                            if expiry <= ticks:
                                way = w
                                break
                            w += 1
                        if way < 0:
                            minexp = min(expiry_row)
                    if way < 0:
                        if bypass_mode:
                            bypasses += 1
                            continue
                        best = -1
                        best_expiry = -1
                        w = 0
                        for expiry in expiry_row:
                            if expiry > best_expiry and not reused_row[w]:
                                best = w
                                best_expiry = expiry
                            w += 1
                        if best < 0:
                            w = 0
                            for expiry in expiry_row:
                                if expiry > best_expiry:
                                    best = w
                                    best_expiry = expiry
                                w += 1
                        way = best
                    del index[row_tags[way]]
                    evictions += 1
                row_tags[way] = tag
                reused_row[way] = False
                owner_row[way] = tid
                start_row[way] = count
                index[tag] = way
                expiry_row[way] = expiry = ticks + fill_units
                if expiry < minexp:
                    minexp = expiry
            cache.set_accesses[s] = count
            state[1] = ticks
            state[2] = stepc
            state[3] = minexp
            self.hits += hits
            self.bypasses += bypasses
            self.evictions += evictions
            return
        tid_seq = repeat(self._tid0) if tid_seq is None else tid_seq
        for tag, tid in zip(tag_seq, tid_seq):
            count += 1
            if step == 1:
                ticks += 1
            else:
                stepc += 1
                if stepc >= step:
                    ticks += 1
                    stepc = 0
            way = get(tag)
            if way is not None:
                hits += 1
                if observers:
                    occupancy = count - start_row[way]
                reused_row[way] = True
                start_row[way] = count
                expiry_row[way] = expiry = ticks + units  # promotion re-protects
                if expiry < minexp:
                    # The PD may have shrunk since the bound was taken, so
                    # a promotion can expire *before* the cached minimum —
                    # keep the bound a true lower bound.
                    minexp = expiry
                if observers:
                    address = (tag << set_shift) | s
                    for observer in observers:
                        observer.on_hit(s, address, occupancy)
                continue
            filled = len(index)
            if filled < ways:
                way = filled  # lowest-numbered invalid way
                valid_row[way] = True
            else:
                if minexp > ticks:
                    way = -1  # every line provably protected: skip the scan
                else:
                    way = -1
                    w = 0
                    for expiry in expiry_row:
                        if expiry <= ticks:  # RPD saturated at zero
                            way = w
                            break
                        w += 1
                    if way < 0:
                        minexp = min(expiry_row)  # re-tighten the bound
                if way < 0:
                    if bypass_mode:
                        bypasses += 1
                        if observers:
                            address = (tag << set_shift) | s
                            for observer in observers:
                                observer.on_bypass(s, address)
                        continue
                    # Inclusive fallback: first inserted (never reused)
                    # way with the highest RPD, else first reused way
                    # with the highest RPD. All lines are protected here
                    # so expiry order equals RPD order.
                    best = -1
                    best_expiry = -1
                    w = 0
                    for expiry in expiry_row:
                        if expiry > best_expiry and not reused_row[w]:
                            best = w
                            best_expiry = expiry
                        w += 1
                    if best < 0:
                        w = 0
                        for expiry in expiry_row:
                            if expiry > best_expiry:
                                best = w
                                best_expiry = expiry
                            w += 1
                    way = best
                old_tag = row_tags[way]
                evictions += 1
                if observers:
                    evicted_address = old_tag * num_sets + s
                    occupancy = count - start_row[way]
                    was_reused = reused_row[way]
                    for observer in observers:
                        observer.on_evict(
                            s, evicted_address, occupancy, was_reused
                        )
                del index[old_tag]
            row_tags[way] = tag
            reused_row[way] = False
            owner_row[way] = tid
            start_row[way] = count
            index[tag] = way
            expiry_row[way] = expiry = ticks + fill_units
            if expiry < minexp:
                minexp = expiry  # see the promotion-path comment above
            if observers:
                address = (tag << set_shift) | s
                for observer in observers:
                    observer.on_fill(s, address)
        cache.set_accesses[s] = count
        state[1] = ticks
        state[2] = stepc
        state[3] = minexp
        self.hits += hits
        self.bypasses += bypasses
        self.evictions += evictions


#: Exact policy type -> kernel class. Subclasses deliberately do NOT
#: inherit a kernel: a subclass may override any hook, which would break
#: the bit-identical contract silently.
_KERNELS: dict[type, type[_SetBatchKernel]] = {
    LRUPolicy: _LRUKernel,
    MRUPolicy: _MRUKernel,
    FIFOPolicy: _FIFOKernel,
    SRRIPPolicy: _SRRIPKernel,
    PDPPolicy: _PDPKernel,
}


def vectorizable(policy) -> bool:
    """Whether ``policy`` runs on the vector engine bit-identically.

    Exact-type lookup plus the kernel's own ``supports`` gate (e.g. the
    dynamic-PDP freeze rule). Policies that fail this check silently use
    the fast path under ``engine="vector"`` — same results, baseline
    speed.
    """
    kernel = _KERNELS.get(type(policy))
    return kernel is not None and kernel.supports(policy)


def run_trace_vector(cache, trace, set_order=None) -> None:
    """Drive every access of ``trace`` through ``cache``, set-batched.

    The ``engine="vector"`` counterpart of
    :func:`repro.memory.fastpath.run_trace` — identical statistics,
    hook-visible state, observer events (in set-grouped order; all
    shipped observers aggregate commutatively) and windowed time-series.
    Falls back to the fast path per policy when no kernel supports the
    cache's policy. The kernel instance is cached on the cache, so
    chunked streaming pays the dispatch once.

    ``set_order`` optionally permutes the set-batch processing order
    (testing hook; results are invariant).
    """
    kernel = getattr(cache, "_vector_kernel", None)
    if kernel is None or kernel.policy is not cache.policy:
        kernel_cls = _KERNELS.get(type(cache.policy))
        if kernel_cls is None or not kernel_cls.supports(cache.policy):
            kernel_cls = _FallbackKernel
        kernel = kernel_cls(cache)
        cache._vector_kernel = kernel
    kernel.run(trace, set_order=set_order)


# -- set partitioning (run_matrix sharded cells) --------------------------


def set_shardable(policy) -> bool:
    """Whether one run under ``policy`` can be partitioned by set.

    Requires a vector kernel *and* fully set-local state: dynamic PDP is
    excluded (its sampler, RD counters and PD recomputation are global
    across sets), as is anything non-vectorizable (shared RNG / PSEL).
    """
    if not vectorizable(policy):
        return False
    if isinstance(policy, PDPPolicy) and policy.static_pd is None:
        return False
    return True


def shard_trace(
    trace: Trace, num_sets: int, shard: int, num_shards: int
) -> tuple[Trace, np.ndarray]:
    """The sub-trace of ``trace`` touching shard ``shard`` of ``num_shards``.

    Sets are dealt round-robin (``set_index % num_shards == shard``).
    Returns the sub-trace plus the absolute positions of its accesses in
    the original trace — window boundaries are defined on those absolute
    positions, which is what makes sharded windows merge bit-identically.
    """
    if not 0 <= shard < num_shards:
        raise ValueError(f"shard must be in [0, {num_shards}), got {shard}")
    set_ids = trace.addresses & np.int64(num_sets - 1)
    positions = np.flatnonzero(set_ids % num_shards == shard)
    sub = Trace.__new__(Trace)
    sub.addresses = trace.addresses[positions]
    sub.pcs = trace.pcs[positions]
    sub.thread_ids = trace.thread_ids[positions]
    sub.name = f"{trace.name}#shard{shard}of{num_shards}"
    sub.instructions_per_access = trace.instructions_per_access
    return sub, positions


class _ReusedEvictionCounter:
    """Minimal cache observer counting evictions of reused lines (the
    per-shard stand-in for the recorder's eviction-cause axis)."""

    __slots__ = ("reused",)

    def __init__(self) -> None:
        self.reused = 0

    def on_hit(self, set_index, address, occupancy) -> None:
        """Observer no-op."""

    def on_fill(self, set_index, address) -> None:
        """Observer no-op."""

    def on_bypass(self, set_index, address) -> None:
        """Observer no-op."""

    def on_evict(self, set_index, address, occupancy, was_reused) -> None:
        """Count one reused-line eviction."""
        if was_reused:
            self.reused += 1


def run_llc_shard(
    trace: Trace,
    policy,
    geometry,
    shard: int,
    num_shards: int,
    total_length: int,
    window_size: int | None = None,
) -> dict:
    """Simulate one set-shard of a trace and return a mergeable partial.

    The cache uses the full geometry (untouched sets stay empty and cost
    nothing), so per-set state is exactly what the unsharded run holds
    for these sets. With ``window_size`` the shard is replayed in slices
    cut at the *absolute* window boundaries of the full trace
    (``searchsorted`` over the shard's retained positions), producing
    per-window partial counters that sum to the unsharded recorder's
    windows. Returns plain JSON-native counters (picklable across the
    process pool); combine with :func:`merge_shard_parts`.
    """
    sub, positions = shard_trace(trace, geometry.num_sets, shard, num_shards)
    cache = SetAssociativeCache(geometry, policy)
    windows: list[dict] = []
    if window_size is None:
        run_trace_vector(cache, sub)
    else:
        observer = _ReusedEvictionCounter()
        cache.observers.append(observer)
        stats = cache.stats
        num_windows = -(-total_length // window_size)
        edges = np.searchsorted(
            positions,
            np.arange(1, num_windows + 1, dtype=np.int64) * window_size,
            side="left",
        ).tolist()
        previous_cut = 0
        base = (0, 0, 0, 0, 0, 0)
        reused_base = 0
        protected_count = getattr(policy, "protected_count", None)
        for k in range(num_windows):
            cut = edges[k]
            if cut > previous_cut:
                run_trace_vector(cache, sub.slice(previous_cut, cut))
            snapshot = (
                stats.accesses,
                stats.hits,
                stats.misses,
                stats.bypasses,
                stats.evictions,
                stats.fills,
            )
            reused = observer.reused - reused_base
            window = {
                "index": k,
                "start": k * window_size,
                "end": min((k + 1) * window_size, total_length),
                "accesses": snapshot[0] - base[0],
                "hits": snapshot[1] - base[1],
                "misses": snapshot[2] - base[2],
                "bypasses": snapshot[3] - base[3],
                "evictions": snapshot[4] - base[4],
                "fills": snapshot[5] - base[5],
                "evictions_reused": reused,
                "evictions_dead": snapshot[4] - base[4] - reused,
            }
            current_pd = getattr(policy, "current_pd", None)
            if current_pd is not None:
                window["pd"] = int(current_pd)
            if callable(protected_count):
                window["protected_lines"] = sum(
                    protected_count(s) for s in range(geometry.num_sets)
                )
            windows.append(window)
            base = snapshot
            reused_base = observer.reused
            previous_cut = cut
    stats = cache.stats
    part = {
        "accesses": stats.accesses,
        "hits": stats.hits,
        "misses": stats.misses,
        "bypasses": stats.bypasses,
        "evictions": stats.evictions,
        "windows": windows,
    }
    current_pd = getattr(policy, "current_pd", None)
    if current_pd is not None:
        part["current_pd"] = int(current_pd)
    return part


def merge_shard_parts(
    parts: list[dict],
    name: str,
    total_length: int,
    instructions_per_access: float,
    timing,
    window_size: int | None = None,
):
    """Combine :func:`run_llc_shard` partials into a
    :class:`repro.sim.single_core.SingleCoreResult`.

    Statistics sum; per-window counters sum element-wise (every shard
    reports the same absolute window grid); ``pd`` is constant across
    shards (static policies only) and ``protected_lines`` sums because
    the shards partition the sets. The merged result — including the
    ``extra["timeseries"]`` payload — is bit-identical to the unsharded
    ``run_llc(..., window_size=...)`` run (``tests/test_columnar.py``).
    """
    from repro.obs.timeseries import (
        DEFAULT_MAX_WINDOWS,
        TIMESERIES_SCHEMA_VERSION,
    )
    from repro.sim.single_core import SingleCoreResult

    totals = {
        key: sum(part[key] for part in parts)
        for key in ("accesses", "hits", "misses", "bypasses", "evictions")
    }
    instructions = int(round(total_length * instructions_per_access))
    ipc = timing.ipc(
        instructions,
        l2_hits=0,
        llc_hits=totals["hits"],
        memory_accesses=totals["misses"],
    )
    extra: dict = {}
    for part in parts:
        if "current_pd" in part:
            extra["current_pd"] = part["current_pd"]
            break
    if window_size is not None:
        num_windows = len(parts[0]["windows"])
        if num_windows > DEFAULT_MAX_WINDOWS:
            raise ValueError(
                f"set-partitioned runs keep every window; "
                f"{num_windows} windows exceed the recorder budget "
                f"({DEFAULT_MAX_WINDOWS}) — raise window_size"
            )
        merged_windows = []
        for k in range(num_windows):
            rows = [part["windows"][k] for part in parts]
            window = {
                "index": k,
                "start": rows[0]["start"],
                "end": rows[0]["end"],
            }
            for key in (
                "accesses",
                "hits",
                "misses",
                "bypasses",
                "evictions",
                "fills",
                "evictions_reused",
                "evictions_dead",
            ):
                window[key] = sum(row[key] for row in rows)
            pds = [row["pd"] for row in rows if "pd" in row]
            if pds:
                window["pd"] = pds[0]
            protected = [
                row["protected_lines"]
                for row in rows
                if "protected_lines" in row
            ]
            if protected:
                window["protected_lines"] = sum(protected)
            merged_windows.append(window)
        extra["timeseries"] = {
            "schema_version": TIMESERIES_SCHEMA_VERSION,
            "window_size": window_size,
            "max_windows": DEFAULT_MAX_WINDOWS,
            "accesses": total_length,
            "windows_closed": num_windows,
            "windows_dropped": 0,
            "windows": merged_windows,
        }
    return SingleCoreResult(
        name=name,
        accesses=totals["accesses"],
        hits=totals["hits"],
        misses=totals["misses"],
        bypasses=totals["bypasses"],
        instructions=instructions,
        ipc=ipc,
        evictions=totals["evictions"],
        extra=extra,
    )


__all__ = [
    "merge_shard_parts",
    "run_llc_shard",
    "run_trace_vector",
    "set_shardable",
    "shard_trace",
    "vectorizable",
]
