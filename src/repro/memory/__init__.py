"""Cache-hierarchy substrate: set-associative caches, hierarchy, timing."""

from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.memory.fastpath import run_hierarchy_trace, run_shared_trace, run_trace
from repro.memory.hierarchy import CacheHierarchy, HierarchyResult
from repro.memory.stats import CacheStats, OccupancyTracker
from repro.memory.timing import TimingModel, TimingResult

__all__ = [
    "CacheGeometry",
    "CacheHierarchy",
    "CacheStats",
    "HierarchyResult",
    "OccupancyTracker",
    "SetAssociativeCache",
    "TimingModel",
    "TimingResult",
    "run_hierarchy_trace",
    "run_shared_trace",
    "run_trace",
]
