"""Cache statistics, including the occupancy breakdown of the paper's Fig. 5.

The paper defines the *occupancy* of a line as the number of accesses to its
cache set between an insertion or a promotion and the eviction or the next
promotion (Sec. 2.3). :class:`OccupancyTracker` accumulates that breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/bypass counters for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    evictions: int = 0
    fills: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def bypass_fraction(self) -> float:
        """Bypasses as a fraction of all accesses (paper Fig. 10c)."""
        return self.bypasses / self.accesses if self.accesses else 0.0

    def mpki(self, instruction_count: int) -> float:
        """Misses per thousand instructions."""
        if instruction_count <= 0:
            return 0.0
        return 1000.0 * self.misses / instruction_count

    def reset(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.evictions = 0
        self.fills = 0


@dataclass(slots=True)
class OccupancyBreakdown:
    """Accesses and occupancy split into the categories of Fig. 5a."""

    hits: int = 0
    bypasses: int = 0
    evictions_short: int = 0  # evicted with occupancy <= threshold
    evictions_long: int = 0  # evicted with occupancy > threshold
    occupancy_promoted: int = 0  # occupancy closed by a promotion (reuse)
    occupancy_evicted_short: int = 0
    occupancy_evicted_long: int = 0
    max_eviction_occupancy: int = 0

    @property
    def total_occupancy(self) -> int:
        return (
            self.occupancy_promoted
            + self.occupancy_evicted_short
            + self.occupancy_evicted_long
        )

    def occupancy_fractions(self) -> dict[str, float]:
        """Occupancy shares by category ('Ocpy' bars in Fig. 5a)."""
        total = self.total_occupancy or 1
        return {
            "promoted": self.occupancy_promoted / total,
            "evicted_short": self.occupancy_evicted_short / total,
            "evicted_long": self.occupancy_evicted_long / total,
        }

    def access_fractions(self) -> dict[str, float]:
        """Access shares by category ('Acc' bars in Fig. 5a)."""
        total = self.hits + self.bypasses + self.evictions_short + self.evictions_long
        total = total or 1
        return {
            "hit": self.hits / total,
            "bypass": self.bypasses / total,
            "evicted_short": self.evictions_short / total,
            "evicted_long": self.evictions_long / total,
        }


class OccupancyTracker:
    """Observer accumulating the per-line occupancy breakdown of Fig. 5a.

    Attach to a :class:`repro.memory.cache.SetAssociativeCache` via
    ``cache.observers.append(tracker)``. The tracker opens an occupancy
    interval on fill and promotion, and closes it on promotion and eviction.

    Args:
        short_threshold: boundary between "evicted early" and "evicted
            late" lines; the paper uses 16 (the associativity).
    """

    def __init__(self, short_threshold: int = 16) -> None:
        self.short_threshold = short_threshold
        self.breakdown = OccupancyBreakdown()

    def on_hit(self, set_index: int, address: int, occupancy: int) -> None:
        self.breakdown.hits += 1
        self.breakdown.occupancy_promoted += occupancy

    def on_bypass(self, set_index: int, address: int) -> None:
        self.breakdown.bypasses += 1

    def on_evict(
        self, set_index: int, address: int, occupancy: int, was_reused: bool
    ) -> None:
        if occupancy <= self.short_threshold:
            self.breakdown.evictions_short += 1
            self.breakdown.occupancy_evicted_short += occupancy
        else:
            self.breakdown.evictions_long += 1
            self.breakdown.occupancy_evicted_long += occupancy
        if occupancy > self.breakdown.max_eviction_occupancy:
            self.breakdown.max_eviction_occupancy = occupancy

    def on_fill(self, set_index: int, address: int) -> None:
        pass


__all__ = ["CacheStats", "OccupancyBreakdown", "OccupancyTracker"]
