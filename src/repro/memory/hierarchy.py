"""Three-level cache hierarchy (Table 1 of the paper).

L1 and L2 use LRU; the LLC policy is pluggable. The LLC is non-inclusive:
a fill the LLC bypasses is still delivered to the upper levels, matching
the paper's bypass semantics (Sec. 2.2, "the bypassed lines are inserted
in a higher-level cache").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.cache import CacheGeometry, SetAssociativeCache
from repro.policies.lru import LRUPolicy
from repro.types import Access


@dataclass(slots=True)
class HierarchyResult:
    """Where accesses in a run were served."""

    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    llc_hits: int = 0
    memory_accesses: int = 0
    llc_bypasses: int = 0

    @property
    def llc_accesses(self) -> int:
        return self.llc_hits + self.memory_accesses

    def mpki(self, instruction_count: int) -> float:
        """LLC misses per thousand instructions."""
        if instruction_count <= 0:
            return 0.0
        return 1000.0 * self.memory_accesses / instruction_count


class CacheHierarchy:
    """L1 -> L2 -> LLC lookup path with a pluggable LLC policy.

    Args:
        llc_policy: replacement policy instance for the LLC.
        l1_geometry / l2_geometry / llc_geometry: shapes; defaults follow
            the paper's Table 1 (32KB/8-way, 256KB/8-way, 2MB/16-way).
    """

    def __init__(
        self,
        llc_policy,
        l1_geometry: CacheGeometry | None = None,
        l2_geometry: CacheGeometry | None = None,
        llc_geometry: CacheGeometry | None = None,
    ) -> None:
        self.l1 = SetAssociativeCache(
            l1_geometry or CacheGeometry.from_capacity(32 * 1024, ways=8),
            LRUPolicy(),
        )
        self.l2 = SetAssociativeCache(
            l2_geometry or CacheGeometry.from_capacity(256 * 1024, ways=8),
            LRUPolicy(),
        )
        self.llc = SetAssociativeCache(
            llc_geometry or CacheGeometry.from_capacity(2 * 1024 * 1024, ways=16),
            llc_policy,
        )
        self.result = HierarchyResult()

    def access(self, access: Access) -> str:
        """Look the access up level by level, filling on the way back.

        Returns the level that served the access: "l1", "l2", "llc" or
        "memory". An LLC bypass still fills L1/L2 (non-inclusive
        semantics), so a bypassed block remains accessible above.
        """
        self.result.accesses += 1
        if self.l1.access(access).hit:
            self.result.l1_hits += 1
            return "l1"
        if self.l2.access(access).hit:
            self.result.l2_hits += 1
            return "l2"
        llc_outcome = self.llc.access(access)
        if llc_outcome.hit:
            self.result.llc_hits += 1
            return "llc"
        self.result.memory_accesses += 1
        if llc_outcome.bypassed:
            self.result.llc_bypasses += 1
        return "memory"

    def run(self, accesses) -> HierarchyResult:
        """Drive the hierarchy with an iterable of accesses."""
        for access in accesses:
            self.access(access)
        return self.result


__all__ = ["CacheHierarchy", "HierarchyResult"]
