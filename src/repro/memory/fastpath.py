"""Batched access kernel — the fast path under ``run_llc``/``run_hierarchy``.

:func:`run_trace` is semantically identical to::

    for access in trace:
        cache.access(access)

but avoids the per-access costs of the reference loop: it walks the
trace's columnar numpy arrays as plain Python ints (one bulk ``tolist``
instead of per-element numpy scalar boxing), reuses a single mutable
:class:`ScratchAccess` record instead of allocating a frozen
:class:`repro.types.Access` per element, resolves hits through the
cache's per-set ``{tag: way}`` index instead of an O(ways) scan, turns
the set-index/tag split into mask/shift (set counts are powers of two),
elides hooks a policy inherits as base-class no-ops, skips
``AccessResult`` construction entirely, and only dispatches to observers
when ``cache.observers`` is non-empty. Uniform pc / thread-id columns
(every single-program trace) collapse to a lean address-only loop.
Statistics are accumulated in locals and flushed to ``cache.stats`` once
at the end.

Policies see the exact same hook sequence with the exact same values as
under the reference loop, so any :class:`ReplacementPolicy` works
unchanged; ``tests/test_fastpath.py`` pins the equivalence for every
shipped policy. The one observable difference: hooks that inspect
``cache.stats`` mid-run would see pre-run counters (no shipped policy or
observer does).

The kernel relies on two invariants the cache maintains: a set's valid
ways form the prefix ``[0, len(tag_index))`` (lines are only invalidated
wholesale), and at most one valid line per (set, tag).
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.memory.cache import log2_int
from repro.obs.metrics import METRICS
from repro.obs.telemetry import TELEMETRY
from repro.policies.base import ReplacementPolicy
from repro.types import AccessType


class ScratchAccess:
    """Mutable stand-in for :class:`repro.types.Access`, reused per run.

    Policies only read ``address`` / ``pc`` / ``kind`` / ``thread_id``
    inside their hook invocations, so one record can be re-pointed at
    every trace element without per-access allocation.
    """

    __slots__ = ("address", "pc", "kind", "thread_id")

    def __init__(
        self,
        address: int = 0,
        pc: int = 0,
        kind: AccessType = AccessType.READ,
        thread_id: int = 0,
    ) -> None:
        self.address = address
        self.pc = pc
        self.kind = kind
        self.thread_id = thread_id


def _is_uniform(column: np.ndarray) -> bool:
    return len(column) == 0 or bool((column[0] == column).all())


def _hook_or_none(policy, name: str):
    """The bound hook, or None when the policy inherits the base no-op
    (a None test per access is far cheaper than an empty call)."""
    if getattr(type(policy), name) is getattr(ReplacementPolicy, name):
        return None
    return getattr(policy, name)


def run_trace(cache, trace) -> None:
    """Drive every access of ``trace`` through ``cache``, batched.

    Telemetry: when the process-wide sink is enabled this records one
    ``fastpath.run_trace`` timer entry and a ``fastpath.accesses``
    counter per call — the check is per *run*, so the disabled mode adds
    no per-access work (the 2%-overhead budget of BENCH_engine.json).
    The live metrics registry gets the same pair (an access counter and
    a run-time histogram observation) under the same per-run gating.
    """
    obs_enabled = TELEMETRY.enabled or METRICS.enabled
    telemetry_start = perf_counter() if obs_enabled else 0.0
    geometry = cache.geometry
    num_sets = geometry.num_sets
    set_mask = num_sets - 1
    set_shift = log2_int(num_sets)
    ways = geometry.ways
    policy = cache.policy
    on_access = _hook_or_none(policy, "on_access")
    on_hit = policy.on_hit
    choose_victim = policy.choose_victim
    on_evict = _hook_or_none(policy, "on_evict")
    on_fill = policy.on_fill
    on_bypass = _hook_or_none(policy, "on_bypass")
    tags = cache.tags
    valid = cache.valid
    reused = cache.reused
    owner = cache.owner
    set_accesses = cache.set_accesses
    interval_start = cache._interval_start
    tag_index = cache._tag_index
    observers = cache.observers
    occupancy = 0

    addresses = trace.addresses.tolist()
    n = len(addresses)
    uniform = _is_uniform(trace.pcs) and _is_uniform(trace.thread_ids)
    scratch = ScratchAccess()
    if uniform and n:
        scratch.pc = int(trace.pcs[0])
        scratch.thread_id = int(trace.thread_ids[0])
    # ``accesses`` is n and ``misses = n - hits``, ``fills = misses -
    # bypasses``; only hits / bypasses / evictions need counting.
    hits = bypasses = evictions = 0

    # Two copies of the identical per-access body: the uniform-column
    # loop iterates bare addresses; the mixed-column loop zips pc and
    # thread-id streams in and re-points the scratch record. Keep them
    # in lockstep when editing (tests/test_fastpath.py covers both).
    if uniform:
        tid = scratch.thread_id
        for address in addresses:
            scratch.address = address
            set_index = address & set_mask
            tag = address >> set_shift
            count = set_accesses[set_index] + 1
            set_accesses[set_index] = count
            if on_access is not None:
                on_access(set_index, scratch)

            index = tag_index[set_index]
            way = index.get(tag)
            if way is not None:
                hits += 1
                row_start = interval_start[set_index]
                if observers:
                    occupancy = count - row_start[way]
                reused[set_index][way] = True
                row_start[way] = count
                on_hit(set_index, way, scratch)
                if observers:
                    for observer in observers:
                        observer.on_hit(set_index, address, occupancy)
                continue

            row_tags = tags[set_index]
            if len(index) < ways:
                way = len(index)  # lowest-numbered invalid way
                valid[set_index][way] = True
            else:
                way = choose_victim(set_index, scratch)
                if way is None:
                    bypasses += 1
                    if on_bypass is not None:
                        on_bypass(set_index, scratch)
                    if observers:
                        for observer in observers:
                            observer.on_bypass(set_index, address)
                    continue
                old_tag = row_tags[way]
                evictions += 1
                if observers:
                    evicted_address = old_tag * num_sets + set_index
                    occupancy = count - interval_start[set_index][way]
                    was_reused = reused[set_index][way]
                if on_evict is not None:
                    on_evict(set_index, way, scratch)
                if observers:
                    for observer in observers:
                        observer.on_evict(
                            set_index, evicted_address, occupancy, was_reused
                        )
                del index[old_tag]

            row_tags[way] = tag
            reused[set_index][way] = False
            owner[set_index][way] = tid
            interval_start[set_index][way] = count
            index[tag] = way
            on_fill(set_index, way, scratch)
            if observers:
                for observer in observers:
                    observer.on_fill(set_index, address)
    else:
        pcs = iter(trace.pcs.tolist())
        tids = iter(trace.thread_ids.tolist())
        for address, pc, tid in zip(addresses, pcs, tids):
            scratch.address = address
            scratch.pc = pc
            scratch.thread_id = tid
            set_index = address & set_mask
            tag = address >> set_shift
            count = set_accesses[set_index] + 1
            set_accesses[set_index] = count
            if on_access is not None:
                on_access(set_index, scratch)

            index = tag_index[set_index]
            way = index.get(tag)
            if way is not None:
                hits += 1
                row_start = interval_start[set_index]
                if observers:
                    occupancy = count - row_start[way]
                reused[set_index][way] = True
                row_start[way] = count
                on_hit(set_index, way, scratch)
                if observers:
                    for observer in observers:
                        observer.on_hit(set_index, address, occupancy)
                continue

            row_tags = tags[set_index]
            if len(index) < ways:
                way = len(index)  # lowest-numbered invalid way
                valid[set_index][way] = True
            else:
                way = choose_victim(set_index, scratch)
                if way is None:
                    bypasses += 1
                    if on_bypass is not None:
                        on_bypass(set_index, scratch)
                    if observers:
                        for observer in observers:
                            observer.on_bypass(set_index, address)
                    continue
                old_tag = row_tags[way]
                evictions += 1
                if observers:
                    evicted_address = old_tag * num_sets + set_index
                    occupancy = count - interval_start[set_index][way]
                    was_reused = reused[set_index][way]
                if on_evict is not None:
                    on_evict(set_index, way, scratch)
                if observers:
                    for observer in observers:
                        observer.on_evict(
                            set_index, evicted_address, occupancy, was_reused
                        )
                del index[old_tag]

            row_tags[way] = tag
            reused[set_index][way] = False
            owner[set_index][way] = tid
            interval_start[set_index][way] = count
            index[tag] = way
            on_fill(set_index, way, scratch)
            if observers:
                for observer in observers:
                    observer.on_fill(set_index, address)

    misses = n - hits
    stats = cache.stats
    stats.accesses += n
    stats.hits += hits
    stats.misses += misses
    stats.bypasses += bypasses
    stats.evictions += evictions
    stats.fills += misses - bypasses
    if obs_enabled:
        elapsed = perf_counter() - telemetry_start
        TELEMETRY.record("fastpath.run_trace", elapsed)
        TELEMETRY.count("fastpath.accesses", n)
        METRICS.observe("fastpath.run_trace_s", elapsed)
        METRICS.inc("fastpath.accesses", n)


def run_shared_trace(
    cache, trace, completion: list[int], position_offset: int = 0
) -> list[list[int]]:
    """Drive an interleaved multi-thread trace through ``cache``, batched,
    accumulating per-thread statistics with stat freezing.

    The multi-core counterpart of :func:`run_trace`: semantically
    identical to the reference loop in
    :func:`repro.sim.multi_core.run_shared_llc` (``cache.access`` per
    element plus per-thread counting), for a trace produced by
    :func:`repro.workloads.mixes.interleave_traces`. ``completion[t]`` is
    the position in the interleaved trace at which thread ``t`` finished
    its first pass; accesses at positions ``>= completion[t]`` still hit
    the cache (the thread keeps pressuring it after rewinding) but no
    longer count toward thread ``t``'s statistics — the paper's
    stat-freezing rule (Sec. 5).

    ``position_offset`` is the absolute position of ``trace``'s first
    access within the full interleaved run — pass the chunk's start
    index when feeding the mix in chunks, so the freeze comparison stays
    against absolute completion positions. The chunked caller sums the
    returned per-thread counters across chunks; the result is identical
    to one whole-trace call (``tests/test_conformance.py``).

    Returns ``[accesses, hits, misses, bypasses]``, each a
    per-thread list of frozen counters. Global ``cache.stats`` covers the
    *whole* run (frozen portion included), exactly as under the
    reference loop. Telemetry follows the :func:`run_trace` contract
    (one ``fastpath.run_shared_trace`` timer entry per call).
    """
    obs_enabled = TELEMETRY.enabled or METRICS.enabled
    telemetry_start = perf_counter() if obs_enabled else 0.0
    geometry = cache.geometry
    num_sets = geometry.num_sets
    set_mask = num_sets - 1
    set_shift = log2_int(num_sets)
    ways = geometry.ways
    policy = cache.policy
    on_access = _hook_or_none(policy, "on_access")
    on_hit = policy.on_hit
    choose_victim = policy.choose_victim
    on_evict = _hook_or_none(policy, "on_evict")
    on_fill = policy.on_fill
    on_bypass = _hook_or_none(policy, "on_bypass")
    tags = cache.tags
    valid = cache.valid
    reused = cache.reused
    owner = cache.owner
    set_accesses = cache.set_accesses
    interval_start = cache._interval_start
    tag_index = cache._tag_index
    observers = cache.observers
    occupancy = 0

    num_threads = len(completion)
    t_accesses = [0] * num_threads
    t_hits = [0] * num_threads
    t_misses = [0] * num_threads
    t_bypasses = [0] * num_threads

    addresses = trace.addresses.tolist()
    n = len(addresses)
    pcs = iter(trace.pcs.tolist())
    tids = iter(trace.thread_ids.tolist())
    scratch = ScratchAccess()
    hits = bypasses = evictions = 0

    # Same per-access body as run_trace's mixed-column loop (keep them in
    # lockstep when editing), with per-thread counting at each of the
    # three terminal outcomes. An access at ``position`` counts for its
    # thread iff ``position < completion[tid]`` — equivalent to the
    # reference loop's freeze-after-counting rule.
    position = position_offset - 1
    for address, pc, tid in zip(addresses, pcs, tids):
        position += 1
        scratch.address = address
        scratch.pc = pc
        scratch.thread_id = tid
        set_index = address & set_mask
        tag = address >> set_shift
        count = set_accesses[set_index] + 1
        set_accesses[set_index] = count
        if on_access is not None:
            on_access(set_index, scratch)

        index = tag_index[set_index]
        way = index.get(tag)
        if way is not None:
            hits += 1
            row_start = interval_start[set_index]
            if observers:
                occupancy = count - row_start[way]
            reused[set_index][way] = True
            row_start[way] = count
            on_hit(set_index, way, scratch)
            if observers:
                for observer in observers:
                    observer.on_hit(set_index, address, occupancy)
            if position < completion[tid]:
                t_accesses[tid] += 1
                t_hits[tid] += 1
            continue

        row_tags = tags[set_index]
        if len(index) < ways:
            way = len(index)  # lowest-numbered invalid way
            valid[set_index][way] = True
        else:
            way = choose_victim(set_index, scratch)
            if way is None:
                bypasses += 1
                if on_bypass is not None:
                    on_bypass(set_index, scratch)
                if observers:
                    for observer in observers:
                        observer.on_bypass(set_index, address)
                if position < completion[tid]:
                    t_accesses[tid] += 1
                    t_misses[tid] += 1
                    t_bypasses[tid] += 1
                continue
            old_tag = row_tags[way]
            evictions += 1
            if observers:
                evicted_address = old_tag * num_sets + set_index
                occupancy = count - interval_start[set_index][way]
                was_reused = reused[set_index][way]
            if on_evict is not None:
                on_evict(set_index, way, scratch)
            if observers:
                for observer in observers:
                    observer.on_evict(
                        set_index, evicted_address, occupancy, was_reused
                    )
            del index[old_tag]

        row_tags[way] = tag
        reused[set_index][way] = False
        owner[set_index][way] = tid
        interval_start[set_index][way] = count
        index[tag] = way
        on_fill(set_index, way, scratch)
        if observers:
            for observer in observers:
                observer.on_fill(set_index, address)
        if position < completion[tid]:
            t_accesses[tid] += 1
            t_misses[tid] += 1

    misses = n - hits
    stats = cache.stats
    stats.accesses += n
    stats.hits += hits
    stats.misses += misses
    stats.bypasses += bypasses
    stats.evictions += evictions
    stats.fills += misses - bypasses
    if obs_enabled:
        elapsed = perf_counter() - telemetry_start
        TELEMETRY.record("fastpath.run_shared_trace", elapsed)
        TELEMETRY.count("fastpath.accesses", n)
        METRICS.observe("fastpath.run_shared_trace_s", elapsed)
        METRICS.inc("fastpath.accesses", n)
    return [t_accesses, t_hits, t_misses, t_bypasses]


def run_hierarchy_trace(hierarchy, trace) -> None:
    """Drive a trace through a :class:`CacheHierarchy` without per-access
    ``Access`` allocation (the per-level caches still use their normal
    access path, which the tag index already accelerates)."""
    access = hierarchy.access
    addresses = trace.addresses.tolist()
    n = len(addresses)
    scratch = ScratchAccess()
    if _is_uniform(trace.pcs) and _is_uniform(trace.thread_ids):
        if n:
            scratch.pc = int(trace.pcs[0])
            scratch.thread_id = int(trace.thread_ids[0])
        for scratch.address in addresses:
            access(scratch)
    else:
        pcs = iter(trace.pcs.tolist())
        tids = iter(trace.thread_ids.tolist())
        for scratch.address, scratch.pc, scratch.thread_id in zip(
            addresses, pcs, tids
        ):
            access(scratch)


__all__ = ["ScratchAccess", "run_hierarchy_trace", "run_shared_trace", "run_trace"]
