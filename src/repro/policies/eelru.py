"""Early-eviction LRU (EELRU), adapted from Smaragdakis et al. (1999).

EELRU tracks hits along an extended recency axis (beyond the resident
lines) and chooses between plain LRU and *early eviction*: evicting the
e-th most recently used line so that older lines survive a loop larger
than the cache. The expected-hit model for an (e, l) pair is

    hits(e, l) = hits[1..e-1] + (W - e + 1) / (l - e + 1) * hits[e..l]

because early eviction retains all lines more recent than position e and a
uniform fraction of lines with recency in [e, l]. EELRU picks the best of
LRU and the best (e, l) pair; following the paper's methodology (Sec. 5),
candidate points are evaluated aggressively over all sets with the late
point capped at d_max.
"""

from __future__ import annotations

from repro.policies.base import ReplacementPolicy, register_policy
from repro.types import Access


@register_policy("eelru")
class EELRUPolicy(ReplacementPolicy):
    """EELRU with global (e, l) selection over per-set recency queues.

    Args:
        l_max: maximum late-eviction point (the paper sets it to d_max).
        update_interval: accesses between (e, l) re-selections.
    """

    def __init__(self, l_max: int = 256, update_interval: int = 4096) -> None:
        super().__init__()
        self.l_max = l_max
        self.update_interval = update_interval
        self._accesses = 0
        self._early_mode = False
        self._early_point = 1

    def _allocate(self, num_sets: int, ways: int) -> None:
        self._ways = ways
        # Recency queue per set: most recent first, resident or not.
        self._queue: list[list[int]] = [[] for _ in range(num_sets)]
        self._stamp = [[0] * ways for _ in range(num_sets)]
        self._clock = [0] * num_sets
        # Global histogram of hits per recency position (1-indexed).
        self._position_hits = [0] * (self.l_max + 2)
        # Candidate early points: geometric spacing below W. The early
        # point is always >= 2 so the most recently touched line is never
        # the early-eviction victim.
        self._early_candidates = sorted(
            {max(2, ways // 8), max(2, ways // 4), max(2, ways // 2), max(2, ways - 1)}
        )
        self._late_candidates = [
            point
            for point in (
                ways * 2,
                ways * 4,
                ways * 8,
                ways * 16,
                self.l_max,
            )
            if ways < point <= self.l_max
        ] or [min(ways + 1, self.l_max)]

    # -- recency-axis bookkeeping ----------------------------------------

    def _record_position(self, set_index: int, address: int) -> None:
        queue = self._queue[set_index]
        try:
            position = queue.index(address) + 1
        except ValueError:
            position = 0
        if position:
            del queue[position - 1]
            if position <= self.l_max:
                self._position_hits[position] += 1
        queue.insert(0, address)
        if len(queue) > self.l_max:
            queue.pop()

    def on_access(self, set_index: int, access: Access) -> None:
        self._record_position(set_index, access.address)
        self._accesses += 1
        if self._accesses % self.update_interval == 0:
            self._select_points()

    def _select_points(self) -> None:
        """Pick LRU or the best (e, l) pair from the position histogram."""
        ways = self._ways
        prefix = [0] * (self.l_max + 2)
        for position in range(1, self.l_max + 1):
            prefix[position] = prefix[position - 1] + self._position_hits[position]
        lru_hits = prefix[min(ways, self.l_max)]
        best_hits = lru_hits
        best: tuple[int, int] | None = None
        for early in self._early_candidates:
            kept = prefix[early - 1]
            for late in self._late_candidates:
                region = prefix[min(late, self.l_max)] - prefix[early - 1]
                expected = kept + region * (ways - early + 1) / (late - early + 1)
                if expected > best_hits:
                    best_hits = expected
                    best = (early, late)
        if best is None:
            self._early_mode = False
        else:
            self._early_mode = True
            self._early_point = best[0]
        # Decay so the choice tracks phase changes.
        for position in range(1, self.l_max + 1):
            self._position_hits[position] //= 2

    # -- replacement -------------------------------------------------------

    def _touch(self, set_index: int, way: int) -> None:
        self._clock[set_index] += 1
        self._stamp[set_index][way] = self._clock[set_index]

    def on_hit(self, set_index: int, way: int, access: Access) -> None:
        self._touch(set_index, way)

    def choose_victim(self, set_index: int, access: Access) -> int | None:
        stamps = self._stamp[set_index]
        if not self._early_mode:
            return min(range(len(stamps)), key=stamps.__getitem__)
        # Early eviction: victim is the e-th most recently used resident.
        order = sorted(range(len(stamps)), key=lambda w: -stamps[w])
        rank = min(self._early_point, len(order)) - 1
        return order[rank]

    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        self._touch(set_index, way)


__all__ = ["EELRUPolicy"]
