"""Least-recently-used replacement.

LRU is the paper's reference point: it protects a line for W unique
accesses (the associativity) before eviction (Sec. 7). Implemented with
per-line age stamps from a per-set logical clock.
"""

from __future__ import annotations

from repro.policies.base import ReplacementPolicy, register_policy
from repro.types import Access


@register_policy("lru")
class LRUPolicy(ReplacementPolicy):
    """Classical LRU: evict the least recently touched line."""

    def _allocate(self, num_sets: int, ways: int) -> None:
        self._stamp = [[0] * ways for _ in range(num_sets)]
        self._clock = [0] * num_sets

    def _touch(self, set_index: int, way: int) -> None:
        self._clock[set_index] += 1
        self._stamp[set_index][way] = self._clock[set_index]

    def on_hit(self, set_index: int, way: int, access: Access) -> None:
        self._touch(set_index, way)

    def choose_victim(self, set_index: int, access: Access) -> int | None:
        stamps = self._stamp[set_index]
        return min(range(len(stamps)), key=stamps.__getitem__)

    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        self._touch(set_index, way)

    def recency_order(self, set_index: int) -> list[int]:
        """Ways ordered most-recently-used first (for tests/EELRU)."""
        stamps = self._stamp[set_index]
        return sorted(range(len(stamps)), key=lambda w: -stamps[w])


@register_policy("mru")
class MRUPolicy(LRUPolicy):
    """Most-recently-used eviction (anti-LRU, useful for thrash loops)."""

    def choose_victim(self, set_index: int, access: Access) -> int | None:
        stamps = self._stamp[set_index]
        return max(range(len(stamps)), key=stamps.__getitem__)


__all__ = ["LRUPolicy", "MRUPolicy"]
