"""Least-recently-used replacement.

LRU is the paper's reference point: it protects a line for W unique
accesses (the associativity) before eviction (Sec. 7). Implemented with
an explicit per-set recency list (LRU way first), which makes victim
selection O(1) instead of an O(W) stamp scan — LRU is the baseline in
every experiment, so its hooks sit on the hottest path of the simulator.
"""

from __future__ import annotations

from repro.policies.base import ReplacementPolicy, register_policy
from repro.types import Access


@register_policy("lru")
class LRUPolicy(ReplacementPolicy):
    """Classical LRU: evict the least recently touched line."""

    def _allocate(self, num_sets: int, ways: int) -> None:
        # Recency list per set: index 0 = LRU (the victim), -1 = MRU.
        # Ways start in index order, matching the cache's invalid-way
        # fill order, so untouched ways are victimized lowest-way first.
        self._order = [list(range(ways)) for _ in range(num_sets)]

    def _touch(self, set_index: int, way: int) -> None:
        order = self._order[set_index]
        if order[-1] != way:
            order.remove(way)
            order.append(way)

    def on_hit(self, set_index: int, way: int, access: Access) -> None:
        # _touch inlined: on_hit/on_fill are the hot LLC path.
        order = self._order[set_index]
        if order[-1] != way:
            order.remove(way)
            order.append(way)

    def choose_victim(self, set_index: int, access: Access) -> int | None:
        return self._order[set_index][0]

    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        order = self._order[set_index]
        if order[-1] != way:
            order.remove(way)
            order.append(way)

    def recency_order(self, set_index: int) -> list[int]:
        """Ways ordered most-recently-used first (for tests/EELRU)."""
        return self._order[set_index][::-1]


@register_policy("mru")
class MRUPolicy(LRUPolicy):
    """Most-recently-used eviction (anti-LRU, useful for thrash loops)."""

    def choose_victim(self, set_index: int, access: Access) -> int | None:
        return self._order[set_index][-1]


__all__ = ["LRUPolicy", "MRUPolicy"]
