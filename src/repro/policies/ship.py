"""SHiP-PC: signature-based hit prediction (Wu et al., MICRO 2011).

Discussed in the paper's Sec. 6.3/7 as the line-grouping improvement over
RRIP: a Signature History Counter Table (SHCT), indexed by a PC
signature, learns whether lines inserted by that signature are ever
re-referenced. Fills whose signature never produces hits insert with a
"distant" re-reference prediction (immediately evictable); everything
else inserts "long" as in SRRIP. Per-line state: the signature and an
outcome bit recording whether the line has hit since insertion.
"""

from __future__ import annotations

from repro.policies.base import register_policy
from repro.policies.rrip import _RRIPBase
from repro.types import Access


@register_policy("ship")
class SHiPPolicy(_RRIPBase):
    """SRRIP base + SHCT-driven insertion prediction.

    Args:
        m_bits: RRPV width (2, as in SRRIP).
        signature_bits: PC-signature width (14 in the original work).
        counter_bits: SHCT counter width (3 in the original work).
    """

    def __init__(
        self,
        m_bits: int = 2,
        signature_bits: int = 14,
        counter_bits: int = 3,
    ) -> None:
        super().__init__(m_bits)
        self.signature_mask = (1 << signature_bits) - 1
        self.counter_max = (1 << counter_bits) - 1
        self.shct = [self.counter_max // 2] * (1 << signature_bits)

    def _allocate(self, num_sets: int, ways: int) -> None:
        super()._allocate(num_sets, ways)
        self._signature = [[0] * ways for _ in range(num_sets)]
        self._outcome = [[False] * ways for _ in range(num_sets)]

    def signature_of(self, pc: int) -> int:
        """Fold a PC into an SHCT index."""
        return (pc ^ (pc >> 14)) & self.signature_mask

    def on_hit(self, set_index: int, way: int, access: Access) -> None:
        super().on_hit(set_index, way, access)
        if not self._outcome[set_index][way]:
            self._outcome[set_index][way] = True
            signature = self._signature[set_index][way]
            if self.shct[signature] < self.counter_max:
                self.shct[signature] += 1

    def on_evict(self, set_index: int, way: int, access: Access) -> None:
        if not self._outcome[set_index][way]:
            signature = self._signature[set_index][way]
            if self.shct[signature] > 0:
                self.shct[signature] -= 1

    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        signature = self.signature_of(access.pc)
        self._signature[set_index][way] = signature
        self._outcome[set_index][way] = False
        # Zero counter => this signature's lines are never re-referenced:
        # predict distant (immediately evictable). Otherwise long.
        self._insert(set_index, way, distant=self.shct[signature] == 0)


__all__ = ["SHiPPolicy"]
