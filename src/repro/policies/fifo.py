"""First-in-first-out replacement: evict the oldest-inserted line."""

from __future__ import annotations

from repro.policies.base import ReplacementPolicy, register_policy
from repro.types import Access


@register_policy("fifo")
class FIFOPolicy(ReplacementPolicy):
    """Evict in insertion order; hits do not promote."""

    def _allocate(self, num_sets: int, ways: int) -> None:
        self._inserted = [[0] * ways for _ in range(num_sets)]
        self._clock = [0] * num_sets

    def on_hit(self, set_index: int, way: int, access: Access) -> None:
        pass

    def choose_victim(self, set_index: int, access: Access) -> int | None:
        row = self._inserted[set_index]
        return min(range(len(row)), key=row.__getitem__)

    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        self._clock[set_index] += 1
        self._inserted[set_index][way] = self._clock[set_index]


__all__ = ["FIFOPolicy"]
