"""Replacement and bypass policies (baselines the paper compares against)."""

from repro.policies.base import ReplacementPolicy, make_policy, register_policy
from repro.policies.belady import BeladyPolicy
from repro.policies.counter_based import CounterBasedPolicy
from repro.policies.eelru import EELRUPolicy
from repro.policies.fifo import FIFOPolicy
from repro.policies.lip_bip_dip import BIPPolicy, DIPPolicy, LIPPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.plru import TreePLRUPolicy
from repro.policies.random_ import RandomPolicy
from repro.policies.rrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy
from repro.policies.sdp import SDPPolicy
from repro.policies.ship import SHiPPolicy
from repro.policies.ta_drrip import TADRRIPPolicy

__all__ = [
    "BIPPolicy",
    "BRRIPPolicy",
    "BeladyPolicy",
    "CounterBasedPolicy",
    "DIPPolicy",
    "DRRIPPolicy",
    "EELRUPolicy",
    "FIFOPolicy",
    "LIPPolicy",
    "LRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SDPPolicy",
    "SHiPPolicy",
    "SRRIPPolicy",
    "TADRRIPPolicy",
    "TreePLRUPolicy",
    "make_policy",
    "register_policy",
]
