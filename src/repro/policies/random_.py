"""Random replacement with a deterministic, seedable generator."""

from __future__ import annotations

import random

from repro.policies.base import ReplacementPolicy, register_policy
from repro.types import Access


@register_policy("random")
class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random way (seeded for reproducibility)."""

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._rng = random.Random(seed)

    def _allocate(self, num_sets: int, ways: int) -> None:
        self._ways = ways

    def on_hit(self, set_index: int, way: int, access: Access) -> None:
        pass

    def choose_victim(self, set_index: int, access: Access) -> int | None:
        return self._rng.randrange(self._ways)

    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        pass


__all__ = ["RandomPolicy"]
