"""LIP, BIP and DIP insertion policies (Qureshi et al., ISCA 2007).

DIP is the paper's normalization baseline: every Fig. 10 series is reported
relative to DIP. All three share LRU's recency order and differ only in
where a missing line is inserted:

- LIP inserts at the LRU position;
- BIP inserts at MRU with probability epsilon (1/32), else LRU;
- DIP set-duels LRU against BIP with a PSEL counter.
"""

from __future__ import annotations

import random

from repro.policies.base import ReplacementPolicy, register_policy
from repro.policies.dueling import SetDuelingMonitor
from repro.types import Access


class _RecencyBase(ReplacementPolicy):
    """Shared LRU-stack machinery for the DIP family."""

    def _allocate(self, num_sets: int, ways: int) -> None:
        self._stamp = [[0] * ways for _ in range(num_sets)]
        self._clock = [0] * num_sets

    def _touch_mru(self, set_index: int, way: int) -> None:
        self._clock[set_index] += 1
        self._stamp[set_index][way] = self._clock[set_index]

    def _place_lru(self, set_index: int, way: int) -> None:
        row = self._stamp[set_index]
        row[way] = min(row) - 1

    def on_hit(self, set_index: int, way: int, access: Access) -> None:
        self._touch_mru(set_index, way)

    def choose_victim(self, set_index: int, access: Access) -> int | None:
        row = self._stamp[set_index]
        return min(range(len(row)), key=row.__getitem__)


@register_policy("lip")
class LIPPolicy(_RecencyBase):
    """LRU-insertion policy: new lines start at the LRU position."""

    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        self._place_lru(set_index, way)


@register_policy("bip")
class BIPPolicy(_RecencyBase):
    """Bimodal insertion: MRU with probability ``epsilon``, else LRU."""

    def __init__(self, epsilon: float = 1 / 32, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.epsilon = epsilon
        self._rng = random.Random(seed)

    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        if self._rng.random() < self.epsilon:
            self._touch_mru(set_index, way)
        else:
            self._place_lru(set_index, way)


@register_policy("dip")
class DIPPolicy(_RecencyBase):
    """Dynamic insertion policy: set-duel LRU (A) against BIP (B)."""

    def __init__(
        self,
        epsilon: float = 1 / 32,
        num_leader_sets: int | None = None,
        psel_bits: int = 10,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.epsilon = epsilon
        self.num_leader_sets = num_leader_sets
        self.psel_bits = psel_bits
        self._rng = random.Random(seed)
        self._sdm: SetDuelingMonitor | None = None

    def _allocate(self, num_sets: int, ways: int) -> None:
        super()._allocate(num_sets, ways)
        self._sdm = SetDuelingMonitor(num_sets, self.num_leader_sets, self.psel_bits)

    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        self._sdm.record_miss(set_index)
        if self._sdm.prefer_a(set_index):
            self._touch_mru(set_index, way)  # LRU policy: insert at MRU
        elif self._rng.random() < self.epsilon:
            self._touch_mru(set_index, way)  # BIP's occasional MRU insert
        else:
            self._place_lru(set_index, way)


__all__ = ["BIPPolicy", "DIPPolicy", "LIPPolicy"]
