"""Set-dueling monitor (SDM) shared by DIP, DRRIP and TA-DRRIP.

A few "leader" sets are dedicated to each of two competing policies; a
saturating PSEL counter tallies which leader group misses less, and all
"follower" sets adopt the winner (Qureshi et al., DIP). The paper uses an
SDM with 32 sets per group and a 10-bit PSEL (Sec. 5).
"""

from __future__ import annotations


class SetDuelingMonitor:
    """Assigns leader sets and maintains the PSEL counter.

    Leader sets are spread evenly: within each window of
    ``num_sets / num_leader_sets`` sets, the first set leads policy A and
    the middle set leads policy B (constituency-based selection).

    Args:
        num_sets: total sets in the cache.
        num_leader_sets: leader sets per policy (32 in the paper; clamped
            for small caches).
        psel_bits: PSEL width (10 in the paper).
    """

    FOLLOWER = 0
    LEADER_A = 1
    LEADER_B = 2

    def __init__(
        self,
        num_sets: int,
        num_leader_sets: int | None = 32,
        psel_bits: int = 10,
        phase: int = 0,
    ) -> None:
        self.num_sets = num_sets
        if num_leader_sets is None:
            num_leader_sets = self.auto_leader_sets(num_sets)
        self.num_leader_sets = max(1, min(num_leader_sets, num_sets // 2))
        self.psel_max = (1 << psel_bits) - 1
        self.psel = self.psel_max // 2
        self._role = [self.FOLLOWER] * num_sets
        window = num_sets // self.num_leader_sets
        # ``phase`` rotates leader positions so several monitors (e.g. one
        # per thread in TA-DRRIP) dedicate different physical sets.
        for leader in range(self.num_leader_sets):
            base = leader * window
            self._role[(base + phase) % num_sets] = self.LEADER_A
            self._role[(base + phase + window // 2) % num_sets] = self.LEADER_B

    @staticmethod
    def auto_leader_sets(num_sets: int) -> int:
        """Leader sets scaled to cache size: 32 at the paper's 2048 sets,
        proportionally fewer on scaled caches so followers always dominate
        while keeping enough leaders to average out per-set heterogeneity."""
        return max(1, min(32, num_sets // 16))

    def role(self, set_index: int) -> int:
        """Role of ``set_index``: follower, leader A or leader B."""
        return self._role[set_index]

    def record_miss(self, set_index: int) -> None:
        """Update PSEL on a miss in a leader set.

        A miss in a leader-A set votes against A (PSEL up); a miss in a
        leader-B set votes against B (PSEL down).
        """
        role = self._role[set_index]
        if role == self.LEADER_A:
            if self.psel < self.psel_max:
                self.psel += 1
        elif role == self.LEADER_B:
            if self.psel > 0:
                self.psel -= 1

    def prefer_a(self, set_index: int) -> bool:
        """Whether this set should behave as policy A right now."""
        role = self._role[set_index]
        if role == self.LEADER_A:
            return True
        if role == self.LEADER_B:
            return False
        return self.psel <= self.psel_max // 2


__all__ = ["SetDuelingMonitor"]
