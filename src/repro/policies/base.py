"""Replacement-policy interface and registry.

A policy is attached to exactly one cache. The cache calls, in order:

- ``on_access(set_index, access)`` for every access (hit or miss);
- ``on_hit(set_index, way, access)`` when the access hits;
- ``choose_victim(set_index, access)`` when a miss finds no invalid way —
  returning a way index, or ``None`` to bypass (only honoured when the
  policy sets ``supports_bypass``);
- ``on_evict(set_index, way, access)`` just before the victim is replaced;
- ``on_fill(set_index, way, access)`` after the new line is written;
- ``on_bypass(set_index, access)`` when the fill was dropped.
"""

from __future__ import annotations

import abc
from typing import Callable

from repro.types import Access


class ReplacementPolicy(abc.ABC):
    """Base class for all replacement/bypass policies."""

    #: Whether ``choose_victim`` may return ``None`` to skip insertion.
    supports_bypass: bool = False

    def __init__(self) -> None:
        self.cache = None

    def attach(self, cache) -> None:
        """Bind to a cache; allocates per-line metadata."""
        if self.cache is not None:
            raise RuntimeError("policy is already attached to a cache")
        self.cache = cache
        self._allocate(cache.geometry.num_sets, cache.geometry.ways)

    def _allocate(self, num_sets: int, ways: int) -> None:
        """Allocate per-line metadata; override when state is needed."""

    # -- hooks -------------------------------------------------------------

    def on_access(self, set_index: int, access: Access) -> None:
        """Called once per access, before the tag check outcome is applied."""

    @abc.abstractmethod
    def on_hit(self, set_index: int, way: int, access: Access) -> None:
        """The access hit ``way``; promote it."""

    @abc.abstractmethod
    def choose_victim(self, set_index: int, access: Access) -> int | None:
        """Pick a victim way for a miss with no invalid ways."""

    def on_evict(self, set_index: int, way: int, access: Access) -> None:
        """The line in ``way`` is about to be replaced."""

    @abc.abstractmethod
    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        """A new line was written into ``way``; set its insertion state."""

    def on_bypass(self, set_index: int, access: Access) -> None:
        """The fill for ``access`` was dropped (bypass)."""


_REGISTRY: dict[str, Callable[..., ReplacementPolicy]] = {}


def register_policy(name: str):
    """Class decorator registering a policy under ``name`` for lookup."""

    def decorator(cls):
        _REGISTRY[name] = cls
        cls.policy_name = name
        return cls

    return decorator


def make_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Instantiate a registered policy by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown policy {name!r}; known: {known}") from None
    return factory(**kwargs)


def registered_policies() -> list[str]:
    """Names of all registered policies."""
    return sorted(_REGISTRY)


__all__ = [
    "ReplacementPolicy",
    "make_policy",
    "register_policy",
    "registered_policies",
]
