"""Counter-based expiration replacement, after Kharbutli & Solihin (2005).

The paper's Sec. 7 describes this predecessor of explicit protection:
"the counter-based replacement policy, using a matrix of counters,
protects lines by not evicting them until they expire ... it predicts how
long a line should be protected by using the past behavior of lines in
the same class."

This implementation follows the AIP (access-interval predictor) flavour:

- each line counts accesses to its set since its last touch (its current
  *access interval*);
- a prediction table, indexed by the line's PC class, remembers the
  largest interval after which lines of that class were still re-used
  (learned at eviction/promotion time);
- a line *expires* once its interval exceeds its class's learned
  threshold (plus slack); expired lines are preferred victims, falling
  back to LRU.
"""

from __future__ import annotations

from repro.policies.base import ReplacementPolicy, register_policy
from repro.types import Access


@register_policy("counter-based")
class CounterBasedPolicy(ReplacementPolicy):
    """AIP-style counter-based replacement with learned expiration.

    Args:
        table_bits: log2 of the prediction-table size.
        max_interval: saturation bound for per-line interval counters.
        slack: multiplicative slack on the learned threshold before a
            line is considered expired (the original uses 2x).
    """

    def __init__(
        self,
        table_bits: int = 10,
        max_interval: int = 255,
        slack: float = 2.0,
    ) -> None:
        super().__init__()
        self.table_size = 1 << table_bits
        self.max_interval = max_interval
        self.slack = slack
        # Learned maximum reuse interval per PC class (conservative start).
        self.thresholds = [max_interval] * self.table_size

    def _allocate(self, num_sets: int, ways: int) -> None:
        self._ways = ways
        self._interval = [[0] * ways for _ in range(num_sets)]
        self._class = [[0] * ways for _ in range(num_sets)]
        self._stamp = [[0] * ways for _ in range(num_sets)]
        self._clock = [0] * num_sets

    def classify(self, pc: int) -> int:
        return (pc ^ (pc >> 10)) % self.table_size

    def _touch(self, set_index: int, way: int) -> None:
        self._clock[set_index] += 1
        self._stamp[set_index][way] = self._clock[set_index]

    def on_access(self, set_index: int, access: Access) -> None:
        row = self._interval[set_index]
        for way in range(self._ways):
            if row[way] < self.max_interval:
                row[way] += 1

    def on_hit(self, set_index: int, way: int, access: Access) -> None:
        # The line was re-used after `interval` accesses: its class's
        # threshold must cover at least that interval (decaying average
        # keeps it adaptive).
        interval = self._interval[set_index][way]
        line_class = self._class[set_index][way]
        learned = self.thresholds[line_class]
        self.thresholds[line_class] = max(interval, (3 * learned + interval) // 4)
        self._interval[set_index][way] = 0
        self._class[set_index][way] = self.classify(access.pc)
        self._touch(set_index, way)

    def _expired(self, set_index: int, way: int) -> bool:
        line_class = self._class[set_index][way]
        threshold = self.thresholds[line_class] * self.slack
        return self._interval[set_index][way] > threshold

    def choose_victim(self, set_index: int, access: Access) -> int | None:
        stamps = self._stamp[set_index]
        expired = [w for w in range(self._ways) if self._expired(set_index, w)]
        if expired:
            return min(expired, key=stamps.__getitem__)
        return min(range(self._ways), key=stamps.__getitem__)

    def on_evict(self, set_index: int, way: int, access: Access) -> None:
        # Evicted without confirming reuse: shrink the class's threshold
        # toward the interval actually granted (avoids over-protection).
        line_class = self._class[set_index][way]
        interval = self._interval[set_index][way]
        learned = self.thresholds[line_class]
        if interval < learned:
            self.thresholds[line_class] = max(1, (learned + interval) // 2)

    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        self._interval[set_index][way] = 0
        self._class[set_index][way] = self.classify(access.pc)
        self._touch(set_index, way)


__all__ = ["CounterBasedPolicy"]
