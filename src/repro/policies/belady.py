"""Belady's offline optimal replacement (OPT / MIN).

Used as an upper bound in tests and ablations (the paper cites Belady via
the Shepherd-cache discussion, Sec. 7). The policy is given the full trace
up front, precomputes each access's next-use position, and always evicts
the line re-referenced farthest in the future. With ``bypass=True`` it also
skips insertion when the incoming block's next use is farther than every
resident line's — the optimal choice for a non-inclusive cache.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.policies.base import ReplacementPolicy, register_policy
from repro.types import Access

_INFINITY = 1 << 62


@register_policy("belady")
class BeladyPolicy(ReplacementPolicy):
    """Offline OPT; requires the address trace the cache will observe."""

    def __init__(self, addresses: Sequence[int], bypass: bool = False) -> None:
        super().__init__()
        self.bypass = bypass
        self.supports_bypass = bypass
        addresses = [int(a) for a in addresses]
        self._next_use = [_INFINITY] * len(addresses)
        last_seen: dict[int, int] = {}
        for position in range(len(addresses) - 1, -1, -1):
            address = addresses[position]
            self._next_use[position] = last_seen.get(address, _INFINITY)
            last_seen[address] = position
        self._time = -1

    def _allocate(self, num_sets: int, ways: int) -> None:
        self._ways = ways
        # Next-use position of the line resident in each way.
        self._line_next_use = [[_INFINITY] * ways for _ in range(num_sets)]

    def on_access(self, set_index: int, access: Access) -> None:
        self._time += 1
        if self._time >= len(self._next_use):
            raise RuntimeError("BeladyPolicy saw more accesses than its trace")

    def on_hit(self, set_index: int, way: int, access: Access) -> None:
        self._line_next_use[set_index][way] = self._next_use[self._time]

    def choose_victim(self, set_index: int, access: Access) -> int | None:
        row = self._line_next_use[set_index]
        victim = max(range(self._ways), key=row.__getitem__)
        if self.bypass and self._next_use[self._time] > row[victim]:
            return None
        return victim

    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        self._line_next_use[set_index][way] = self._next_use[self._time]


__all__ = ["BeladyPolicy"]
