"""Sampling dead block prediction (SDP), after Khan et al. (MICRO 2010).

SDP learns, per last-touch program counter, whether blocks die after their
last access. A decoupled *sampler* (a few shadow sets with partial tags and
LRU) provides ground truth: an entry evicted from the sampler without reuse
trains its last-touch PC toward "dead"; a sampler hit trains toward "live".
A skewed table of saturating counters stores the predictions.

In the cache, a fill whose PC predicts dead is bypassed (dead-on-arrival),
and lines whose latest touch predicts dead are preferred victims. The paper
compares against SDP in Fig. 10 and notes it wins where PC-based prediction
is informative and loses where RDs are short (Sec. 6.2).
"""

from __future__ import annotations

from repro.policies.base import ReplacementPolicy, register_policy
from repro.types import Access


class _SamplerEntry:
    """One partial-tag entry of an SDP sampler set."""

    __slots__ = ("partial_tag", "pc_signature", "lru_stamp", "valid")

    def __init__(self) -> None:
        self.partial_tag = 0
        self.pc_signature = 0
        self.lru_stamp = 0
        self.valid = False


class DeadBlockPredictor:
    """Skewed saturating-counter predictor indexed by PC signature."""

    def __init__(
        self,
        table_bits: int = 12,
        num_tables: int = 3,
        counter_max: int = 3,
        threshold: int = 8,
    ) -> None:
        self.table_size = 1 << table_bits
        self.num_tables = num_tables
        self.counter_max = counter_max
        self.threshold = threshold
        self.tables = [[0] * self.table_size for _ in range(num_tables)]

    def _indices(self, signature: int) -> list[int]:
        indices = []
        value = signature & 0xFFFFFFFF
        for table in range(self.num_tables):
            # Distinct xor-fold per table approximates skewed hashing.
            folded = (value >> (table * 5)) ^ (value * (2 * table + 3))
            indices.append(folded % self.table_size)
        return indices

    def train(self, signature: int, dead: bool) -> None:
        for table, index in zip(self.tables, self._indices(signature)):
            if dead:
                if table[index] < self.counter_max:
                    table[index] += 1
            elif table[index] > 0:
                table[index] -= 1

    def predict_dead(self, signature: int) -> bool:
        confidence = sum(
            table[index] for table, index in zip(self.tables, self._indices(signature))
        )
        return confidence >= self.threshold


@register_policy("sdp")
class SDPPolicy(ReplacementPolicy):
    """LRU base policy + sampling dead block prediction with bypass.

    Args:
        num_sampler_sets: shadow sets used for training (paper triples the
            original budget; default 32).
        sampler_assoc: sampler associativity (12 in the original work; 16
            by default here, matching the paper's enlarged 3x SDP budget
            on a 16-way LLC).
        bypass: drop fills predicted dead-on-arrival.
    """

    supports_bypass = True

    def __init__(
        self,
        num_sampler_sets: int = 32,
        sampler_assoc: int = 16,
        table_bits: int = 12,
        threshold: int = 8,
        bypass: bool = True,
    ) -> None:
        super().__init__()
        self.num_sampler_sets = num_sampler_sets
        self.sampler_assoc = sampler_assoc
        self.bypass = bypass
        self.predictor = DeadBlockPredictor(table_bits=table_bits, threshold=threshold)

    def _allocate(self, num_sets: int, ways: int) -> None:
        self._ways = ways
        self._stamp = [[0] * ways for _ in range(num_sets)]
        self._clock = [0] * num_sets
        self._dead = [[False] * ways for _ in range(num_sets)]
        sampler_sets = min(self.num_sampler_sets, num_sets)
        self._sampler_stride = max(1, num_sets // sampler_sets)
        self._sampler = {
            set_index: [_SamplerEntry() for _ in range(self.sampler_assoc)]
            for set_index in range(0, num_sets, self._sampler_stride)
        }
        self._sampler_clock = 0

    # -- sampler training --------------------------------------------------

    @staticmethod
    def _signature(pc: int) -> int:
        return pc & 0xFFFF

    def on_access(self, set_index: int, access: Access) -> None:
        entries = self._sampler.get(set_index)
        if entries is None:
            return
        self._sampler_clock += 1
        partial_tag = (access.address // len(self._stamp)) & 0xFFFF
        signature = self._signature(access.pc)
        for entry in entries:
            if entry.valid and entry.partial_tag == partial_tag:
                # Reused before sampler eviction: last-touch PC was live.
                self.predictor.train(entry.pc_signature, dead=False)
                entry.pc_signature = signature
                entry.lru_stamp = self._sampler_clock
                return
        victim = min(entries, key=lambda e: (e.valid, e.lru_stamp))
        if victim.valid:
            # Evicted without reuse: last-touch PC marked dead.
            self.predictor.train(victim.pc_signature, dead=True)
        victim.partial_tag = partial_tag
        victim.pc_signature = signature
        victim.lru_stamp = self._sampler_clock
        victim.valid = True

    # -- replacement --------------------------------------------------------

    def _touch(self, set_index: int, way: int) -> None:
        self._clock[set_index] += 1
        self._stamp[set_index][way] = self._clock[set_index]

    def on_hit(self, set_index: int, way: int, access: Access) -> None:
        self._touch(set_index, way)
        self._dead[set_index][way] = self.predictor.predict_dead(
            self._signature(access.pc)
        )

    def choose_victim(self, set_index: int, access: Access) -> int | None:
        dead_row = self._dead[set_index]
        stamps = self._stamp[set_index]
        dead_ways = [way for way in range(self._ways) if dead_row[way]]
        if dead_ways:
            return min(dead_ways, key=stamps.__getitem__)
        if self.bypass and self.predictor.predict_dead(self._signature(access.pc)):
            return None
        return min(range(self._ways), key=stamps.__getitem__)

    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        self._touch(set_index, way)
        self._dead[set_index][way] = self.predictor.predict_dead(
            self._signature(access.pc)
        )


__all__ = ["DeadBlockPredictor", "SDPPolicy"]
