"""RRIP family: SRRIP, BRRIP and DRRIP (Jaleel et al., ISCA 2010).

Each line carries an M-bit re-reference prediction value (RRPV). Victim
selection scans for RRPV == 2^M - 1, aging the whole set until one appears.
SRRIP inserts at 2^M - 2 ("long" re-reference); BRRIP inserts at 2^M - 1
("distant") except with probability epsilon; DRRIP set-duels the two.

The paper's case study (Sec. 2.1, Fig. 2) sweeps epsilon from 1/4 down to
1/128, which our ``BRRIPPolicy`` supports directly.
"""

from __future__ import annotations

import random

from repro.policies.base import ReplacementPolicy, register_policy
from repro.policies.dueling import SetDuelingMonitor
from repro.types import Access


class _RRIPBase(ReplacementPolicy):
    """Shared RRPV machinery: aging scan and hit promotion."""

    def __init__(self, m_bits: int = 2) -> None:
        super().__init__()
        if m_bits < 1:
            raise ValueError(f"m_bits must be >= 1, got {m_bits}")
        self.m_bits = m_bits
        self.rrpv_max = (1 << m_bits) - 1

    def _allocate(self, num_sets: int, ways: int) -> None:
        self._rrpv = [[self.rrpv_max] * ways for _ in range(num_sets)]

    def on_hit(self, set_index: int, way: int, access: Access) -> None:
        # Hit promotion (HP): predicted near-immediate re-reference.
        self._rrpv[set_index][way] = 0

    def choose_victim(self, set_index: int, access: Access) -> int | None:
        row = self._rrpv[set_index]
        while True:
            for way, value in enumerate(row):
                if value >= self.rrpv_max:
                    return way
            for way in range(len(row)):
                row[way] += 1

    def _insert(self, set_index: int, way: int, distant: bool) -> None:
        row = self._rrpv[set_index]
        row[way] = self.rrpv_max if distant else self.rrpv_max - 1


@register_policy("srrip")
class SRRIPPolicy(_RRIPBase):
    """Static RRIP: every miss inserts with a "long" prediction."""

    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        self._insert(set_index, way, distant=False)


@register_policy("brrip")
class BRRIPPolicy(_RRIPBase):
    """Bimodal RRIP: inserts "distant" except with probability epsilon."""

    def __init__(self, m_bits: int = 2, epsilon: float = 1 / 32, seed: int = 0):
        super().__init__(m_bits)
        self.epsilon = epsilon
        self._rng = random.Random(seed)

    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        distant = self._rng.random() >= self.epsilon
        self._insert(set_index, way, distant=distant)


@register_policy("drrip")
class DRRIPPolicy(_RRIPBase):
    """Dynamic RRIP: set-duel SRRIP (A) against BRRIP (B)."""

    def __init__(
        self,
        m_bits: int = 2,
        epsilon: float = 1 / 32,
        num_leader_sets: int | None = None,
        psel_bits: int = 10,
        seed: int = 0,
    ) -> None:
        super().__init__(m_bits)
        self.epsilon = epsilon
        self.num_leader_sets = num_leader_sets
        self.psel_bits = psel_bits
        self._rng = random.Random(seed)
        self._sdm: SetDuelingMonitor | None = None

    def _allocate(self, num_sets: int, ways: int) -> None:
        super()._allocate(num_sets, ways)
        self._sdm = SetDuelingMonitor(num_sets, self.num_leader_sets, self.psel_bits)

    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        self._sdm.record_miss(set_index)
        if self._sdm.prefer_a(set_index):
            self._insert(set_index, way, distant=False)  # SRRIP
        else:
            distant = self._rng.random() >= self.epsilon  # BRRIP
            self._insert(set_index, way, distant=distant)


__all__ = ["BRRIPPolicy", "DRRIPPolicy", "SRRIPPolicy"]
