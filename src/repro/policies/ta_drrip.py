"""Thread-aware DRRIP (TA-DRRIP) for shared last-level caches.

Each thread runs its own SRRIP-vs-BRRIP duel: thread t dedicates its own
leader sets (rotated so different threads sample different physical sets)
and keeps a private PSEL. In follower sets, the inserting thread's PSEL
decides its insertion prediction. This is the strongest shared-cache
baseline in the paper's Fig. 12.
"""

from __future__ import annotations

import random

from repro.policies.base import register_policy
from repro.policies.dueling import SetDuelingMonitor
from repro.policies.rrip import _RRIPBase
from repro.types import Access


@register_policy("ta-drrip")
class TADRRIPPolicy(_RRIPBase):
    """Per-thread DRRIP dueling over a shared cache."""

    def __init__(
        self,
        num_threads: int,
        m_bits: int = 2,
        epsilon: float = 1 / 32,
        num_leader_sets: int | None = None,
        psel_bits: int = 10,
        seed: int = 0,
    ) -> None:
        super().__init__(m_bits)
        if num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {num_threads}")
        self.num_threads = num_threads
        self.epsilon = epsilon
        self.num_leader_sets = num_leader_sets
        self.psel_bits = psel_bits
        self._rng = random.Random(seed)
        self._sdms: list[SetDuelingMonitor] = []

    def _allocate(self, num_sets: int, ways: int) -> None:
        super()._allocate(num_sets, ways)
        stride = max(1, num_sets // (2 * self.num_threads))
        self._sdms = [
            SetDuelingMonitor(
                num_sets,
                self.num_leader_sets,
                self.psel_bits,
                phase=thread * stride,
            )
            for thread in range(self.num_threads)
        ]

    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        sdm = self._sdms[access.thread_id % self.num_threads]
        sdm.record_miss(set_index)
        if sdm.prefer_a(set_index):
            self._insert(set_index, way, distant=False)
        else:
            distant = self._rng.random() >= self.epsilon
            self._insert(set_index, way, distant=distant)


__all__ = ["TADRRIPPolicy"]
