"""Tree pseudo-LRU replacement (binary decision tree per set).

Included as an additional hardware-realistic baseline; commercial L1/L2
caches commonly use tree PLRU rather than true LRU.
"""

from __future__ import annotations

from repro.policies.base import ReplacementPolicy, register_policy
from repro.types import Access


@register_policy("plru")
class TreePLRUPolicy(ReplacementPolicy):
    """Binary-tree pseudo-LRU; requires power-of-two associativity."""

    def _allocate(self, num_sets: int, ways: int) -> None:
        if ways & (ways - 1):
            raise ValueError("tree PLRU requires power-of-two associativity")
        self._ways = ways
        # One bit per internal node; tree stored as a heap (index 1 = root).
        self._bits = [[0] * ways for _ in range(num_sets)]

    def _touch(self, set_index: int, way: int) -> None:
        """Flip tree bits so they point away from ``way``."""
        bits = self._bits[set_index]
        node = 1
        span = self._ways
        offset = 0
        while span > 1:
            half = span // 2
            go_right = way >= offset + half
            bits[node] = 0 if go_right else 1  # point away from the path taken
            node = 2 * node + (1 if go_right else 0)
            if go_right:
                offset += half
            span = half

    def on_hit(self, set_index: int, way: int, access: Access) -> None:
        self._touch(set_index, way)

    def choose_victim(self, set_index: int, access: Access) -> int | None:
        bits = self._bits[set_index]
        node = 1
        span = self._ways
        offset = 0
        while span > 1:
            half = span // 2
            go_right = bits[node] == 1
            node = 2 * node + (1 if go_right else 0)
            if go_right:
                offset += half
            span = half
        return offset

    def on_fill(self, set_index: int, way: int, access: Access) -> None:
        self._touch(set_index, way)


__all__ = ["TreePLRUPolicy"]
