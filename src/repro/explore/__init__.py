"""Analytical fast-forward design-space explorer.

One profiling pass over a trace, then thousands of ``(sets, ways, d_p)``
hit-rate predictions through the extended ``E(d_p)`` model family — no
per-geometry simulation. Cross-validated against the simulator by
``tools/xval_explorer.py`` within the error budget declared there and
documented in ``docs/EXPLORER.md``.

Entry points: :func:`profile_trace` (the pass),
:func:`explore` (the sweep), ``repro explore`` (the CLI), and the sweep
service's ``predict`` job kind (:mod:`repro.service`).
"""

from repro.explore.explorer import (
    CONFIDENCE_ACCESS_FACTOR,
    DEFAULT_SETS,
    DEFAULT_WAYS,
    ExplorationResult,
    GeometryPrediction,
    explore,
    render_frontier,
)
from repro.explore.model import (
    MODEL_VARIANTS,
    SetModelView,
    build_view,
    predict_curve,
    predict_hit_rate,
)
from repro.explore.profile import TraceProfile, profile_trace

__all__ = [
    "CONFIDENCE_ACCESS_FACTOR",
    "DEFAULT_SETS",
    "DEFAULT_WAYS",
    "ExplorationResult",
    "GeometryPrediction",
    "MODEL_VARIANTS",
    "SetModelView",
    "TraceProfile",
    "build_view",
    "explore",
    "predict_curve",
    "predict_hit_rate",
    "profile_trace",
    "render_frontier",
]
