"""The analytical hit-rate model family of the design-space explorer.

The predictor extends the paper's ``E(d_p)`` occupancy-balance model
(:mod:`repro.core.hit_rate_model`, Sec. 2.4) with three refinements that
close the gap to the simulator on the cross-validation grid (see
``docs/EXPLORER.md`` for the derivation and the measured error budget):

1. **Eviction-lag fixed point.** The paper charges every expired line a
   fixed lag ``d_e = W`` before eviction. Under SPDP-B (bypass), an
   expired line is only evicted when a miss needs its slot, so the lag
   is ``~1 / miss rate`` set accesses — solved here by a short fixed
   point between the predicted hit rate and the lag.
2. **Cold-start credit.** The steady-state balance ignores the initial
   ``W`` free fills per set — significant when the per-set access count
   is small. Each slot serves ``T_set / R + 1`` residency runs, giving
   the extra term ``W * H_f / T_set`` (``H_f`` = hits per fill).
3. **Frozen-set plateau.** When the protecting distance exceeds a set's
   access count, filled lines never expire: the set degenerates to
   "first W distinct blocks stay forever", whose hit count the profiler
   measures exactly (per-set arrival ranks). The prediction blends
   toward that plateau with weight ``1 - beta(pd)``, where ``beta`` is
   the fraction of accesses in sets with more than ``pd`` accesses.

In the contended steady-state regime the predictor reduces exactly to
``W * E(d_p)``; in the uncontended regime it extends the effective
protection until occupancy balances supply.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.explore.profile import TraceProfile

#: Number of eviction-lag fixed-point iterations (converges fast; the
#: lag only moves within [1, W]).
LAG_ITERATIONS = 4

#: Model variants the cross-validation harness can inject. The broken
#: variant rescales reuse distances with an off-by-one power-of-two set
#: count (2S instead of S) — the canonical "silent drift" the harness
#: must catch.
MODEL_VARIANTS = ("default", "broken-set-rescale")


@dataclass
class SetModelView:
    """Per-set-count view of a profile, ready for O(1)-ish prediction.

    Bundles the rescaled RDD's cumulative arrays, the per-set access
    count distribution, and the arrival-rank plateau — everything
    :func:`predict_hit_rate` needs for one ``num_sets``.
    """

    num_sets: int
    d_max: int
    total: int
    cum: np.ndarray
    cumw: np.ndarray
    t_set: float
    q_all: float
    acc_sorted: np.ndarray
    acc_cumsum: np.ndarray
    rank_cum: np.ndarray

    def beta(self, pd: int) -> float:
        """Fraction of accesses in sets with more than ``pd`` accesses.

        The blend weight of the steady-state model versus the
        frozen-set plateau: sets whose whole trace slice fits inside
        one protection window never recycle lines.
        """
        if self.total <= 0:
            return 1.0
        index = int(np.searchsorted(self.acc_sorted, pd, side="right"))
        covered = float(self.acc_cumsum[index - 1]) if index else 0.0
        return (self.total - covered) / self.total

    def plateau(self, ways: int) -> float:
        """Hit rate of the frozen cache keeping each set's first W blocks."""
        if self.total <= 0:
            return 0.0
        index = min(ways, len(self.rank_cum) - 1)
        return float(self.rank_cum[index]) / self.total


def build_view(
    profile: TraceProfile,
    num_sets: int,
    d_max: int = 1_024,
    max_ways: int = 64,
    variant: str = "default",
) -> SetModelView:
    """Derive the per-set-count model inputs from a profile.

    ``variant`` selects a registered model variant (see
    :data:`MODEL_VARIANTS`); anything else raises ``ValueError``.
    """
    if variant not in MODEL_VARIANTS:
        raise ValueError(
            f"unknown model variant {variant!r}; known: {MODEL_VARIANTS}"
        )
    rescale = num_sets * 2 if variant == "broken-set-rescale" else None
    counts = profile.rdd_for_sets(num_sets, d_max_set=d_max, rescale_sets=rescale)
    total = profile.total_accesses
    body = counts[: d_max + 1]
    cum = np.cumsum(body) / total if total else np.zeros(d_max + 1)
    cumw = (
        np.cumsum(body * np.arange(d_max + 1)) / total
        if total
        else np.zeros(d_max + 1)
    )
    acc = np.sort(profile.accesses_per_set(num_sets))
    return SetModelView(
        num_sets=num_sets,
        d_max=d_max,
        total=total,
        cum=cum,
        cumw=cumw,
        t_set=total / num_sets if num_sets else 0.0,
        q_all=float(cum[d_max]) if total else 0.0,
        acc_sorted=acc.astype(np.float64),
        acc_cumsum=np.cumsum(acc, dtype=np.float64),
        rank_cum=profile.rank_reuse_cum(num_sets, max_ways=max_ways),
    )


def predict_hit_rate(view: SetModelView, ways: int, pd: int) -> float:
    """Predict the SPDP-B hit rate for ``(view.num_sets, ways, pd)``.

    The unified occupancy-balance model: per set access, protected
    lines demand ``occ(d) = cumw[d] + (1 - cum[d]) * (d + lag)`` slot
    time against a supply of ``W``. Contended sets yield the paper's
    ``W * E(d_p)`` (with the lag fixed point and cold-start credit);
    uncontended sets extend the effective protection until the balance
    binds. The result is then blended with the frozen-set plateau by
    ``beta(pd)`` and clamped to [0, 1].
    """
    if ways < 1:
        raise ValueError(f"ways must be >= 1, got {ways}")
    if pd < 1:
        raise ValueError(f"pd must be >= 1, got {pd}")
    if view.total <= 0:
        return 0.0
    cum, cumw, d_max = view.cum, view.cumw, view.d_max
    pd_c = min(pd, d_max)
    w = float(ways)
    lag = w
    hit_rate = 0.0
    for _ in range(LAG_ITERATIONS):
        def occupancy(d: int) -> float:
            return float(cumw[d] + (1.0 - cum[d]) * (d + lag))

        if occupancy(pd_c) <= w:
            # Uncontended: lines linger past expiry until slot demand
            # arrives — extend the effective protection distance to the
            # largest d the occupancy balance still admits.
            low, high = pd_c, d_max
            while low < high:
                mid = (low + high + 1) // 2
                if occupancy(mid) <= w:
                    low = mid
                else:
                    high = mid - 1
            hit_rate = float(cum[low])
        else:
            protected = float(cum[pd_c])
            steady = w * protected / occupancy(pd_c)
            hits_per_fill = (
                view.q_all / (1.0 - view.q_all) if view.q_all < 1.0 else 0.0
            )
            cold = w * hits_per_fill / view.t_set if view.t_set > 0 else 0.0
            hit_rate = min(protected, steady + cold)
        lag = min(w, 1.0 / max(1.0 - hit_rate, 1.0 / w))
    blend = view.beta(pd)
    if blend < 1.0:
        hit_rate = blend * hit_rate + (1.0 - blend) * view.plateau(ways)
    return float(min(1.0, max(0.0, hit_rate)))


def predict_curve(view: SetModelView, ways: int, pds: list[int]) -> list[float]:
    """Predicted hit rate at every candidate protecting distance."""
    return [predict_hit_rate(view, ways, pd) for pd in pds]


__all__ = [
    "LAG_ITERATIONS",
    "MODEL_VARIANTS",
    "SetModelView",
    "build_view",
    "predict_curve",
    "predict_hit_rate",
]
