"""The design-space explorer: thousands of geometries from one pass.

``explore()`` profiles a trace once (:mod:`repro.explore.profile`),
builds one :class:`~repro.explore.model.SetModelView` per candidate set
count, and analytically evaluates every ``(sets, ways, d_p)`` point on
the canonical PD grid (:mod:`repro.core.pd_grid`) — no simulation. The
result carries per-geometry predictions (full PD curve, predicted-best
PD, confidence tag), a capacity-ranked Pareto frontier, and is
persisted as a ``kind="explore"`` manifest whose trace fingerprint ties
it to any simulation manifests of the same trace (the hook
``repro obs report`` uses to render prediction-vs-simulation error
tables).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from time import perf_counter

from repro.core.pd_grid import pd_grid
from repro.explore.model import MODEL_VARIANTS, build_view, predict_curve
from repro.explore.profile import TraceProfile, profile_trace

#: Default candidate set counts (powers of two within the profiled range).
DEFAULT_SETS = (16, 32, 64, 128, 256, 512)

#: Default candidate associativities.
DEFAULT_WAYS = (1, 2, 4, 8, 16)

#: Per-set access counts below this multiple of the associativity mark a
#: geometry's prediction as low-confidence (data-starved profile).
CONFIDENCE_ACCESS_FACTOR = 8


@dataclass
class GeometryPrediction:
    """Analytical prediction for one (sets, ways) geometry."""

    num_sets: int
    ways: int
    line_size: int
    pds: list[int]
    hit_rates: list[float]
    best_pd: int
    best_hit_rate: float
    confidence: str
    on_frontier: bool = False

    @property
    def capacity_bytes(self) -> int:
        """Cache capacity implied by the geometry."""
        return self.num_sets * self.ways * self.line_size

    def to_dict(self) -> dict:
        """JSON-native form for manifests."""
        return {
            "num_sets": self.num_sets,
            "ways": self.ways,
            "line_size": self.line_size,
            "capacity_bytes": self.capacity_bytes,
            "pds": list(self.pds),
            "hit_rates": [round(h, 9) for h in self.hit_rates],
            "best_pd": self.best_pd,
            "best_hit_rate": round(self.best_hit_rate, 9),
            "confidence": self.confidence,
            "on_frontier": self.on_frontier,
        }


@dataclass
class ExplorationResult:
    """Everything one ``explore()`` call produced."""

    profile_summary: dict
    predictions: list[GeometryPrediction]
    n_points: int
    elapsed_s: float
    model_variant: str = "default"
    manifest_path: str | None = None
    run_id: str | None = None
    extra: dict = field(default_factory=dict)

    @property
    def frontier(self) -> list[GeometryPrediction]:
        """Pareto-frontier geometries, best predicted hit rate first."""
        points = [p for p in self.predictions if p.on_frontier]
        return sorted(points, key=lambda p: -p.best_hit_rate)

    def prediction_for(self, num_sets: int, ways: int) -> GeometryPrediction | None:
        """The prediction of one geometry, or None when absent."""
        for point in self.predictions:
            if point.num_sets == num_sets and point.ways == ways:
                return point
        return None


def _mark_frontier(predictions: list[GeometryPrediction]) -> None:
    """Flag Pareto-optimal geometries (no cheaper-or-equal one beats them)."""
    by_capacity = sorted(
        predictions, key=lambda p: (p.capacity_bytes, -p.best_hit_rate)
    )
    best_so_far = -1.0
    for point in by_capacity:
        if point.best_hit_rate > best_so_far:
            point.on_frontier = True
            best_so_far = point.best_hit_rate


def explore(
    source,
    sets: tuple[int, ...] | list[int] = DEFAULT_SETS,
    ways: tuple[int, ...] | list[int] = DEFAULT_WAYS,
    pd_max: int = 256,
    pd_step: int = 4,
    d_max: int = 1_024,
    line_size: int = 64,
    model_variant: str = "default",
    profile: TraceProfile | None = None,
    manifest_dir: str | os.PathLike | None = None,
    run_label: str | None = None,
) -> ExplorationResult:
    """Analytically evaluate the full (sets, ways, d_p) design space.

    One profiling pass over ``source`` (skipped when a prebuilt
    ``profile`` is passed), then pure arithmetic per candidate point:
    for each geometry the canonical PD grid
    ``pd_grid(ways, pd_max, pd_step)`` is swept through the model and
    the best candidate kept. Geometries whose per-set access count
    falls below ``CONFIDENCE_ACCESS_FACTOR * ways`` are tagged
    ``confidence="low"`` — the profile is data-starved there and the
    honest answer is "simulate instead" (see ``docs/EXPLORER.md``).

    When ``manifest_dir`` is given, a ``kind="explore"`` manifest is
    saved carrying the profiling fingerprint, the full prediction set
    and the frontier — auditable and resumable by the sweep service.
    """
    if model_variant not in MODEL_VARIANTS:
        raise ValueError(
            f"unknown model variant {model_variant!r}; known: {MODEL_VARIANTS}"
        )
    started = perf_counter()
    if profile is None:
        max_sets = max(max(sets), 1)
        profile = profile_trace(source, max_sets=max_sets)
    predictions: list[GeometryPrediction] = []
    n_points = 0
    max_ways = max(ways)
    for num_sets in sorted(set(int(s) for s in sets)):
        view = build_view(
            profile, num_sets, d_max=d_max, max_ways=max_ways,
            variant=model_variant,
        )
        accesses_per_set = profile.total_accesses / num_sets
        for way_count in sorted(set(int(w) for w in ways)):
            pds = pd_grid(way_count, d_max=pd_max, step=pd_step)
            curve = predict_curve(view, way_count, pds)
            n_points += len(pds)
            best_index = max(range(len(pds)), key=lambda i: curve[i])
            confidence = (
                "high"
                if accesses_per_set >= CONFIDENCE_ACCESS_FACTOR * way_count
                else "low"
            )
            predictions.append(
                GeometryPrediction(
                    num_sets=num_sets,
                    ways=way_count,
                    line_size=line_size,
                    pds=pds,
                    hit_rates=curve,
                    best_pd=pds[best_index],
                    best_hit_rate=curve[best_index],
                    confidence=confidence,
                )
            )
    _mark_frontier(predictions)
    elapsed = perf_counter() - started
    result = ExplorationResult(
        profile_summary=profile.summary(),
        predictions=predictions,
        n_points=n_points,
        elapsed_s=elapsed,
        model_variant=model_variant,
    )
    if manifest_dir is not None:
        result.manifest_path, result.run_id = _emit_explore_manifest(
            result, manifest_dir, run_label=run_label,
            config={
                "sets": sorted(set(int(s) for s in sets)),
                "ways": sorted(set(int(w) for w in ways)),
                "pd_max": pd_max,
                "pd_step": pd_step,
                "d_max": d_max,
                "line_size": line_size,
            },
        )
    return result


def _emit_explore_manifest(
    result: ExplorationResult,
    manifest_dir: str | os.PathLike,
    run_label: str | None,
    config: dict,
) -> tuple[str, str]:
    """Persist one ``kind="explore"`` manifest; returns (path, run_id)."""
    from repro.obs.manifest import Manifest

    summary = result.profile_summary
    frontier = result.frontier
    manifest = Manifest(
        kind="explore",
        workload=summary.get("name", "trace"),
        policy="analytic-spdp",
        engine="analytic",
        label=run_label,
        config=dict(config, model_variant=result.model_variant),
        trace_fingerprint=summary.get("fingerprint"),
        wall_time_s=result.elapsed_s,
        accesses=summary.get("total_accesses", 0),
        accesses_per_sec=(
            summary.get("total_accesses", 0) / result.elapsed_s
            if result.elapsed_s > 0
            else 0.0
        ),
        stats={
            "geometries": len(result.predictions),
            "points": result.n_points,
            "unique_blocks": summary.get("unique_blocks", 0),
            "total_reuses": summary.get("total_reuses", 0),
        },
        metrics={
            "best_hit_rate": frontier[0].best_hit_rate if frontier else 0.0,
            "elapsed_s": result.elapsed_s,
        },
        extra={
            "profile": summary,
            "predictions": [p.to_dict() for p in result.predictions],
            "frontier": [
                {
                    "num_sets": p.num_sets,
                    "ways": p.ways,
                    "capacity_bytes": p.capacity_bytes,
                    "best_pd": p.best_pd,
                    "best_hit_rate": round(p.best_hit_rate, 9),
                    "confidence": p.confidence,
                }
                for p in frontier
            ],
        },
    )
    path = manifest.save(manifest_dir)
    return str(path), manifest.run_id


def render_frontier(result: ExplorationResult, top: int = 10) -> str:
    """Human-readable frontier table (the CLI's default output)."""
    lines = [
        f"explored {result.n_points} (sets, ways, d_p) points across "
        f"{len(result.predictions)} geometries in {result.elapsed_s:.2f}s "
        f"(one profiling pass, zero simulations)",
        "",
        f"{'sets':>5} {'ways':>5} {'capacity':>10} {'best_pd':>8} "
        f"{'pred_hit':>9} {'conf':>5}  frontier",
    ]
    ranked = sorted(result.predictions, key=lambda p: -p.best_hit_rate)
    for point in ranked[:top]:
        capacity = point.capacity_bytes
        size = (
            f"{capacity // 1024}KiB" if capacity < 1 << 20
            else f"{capacity / (1 << 20):.1f}MiB"
        )
        lines.append(
            f"{point.num_sets:>5} {point.ways:>5} {size:>10} "
            f"{point.best_pd:>8} {point.best_hit_rate:>9.4f} "
            f"{point.confidence:>5}  {'*' if point.on_frontier else ''}"
        )
    return "\n".join(lines)


__all__ = [
    "CONFIDENCE_ACCESS_FACTOR",
    "DEFAULT_SETS",
    "DEFAULT_WAYS",
    "ExplorationResult",
    "GeometryPrediction",
    "explore",
    "render_frontier",
]
