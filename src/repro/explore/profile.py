"""One-pass streaming trace profiler for the analytical explorer.

A single pass over a :class:`~repro.traces.stream.TraceStream` collects
everything the geometry model needs, in O(chunk + working set) memory:

- the **request-granular RDD**: a histogram of global reuse distances
  (number of accesses between consecutive accesses to a block — exactly
  :func:`repro.traces.analysis.reuse_distances` with ``num_sets=1``),
  later rescaled analytically to per-set distances for any candidate
  set count;
- **per-set-index access counts** at the finest candidate set count
  (``max_sets``), foldable down to any power-of-two set count below it;
- **per-block arrival statistics** (address, first-seen position, reuse
  count), from which the per-set arrival-rank reuse histogram — the
  frozen-cache plateau of the model — is derived for any set count;
- the chunk-size-invariant **content fingerprint**
  (:class:`repro.obs.manifest.FingerprintAccumulator`) that makes
  explore manifests auditable against simulation manifests of the same
  trace.

The pass itself never materializes the stream: chunks are consumed one
at a time and only per-block state persists between chunks (the same
working-set footprint any reuse-distance analysis needs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.obs.manifest import FingerprintAccumulator
from repro.obs.metrics import METRICS
from repro.traces.stream import as_stream

#: Default cap on profiled global reuse distances (larger distances land
#: in the overflow bin — "longer than any modeled protection window").
DEFAULT_GLOBAL_D_MAX = 262_144

#: Default finest set count profiled (power of two; candidate geometries
#: must use a power-of-two set count at or below this).
DEFAULT_MAX_SETS = 1_024


@dataclass
class TraceProfile:
    """Everything one profiling pass learned about a trace.

    ``global_counts[d]`` counts reuses at request-granular distance
    ``d`` for ``d <= d_max``; index ``d_max + 1`` is the overflow bin.
    ``acc_per_set`` holds access counts per set index at ``max_sets``
    sets. ``block_addrs`` / ``block_first_pos`` / ``block_reuses`` are
    parallel arrays over the distinct blocks of the trace.
    """

    name: str
    total_accesses: int
    d_max: int
    max_sets: int
    global_counts: np.ndarray
    acc_per_set: np.ndarray
    block_addrs: np.ndarray
    block_first_pos: np.ndarray
    block_reuses: np.ndarray
    fingerprint: str | None = None
    _rdd_cache: dict = field(default_factory=dict, repr=False)
    _rank_cache: dict = field(default_factory=dict, repr=False)

    @property
    def unique_blocks(self) -> int:
        """Number of distinct blocks the trace touched."""
        return int(len(self.block_addrs))

    @property
    def total_reuses(self) -> int:
        """Number of non-first-touch accesses."""
        return self.total_accesses - self.unique_blocks

    def _check_sets(self, num_sets: int) -> None:
        """Reject set counts the profile cannot answer for."""
        if num_sets < 1 or (num_sets & (num_sets - 1)) != 0:
            raise ValueError(f"num_sets must be a power of two, got {num_sets}")
        if num_sets > self.max_sets:
            raise ValueError(
                f"num_sets {num_sets} exceeds the profiled max_sets "
                f"{self.max_sets}; re-profile with a larger max_sets"
            )

    def rdd_for_sets(
        self, num_sets: int, d_max_set: int = 1_024, rescale_sets: int | None = None
    ) -> np.ndarray:
        """The per-set RDD for ``num_sets`` sets, analytically rescaled.

        A global distance ``D`` (accesses between uses of a block)
        corresponds to ``D / S`` accesses to the block's set under the
        uniform ``addr % S`` mapping, so the request-granular histogram
        is rescaled by ``1/S`` with each count split fractionally
        between the two neighboring integer bins. Distances beyond
        ``d_max_set`` (and the global overflow bin) land in index
        ``d_max_set + 1``. ``rescale_sets`` overrides the divisor —
        only the cross-validation harness's deliberately broken model
        variant uses it.

        Returns a float array of length ``d_max_set + 2`` whose total
        mass equals the trace's reuse count.
        """
        self._check_sets(num_sets)
        divisor = num_sets if rescale_sets is None else rescale_sets
        key = (num_sets, d_max_set, divisor)
        cached = self._rdd_cache.get(key)
        if cached is not None:
            return cached
        # Bins 0..d_max rescale by 1/divisor; the global overflow bin
        # ("longer than profiled") goes straight to the per-set
        # overflow bin, whatever the set count.
        counts = self.global_counts[: self.d_max + 1].astype(np.float64)
        scaled = np.arange(len(counts), dtype=np.float64) / float(divisor)
        lower = np.floor(scaled).astype(np.int64)
        frac = scaled - lower
        overflow = d_max_set + 1
        lower = np.minimum(lower, overflow)
        upper = np.minimum(lower + 1, overflow)
        out = np.zeros(d_max_set + 2, dtype=np.float64)
        np.add.at(out, lower, counts * (1.0 - frac))
        np.add.at(out, upper, counts * frac)
        out[overflow] += float(self.global_counts[self.d_max + 1])
        self._rdd_cache[key] = out
        return out

    def accesses_per_set(self, num_sets: int) -> np.ndarray:
        """Access counts per set index for ``num_sets`` sets.

        Folded from the finest profiled histogram: with both counts
        powers of two, ``addr % S == (addr % max_sets) % S``.
        """
        self._check_sets(num_sets)
        folded = self.acc_per_set.reshape(self.max_sets // num_sets, num_sets)
        return folded.sum(axis=0)

    def rank_reuse_cum(self, num_sets: int, max_ways: int = 64) -> np.ndarray:
        """Cumulative reuse counts by per-set arrival rank.

        ``result[w]`` is the number of reuse accesses whose block was
        among the first ``w`` distinct blocks of its set (1-indexed by
        ways; ``result[0] == 0``). This is the exact hit count of a
        cache that permanently keeps each set's first ``w`` unique
        blocks — the frozen-cache plateau the model blends toward when
        the protecting distance exceeds a set's access count.
        """
        self._check_sets(num_sets)
        key = (num_sets, max_ways)
        cached = self._rank_cache.get(key)
        if cached is not None:
            return cached
        sets = self.block_addrs % num_sets
        order = np.lexsort((self.block_first_pos, sets))
        sorted_sets = sets[order]
        # Rank within set = position in (set, first_pos) order minus the
        # start offset of the set's group.
        boundaries = np.flatnonzero(np.diff(sorted_sets)) + 1
        starts = np.zeros(len(sorted_sets), dtype=np.int64)
        starts[boundaries] = boundaries
        starts = np.maximum.accumulate(starts)
        ranks = np.arange(len(sorted_sets), dtype=np.int64) - starts
        clamped = np.minimum(ranks, max_ways)
        by_rank = np.bincount(
            clamped, weights=self.block_reuses[order].astype(np.float64),
            minlength=max_ways + 1,
        )
        # result[w] counts reuses of blocks with 0-based rank < w; ranks
        # clamped to max_ways keep result[max_ways] == total reuses only
        # when no set has more than max_ways blocks, so the clamp bin is
        # deliberately excluded from result[max_ways].
        result = np.concatenate(([0.0], np.cumsum(by_rank[:-1])))
        self._rank_cache[key] = result
        return result

    def summary(self) -> dict:
        """JSON-native profile summary for manifests and reports."""
        return {
            "name": self.name,
            "total_accesses": self.total_accesses,
            "unique_blocks": self.unique_blocks,
            "total_reuses": self.total_reuses,
            "d_max": self.d_max,
            "max_sets": self.max_sets,
            "fingerprint": self.fingerprint,
        }


def profile_trace(
    source,
    d_max: int = DEFAULT_GLOBAL_D_MAX,
    max_sets: int = DEFAULT_MAX_SETS,
    chunk_size: int | None = None,
) -> TraceProfile:
    """Run the single profiling pass and return its :class:`TraceProfile`.

    ``source`` is a :class:`~repro.traces.trace.Trace` or
    :class:`~repro.traces.stream.TraceStream`; chunks are consumed one
    at a time (O(chunk) transient memory plus per-block state). The
    stream's content fingerprint is accumulated during the same pass.
    """
    if max_sets < 1 or (max_sets & (max_sets - 1)) != 0:
        raise ValueError(f"max_sets must be a power of two, got {max_sets}")
    stream = as_stream(source, chunk_size)
    counts = np.zeros(d_max + 2, dtype=np.int64)
    acc_per_set = np.zeros(max_sets, dtype=np.int64)
    accumulator = FingerprintAccumulator()
    # Per-block state: position of last access, index into the parallel
    # first_pos/reuses lists.
    last_pos: dict[int, int] = {}
    block_index: dict[int, int] = {}
    first_pos: list[int] = []
    reuses: list[int] = []
    position = 0
    overflow = d_max + 1
    # Per-chunk latency gating: one enabled test and at most one
    # histogram observation per chunk keeps the disabled path free.
    observe_chunks = METRICS.enabled
    for chunk in stream.chunks():
        chunk_start = perf_counter() if observe_chunks else 0.0
        accumulator.update(chunk)
        addresses = chunk.addresses
        np.add.at(acc_per_set, addresses % max_sets, 1)
        for addr in addresses.tolist():
            previous = last_pos.get(addr)
            if previous is None:
                block_index[addr] = len(first_pos)
                first_pos.append(position)
                reuses.append(0)
            else:
                distance = position - previous
                counts[distance if distance <= d_max else overflow] += 1
                reuses[block_index[addr]] += 1
            last_pos[addr] = position
            position += 1
        if observe_chunks:
            METRICS.observe("explore.profile_chunk_s", perf_counter() - chunk_start)
    addrs = np.fromiter(block_index.keys(), dtype=np.int64, count=len(block_index))
    return TraceProfile(
        name=stream.name,
        total_accesses=position,
        d_max=d_max,
        max_sets=max_sets,
        global_counts=counts,
        acc_per_set=acc_per_set,
        block_addrs=addrs,
        block_first_pos=np.asarray(first_pos, dtype=np.int64),
        block_reuses=np.asarray(reuses, dtype=np.int64),
        fingerprint=accumulator.digest(stream.name, stream.instructions_per_access),
    )


__all__ = [
    "DEFAULT_GLOBAL_D_MAX",
    "DEFAULT_MAX_SETS",
    "TraceProfile",
    "profile_trace",
]
