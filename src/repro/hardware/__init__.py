"""Hardware models: the PD compute processor and SRAM overhead accounting."""

from repro.hardware.overhead import (
    dip_overhead_bits,
    drrip_overhead_bits,
    llc_sram_bits,
    overhead_report,
    pdp_overhead_bits,
)
from repro.hardware.pd_processor import (
    PDProcessor,
    assemble_pd_search,
    pd_search_integer,
)

__all__ = [
    "PDProcessor",
    "assemble_pd_search",
    "dip_overhead_bits",
    "drrip_overhead_bits",
    "llc_sram_bits",
    "overhead_report",
    "pd_search_integer",
    "pdp_overhead_bits",
]
