"""SRAM overhead accounting (Sec. 3 and Sec. 6.2 of the paper).

The paper reports, for a 2MB LLC, PDP overheads of ~0.6-0.8% of the LLC
SRAM (depending on n_c), versus 0.4% for DRRIP and 0.8% for DIP. These
functions reproduce that accounting: per-line policy bits, the RD sampler,
the RD counter array, and the PD registers, expressed as a fraction of
total LLC storage (data + tag + valid bits).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.cache import CacheGeometry


def llc_sram_bits(geometry: CacheGeometry, tag_bits: int = 24) -> int:
    """Total LLC SRAM bits: data + tag + valid per line."""
    per_line = geometry.line_size * 8 + tag_bits + 1
    return geometry.total_lines * per_line


def pdp_overhead_bits(
    geometry: CacheGeometry,
    n_c: int = 8,
    d_max: int = 256,
    step: int = 4,
    sampler_sets: int = 32,
    sampler_fifo_depth: int = 32,
    sampler_tag_bits: int = 16,
    counter_bits: int = 16,
    bypass: bool = True,
) -> int:
    """PDP storage: per-line RPD bits, step counters, sampler, RDD array.

    The reuse bit is only needed without bypass (inclusive victim
    selection, Sec. 2.2).
    """
    distance_step = max(1, d_max // (1 << n_c))
    step_counter_bits = max(0, (distance_step - 1)).bit_length()
    per_line = n_c + (0 if bypass else 1)
    per_set = step_counter_bits
    insertion_rate = max(1, d_max // sampler_fifo_depth)
    sampler_bits = sampler_sets * (
        sampler_fifo_depth * sampler_tag_bits
        + max(1, (insertion_rate - 1).bit_length())
    )
    counter_array_bits = (d_max // step) * counter_bits + 32  # + N_t
    pd_register_bits = max(1, d_max.bit_length())
    return (
        geometry.total_lines * per_line
        + geometry.num_sets * per_set
        + sampler_bits
        + counter_array_bits
        + pd_register_bits
    )


def dip_overhead_bits(
    geometry: CacheGeometry, psel_bits: int = 10
) -> int:
    """DIP: true-LRU recency bits per line plus the PSEL counter."""
    recency_bits = max(1, (geometry.ways - 1).bit_length())
    return geometry.total_lines * recency_bits + psel_bits


def drrip_overhead_bits(
    geometry: CacheGeometry, m_bits: int = 2, psel_bits: int = 10
) -> int:
    """DRRIP: M-bit RRPV per line plus the PSEL counter."""
    return geometry.total_lines * m_bits + psel_bits


def ucp_overhead_bits(
    geometry: CacheGeometry,
    num_threads: int,
    sampler_sets: int = 32,
    tag_bits: int = 16,
    counter_bits: int = 32,
) -> int:
    """UCP: per-thread UMON (sampled ATD tags + stack-position counters)."""
    per_thread = sampler_sets * geometry.ways * tag_bits + geometry.ways * counter_bits
    owner_bits = max(1, (num_threads - 1).bit_length())
    return num_threads * per_thread + geometry.total_lines * owner_bits


@dataclass(frozen=True, slots=True)
class OverheadRow:
    """One policy's overhead, absolute and relative."""

    policy: str
    bits: int
    fraction_of_llc: float


def overhead_report(
    geometry: CacheGeometry | None = None, d_max: int = 256, step: int = 4
) -> list[OverheadRow]:
    """The Sec. 6.2 overhead comparison for a 2MB 16-way LLC."""
    geometry = geometry or CacheGeometry.from_capacity(2 * 1024 * 1024, ways=16)
    base = llc_sram_bits(geometry)
    rows = []
    for n_c in (2, 3, 8):
        bits = pdp_overhead_bits(geometry, n_c=n_c, d_max=d_max, step=step)
        rows.append(OverheadRow(f"PDP-{n_c}", bits, bits / base))
    dip = dip_overhead_bits(geometry)
    rows.append(OverheadRow("DIP", dip, dip / base))
    drrip = drrip_overhead_bits(geometry)
    rows.append(OverheadRow("DRRIP", drrip, drrip / base))
    return rows


__all__ = [
    "OverheadRow",
    "dip_overhead_bits",
    "drrip_overhead_bits",
    "llc_sram_bits",
    "overhead_report",
    "pdp_overhead_bits",
    "ucp_overhead_bits",
]
