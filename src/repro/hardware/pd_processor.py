"""Cycle-level model of the PD compute logic (Sec. 3, Fig. 8).

The paper implements the E(d_p) search as a tiny 4-stage special-purpose
processor: a 32-bit ALU, eight 8-bit registers (R0-R7), eight 32-bit
registers (R8-R15), and sixteen integer instruction kinds including an
8x32 shift-add multiply (``MULT8``) and a 33-cycle non-restoring 32-bit
divide (``DIV32``). It reads the RD counter array and outputs the optimal
PD; the search runs rarely (every 512K accesses), so tens of cycles per
candidate d_p are negligible.

This module provides:

- :class:`PDProcessor` — an interpreter for that instruction set with the
  paper's cycle costs;
- :func:`assemble_pd_search` — the actual search microprogram, evaluating
  E(d_p) incrementally for every bin boundary and tracking the argmax via
  a scaled integer division;
- :func:`pd_search_integer` — a pure-Python replica of the same integer
  algorithm, used to validate the microprogram.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# Instruction cycle costs (Sec. 3: mult8 is shift-add over 8 bits; div32 is
# a 33-cycle non-restoring divide; everything else single-cycle).
_COSTS = {"MULT8": 8, "DIV32": 33}
_BRANCH_PENALTY = 1  # taken-branch bubble in the 4-stage pipeline


@dataclass(frozen=True, slots=True)
class Instruction:
    """One decoded instruction: opcode, destination, two sources."""

    op: str
    dst: int = 0
    src1: int = 0
    src2: int = 0


class PDProcessor:
    """Interpreter for the PD compute logic's instruction set.

    Registers 0-7 are 8-bit, 8-15 are 32-bit (wrap-around semantics).
    ``LOAD`` reads the RD counter array (the processor's only memory).

    Opcodes: MOV, MOVI, ADD, ADDI, SUB, AND, OR, XOR, SHL, SHR, MULT8,
    DIV32, LOAD, BEQ, BLT, BGE, JMP, HALT — sixteen compute/control kinds,
    matching the paper's description.
    """

    NUM_REGISTERS = 16

    def __init__(self, counter_memory: list[int] | np.ndarray) -> None:
        self.memory = [int(value) for value in counter_memory]
        self.registers = [0] * self.NUM_REGISTERS
        self.cycles = 0
        self.instructions_executed = 0

    def _mask(self, register: int, value: int) -> int:
        width = 0xFF if register < 8 else 0xFFFFFFFF
        return value & width

    def _write(self, register: int, value: int) -> None:
        self.registers[register] = self._mask(register, value)

    def run(self, program: list[Instruction], max_steps: int = 5_000_000) -> None:
        """Execute ``program`` until HALT, accumulating cycle counts."""
        pc = 0
        steps = 0
        regs = self.registers
        while pc < len(program):
            steps += 1
            if steps > max_steps:
                raise RuntimeError("PD search program did not halt")
            inst = program[pc]
            op = inst.op
            self.instructions_executed += 1
            self.cycles += _COSTS.get(op, 1)
            taken = False
            if op == "MOV":
                self._write(inst.dst, regs[inst.src1])
            elif op == "MOVI":
                self._write(inst.dst, inst.src1)
            elif op == "ADD":
                self._write(inst.dst, regs[inst.src1] + regs[inst.src2])
            elif op == "ADDI":
                self._write(inst.dst, regs[inst.src1] + inst.src2)
            elif op == "SUB":
                self._write(inst.dst, regs[inst.src1] - regs[inst.src2])
            elif op == "AND":
                self._write(inst.dst, regs[inst.src1] & regs[inst.src2])
            elif op == "OR":
                self._write(inst.dst, regs[inst.src1] | regs[inst.src2])
            elif op == "XOR":
                self._write(inst.dst, regs[inst.src1] ^ regs[inst.src2])
            elif op == "SHL":
                self._write(inst.dst, regs[inst.src1] << inst.src2)
            elif op == "SHR":
                self._write(inst.dst, regs[inst.src1] >> inst.src2)
            elif op == "MULT8":
                # 32-bit x 8-bit shift-add multiply.
                self._write(inst.dst, regs[inst.src1] * (regs[inst.src2] & 0xFF))
            elif op == "DIV32":
                divisor = regs[inst.src2]
                quotient = regs[inst.src1] // divisor if divisor else 0
                self._write(inst.dst, quotient)
            elif op == "LOAD":
                index = regs[inst.src1]
                value = self.memory[index] if 0 <= index < len(self.memory) else 0
                self._write(inst.dst, value)
            elif op == "BEQ":
                taken = regs[inst.src1] == regs[inst.src2]
            elif op == "BLT":
                taken = regs[inst.src1] < regs[inst.src2]
            elif op == "BGE":
                taken = regs[inst.src1] >= regs[inst.src2]
            elif op == "JMP":
                taken = True
            elif op == "HALT":
                return
            else:
                raise ValueError(f"unknown opcode {op!r}")
            if taken:
                pc = inst.dst
                self.cycles += _BRANCH_PENALTY
            else:
                pc += 1


# Register allocation for the search program. 8-bit bank: loop counter and
# small temporaries; 32-bit bank: running sums and the division operands.
R_J = 0  # bin index (8-bit)
R_K = 1  # number of bins (8-bit)
R_T8 = 2  # 8-bit temporary (bin midpoint / j+1)
R_H = 8  # running hit sum
R_O = 9  # running occupancy-of-hits sum
R_NT = 10  # N_t
R_T32 = 11  # 32-bit temporary
R_D = 12  # denominator
R_BEST_E = 13  # best scaled E so far
R_BEST_PD = 14  # argmax PD
R_T32B = 15  # second 32-bit temporary


def assemble_pd_search(
    num_bins: int,
    step: int,
    d_e: int,
    e_scale_shift: int = 20,
) -> list[Instruction]:
    """The PD-search microprogram for an RD counter array.

    Implements, for every bin j (PD = (j+1)*step):

        H += N[j];  O += N[j] * (j*step + step/2)
        D  = O + (N_t - H) * (PD + d_e)
        E  = (H << e_scale_shift) / D          # DIV32
        if E >= bestE: bestE, bestPD = E, PD

    ``step`` and ``d_e`` must be powers of two so the multiplies reduce to
    MULT8 + shifts, as in the paper's shift-add datapath.
    """
    if step & (step - 1):
        raise ValueError("step must be a power of two")
    if d_e & (d_e - 1):
        raise ValueError("d_e must be a power of two")
    if not 1 <= num_bins <= 255:
        # The loop counter lives in an 8-bit register; d_max=256 with
        # S_c >= 2 always fits.
        raise ValueError(f"num_bins must be in [1, 255], got {num_bins}")
    log_step = step.bit_length() - 1
    log_de = d_e.bit_length() - 1
    half = step // 2

    program: list[Instruction] = []

    def emit(op, dst=0, src1=0, src2=0) -> int:
        program.append(Instruction(op, dst, src1, src2))
        return len(program) - 1

    emit("MOVI", R_J, 0)
    emit("MOVI", R_K, num_bins)
    emit("MOVI", R_H, 0)
    emit("MOVI", R_O, 0)
    emit("MOVI", R_BEST_E, 0)
    emit("MOVI", R_BEST_PD, step)
    loop_start = len(program)
    # H += N[j]
    emit("LOAD", R_T32, R_J)
    emit("ADD", R_H, R_H, R_T32)
    # O += N[j] * (j*step + step/2)
    emit("MOV", R_T8, R_J)
    emit("SHL", R_T8, R_T8, log_step)
    emit("ADDI", R_T8, R_T8, half)
    emit("MULT8", R_T32, R_T32, R_T8)
    emit("ADD", R_O, R_O, R_T32)
    # L = N_t - H; L*(PD + d_e) = ((L * (j+1)) << log_step) + (L << log_de)
    emit("SUB", R_T32, R_NT, R_H)
    emit("MOV", R_T8, R_J)
    emit("ADDI", R_T8, R_T8, 1)
    emit("MULT8", R_T32B, R_T32, R_T8)
    emit("SHL", R_T32B, R_T32B, log_step)
    emit("SHL", R_T32, R_T32, log_de)
    emit("ADD", R_T32B, R_T32B, R_T32)
    emit("ADD", R_D, R_O, R_T32B)
    # E = (H << shift) / D, guarded against D == 0
    emit("MOVI", R_T32, 0)
    skip_div_branch = emit("BEQ", 0, R_D, R_T32)  # patched below
    emit("MOV", R_T32, R_H)
    emit("SHL", R_T32, R_T32, e_scale_shift)
    emit("DIV32", R_T32, R_T32, R_D)
    # if E >= bestE: update (>= prefers larger PD on ties, matching the
    # incremental search scanning small-to-large d_p)
    skip_update_branch = emit("BLT", 0, R_T32, R_BEST_E)  # patched below
    emit("MOV", R_BEST_E, R_T32)
    emit("MOV", R_T8, R_J)
    emit("ADDI", R_T8, R_T8, 1)
    emit("MOV", R_BEST_PD, R_T8)
    emit("SHL", R_BEST_PD, R_BEST_PD, log_step)
    skip_target = len(program)
    # j += 1; loop while j < K
    emit("ADDI", R_J, R_J, 1)
    emit("BLT", loop_start, R_J, R_K)
    emit("HALT")

    program[skip_div_branch] = Instruction("BEQ", skip_target, R_D, R_T32)
    program[skip_update_branch] = Instruction("BLT", skip_target, R_T32, R_BEST_E)
    return program


def normalize_rdd(
    counts: list[int] | np.ndarray, total: int, total_bits: int = 12
) -> tuple[list[int], int]:
    """Right-shift the RDD so N_t fits ``total_bits`` bits.

    The datapath's E numerator is ``H << e_scale_shift``; keeping the hit
    sum under 2^12 guarantees it fits the 32-bit ALU. In hardware this is
    a barrel-shift of the counter array before the search; E is a ratio,
    so uniform scaling preserves the argmax up to rounding.
    """
    shift = max(0, int(total).bit_length() - total_bits)
    scaled = [int(value) >> shift for value in counts]
    return scaled, int(total) >> shift


def run_pd_search(
    counts: list[int] | np.ndarray,
    total: int,
    step: int,
    d_e: int,
    e_scale_shift: int = 19,
) -> tuple[int, int]:
    """Run the microprogram on an RDD; returns (best_pd, cycles)."""
    scaled_counts, scaled_total = normalize_rdd(counts, total)
    processor = PDProcessor(scaled_counts)
    processor.registers[R_NT] = scaled_total & 0xFFFFFFFF
    program = assemble_pd_search(len(scaled_counts), step, d_e, e_scale_shift)
    processor.run(program)
    return processor.registers[R_BEST_PD], processor.cycles


def pd_search_integer(
    counts: list[int] | np.ndarray,
    total: int,
    step: int,
    d_e: int,
    e_scale_shift: int = 19,
) -> int:
    """Pure-Python replica of the microprogram's integer arithmetic."""
    scaled_counts, scaled_total = normalize_rdd(counts, total)
    hits = 0
    occupancy = 0
    best_e = 0
    best_pd = step
    for j, count in enumerate(scaled_counts):
        hits += count
        occupancy += count * (j * step + step // 2)
        pd = (j + 1) * step
        long_lines = max(0, scaled_total - hits)
        denominator = occupancy + long_lines * (pd + d_e)
        if denominator == 0:
            continue  # mirrors the microprogram's BEQ-on-zero guard
        e_value = (hits << e_scale_shift) // denominator
        if e_value >= best_e:
            best_e = e_value
            best_pd = pd
    return best_pd


__all__ = [
    "Instruction",
    "PDProcessor",
    "assemble_pd_search",
    "pd_search_integer",
    "run_pd_search",
]
