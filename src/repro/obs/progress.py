"""Progress and heartbeat reporting for long-running sweeps.

A :class:`ProgressReporter` turns the lifecycle of a task grid (the
(policy x workload) cells of ``run_matrix`` / ``run_mix_matrix``, or the
per-cell runs of a figure driver) into a stream of
:class:`ProgressEvent` records: ``started`` when a task is dispatched,
``finished`` / ``failed`` when it completes, each carrying elapsed wall
time and an ETA extrapolated from the completion rate so far. Events are
delivered synchronously, in emission order, to an ``on_event`` callback
— the parallel runners emit them from the parent process as futures
complete, so the callback needs no locking and never crosses a process
boundary.

``python -m repro ... --progress`` wires :func:`print_event` (one line
per event on stderr) as the callback; library callers can pass any
callable, e.g. to feed a TUI, a log aggregator, or a
:class:`repro.obs.trace_log.TraceLog`.
"""

from __future__ import annotations

import sys
from collections.abc import Callable
from dataclasses import dataclass
from time import perf_counter


@dataclass(frozen=True)
class ProgressEvent:
    """One lifecycle event of one task in a grid run.

    ``done``/``total`` count *completed* tasks (finished + failed) at
    emission time; ``eta_s`` is None until at least one task completed.
    Two non-lifecycle kinds share the record shape: ``"warning"``
    carries a grid-level degradation notice (e.g. a parallel sweep
    falling back to serial execution) in ``error`` without touching the
    counters, and ``"skipped"`` marks a cell the resume scheduler
    satisfied from an existing manifest instead of re-running.
    """

    kind: str  # "started" | "finished" | "failed" | "skipped" | "warning"
    key: str
    done: int
    total: int
    elapsed_s: float
    eta_s: float | None = None
    error: str | None = None


class ProgressReporter:
    """Tracks a fixed-size task grid and emits lifecycle events.

    Args:
        total: number of tasks in the grid.
        on_event: callback receiving each :class:`ProgressEvent`; when
            None the reporter only keeps counts (cheap enough to leave
            in place unconditionally).
        label: short grid name included by :func:`print_event` lines.
    """

    def __init__(
        self,
        total: int,
        on_event: Callable[[ProgressEvent], None] | None = None,
        label: str = "sweep",
    ) -> None:
        self.total = total
        self.on_event = on_event
        self.label = label
        self.started_count = 0
        self.finished_count = 0
        self.failed_count = 0
        self._start = perf_counter()

    @property
    def done(self) -> int:
        """Completed tasks: finished plus failed."""
        return self.finished_count + self.failed_count

    def _eta(self, elapsed: float) -> float | None:
        """Remaining seconds extrapolated from the completion rate."""
        if self.done == 0 or self.done >= self.total:
            return None
        return elapsed / self.done * (self.total - self.done)

    def _emit(self, kind: str, key, error: str | None = None) -> ProgressEvent:
        """Build one event and deliver it to the callback."""
        elapsed = perf_counter() - self._start
        event = ProgressEvent(
            kind=kind,
            key=str(key),
            done=self.done,
            total=self.total,
            elapsed_s=elapsed,
            eta_s=self._eta(elapsed),
            error=error,
        )
        if self.on_event is not None:
            self.on_event(event)
        return event

    def started(self, key) -> ProgressEvent:
        """Record task ``key`` as dispatched."""
        self.started_count += 1
        return self._emit("started", key)

    def finished(self, key) -> ProgressEvent:
        """Record task ``key`` as successfully completed."""
        self.finished_count += 1
        return self._emit("finished", key)

    def failed(self, key, error: BaseException | str) -> ProgressEvent:
        """Record task ``key`` as failed with ``error``."""
        self.failed_count += 1
        message = (
            f"{type(error).__name__}: {error}"
            if isinstance(error, BaseException)
            else str(error)
        )
        return self._emit("failed", key, error=message)

    def warning(self, key, message: str) -> ProgressEvent:
        """Emit a grid-level ``warning`` event (counters untouched).

        Used for degradations the caller should see but that fail no
        task — e.g. a parallel runner silently dropping to one worker
        because the policy factories cannot cross a process boundary.
        """
        return self._emit("warning", key, error=message)


def print_event(event: ProgressEvent, stream=None, label: str = "sweep") -> None:
    """Render one event as a single stderr line (the ``--progress`` sink)."""
    stream = stream if stream is not None else sys.stderr
    eta = f" eta {event.eta_s:.1f}s" if event.eta_s is not None else ""
    suffix = f" ({event.error})" if event.error else ""
    print(
        f"[{label}] {event.done}/{event.total} {event.kind} {event.key} "
        f"elapsed {event.elapsed_s:.1f}s{eta}{suffix}",
        file=stream,
        flush=True,
    )


def console_reporter(label: str = "sweep", stream=None):
    """An ``on_event`` callback printing one line per event."""

    def on_event(event: ProgressEvent) -> None:
        print_event(event, stream=stream, label=label)

    return on_event


__all__ = [
    "ProgressEvent",
    "ProgressReporter",
    "console_reporter",
    "print_event",
]
